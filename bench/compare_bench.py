#!/usr/bin/env python3
"""Compare a fresh bench_micro run against the committed perf baseline.

Runs the given bench_micro binary on the regression-gated benchmarks
(BM_YearRun, BM_PlantStep), loads the committed baseline
(bench/BENCH_micro.json by default), and flags any benchmark whose
real_time regressed by more than the threshold (15% by default).

Exit status: 0 when every gated benchmark is within the threshold,
1 on a regression, 2 on usage / IO errors.

Usage:
    python3 bench/compare_bench.py --bench build/bench/bench_micro
    python3 bench/compare_bench.py --bench build/bench/bench_micro \
        --baseline bench/BENCH_micro.json --threshold 0.15

Wired as the opt-in `bench`-labelled ctest entry: `ctest -C bench`.
Regenerate the baseline after an intentional perf change with:
    build/bench/bench_micro --benchmark_filter='BM_YearRun|BM_PlantStep' \
        --benchmark_out=bench/BENCH_micro.json --benchmark_out_format=json
(keep the `coolair_provenance` block — it records the pre-PR reference).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

GATED_FILTER = "BM_YearRun|BM_PlantStep"


def load_benchmarks(path):
    """name -> real_time for aggregate-free benchmark entries."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were on.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["real_time"])
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the bench_micro binary")
    ap.add_argument("--baseline",
                    default=os.path.join(os.path.dirname(__file__),
                                         "BENCH_micro.json"),
                    help="committed baseline JSON (default: next to "
                         "this script)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed real_time regression fraction "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--filter", default=GATED_FILTER,
                    help="benchmark_filter regex for the gated set")
    args = ap.parse_args()

    try:
        baseline = load_benchmarks(args.baseline)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot load baseline: {e}", file=sys.stderr)
        return 2
    if not baseline:
        print("compare_bench: baseline has no benchmark entries",
              file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        cmd = [args.bench,
               f"--benchmark_filter={args.filter}",
               f"--benchmark_out={fresh_path}",
               "--benchmark_out_format=json"]
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"compare_bench: bench run failed ({proc.returncode})",
                  file=sys.stderr)
            return 2
        fresh = load_benchmarks(fresh_path)
    finally:
        try:
            os.unlink(fresh_path)
        except OSError:
            pass

    regressions = []
    print(f"{'benchmark':40s} {'baseline':>12s} {'fresh':>12s} {'delta':>8s}")
    for name, base_t in sorted(baseline.items()):
        if name not in fresh:
            print(f"{name:40s} {base_t:12.1f} {'MISSING':>12s}")
            regressions.append((name, "missing from fresh run"))
            continue
        new_t = fresh[name]
        delta = (new_t - base_t) / base_t
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, f"{delta:+.1%}"))
        print(f"{name:40s} {base_t:12.1f} {new_t:12.1f} {delta:+7.1%}{flag}")

    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:40s} {'(new, not in baseline)':>12s}")

    if regressions:
        print(f"\ncompare_bench: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        return 1
    print(f"\ncompare_bench: all benchmarks within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
