#!/usr/bin/env python3
"""Compare a fresh bench_micro run against the committed perf baseline.

Runs the given bench_micro binary on the regression-gated benchmarks
(BM_YearRun*, BM_PlantStep), loads the committed baseline
(bench/BENCH_micro.json by default), and flags any benchmark whose
real_time regressed by more than the threshold (15% by default).

On top of the relative check, the lane-batched engine carries an
absolute throughput gate: the fresh BM_YearRunBatched run must deliver
at least MIN_BATCH_SPEEDUP x the sim_minutes_per_s of the committed
scalar BM_YearRun FacebookProfile baseline (the PR 3 reference the
batched engine was built against).

Exit status: 0 when every gated benchmark is within the threshold and
the batched-speedup gate holds, 1 on a regression, 2 on usage / IO
errors.

Usage:
    python3 bench/compare_bench.py --bench build/bench/bench_micro
    python3 bench/compare_bench.py --bench build/bench/bench_micro \
        --baseline bench/BENCH_micro.json --threshold 0.15

Wired as the opt-in `bench`-labelled ctest entry: `ctest -C bench`.
Regenerate the baseline after an intentional perf change with:
    build/bench/bench_micro --benchmark_filter='BM_YearRun|BM_PlantStep' \
        --benchmark_out=bench/BENCH_micro.json --benchmark_out_format=json
(keep the `coolair_provenance` block — it records the pre-PR reference).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

GATED_FILTER = "BM_YearRun|BM_PlantStep"

# The tentpole's absolute gate: fresh batched throughput vs the
# committed scalar baseline it was measured against (PR 3 numbers,
# preserved in BENCH_micro.json — see its coolair_provenance block).
# Keys are fresh BM_YearRunBatched entries, values the baseline
# BM_YearRun {system}/{workload=FacebookProfile} entries.
MIN_BATCH_SPEEDUP = 4.0

# The serve-layer counterpart (ISSUE 10): cross-request coalescing must
# keep delivering at least this many x the solo cold throughput in
# bench_serve's cold-heavy scenario.  Read from the fresh run's own
# A/B ratio, so the gate needs no baseline entry.
MIN_COALESCE_SPEEDUP = 2.0
BATCH_SPEEDUP_PAIRS = {
    "BM_YearRunBatched/0": "BM_YearRun/0/1",
    "BM_YearRunBatched/1": "BM_YearRun/1/1",
}


def load_doc(path):
    """The full benchmark JSON document (benchmarks + context)."""
    with open(path) as f:
        return json.load(f)


def benchmarks_of(doc):
    """name -> real_time for aggregate-free benchmark entries."""
    out = {}
    for b in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were on.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["real_time"])
    return out


def sim_rates_of(doc):
    """name -> sim_minutes_per_s for entries that carry the counter."""
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if "sim_minutes_per_s" in b:
            out[b["name"]] = float(b["sim_minutes_per_s"])
    return out


def check_batch_speedup(baseline_doc, fresh_doc):
    """The >= MIN_BATCH_SPEEDUP x gate; returns a list of violations."""
    base_rates = sim_rates_of(baseline_doc)
    fresh_rates = sim_rates_of(fresh_doc)
    violations = []
    for batched, scalar in sorted(BATCH_SPEEDUP_PAIRS.items()):
        base = base_rates.get(scalar)
        fresh = fresh_rates.get(batched)
        if base is None:
            # The baseline does not track this pair at all (e.g. the
            # serve-layer baseline, which has no engine benchmarks) —
            # the gate belongs to a different bench binary, skip it.
            print(f"batch speedup: skipping {batched} gate "
                  f"(baseline has no {scalar})")
            continue
        if fresh is None:
            # A vanished batched benchmark is already reported as
            # MISSING by the real_time comparison once committed; only
            # complain here if the fresh run never produced the rate.
            violations.append((batched, "no fresh sim_minutes_per_s"))
            continue
        ratio = fresh / base
        print(f"batch speedup: {batched} {fresh:,.0f} sim-min/s vs "
              f"{scalar} baseline {base:,.0f} = {ratio:.2f}x "
              f"(gate {MIN_BATCH_SPEEDUP:.1f}x)")
        if ratio < MIN_BATCH_SPEEDUP:
            violations.append(
                (batched, f"only {ratio:.2f}x vs {scalar} baseline "
                          f"(need {MIN_BATCH_SPEEDUP:.1f}x)"))
    return violations


def check_coalesce_speedup(fresh_doc):
    """The serve-layer >= MIN_COALESCE_SPEEDUP x gate.

    bench_serve's cold-heavy scenario drives the same spec stream at a
    coalescing and a non-coalescing service and records the wall-clock
    ratio on the coalesced entry.  The gate reads the fresh run only
    (both passes happen inside one invocation, so no baseline value is
    needed) and skips itself for binaries that never emit the entry
    (bench_micro has no serving layer).
    """
    violations = []
    seen = False
    for b in fresh_doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b.get("name") != "BM_ServeColdCoalesced":
            continue
        seen = True
        speedup = b.get("coalesce_speedup")
        if speedup is None:
            violations.append(("BM_ServeColdCoalesced",
                               "no coalesce_speedup counter"))
            continue
        speedup = float(speedup)
        print(f"coalesce speedup: BM_ServeColdCoalesced {speedup:.2f}x "
              f"vs solo (gate {MIN_COALESCE_SPEEDUP:.1f}x)")
        if speedup < MIN_COALESCE_SPEEDUP:
            violations.append(
                ("BM_ServeColdCoalesced",
                 f"only {speedup:.2f}x vs solo cold throughput "
                 f"(need {MIN_COALESCE_SPEEDUP:.1f}x)"))
    if not seen:
        print("coalesce speedup: skipping gate (fresh run has no "
              "BM_ServeColdCoalesced)")
    return violations


def warn_on_context_mismatch(baseline_doc, fresh_doc):
    """Loudly flag baseline/candidate runs that are not comparable.

    A debug-build baseline compared against a release-build candidate
    (or vice versa) makes every delta meaningless; same for a different
    CPU count.  These are warnings, not failures: the numbers still
    print, but nobody should trust a "regression" across a mismatch.
    """
    base_ctx = baseline_doc.get("context", {})
    fresh_ctx = fresh_doc.get("context", {})
    mismatches = []
    for key in ("library_build_type", "build_type", "num_cpus"):
        b, f = base_ctx.get(key), fresh_ctx.get(key)
        if b is not None and f is not None and b != f:
            mismatches.append((key, b, f))
    if not mismatches:
        return
    banner = "!" * 70
    print(banner, file=sys.stderr)
    print("compare_bench: WARNING: baseline and candidate runs are NOT "
          "comparable:", file=sys.stderr)
    for key, b, f in mismatches:
        print(f"  {key}: baseline={b!r} vs candidate={f!r}",
              file=sys.stderr)
    print("  (regenerate the baseline from the same build configuration "
          "before trusting any delta below)", file=sys.stderr)
    print(banner, file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", required=True,
                    help="path to the bench_micro binary")
    ap.add_argument("--baseline",
                    default=os.path.join(os.path.dirname(__file__),
                                         "BENCH_micro.json"),
                    help="committed baseline JSON (default: next to "
                         "this script)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed real_time regression fraction "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--filter", default=GATED_FILTER,
                    help="benchmark_filter regex for the gated set")
    args = ap.parse_args()

    try:
        baseline_doc = load_doc(args.baseline)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot load baseline: {e}", file=sys.stderr)
        return 2
    baseline = benchmarks_of(baseline_doc)
    if not baseline:
        print("compare_bench: baseline has no benchmark entries",
              file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        cmd = [args.bench,
               f"--benchmark_filter={args.filter}",
               f"--benchmark_out={fresh_path}",
               "--benchmark_out_format=json"]
        proc = subprocess.run(cmd)
        if proc.returncode != 0:
            print(f"compare_bench: bench run failed ({proc.returncode})",
                  file=sys.stderr)
            return 2
        fresh_doc = load_doc(fresh_path)
        fresh = benchmarks_of(fresh_doc)
    finally:
        try:
            os.unlink(fresh_path)
        except OSError:
            pass

    warn_on_context_mismatch(baseline_doc, fresh_doc)

    # Markdown summary table: every benchmark either run appeared in,
    # with a status column.  Benchmarks only in the fresh run are "new"
    # (informational), only in the baseline are regressions (a gated
    # benchmark vanished).
    regressions = []
    rows = []
    for name in sorted(set(baseline) | set(fresh)):
        base_t = baseline.get(name)
        new_t = fresh.get(name)
        if base_t is None:
            rows.append((name, "-", f"{new_t:.1f}", "-", "new"))
            continue
        if new_t is None:
            rows.append((name, f"{base_t:.1f}", "-", "-", "MISSING"))
            regressions.append((name, "missing from fresh run"))
            continue
        delta = (new_t - base_t) / base_t
        status = "ok"
        if delta > args.threshold:
            status = "**REGRESSION**"
            regressions.append((name, f"{delta:+.1%}"))
        rows.append((name, f"{base_t:.1f}", f"{new_t:.1f}",
                     f"{delta:+.1%}", status))

    headers = ("benchmark", "baseline [ns]", "current [ns]", "delta",
               "status")
    widths = [max(len(headers[c]), max((len(r[c]) for r in rows),
                                       default=0))
              for c in range(len(headers))]
    print("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) +
          " |")
    print("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for r in rows:
        print("| " + " | ".join(v.ljust(w) for v, w in zip(r, widths)) +
              " |")

    print()
    regressions += check_batch_speedup(baseline_doc, fresh_doc)
    regressions += check_coalesce_speedup(fresh_doc)

    if regressions:
        print(f"\ncompare_bench: {len(regressions)} regression(s):",
              file=sys.stderr)
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        return 1
    print(f"\ncompare_bench: all benchmarks within {args.threshold:.0%} "
          "of baseline and the speedup gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
