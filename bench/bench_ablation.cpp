/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, at Newark
 * under All-ND (52-week year protocol):
 *
 *  - band Width (paper §5.1 picks 5 C: "narrower bands tend to make it
 *    harder to control variation ... wider bands needlessly allow
 *    temperatures to vary");
 *  - prediction horizon (model steps per optimizer decision);
 *  - the regime-switch damping penalty;
 *  - compute sleep decay (gradual vs instant server sleeping).
 *
 * Each ablation is expressed as an ExperimentSpec tuning override, so
 * the whole study is a spec vector fed to the standard sweep runner
 * (and any row can be replayed via experiment_cli, e.g.
 * `experiment_cli system=allnd band_width=2.5`).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "environment/location.hpp"
#include "sim/runner.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

using namespace coolair;

namespace {

sim::ExperimentSpec
base()
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.system = sim::SystemId::AllNd;
    spec.style = cooling::ActuatorStyle::Smooth;
    return spec;
}

void
row(util::TextTable &t, const char *name, const sim::Summary &s)
{
    t.addRow({name, util::TextTable::fmt(s.avgWorstDailyRangeC, 1),
              util::TextTable::fmt(s.maxWorstDailyRangeC, 1),
              util::TextTable::fmt(s.avgViolationC, 2),
              util::TextTable::fmt(s.pue, 3),
              util::TextTable::fmt(s.coolingKwh, 0)});
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablations (Newark, All-ND, year protocol) ===\n\n");

    std::vector<std::string> names;
    std::vector<sim::ExperimentSpec> specs;

    names.push_back("default (width 5, horizon 8, switch 2)");
    specs.push_back(base());

    for (double width : {2.5, 10.0}) {
        sim::ExperimentSpec s = base();
        s.bandWidthC = width;
        char name[64];
        std::snprintf(name, sizeof(name), "band width %.1f C", width);
        names.push_back(name);
        specs.push_back(s);
    }

    for (int horizon : {1, 4}) {
        sim::ExperimentSpec s = base();
        s.horizonSteps = horizon;
        char name[64];
        std::snprintf(name, sizeof(name), "horizon %d steps (%d min)",
                      horizon, horizon * 2);
        names.push_back(name);
        specs.push_back(s);
    }

    {
        sim::ExperimentSpec s = base();
        s.switchPenalty = 0.0;
        names.push_back("no switch damping");
        specs.push_back(s);
    }

    {
        sim::ExperimentSpec s = base();
        s.sleepDecayPerEpoch = 0.0;  // instant sleep
        names.push_back("instant server sleeping");
        specs.push_back(s);
    }

    {
        sim::ExperimentSpec s = base();
        s.bandOffsetC = 0.0;
        names.push_back("no outside-to-inlet offset");
        specs.push_back(s);
    }

    sim::RunnerConfig rc;
    rc.progress = true;
    rc.progressEvery = 1;
    rc.progressLabel = "configurations";
    // Progress goes through the logger at Info; keep it visible here.
    util::Logger::instance().setLevel(util::LogLevel::Info);
    sim::ExperimentRunner runner(rc);
    sim::SweepOutcome outcome = runner.run(specs);
    for (const auto &f : outcome.failures)
        std::fprintf(stderr, "FAILED %s: %s\n", names[f.index].c_str(),
                     f.message.c_str());
    if (!outcome.failures.empty())
        return 1;

    util::TextTable table({"configuration", "avg range", "max range",
                           "violation", "PUE", "cooling kWh"});
    for (size_t i = 0; i < specs.size(); ++i)
        row(table, names[i].c_str(), outcome.results[i].system);
    table.print(std::cout);

    std::printf("\nReading the table: the 5 C width balances range vs "
                "energy (2.5 C burns energy,\n10 C lets temperatures "
                "wander); short horizons and undamped switching chatter;\n"
                "instant sleeping couples IT-power swings into the "
                "thermals.\n");
    return 0;
}
