/**
 * @file
 * Ablation study of the design choices DESIGN.md calls out, at Newark
 * under All-ND (52-week year protocol):
 *
 *  - band Width (paper §5.1 picks 5 C: "narrower bands tend to make it
 *    harder to control variation ... wider bands needlessly allow
 *    temperatures to vary");
 *  - prediction horizon (model steps per optimizer decision);
 *  - the regime-switch damping penalty;
 *  - compute sleep decay (gradual vs instant server sleeping).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "environment/location.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;

namespace {

sim::Summary
runYear(const core::CoolAirConfig &config)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(7);
    environment::Forecaster forecaster(climate);

    plant::Plant plant(plant::PlantConfig::smoothParasol(), 7);
    workload::ClusterSim cluster({}, workload::facebookTrace({}));
    sim::CoolAirController coolair(config, sim::sharedBundle(),
                                   &forecaster);
    sim::MetricsCollector metrics({}, 8);
    sim::Engine engine(plant, cluster, coolair, climate);
    engine.setMetrics(&metrics);
    engine.runYearWeekly(52);
    return metrics.summary();
}

core::CoolAirConfig
base()
{
    return core::CoolAirConfig::forVersion(core::Version::AllNd,
                                           cooling::RegimeMenu::smooth());
}

void
row(util::TextTable &t, const char *name, const sim::Summary &s)
{
    t.addRow({name, util::TextTable::fmt(s.avgWorstDailyRangeC, 1),
              util::TextTable::fmt(s.maxWorstDailyRangeC, 1),
              util::TextTable::fmt(s.avgViolationC, 2),
              util::TextTable::fmt(s.pue, 3),
              util::TextTable::fmt(s.coolingKwh, 0)});
}

} // anonymous namespace

int
main()
{
    std::printf("=== Ablations (Newark, All-ND, year protocol) ===\n\n");

    struct Case
    {
        std::string name;
        core::CoolAirConfig config;
    };
    std::vector<Case> cases;
    cases.push_back({"default (width 5, horizon 8, switch 2)", base()});

    for (double width : {2.5, 10.0}) {
        core::CoolAirConfig c = base();
        c.band.widthC = width;
        char name[64];
        std::snprintf(name, sizeof(name), "band width %.1f C", width);
        cases.push_back({name, c});
    }

    for (int horizon : {1, 4}) {
        core::CoolAirConfig c = base();
        c.horizonSteps = horizon;
        char name[64];
        std::snprintf(name, sizeof(name), "horizon %d steps (%d min)",
                      horizon, horizon * 2);
        cases.push_back({name, c});
    }

    {
        core::CoolAirConfig c = base();
        c.utility.switchPenalty = 0.0;
        cases.push_back({"no switch damping", c});
    }

    {
        core::CoolAirConfig c = base();
        c.compute.sleepDecayPerEpoch = 0.0;  // instant sleep
        cases.push_back({"instant server sleeping", c});
    }

    {
        core::CoolAirConfig c = base();
        c.band.offsetC = 0.0;
        cases.push_back({"no outside-to-inlet offset", c});
    }

    // Every case shares the learned bundle; touch it before the pool so
    // first use cannot serialize the workers.
    sim::sharedBundle();

    std::vector<sim::Summary> results(cases.size());
    sim::RunnerConfig rc;
    rc.progress = true;
    rc.progressEvery = 1;
    rc.progressLabel = "configurations";
    sim::ExperimentRunner runner(rc);
    auto failures = runner.forEach(cases.size(), [&](size_t i) {
        results[i] = runYear(cases[i].config);
    });
    for (const auto &f : failures)
        std::fprintf(stderr, "FAILED %s: %s\n", cases[f.index].name.c_str(),
                     f.message.c_str());
    if (!failures.empty())
        return 1;

    util::TextTable table({"configuration", "avg range", "max range",
                           "violation", "PUE", "cooling kWh"});
    for (size_t i = 0; i < cases.size(); ++i)
        row(table, cases[i].name.c_str(), results[i]);
    table.print(std::cout);

    std::printf("\nReading the table: the 5 C width balances range vs "
                "energy (2.5 C burns energy,\n10 C lets temperatures "
                "wander); short horizons and undamped switching chatter;\n"
                "instant sleeping couples IT-power swings into the "
                "thermals.\n");
    return 0;
}
