/**
 * @file
 * Figure 11 reproduction: temperature ranges as a function of spatial
 * placement and the approach for limiting variation.
 *
 * Systems: Baseline; Var-Low-Recirc (fixed 25-30 band, prior art's
 * low-recirculation-first placement); Var-High-Recirc (same band,
 * CoolAir's high-recirculation-first placement); Variation (adaptive
 * band + weather forecast + high-recirc placement).
 *
 * Paper shape: comparing Var-Low vs Var-High isolates placement — the
 * high-recirculation placement reduces maximum ranges somewhat; the
 * largest reductions come from the adaptive band (Var-High vs
 * Variation), especially at sites with cold or cool seasons.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Figure 11: ranges vs spatial placement and band "
                "approach ===\n");
    std::printf("(year protocol; Facebook workload; smooth units)\n\n");

    std::vector<sim::SystemId> systems = {
        sim::SystemId::Baseline, sim::SystemId::VarLowRecirc,
        sim::SystemId::VarHighRecirc, sim::SystemId::Variation};
    auto grid = runGrid(paperSites(), systems);

    std::printf("--- average worst daily range [C] ---\n");
    printMetricTable(
        grid, paperSites(), systems, "avg range [C]",
        [](const Cell &c) { return c.system.avgWorstDailyRangeC; }, 1);

    std::printf("\n--- maximum worst daily range [C] ---\n");
    printMetricTable(
        grid, paperSites(), systems, "max range [C]",
        [](const Cell &c) { return c.system.maxWorstDailyRangeC; }, 1);

    std::printf("\n--- PUE (high-recirc placement should cost little) "
                "---\n");
    printMetricTable(grid, paperSites(), systems, "PUE",
                     [](const Cell &c) { return c.system.pue; }, 3);

    std::printf("\nShape check vs paper:\n");
    int placement_wins = 0, band_wins = 0;
    for (auto site : paperSites()) {
        double low = grid.at({site, sim::SystemId::VarLowRecirc})
                         .system.maxWorstDailyRangeC;
        double high = grid.at({site, sim::SystemId::VarHighRecirc})
                          .system.maxWorstDailyRangeC;
        double var = grid.at({site, sim::SystemId::Variation})
                         .system.maxWorstDailyRangeC;
        if (high <= low)
            ++placement_wins;
        if (var <= high)
            ++band_wins;
        std::printf("  %s: max range low-recirc %.1f, high-recirc %.1f, "
                    "+band %.1f\n", environment::siteName(site), low, high,
                    var);
    }
    std::printf("  high-recirc placement helps at %d/5 sites "
                "(paper: \"somewhat\", consistently)\n", placement_wins);
    std::printf("  the adaptive band helps further at %d/5 sites "
                "(paper: the largest reductions)\n", band_wins);
    return 0;
}
