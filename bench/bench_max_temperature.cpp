/**
 * @file
 * §5.2 "Impact of the desired maximum temperature" reproduction: run
 * the baseline and All-ND with desired maxima of 25 C and 30 C.
 *
 * Paper shape: CoolAir's benefits are greater when operators accept
 * higher maximum temperatures; where PUE is high at a 30 C maximum
 * CoolAir lowers it, but at a 25 C maximum CoolAir tends to increase
 * PUE at those same locations.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Impact of the desired maximum temperature "
                "(25 C vs 30 C) ===\n\n");

    std::vector<sim::SystemId> systems = {sim::SystemId::Baseline,
                                          sim::SystemId::AllNd};

    auto grid30 = runGrid(paperSites(), systems, 52,
                          [](sim::ExperimentSpec &s) { s.maxTempC = 30.0; });
    auto grid25 = runGrid(paperSites(), systems, 52,
                          [](sim::ExperimentSpec &s) { s.maxTempC = 25.0; });

    util::TextTable table({"site", "range cut @30 [C]", "range cut @25 [C]",
                           "dPUE @30", "dPUE @25"});
    for (auto site : paperSites()) {
        auto cut = [&](std::map<GridKey, Cell> &g) {
            return g.at({site, sim::SystemId::Baseline})
                       .system.maxWorstDailyRangeC -
                   g.at({site, sim::SystemId::AllNd})
                       .system.maxWorstDailyRangeC;
        };
        auto dpue = [&](std::map<GridKey, Cell> &g) {
            return g.at({site, sim::SystemId::AllNd}).system.pue -
                   g.at({site, sim::SystemId::Baseline}).system.pue;
        };
        table.addRow({environment::siteName(site),
                      util::TextTable::fmt(cut(grid30), 1),
                      util::TextTable::fmt(cut(grid25), 1),
                      util::TextTable::fmt(dpue(grid30), 3),
                      util::TextTable::fmt(dpue(grid25), 3)});
    }
    table.print(std::cout);

    std::printf("\nShape check vs paper:\n");
    int greater_at_30 = 0;
    for (auto site : paperSites()) {
        double c30 = grid30.at({site, sim::SystemId::Baseline})
                         .system.maxWorstDailyRangeC -
                     grid30.at({site, sim::SystemId::AllNd})
                         .system.maxWorstDailyRangeC;
        double c25 = grid25.at({site, sim::SystemId::Baseline})
                         .system.maxWorstDailyRangeC -
                     grid25.at({site, sim::SystemId::AllNd})
                         .system.maxWorstDailyRangeC;
        if (c30 >= c25)
            ++greater_at_30;
    }
    std::printf("  range reductions greater at 30 C than 25 C at %d/5 "
                "sites (paper: \"tend to be greater\")\n", greater_at_30);

    using environment::NamedSite;
    for (auto site : {NamedSite::Singapore, NamedSite::Chad}) {
        double d30 = grid30.at({site, sim::SystemId::AllNd}).system.pue -
                     grid30.at({site, sim::SystemId::Baseline}).system.pue;
        double d25 = grid25.at({site, sim::SystemId::AllNd}).system.pue -
                     grid25.at({site, sim::SystemId::Baseline}).system.pue;
        std::printf("  %s: dPUE %.3f @30 vs %.3f @25 (paper: CoolAir "
                    "lowers PUE at 30, raises it at 25)\n",
                    environment::siteName(site), d30, d25);
    }
    return 0;
}
