/**
 * @file
 * Figure 10 reproduction: yearly PUEs (including Parasol's 0.08 power-
 * delivery overhead) for the five systems at the five locations.
 *
 * Paper shape: the baseline exhibits high PUEs in Chad and Singapore;
 * the Energy version reduces them significantly; Variation pays a
 * substantial cooling-energy penalty; All-ND brings PUEs back down to
 * nearly the Energy version's values, except at Santiago where limiting
 * variation stays costly.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Figure 10: yearly PUE (incl. 0.08 delivery) ===\n");
    std::printf("(year protocol; Facebook workload; smooth units)\n\n");

    auto grid = runGrid(paperSites(), paperSystems());

    printMetricTable(grid, paperSites(), paperSystems(), "PUE",
                     [](const Cell &c) { return c.system.pue; }, 3);

    std::printf("\n--- cooling energy [kWh / 52 simulated days] ---\n");
    printMetricTable(grid, paperSites(), paperSystems(), "cooling [kWh]",
                     [](const Cell &c) { return c.system.coolingKwh; }, 0);

    std::printf("\nShape check vs paper:\n");
    using environment::NamedSite;
    auto pue = [&](NamedSite s, sim::SystemId sys) {
        return grid.at({s, sys}).system.pue;
    };
    std::printf("  hot sites, baseline vs Energy: Chad %.3f -> %.3f, "
                "Singapore %.3f -> %.3f (paper: Energy reduces "
                "significantly)\n",
                pue(NamedSite::Chad, sim::SystemId::Baseline),
                pue(NamedSite::Chad, sim::SystemId::Energy),
                pue(NamedSite::Singapore, sim::SystemId::Baseline),
                pue(NamedSite::Singapore, sim::SystemId::Energy));
    std::printf("  Variation pays for variation control: Iceland "
                "baseline %.3f vs Variation %.3f\n",
                pue(NamedSite::Iceland, sim::SystemId::Baseline),
                pue(NamedSite::Iceland, sim::SystemId::Variation));
    std::printf("  All-ND vs Energy (should be close): Newark %.3f vs "
                "%.3f, Singapore %.3f vs %.3f\n",
                pue(NamedSite::Newark, sim::SystemId::AllNd),
                pue(NamedSite::Newark, sim::SystemId::Energy),
                pue(NamedSite::Singapore, sim::SystemId::AllNd),
                pue(NamedSite::Singapore, sim::SystemId::Energy));
    return 0;
}
