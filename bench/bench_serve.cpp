/**
 * @file
 * Mixed hot/cold load driver for the coolair_serve daemon: starts an
 * in-process LineServer on a Unix socket, fans client threads out
 * against it, and reports sustained specs/s — the ROADMAP item 1
 * measure for the serving layer.
 *
 * Phases:
 *   1. cold warm-up: every spec in the hot set runs once (populates
 *      the result store and the learned-model shared state);
 *   2. mixed load: each client thread issues a deterministic
 *      hot/cold request mix — hot requests repeat the hot set (served
 *      from the in-memory hot cache or the store), cold requests are
 *      fresh single-day specs (each simulates once; concurrent
 *      duplicates dedup in flight);
 *   3. cold-heavy coalescing A/B: the same stream of batch=8 cold
 *      specs against two fresh services — scheduler off, then
 *      --coalesce on — reporting the cross-request batching speedup
 *      (the ISSUE-10 >=2x-at-16-clients measure).
 *
 * Environment knobs (strict util::envInt parsing):
 *   COOLAIR_SERVE_CLIENTS   client threads        (default 8)
 *   COOLAIR_SERVE_REQUESTS  requests per client   (default 32)
 *   COOLAIR_SERVE_HOT_PCT   hot share in percent  (default 75)
 *   COOLAIR_SERVE_HOT_KB    hot-cache budget KiB  (default 8192; 0
 *                           serves phase 2 from disk only)
 *   COOLAIR_SERVE_HOT_SHARDS hot-cache stripes    (default 8)
 *   COOLAIR_SERVE_COALESCE  lane target of phase 3 (default 16; <2
 *                           skips the phase and its entries)
 *   COOLAIR_SERVE_COALESCE_CLIENTS  phase-3 clients      (default 16)
 *   COOLAIR_SERVE_COALESCE_REQUESTS per-client requests  (default 4)
 *   COOLAIR_SERVE_COALESCE_WAIT_MS  collection window    (default 20)
 *   COOLAIR_THREADS         daemon worker threads (default all cores)
 *
 * Machine-readable output (the compare_bench.py / google-benchmark
 * JSON schema, so the serve numbers ride the same regression gate as
 * bench_micro):
 *   --benchmark_filter=<regex>   emit only matching entries
 *   --benchmark_out=<path>       write the JSON document there
 *   --benchmark_out_format=json  (the only supported format)
 * Entries: BM_ServeColdWarmup (ns per cold spec), BM_ServeMixed (ns
 * per mixed request, with specs_per_s and latency_p50/p95/p99_ms
 * counters), and BM_ServeColdSolo / BM_ServeColdCoalesced (phase 3;
 * the coalesced entry carries coalesce_speedup, gated >= 2x by
 * compare_bench.py).  Regenerate the committed baseline with:
 *   build/bench/bench_serve --benchmark_out=bench/BENCH_serve.json \
 *       --benchmark_out_format=json
 *
 * The driver asserts the serving contract as it measures: every hot
 * response must be byte-identical to the response the same spec line
 * got in the warm-up phase, and every coalesced response must be
 * byte-identical to the solo service's answer for the same spec.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

using namespace coolair;

namespace {

/** The hot set: single-day profile-workload specs across the five
    named sites (cheap to simulate, realistic to serve). */
std::vector<std::string>
hotSpecLines()
{
    const char *sites[] = {"newark", "chad", "santiago", "iceland",
                           "singapore"};
    std::vector<std::string> lines;
    for (const char *site : sites)
        for (int day : {60, 240})
            lines.push_back("run=day; day=" + std::to_string(day) +
                            "; site=" + std::string(site) +
                            "; system=allnd; workload=profile; "
                            "physics_step=120");
    return lines;
}

/** A cold spec line nobody has run before (unique day/seed mix). */
std::string
coldSpecLine(size_t client, size_t request)
{
    const size_t n = client * 1000 + request;
    return "run=day; day=" + std::to_string(n % 365) +
           "; site=santiago; system=baseline; workload=profile; "
           "physics_step=120; seed=" +
           std::to_string(100000 + n);
}

/** One benchmark entry of the emitted JSON document. */
struct BenchEntry
{
    std::string name;
    int64_t iterations = 0;
    double realTimeNs = 0.0;  ///< wall time per iteration
    std::vector<std::pair<std::string, double>> counters;
};

/**
 * DESIGN.md §10 tolerance compare of two formatResult payloads: same
 * keys in the same order, every numeric value within 2% relative or
 * 0.02 absolute.  Coalesced lanes may land in a different batch
 * composition than the solo run of the same spec, and SoA kernels
 * reassociate differently per width — bytes can drift at the last
 * ulp, the contract is the tolerance (byte-identity holds only for
 * identical lane sets; tests/test_serve.cpp locks that).
 */
bool
payloadsWithinTolerance(const std::string &a, const std::string &b)
{
    std::istringstream ia(a), ib(b);
    std::string la, lb;
    for (;;) {
        const bool ga = bool(std::getline(ia, la));
        const bool gb = bool(std::getline(ib, lb));
        if (ga != gb)
            return false;
        if (!ga)
            return true;
        if (la == lb)
            continue;
        const size_t ea = la.find('='), eb = lb.find('=');
        if (ea == std::string::npos || la.substr(0, ea) != lb.substr(0, eb))
            return false;
        char *end = nullptr;
        const double va = std::strtod(la.c_str() + ea + 1, &end);
        const double vb = std::strtod(lb.c_str() + eb + 1, &end);
        if (std::fabs(va - vb) >
            std::max(0.02, 0.02 * std::max(std::fabs(va), std::fabs(vb))))
            return false;
    }
}

/** The value below which @p q of the sorted samples fall. */
double
quantileOf(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double rank = q * double(sorted.size() - 1);
    const size_t lo = size_t(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - double(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

/**
 * Write @p entries as a google-benchmark JSON document — the schema
 * bench/compare_bench.py consumes (context block for comparability
 * warnings, one object per benchmark with real_time in ns).
 */
bool
writeBenchJson(const std::string &path,
               const std::vector<BenchEntry> &entries)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << "{\n  \"context\": {\n"
        << "    \"executable\": \"bench_serve\",\n"
        << "    \"num_cpus\": " << std::thread::hardware_concurrency()
        << ",\n"
        << "    \"library_build_type\": \""
#ifdef NDEBUG
           "release"
#else
           "debug"
#endif
        << "\"\n  },\n  \"benchmarks\": [";
    bool first = true;
    for (const BenchEntry &e : entries) {
        if (!first)
            out << ",";
        first = false;
        out << "\n    {\n"
            << "      \"name\": \"" << e.name << "\",\n"
            << "      \"run_name\": \"" << e.name << "\",\n"
            << "      \"run_type\": \"iteration\",\n"
            << "      \"repetitions\": 1,\n"
            << "      \"repetition_index\": 0,\n"
            << "      \"threads\": 1,\n"
            << "      \"iterations\": " << e.iterations << ",\n"
            << "      \"real_time\": " << obs::formatDouble(e.realTimeNs)
            << ",\n"
            << "      \"cpu_time\": " << obs::formatDouble(e.realTimeNs)
            << ",\n"
            << "      \"time_unit\": \"ns\"";
        for (const auto &[key, value] : e.counters)
            out << ",\n      \"" << key
                << "\": " << obs::formatDouble(value);
        out << "\n    }";
    }
    out << "\n  ]\n}\n";
    return bool(out);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    std::string filter = ".";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto valueOf = [&](const char *flag, std::string &into) {
            const std::string prefix = std::string(flag) + "=";
            if (arg.rfind(prefix, 0) != 0)
                return false;
            into = arg.substr(prefix.size());
            return true;
        };
        std::string format;
        if (valueOf("--benchmark_out", out_path) ||
            valueOf("--benchmark_filter", filter))
            continue;
        if (valueOf("--benchmark_out_format", format)) {
            if (format != "json") {
                std::fprintf(stderr,
                             "bench_serve: only json output is "
                             "supported (got '%s')\n",
                             format.c_str());
                return 2;
            }
            continue;
        }
        if (arg.rfind("--benchmark_", 0) == 0)
            continue;  // tolerate other google-benchmark flags
        std::fprintf(stderr, "bench_serve: unknown argument '%s'\n",
                     arg.c_str());
        return 2;
    }

    const int clients = util::envInt("COOLAIR_SERVE_CLIENTS", 8, 1, 256);
    const int requests = util::envInt("COOLAIR_SERVE_REQUESTS", 32, 1,
                                      100000);
    const int hot_pct = util::envInt("COOLAIR_SERVE_HOT_PCT", 75, 0, 100);
    const int hot_kb = util::envInt("COOLAIR_SERVE_HOT_KB", 8192, 0,
                                    1 << 20);
    const int hot_shards =
        util::envInt("COOLAIR_SERVE_HOT_SHARDS", 8, 1, 4096);

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("bench_serve." + std::to_string(uint64_t(::getpid())));
    fs::create_directories(dir);
    const std::string socket_path = (dir / "serve.sock").string();

    serve::ServiceConfig service_config;
    service_config.cacheDir = (dir / "store").string();
    service_config.hotCacheBytes = size_t(hot_kb) << 10;
    service_config.hotCacheShards = hot_shards;
    serve::ExperimentService service(service_config);

    serve::ServerConfig server_config;
    server_config.unixPath = socket_path;
    serve::LineServer server(service, server_config);
    server.start();

    std::printf("=== bench_serve: %d clients x %d requests, %d%% hot, "
                "%d workers ===\n",
                clients, requests, hot_pct, service.threads());

    // Phase 1: run the hot set cold, remember the exact bytes served.
    const std::vector<std::string> hot = hotSpecLines();
    std::map<std::string, std::string> hot_bytes;
    double cold_s = 0.0;
    {
        serve::Client warmup = serve::Client::connectUnix(socket_path);
        const auto t0 = std::chrono::steady_clock::now();
        for (const std::string &line : hot) {
            serve::Client::Response r = warmup.request("RUN " + line);
            if (!r.ok) {
                std::fprintf(stderr, "warm-up failed: %s\n",
                             r.error.c_str());
                return 1;
            }
            hot_bytes[line] = r.payload;
        }
        cold_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::printf("cold warm-up: %zu specs in %.2f s (%.1f specs/s)\n",
                    hot.size(), cold_s, double(hot.size()) / cold_s);
    }

    // Phase 2: the mixed load, with per-request latencies collected so
    // the emitted entry carries the tail, not just the mean.
    std::vector<std::thread> pool;
    std::vector<int> failures(size_t(clients), 0);
    std::vector<std::vector<double>> latencies_ms;
    latencies_ms.resize(size_t(clients));
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
        latencies_ms[size_t(c)].reserve(size_t(requests));
        pool.emplace_back([&, c] {
            serve::Client client = serve::Client::connectUnix(socket_path);
            util::Rng rng(42, "bench_serve#" + std::to_string(c));
            for (int i = 0; i < requests; ++i) {
                const bool is_hot =
                    int(rng.uniformInt(0, 99)) < hot_pct;
                const std::string line =
                    is_hot ? hot[size_t(rng.uniformInt(
                                 0, int64_t(hot.size()) - 1))]
                           : coldSpecLine(size_t(c), size_t(i));
                const auto r0 = std::chrono::steady_clock::now();
                serve::Client::Response r = client.request("RUN " + line);
                latencies_ms[size_t(c)].push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - r0)
                        .count());
                if (!r.ok ||
                    (is_hot && r.payload != hot_bytes.at(line)))
                    ++failures[size_t(c)];
            }
        });
    }
    for (auto &t : pool)
        t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    int failed = 0;
    for (int f : failures)
        failed += f;
    const size_t total = size_t(clients) * size_t(requests);

    std::vector<double> sorted_ms;
    sorted_ms.reserve(total);
    for (const auto &per_client : latencies_ms)
        sorted_ms.insert(sorted_ms.end(), per_client.begin(),
                         per_client.end());
    std::sort(sorted_ms.begin(), sorted_ms.end());
    const double p50 = quantileOf(sorted_ms, 0.50);
    const double p95 = quantileOf(sorted_ms, 0.95);
    const double p99 = quantileOf(sorted_ms, 0.99);

    std::printf("mixed load: %zu requests in %.2f s -> %.1f specs/s "
                "sustained (%d failures)\n",
                total, wall, double(total) / wall, failed);
    std::printf("latency: p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n", p50,
                p95, p99);

    {
        serve::Client admin = serve::Client::connectUnix(socket_path);
        serve::Client::Response stats = admin.request("STATS");
        if (stats.ok)
            std::fputs(stats.payload.c_str(), stdout);
        admin.request("SHUTDOWN");
    }
    server.stop();

    // Phase 3: cold-heavy coalescing A/B.  The same stream of cold
    // batch=8 specs (same shape, distinct seeds — exactly what a sweep
    // fan-out or many parameter-study clients produce) is driven at
    // two fresh services: scheduler off, then on.  Every coalesced
    // response must match the solo service's answer for the same spec
    // within the §10 tolerance (lane sets differ between the passes,
    // so last-ulp byte drift is the documented contract).
    const int co_lanes = util::envInt("COOLAIR_SERVE_COALESCE", 16, 0, 64);
    const int co_clients =
        util::envInt("COOLAIR_SERVE_COALESCE_CLIENTS", 16, 1, 256);
    const int co_requests =
        util::envInt("COOLAIR_SERVE_COALESCE_REQUESTS", 4, 1, 10000);
    const int co_wait_ms =
        util::envInt("COOLAIR_SERVE_COALESCE_WAIT_MS", 20, 0, 60000);
    const size_t co_total = size_t(co_clients) * size_t(co_requests);
    double solo_s = 0.0;
    double coal_s = 0.0;
    if (co_lanes >= 2) {
        auto coldBatchLine = [&](int c, int i) {
            return "run=range; start_day=60; end_day=74; "
                   "site=santiago; system=baseline; "
                   "workload=profile; physics_step=15; batch=" +
                   std::to_string(co_lanes) + "; seed=" +
                   std::to_string(500000 + c * 1000 + i);
        };
        std::map<std::string, std::string> solo_bytes;
        std::mutex bytes_mutex;
        for (int pass = 0; pass < 2; ++pass) {
            const bool coalesce = pass == 1;
            serve::ServiceConfig cfg;
            cfg.cacheDir =
                (dir / (coalesce ? "store_coal" : "store_solo")).string();
            if (coalesce) {
                cfg.coalesceLanes = co_lanes;
                cfg.coalesceWaitMs = double(co_wait_ms);
            }
            serve::ExperimentService svc(cfg);
            serve::ServerConfig scfg;
            scfg.unixPath =
                (dir / (coalesce ? "coal.sock" : "solo.sock")).string();
            serve::LineServer srv(svc, scfg);
            srv.start();

            std::vector<std::thread> cold_pool;
            std::vector<int> cold_fails(size_t(co_clients), 0);
            const auto c0 = std::chrono::steady_clock::now();
            for (int c = 0; c < co_clients; ++c) {
                cold_pool.emplace_back([&, c] {
                    serve::Client cl =
                        serve::Client::connectUnix(scfg.unixPath);
                    for (int i = 0; i < co_requests; ++i) {
                        const std::string line = coldBatchLine(c, i);
                        serve::Client::Response r =
                            cl.request("RUN " + line);
                        std::lock_guard<std::mutex> lk(bytes_mutex);
                        if (!r.ok) {
                            ++cold_fails[size_t(c)];
                        } else if (!coalesce) {
                            solo_bytes[line] = r.payload;
                        } else {
                            auto it = solo_bytes.find(line);
                            if (it == solo_bytes.end() ||
                                !payloadsWithinTolerance(it->second,
                                                         r.payload))
                                ++cold_fails[size_t(c)];
                        }
                    }
                });
            }
            for (auto &t : cold_pool)
                t.join();
            const double wall_s = std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() -
                                      c0)
                                      .count();
            (coalesce ? coal_s : solo_s) = wall_s;
            for (int f : cold_fails)
                failed += f;

            std::printf("cold %s: %zu batch=%d specs, %d clients in "
                        "%.2f s -> %.1f specs/s\n",
                        coalesce ? "coalesced" : "solo", co_total,
                        co_lanes, co_clients, wall_s,
                        double(co_total) / wall_s);
            serve::Client admin =
                serve::Client::connectUnix(scfg.unixPath);
            serve::Client::Response stats = admin.request("STATS");
            if (coalesce && stats.ok)
                std::fputs(stats.payload.c_str(), stdout);
            admin.request("SHUTDOWN");
            srv.stop();
        }
        std::printf("coalesce speedup: %.2fx (target >= 2x)\n",
                    solo_s / coal_s);
    }

    std::error_code ec;
    fs::remove_all(dir, ec);

    if (failed != 0) {
        std::fprintf(stderr, "FAILED: %d responses wrong or missing\n",
                     failed);
        return 1;
    }

    if (!out_path.empty()) {
        std::vector<BenchEntry> entries;
        BenchEntry cold;
        cold.name = "BM_ServeColdWarmup";
        cold.iterations = int64_t(hot.size());
        cold.realTimeNs = cold_s * 1e9 / double(hot.size());
        cold.counters = {{"specs_per_s", double(hot.size()) / cold_s}};
        entries.push_back(std::move(cold));

        BenchEntry mixed;
        mixed.name = "BM_ServeMixed";
        mixed.iterations = int64_t(total);
        mixed.realTimeNs = wall * 1e9 / double(total);
        mixed.counters = {{"specs_per_s", double(total) / wall},
                          {"clients", double(clients)},
                          {"hot_pct", double(hot_pct)},
                          {"latency_p50_ms", p50},
                          {"latency_p95_ms", p95},
                          {"latency_p99_ms", p99}};
        entries.push_back(std::move(mixed));

        if (co_lanes >= 2) {
            BenchEntry solo;
            solo.name = "BM_ServeColdSolo";
            solo.iterations = int64_t(co_total);
            solo.realTimeNs = solo_s * 1e9 / double(co_total);
            solo.counters = {{"specs_per_s", double(co_total) / solo_s},
                             {"clients", double(co_clients)},
                             {"lanes", double(co_lanes)}};
            entries.push_back(std::move(solo));

            BenchEntry coal;
            coal.name = "BM_ServeColdCoalesced";
            coal.iterations = int64_t(co_total);
            coal.realTimeNs = coal_s * 1e9 / double(co_total);
            coal.counters = {{"specs_per_s", double(co_total) / coal_s},
                             {"clients", double(co_clients)},
                             {"lanes", double(co_lanes)},
                             {"coalesce_speedup", solo_s / coal_s}};
            entries.push_back(std::move(coal));
        }

        std::vector<BenchEntry> kept;
        const std::regex re(filter);
        for (BenchEntry &e : entries)
            if (std::regex_search(e.name, re))
                kept.push_back(std::move(e));
        if (!writeBenchJson(out_path, kept)) {
            std::fprintf(stderr, "bench_serve: cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
        std::printf("wrote %zu benchmark entr%s to %s\n", kept.size(),
                    kept.size() == 1 ? "y" : "ies", out_path.c_str());
    }
    return 0;
}
