/**
 * @file
 * Mixed hot/cold load driver for the coolair_serve daemon: starts an
 * in-process LineServer on a Unix socket, fans client threads out
 * against it, and reports sustained specs/s — the ROADMAP item 1
 * measure for the serving layer.
 *
 * Phases:
 *   1. cold warm-up: every spec in the hot set runs once (populates
 *      the result store and the learned-model shared state);
 *   2. mixed load: each client thread issues a deterministic
 *      hot/cold request mix — hot requests repeat the hot set (served
 *      from the store), cold requests are fresh single-day specs
 *      (each simulates once; concurrent duplicates dedup in flight).
 *
 * Environment knobs (strict util::envInt parsing):
 *   COOLAIR_SERVE_CLIENTS   client threads        (default 8)
 *   COOLAIR_SERVE_REQUESTS  requests per client   (default 32)
 *   COOLAIR_SERVE_HOT_PCT   hot share in percent  (default 75)
 *   COOLAIR_THREADS         daemon worker threads (default all cores)
 *
 * The driver asserts the serving contract as it measures: every hot
 * response must be byte-identical to the response the same spec line
 * got in the warm-up phase.
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

using namespace coolair;

namespace {

/** The hot set: single-day profile-workload specs across the five
    named sites (cheap to simulate, realistic to serve). */
std::vector<std::string>
hotSpecLines()
{
    const char *sites[] = {"newark", "chad", "santiago", "iceland",
                           "singapore"};
    std::vector<std::string> lines;
    for (const char *site : sites)
        for (int day : {60, 240})
            lines.push_back("run=day; day=" + std::to_string(day) +
                            "; site=" + std::string(site) +
                            "; system=allnd; workload=profile; "
                            "physics_step=120");
    return lines;
}

/** A cold spec line nobody has run before (unique day/seed mix). */
std::string
coldSpecLine(size_t client, size_t request)
{
    const size_t n = client * 1000 + request;
    return "run=day; day=" + std::to_string(n % 365) +
           "; site=santiago; system=baseline; workload=profile; "
           "physics_step=120; seed=" +
           std::to_string(100000 + n);
}

} // anonymous namespace

int
main()
{
    const int clients = util::envInt("COOLAIR_SERVE_CLIENTS", 8, 1, 256);
    const int requests = util::envInt("COOLAIR_SERVE_REQUESTS", 32, 1,
                                      100000);
    const int hot_pct = util::envInt("COOLAIR_SERVE_HOT_PCT", 75, 0, 100);

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        ("bench_serve." + std::to_string(uint64_t(::getpid())));
    fs::create_directories(dir);
    const std::string socket_path = (dir / "serve.sock").string();

    serve::ServiceConfig service_config;
    service_config.cacheDir = (dir / "store").string();
    serve::ExperimentService service(service_config);

    serve::ServerConfig server_config;
    server_config.unixPath = socket_path;
    serve::LineServer server(service, server_config);
    server.start();

    std::printf("=== bench_serve: %d clients x %d requests, %d%% hot, "
                "%d workers ===\n",
                clients, requests, hot_pct, service.threads());

    // Phase 1: run the hot set cold, remember the exact bytes served.
    const std::vector<std::string> hot = hotSpecLines();
    std::map<std::string, std::string> hot_bytes;
    {
        serve::Client warmup = serve::Client::connectUnix(socket_path);
        const auto t0 = std::chrono::steady_clock::now();
        for (const std::string &line : hot) {
            serve::Client::Response r = warmup.request("RUN " + line);
            if (!r.ok) {
                std::fprintf(stderr, "warm-up failed: %s\n",
                             r.error.c_str());
                return 1;
            }
            hot_bytes[line] = r.payload;
        }
        const double cold_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::printf("cold warm-up: %zu specs in %.2f s (%.1f specs/s)\n",
                    hot.size(), cold_s, double(hot.size()) / cold_s);
    }

    // Phase 2: the mixed load.
    std::vector<std::thread> pool;
    std::vector<int> failures(size_t(clients), 0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
            serve::Client client = serve::Client::connectUnix(socket_path);
            util::Rng rng(42, "bench_serve#" + std::to_string(c));
            for (int i = 0; i < requests; ++i) {
                const bool is_hot =
                    int(rng.uniformInt(0, 99)) < hot_pct;
                const std::string line =
                    is_hot ? hot[size_t(rng.uniformInt(
                                 0, int64_t(hot.size()) - 1))]
                           : coldSpecLine(size_t(c), size_t(i));
                serve::Client::Response r = client.request("RUN " + line);
                if (!r.ok ||
                    (is_hot && r.payload != hot_bytes.at(line)))
                    ++failures[size_t(c)];
            }
        });
    }
    for (auto &t : pool)
        t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    int failed = 0;
    for (int f : failures)
        failed += f;
    const size_t total = size_t(clients) * size_t(requests);
    std::printf("mixed load: %zu requests in %.2f s -> %.1f specs/s "
                "sustained (%d failures)\n",
                total, wall, double(total) / wall, failed);

    {
        serve::Client admin = serve::Client::connectUnix(socket_path);
        serve::Client::Response stats = admin.request("STATS");
        if (stats.ok)
            std::fputs(stats.payload.c_str(), stdout);
        admin.request("SHUTDOWN");
    }
    server.stop();

    std::error_code ec;
    fs::remove_all(dir, ec);

    if (failed != 0) {
        std::fprintf(stderr, "FAILED: %d responses wrong or missing\n",
                     failed);
        return 1;
    }
    return 0;
}
