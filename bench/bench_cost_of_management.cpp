/**
 * @file
 * §5.2 "Cost of managing temperature and variation" reproduction: the
 * yearly energy cost of lowering absolute temperature by 1 C versus
 * reducing the maximum daily range by 1 C, per location.
 *
 * Method (as the paper's version comparison implies): the Temperature
 * version buys lower absolute temperatures relative to the Energy
 * version, and the Variation version buys smaller maximum ranges — both
 * at a cooling-energy premium.  Cost-per-degree = extra cooling energy /
 * metric improvement.
 *
 * Paper shape: managing absolute temperature costs more than managing
 * variation at places with warmer seasons (Newark 232 vs 53 kWh, Chad
 * 1275 vs 131, Singapore 2145 vs 716) and less at cooler ones (Santiago
 * 110 vs 171, Iceland 7 vs 29).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Cost of managing temperature vs variation "
                "[kWh per C per year] ===\n\n");

    std::vector<sim::SystemId> systems = {sim::SystemId::Energy,
                                          sim::SystemId::Temperature,
                                          sim::SystemId::Variation};
    auto grid = runGrid(paperSites(), systems);

    util::TextTable table({"site", "temp cost [kWh/C]",
                           "variation cost [kWh/C]", "costlier"});

    // Scale 52 simulated days to a full year.
    const double kYearScale = 365.0 / 52.0;

    for (auto site : paperSites()) {
        const Cell &energy = grid.at({site, sim::SystemId::Energy});
        const Cell &temp = grid.at({site, sim::SystemId::Temperature});
        const Cell &var = grid.at({site, sim::SystemId::Variation});

        double temp_gain =
            energy.system.avgMaxInletC - temp.system.avgMaxInletC;
        double temp_cost =
            (temp.system.coolingKwh - energy.system.coolingKwh) *
            kYearScale / std::max(temp_gain, 0.1);

        double range_gain = energy.system.maxWorstDailyRangeC -
                            var.system.maxWorstDailyRangeC;
        double var_cost =
            (var.system.coolingKwh - energy.system.coolingKwh) *
            kYearScale / std::max(range_gain, 0.1);

        table.addRow({environment::siteName(site),
                      util::TextTable::fmt(temp_cost, 0),
                      util::TextTable::fmt(var_cost, 0),
                      temp_cost > var_cost ? "temperature" : "variation"});
    }
    table.print(std::cout);

    std::printf("\nShape check vs paper: temperature costs more than "
                "variation in regions with warmer seasons (Newark, Chad, "
                "Singapore) and less in cooler ones (Santiago, "
                "Iceland).\n");
    return 0;
}
