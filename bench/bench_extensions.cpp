/**
 * @file
 * Extension study (beyond the paper's evaluation): alternative cooling
 * hardware the paper discusses but does not evaluate.
 *
 *  - Adiabatic/evaporative pre-cooling (§2: "some free-cooled datacenters
 *    also apply adiabatic cooling ... within the humidity constraint"):
 *    pays off at hot-arid sites (Chad), not at hot-humid ones (Singapore).
 *  - Chilled-water backup instead of the DX AC (§6: "For datacenters that
 *    combine free cooling with chillers ... strike the proper ratio of
 *    power consumptions"): cuts backup-cooling energy wherever the AC
 *    runs a lot.
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Extensions: evaporative pre-cooling and chiller "
                "backup ===\n");
    std::printf("(All-ND; Facebook workload; 52-week year protocol)\n\n");

    std::vector<sim::SystemId> systems = {sim::SystemId::AllNd};

    auto dx = runGrid(paperSites(), systems);
    auto evap = runGrid(paperSites(), systems, 52,
                        [](sim::ExperimentSpec &s) {
                            s.variant = sim::PlantVariant::Evaporative;
                        });
    auto chiller = runGrid(paperSites(), systems, 52,
                           [](sim::ExperimentSpec &s) {
                               s.variant = sim::PlantVariant::Chiller;
                           });

    util::TextTable table({"site", "PUE (DX)", "PUE (+evap)",
                           "PUE (chiller)", "viol (DX)", "viol (+evap)",
                           "RH-viol (+evap)"});
    for (auto site : paperSites()) {
        const Cell &d = dx.at({site, sim::SystemId::AllNd});
        const Cell &e = evap.at({site, sim::SystemId::AllNd});
        const Cell &c = chiller.at({site, sim::SystemId::AllNd});
        table.addRow({environment::siteName(site),
                      util::TextTable::fmt(d.system.pue, 3),
                      util::TextTable::fmt(e.system.pue, 3),
                      util::TextTable::fmt(c.system.pue, 3),
                      util::TextTable::fmt(d.system.avgViolationC, 2),
                      util::TextTable::fmt(e.system.avgViolationC, 2),
                      util::TextTable::fmt(
                          e.system.humidityViolationFrac, 3)});
    }
    table.print(std::cout);

    using environment::NamedSite;
    double chad_gain = dx.at({NamedSite::Chad, sim::SystemId::AllNd})
                           .system.pue -
                       evap.at({NamedSite::Chad, sim::SystemId::AllNd})
                           .system.pue;
    double sing_gain =
        dx.at({NamedSite::Singapore, sim::SystemId::AllNd}).system.pue -
        evap.at({NamedSite::Singapore, sim::SystemId::AllNd}).system.pue;
    std::printf("\nShape check:\n");
    std::printf("  evaporative PUE gain at arid Chad: %.3f vs humid "
                "Singapore: %.3f (expect Chad >> Singapore)\n",
                chad_gain, sing_gain);
    std::printf("  chiller backup helps most where the AC runs most "
                "(hot sites).\n");
    return 0;
}
