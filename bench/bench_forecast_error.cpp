/**
 * @file
 * §5.2 "Impact of weather forecast accuracy" reproduction: All-ND with
 * average-temperature predictions consistently 5 C too high and 5 C too
 * low, versus perfect forecasts.
 *
 * Paper shape: +5 C bias increases maximum ranges by less than 1 C and
 * reduces PUE; -5 C reduces ranges and increases PUE by less than 0.01;
 * inaccuracy is not a problem thanks to the temperature band.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Impact of forecast accuracy on All-ND "
                "(+/- 5 C bias) ===\n\n");

    std::vector<sim::SystemId> systems = {sim::SystemId::AllNd};
    auto perfect = runGrid(paperSites(), systems);
    auto high = runGrid(paperSites(), systems, 52,
                        [](sim::ExperimentSpec &s) {
                            s.forecastError.biasC = 5.0;
                        });
    auto low = runGrid(paperSites(), systems, 52,
                       [](sim::ExperimentSpec &s) {
                           s.forecastError.biasC = -5.0;
                       });

    util::TextTable table({"site", "max range (exact)", "(+5 C)", "(-5 C)",
                           "PUE (exact)", "(+5 C)", "(-5 C)"});
    for (auto site : paperSites()) {
        const Cell &p = perfect.at({site, sim::SystemId::AllNd});
        const Cell &h = high.at({site, sim::SystemId::AllNd});
        const Cell &l = low.at({site, sim::SystemId::AllNd});
        table.addRow(
            {environment::siteName(site),
             util::TextTable::fmt(p.system.maxWorstDailyRangeC, 1),
             util::TextTable::fmt(h.system.maxWorstDailyRangeC, 1),
             util::TextTable::fmt(l.system.maxWorstDailyRangeC, 1),
             util::TextTable::fmt(p.system.pue, 3),
             util::TextTable::fmt(h.system.pue, 3),
             util::TextTable::fmt(l.system.pue, 3)});
    }
    table.print(std::cout);

    std::printf("\nShape check vs paper:\n");
    double worst_range_growth = -1e9, worst_pue_growth = -1e9;
    for (auto site : paperSites()) {
        const Cell &p = perfect.at({site, sim::SystemId::AllNd});
        const Cell &h = high.at({site, sim::SystemId::AllNd});
        const Cell &l = low.at({site, sim::SystemId::AllNd});
        worst_range_growth =
            std::max(worst_range_growth, h.system.maxWorstDailyRangeC -
                                             p.system.maxWorstDailyRangeC);
        worst_pue_growth =
            std::max(worst_pue_growth, l.system.pue - p.system.pue);
    }
    std::printf("  worst max-range growth under +5 C bias: %.2f C "
                "(paper: < 1 C)\n", worst_range_growth);
    std::printf("  worst PUE growth under -5 C bias: %.3f (paper: "
                "< 0.01)\n", worst_pue_growth);
    std::printf("  => the temperature band absorbs forecast error.\n");
    return 0;
}
