/**
 * @file
 * Figure 8 reproduction: average temperature violations above the
 * desired 30 C maximum — a year of the non-deferrable Facebook workload
 * at the five locations, five systems.
 *
 * Paper shape: the baseline cannot limit absolute temperatures at warm
 * locations (Singapore worst); the CoolAir versions manage every sensor
 * and keep average violations below 0.5 C everywhere; Temperature is
 * the strictest.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Figure 8: average temperature violations (>30 C) "
                "[C] ===\n");
    std::printf("(year protocol: first day of each week; Facebook "
                "workload; smooth units)\n\n");

    auto grid = runGrid(paperSites(), paperSystems());

    printMetricTable(grid, paperSites(), paperSystems(),
                     "avg violation [C]",
                     [](const Cell &c) { return c.system.avgViolationC; },
                     3);

    std::printf("\nShape check vs paper:\n");
    double max_coolair = 0.0;
    for (auto site : paperSites()) {
        for (auto sys : {sim::SystemId::Temperature, sim::SystemId::Energy,
                         sim::SystemId::Variation, sim::SystemId::AllNd}) {
            max_coolair = std::max(
                max_coolair, grid.at({site, sys}).system.avgViolationC);
        }
    }
    std::printf("  worst CoolAir-version violation: %.3f C (paper: "
                "< 0.5 C in all cases)\n", max_coolair);
    std::printf("  baseline at Singapore: %.3f C vs Temperature: %.3f C\n",
                grid.at({environment::NamedSite::Singapore,
                         sim::SystemId::Baseline})
                    .system.avgViolationC,
                grid.at({environment::NamedSite::Singapore,
                         sim::SystemId::Temperature})
                    .system.avgViolationC);
    return 0;
}
