/**
 * @file
 * Figure 9 reproduction: daily temperature ranges — the average of each
 * day's worst-sensor range (bars) plus min/max across days (whiskers),
 * including the outside air itself.
 *
 * Paper shape: baseline average daily ranges hover around 9 C with much
 * wider maxima (>=16.5 C at sites with cold seasons); Temperature and
 * Energy can make maxima worse; Variation and All-ND lower both the
 * average and especially the maximum (roughly halved at Iceland, nearly
 * halved at Newark/Santiago, unchanged at Chad); inside ranges can
 * exceed outside ones under the baseline.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Figure 9: daily temperature ranges [C] ===\n");
    std::printf("(year protocol; Facebook workload; smooth units)\n\n");

    auto grid = runGrid(paperSites(), paperSystems());

    std::printf("--- outside air (reference bars) ---\n");
    util::TextTable outside({"outside", "avg", "min", "max"});
    for (auto site : paperSites()) {
        const Cell &c = grid.at({site, sim::SystemId::Baseline});
        outside.addRow(
            {environment::siteName(site),
             util::TextTable::fmt(c.outside.avgWorstDailyRangeC, 1),
             util::TextTable::fmt(c.outside.minWorstDailyRangeC, 1),
             util::TextTable::fmt(c.outside.maxWorstDailyRangeC, 1)});
    }
    outside.print(std::cout);

    std::printf("\n--- average worst daily range ---\n");
    printMetricTable(
        grid, paperSites(), paperSystems(), "avg range [C]",
        [](const Cell &c) { return c.system.avgWorstDailyRangeC; }, 1);

    std::printf("\n--- maximum worst daily range ---\n");
    printMetricTable(
        grid, paperSites(), paperSystems(), "max range [C]",
        [](const Cell &c) { return c.system.maxWorstDailyRangeC; }, 1);

    std::printf("\nShape check vs paper:\n");
    for (auto site :
         {environment::NamedSite::Newark, environment::NamedSite::Iceland,
          environment::NamedSite::Santiago}) {
        double base = grid.at({site, sim::SystemId::Baseline})
                          .system.maxWorstDailyRangeC;
        double allnd =
            grid.at({site, sim::SystemId::AllNd}).system.maxWorstDailyRangeC;
        std::printf("  %s: All-ND max range %.1f vs baseline %.1f "
                    "(paper: roughly halved)\n",
                    environment::siteName(site), allnd, base);
    }
    double chad_base = grid.at({environment::NamedSite::Chad,
                                sim::SystemId::Baseline})
                           .system.maxWorstDailyRangeC;
    double chad_all = grid.at({environment::NamedSite::Chad,
                               sim::SystemId::AllNd})
                          .system.maxWorstDailyRangeC;
    std::printf("  Chad: All-ND %.1f vs baseline %.1f (paper: "
                "unchanged)\n", chad_all, chad_base);
    return 0;
}
