#ifndef COOLAIR_BENCH_COMMON_HPP
#define COOLAIR_BENCH_COMMON_HPP

/**
 * @file
 * Shared helpers for the figure/table reproduction benches: run the
 * §5.1 protocol over the five named sites and a set of systems, and
 * print paper-style rows.
 */

#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace coolair {
namespace bench {

/** Result of one (site, system) cell. */
struct Cell
{
    sim::Summary system;
    sim::Summary outside;
};

/** Key for the grid map. */
using GridKey = std::pair<environment::NamedSite, sim::SystemId>;

/**
 * Run the year protocol for every (site, system) combination, fanned
 * out over the parallel experiment runner (COOLAIR_THREADS to pin the
 * pool size).  @p mutate lets a bench adjust the spec (workload,
 * forecast error, max temperature) before each run.
 */
inline std::map<GridKey, Cell>
runGrid(const std::vector<environment::NamedSite> &sites,
        const std::vector<sim::SystemId> &systems, int weeks = 52,
        const std::function<void(sim::ExperimentSpec &)> &mutate = {})
{
    std::vector<GridKey> keys;
    std::vector<sim::ExperimentSpec> specs;
    for (auto site : sites) {
        for (auto system : systems) {
            sim::ExperimentSpec spec;
            spec.location = environment::namedLocation(site);
            spec.system = system;
            spec.weeks = weeks;
            if (mutate)
                mutate(spec);
            keys.push_back({site, system});
            specs.push_back(std::move(spec));
        }
    }

    sim::RunnerConfig rc;
    rc.progress = true;
    rc.progressEvery = 1;
    rc.progressLabel = "site/system runs";
    // Progress goes through the logger at Info; keep it visible here.
    util::Logger::instance().setLevel(util::LogLevel::Info);
    sim::SweepOutcome outcome = sim::ExperimentRunner(rc).run(specs);
    for (const auto &f : outcome.failures)
        std::fprintf(stderr, "  FAILED %s / %s: %s\n",
                     f.spec.location.name.c_str(),
                     sim::systemName(f.spec.system), f.message.c_str());

    std::map<GridKey, Cell> grid;
    for (size_t i = 0; i < keys.size(); ++i)
        grid[keys[i]] = Cell{outcome.results[i].system,
                             outcome.results[i].outside};
    return grid;
}

/** The five paper sites. */
inline const std::vector<environment::NamedSite> &
paperSites()
{
    return environment::allNamedSites();
}

/** The five Figure 8-10 systems. */
inline std::vector<sim::SystemId>
paperSystems()
{
    return {sim::SystemId::Baseline, sim::SystemId::Temperature,
            sim::SystemId::Energy, sim::SystemId::Variation,
            sim::SystemId::AllNd};
}

/**
 * Print one metric of the grid as a systems-by-sites table, like the
 * paper's grouped bar charts.
 */
inline void
printMetricTable(const std::map<GridKey, Cell> &grid,
                 const std::vector<environment::NamedSite> &sites,
                 const std::vector<sim::SystemId> &systems,
                 const char *metric_name,
                 const std::function<double(const Cell &)> &metric,
                 int precision = 2)
{
    std::vector<std::string> header{metric_name};
    for (auto site : sites)
        header.push_back(environment::siteName(site));
    util::TextTable table(std::move(header));

    for (auto system : systems) {
        std::vector<std::string> row{sim::systemName(system)};
        for (auto site : sites) {
            row.push_back(util::TextTable::fmt(
                metric(grid.at({site, system})), precision));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
}

} // namespace bench
} // namespace coolair

#endif // COOLAIR_BENCH_COMMON_HPP
