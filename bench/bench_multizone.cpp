/**
 * @file
 * Multi-zone study (§6's scaling sketch, beyond the paper's single-
 * container evaluation): four independent cooling zones at Newark
 * sharing the Facebook job stream, under the baseline and under
 * per-zone CoolAir managers, for each balancing policy.
 *
 * Expected shape: per-zone CoolAir managers deliver the single-zone
 * benefits independently (each zone's violations and ranges look like
 * the one-container results), and the temperature-driven balancer
 * (coolest-first) — the within-building analogue of the energy-driven
 * techniques — shifts load but does not manage variation.
 */

#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "multizone/multizone.hpp"
#include "workload/trace_gen.hpp"

#include "util/table.hpp"

using namespace coolair;
using namespace coolair::multizone;

namespace {

struct RunResult
{
    sim::Summary aggregate;
    double worstZoneRangeC = 0.0;
    double zoneJobSpread = 0.0;   // max/min assigned ratio
};

RunResult
runWeeks(sim::SystemId system, BalancePolicy policy, int weeks)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.system = system;
    spec.seed = 9;

    MultiZoneConfig cfg;
    cfg.zones = 4;
    cfg.policy = policy;

    MultiZoneScenario mz = buildMultiZoneScenario(spec, cfg);

    // Four containers' worth of load: merge four independently seeded
    // day traces so each zone sees the single-container utilization.
    workload::Trace trace;
    trace.name = "facebook-x4";
    for (uint64_t seed : {2013u, 2014u, 2015u, 2016u}) {
        workload::TraceGenConfig tg;
        tg.seed = seed;
        workload::Trace part = workload::facebookTrace(tg);
        trace.jobs.insert(trace.jobs.end(), part.jobs.begin(),
                          part.jobs.end());
    }
    for (int w = 0; w < weeks; ++w)
        mz.engine->runDay((w * 7) % 365, trace);

    RunResult out;
    out.aggregate = mz.engine->aggregateSummary();
    int64_t lo = 1 << 30, hi = 0;
    for (int z = 0; z < mz.engine->zoneCount(); ++z) {
        out.worstZoneRangeC =
            std::max(out.worstZoneRangeC,
                     mz.engine->zoneSummary(z).maxWorstDailyRangeC);
        lo = std::min(lo, mz.engine->zoneJobsAssigned(z));
        hi = std::max(hi, mz.engine->zoneJobsAssigned(z));
    }
    out.zoneJobSpread = lo > 0 ? double(hi) / double(lo) : 0.0;
    return out;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Multi-zone datacenter: 4 zones at Newark ===\n");
    std::printf("(shared Facebook job stream; 12-week year sample)\n\n");

    const int kWeeks = 12;

    util::TextTable table({"system / balancer", "agg PUE",
                           "avg range [C]", "worst zone range [C]",
                           "job spread (max/min)"});

    for (sim::SystemId system :
         {sim::SystemId::Baseline, sim::SystemId::AllNd}) {
        for (BalancePolicy policy :
             {BalancePolicy::RoundRobin, BalancePolicy::LeastLoaded,
              BalancePolicy::CoolestFirst}) {
            RunResult r = runWeeks(system, policy, kWeeks);
            std::string name = std::string(sim::systemName(system)) + " / " +
                               policyName(policy);
            table.addRow(
                {name, util::TextTable::fmt(r.aggregate.pue, 3),
                 util::TextTable::fmt(r.aggregate.avgWorstDailyRangeC, 1),
                 util::TextTable::fmt(r.worstZoneRangeC, 1),
                 util::TextTable::fmt(r.zoneJobSpread, 2)});
            std::fprintf(stderr, "  ran %s\n", name.c_str());
        }
    }
    table.print(std::cout);

    std::printf("\nReading the table: per-zone CoolAir managers reproduce "
                "the single-container\nbenefits independently (§6); the "
                "coolest-first balancer concentrates load\nwithout "
                "managing variation.\n");
    return 0;
}
