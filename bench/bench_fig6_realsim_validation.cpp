/**
 * @file
 * Figure 6 reproduction: a baseline day on the physical plant ("real")
 * versus the same day on Real-Sim (the learned-model simulator).
 *
 * Paper (§5.1, Figure 6, 7/2/2013): for the baseline system, maximum
 * temperatures, temperature variations, and cooling energy are all
 * within 8 % of the real execution, and 89 % of real measurements fall
 * within 2 C of the simulation.
 *
 * Both stacks come from one ExperimentSpec: the physics run through
 * ScenarioBuilder, the Real-Sim run through buildModelSimScenario.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "environment/location.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

using namespace coolair;

namespace {

struct DayResult
{
    sim::Summary summary;
    std::vector<double> maxInletByInterval;   // 10-min samples
};

sim::ExperimentSpec
validationSpec(int day)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.system = sim::SystemId::Baseline;
    spec.style = cooling::ActuatorStyle::Abrupt;
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = day;
    return spec;
}

DayResult
runRealDay(const sim::ExperimentSpec &spec)
{
    DayResult out;
    int n = 0;
    auto scenario =
        sim::ScenarioBuilder(spec)
            .withTraceSink([&](const sim::TraceRow &r) {
                if (n++ % 10 == 0)
                    out.maxInletByInterval.push_back(r.inletMaxC);
            })
            .build();
    out.summary = scenario->run().system;
    return out;
}

DayResult
runRealSimDay(const sim::ExperimentSpec &spec)
{
    DayResult out;
    sim::ModelSimScenario ms = sim::buildModelSimScenario(spec);
    int step_idx = 0;
    ms.runner->setSampleHook([&](const plant::SensorReadings &s) {
        if (step_idx++ % 5 == 0)  // every 10 minutes at the 2-min step
            out.maxInletByInterval.push_back(s.maxPodInletC());
    });

    // Start Real-Sim from the physics plant's state at the same instant,
    // so both simulations begin identically.
    std::unique_ptr<plant::Plant> init = sim::makePlant(spec);
    init->initializeSteadyState(
        ms.climate->sample(util::SimTime::fromCalendar(spec.day, 0)), 6.0);
    ms.runner->runDay(spec.day, init->readSensors());
    out.summary = ms.metrics->summary();
    return out;
}

double
pctDiff(double sim, double real)
{
    return 100.0 * std::fabs(sim - real) / std::max(std::fabs(real), 1e-9);
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 6: real vs Real-Sim baseline day ===\n");
    std::printf("(Newark, early July; extended-TKS baseline; Facebook "
                "workload)\n\n");

    const int kDay = 182;  // the paper's validation day was July 2nd
    sim::ExperimentSpec spec = validationSpec(kDay);

    DayResult real = runRealDay(spec);
    DayResult sim = runRealSimDay(spec);

    util::TextTable table(
        {"metric", "real", "Real-Sim", "diff [%]"});
    table.addRow({"avg max inlet [C]",
                  util::TextTable::fmt(real.summary.avgMaxInletC, 2),
                  util::TextTable::fmt(sim.summary.avgMaxInletC, 2),
                  util::TextTable::fmt(pctDiff(sim.summary.avgMaxInletC,
                                               real.summary.avgMaxInletC),
                                       1)});
    table.addRow({"worst daily range [C]",
                  util::TextTable::fmt(real.summary.maxWorstDailyRangeC, 2),
                  util::TextTable::fmt(sim.summary.maxWorstDailyRangeC, 2),
                  util::TextTable::fmt(
                      pctDiff(sim.summary.maxWorstDailyRangeC,
                              real.summary.maxWorstDailyRangeC),
                      1)});
    table.addRow({"cooling energy [kWh]",
                  util::TextTable::fmt(real.summary.coolingKwh, 2),
                  util::TextTable::fmt(sim.summary.coolingKwh, 2),
                  util::TextTable::fmt(pctDiff(sim.summary.coolingKwh,
                                               real.summary.coolingKwh),
                                       1)});
    table.addRow({"PUE", util::TextTable::fmt(real.summary.pue, 3),
                  util::TextTable::fmt(sim.summary.pue, 3),
                  util::TextTable::fmt(
                      pctDiff(sim.summary.pue, real.summary.pue), 1)});
    table.print(std::cout);

    // Point-wise agreement: fraction of 10-min samples within 2 C.
    size_t n = std::min(real.maxInletByInterval.size(),
                        sim.maxInletByInterval.size());
    size_t within = 0;
    for (size_t i = 0; i < n; ++i) {
        if (std::fabs(real.maxInletByInterval[i] -
                      sim.maxInletByInterval[i]) <= 2.0)
            ++within;
    }
    std::printf("\nPoint-wise: %.1f%% of samples within 2 C "
                "(paper: 89%% for the baseline)\n",
                100.0 * double(within) / double(std::max<size_t>(n, 1)));
    std::printf("Paper target: headline metrics within ~8%% for the "
                "baseline day.\n");
    return 0;
}
