/**
 * @file
 * Figures 12 and 13 reproduction: the world-wide sweep — 1520 locations,
 * baseline vs All-ND, reporting the reduction in maximum daily range
 * (Fig. 12) and in yearly PUE (Fig. 13).
 *
 * Paper shape: CoolAir reduces the average maximum range from 18.6 to
 * 12.1 C for a slight average PUE increase (1.08 -> 1.09); the biggest
 * range reductions (2-14 C) occur at colder latitudes; near the Equator
 * CoolAir instead lowers PUE without increasing variation; fewer than
 * 2 % of locations see the maximum range grow, and never by more than
 * ~1 C.
 *
 * Uses the utilization-profile workload fast path and a larger physics
 * step; set COOLAIR_WORLD_SITES to shrink the sweep for smoke runs and
 * COOLAIR_THREADS to pin the worker-pool size (default: all cores).
 * Results are bit-identical at any thread count: per-site seeds derive
 * from the site identity and the aggregation below runs in site order.
 *
 * Set COOLAIR_CACHE_DIR to a directory to make the sweep incremental:
 * results persist in the on-disk result store there, so a repeat run
 * (or a run after editing only some sites' specs) only simulates what
 * changed — and still prints byte-identical aggregates.
 *
 * Set COOLAIR_BATCH=N (e.g. 8) to run the sweep on the lane-batched
 * engine, N same-shape sites per instruction stream.  Batched results
 * match the scalar sweep within the DESIGN.md §10 tolerance, not byte
 * for byte, and are cached under distinct keys.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "environment/world_grid.hpp"
#include "sim/runner.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace coolair;

namespace {

struct SiteOutcome
{
    double latitude;
    double rangeReductionC;   // baseline - All-ND max daily range
    double pueReduction;      // baseline - All-ND PUE
    double baselineRange;
    double baselinePue;
};

} // anonymous namespace

int
main()
{
    // Strict env parsing: a malformed or negative COOLAIR_WORLD_SITES
    // warns and runs the full sweep instead of wrapping to a huge
    // size_t site count.
    const size_t count =
        size_t(util::envInt("COOLAIR_WORLD_SITES", 1520, 1, 1000000));

    std::printf("=== Figures 12/13: world-wide sweep (%zu sites) ===\n",
                count);
    std::printf("(baseline vs All-ND; Facebook utilization profile; "
                "26 sampled days strided across the year)\n\n");

    auto sites = environment::worldGrid(count);

    const char *cache_dir = std::getenv("COOLAIR_CACHE_DIR");
    const int batch = util::envInt("COOLAIR_BATCH", 0, 0, 64);
    if (batch > 0)
        std::printf("(lane-batched engine, %d lanes per batch)\n", batch);

    // Two experiments per site, in a fixed order, so both the run and
    // the aggregation below are independent of worker scheduling.
    std::vector<sim::ExperimentSpec> specs;
    specs.reserve(sites.size() * 2);
    for (size_t i = 0; i < sites.size(); ++i) {
        sim::ExperimentSpec spec;
        spec.location = sites[i];
        spec.workload = sim::WorkloadKind::FacebookProfile;
        spec.weeks = 26;  // every other week, strided over all seasons
        spec.physicsStepS = 120.0;
        spec.seed = sim::ExperimentRunner::deriveSeed(7, i, sites[i].name);
        spec.batch = batch;
        if (cache_dir)
            spec.cacheDirPath = cache_dir;
        spec.system = sim::SystemId::Baseline;
        specs.push_back(spec);
        spec.system = sim::SystemId::AllNd;
        specs.push_back(spec);
    }

    sim::RunnerConfig rc;
    rc.progress = true;
    rc.progressEvery = 100;
    // Progress goes through the logger at Info; keep it visible here.
    util::Logger::instance().setLevel(util::LogLevel::Info);
    sim::ExperimentRunner runner(rc);
    std::fprintf(stderr, "running %zu experiments on %d threads\n",
                 specs.size(), runner.threads());
    sim::SweepOutcome sweep = runner.run(specs);
    if (cache_dir)
        std::fprintf(stderr,
                     "result cache (%s): %zu of %zu experiments served "
                     "from disk\n",
                     cache_dir, sweep.cacheHits(), specs.size());
    for (const auto &f : sweep.failures)
        std::fprintf(stderr, "FAILED %s / %s: %s\n",
                     f.spec.location.name.c_str(),
                     sim::systemName(f.spec.system), f.message.c_str());
    if (!sweep.allOk())
        return 1;

    std::vector<SiteOutcome> outcomes;
    outcomes.reserve(sites.size());

    util::RunningStats base_range, coolair_range, base_pue, coolair_pue;
    size_t regressions = 0;
    double worst_regression = 0.0;

    for (size_t i = 0; i < sites.size(); ++i) {
        const sim::ExperimentResult &base = sweep.results[2 * i];
        const sim::ExperimentResult &all = sweep.results[2 * i + 1];

        SiteOutcome o;
        o.latitude = sites[i].latitude;
        o.baselineRange = base.system.maxWorstDailyRangeC;
        o.baselinePue = base.system.pue;
        o.rangeReductionC = base.system.maxWorstDailyRangeC -
                            all.system.maxWorstDailyRangeC;
        o.pueReduction = base.system.pue - all.system.pue;
        outcomes.push_back(o);

        base_range.add(base.system.maxWorstDailyRangeC);
        coolair_range.add(all.system.maxWorstDailyRangeC);
        base_pue.add(base.system.pue);
        coolair_pue.add(all.system.pue);
        if (o.rangeReductionC < 0.0) {
            ++regressions;
            worst_regression =
                std::max(worst_regression, -o.rangeReductionC);
        }
    }

    std::printf("Average maximum daily range: baseline %.1f C -> All-ND "
                "%.1f C (paper: 18.6 -> 12.1)\n",
                base_range.mean(), coolair_range.mean());
    std::printf("Average yearly PUE: baseline %.3f -> All-ND %.3f "
                "(paper: 1.08 -> 1.09)\n\n",
                base_pue.mean(), coolair_pue.mean());

    // Figure 12 stand-in: distribution of range reductions by bucket.
    std::printf("--- Fig. 12: distribution of max-range reduction ---\n");
    const double edges[] = {-1e9, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0,
                            1e9};
    const char *labels[] = {"< 0 C",   "0-2 C",  "2-4 C",   "4-6 C",
                            "6-8 C",   "8-10 C", "10-14 C", ">= 14 C"};
    util::TextTable hist({"reduction", "sites", "share [%]"});
    for (int b = 0; b < 8; ++b) {
        size_t n = 0;
        for (const auto &o : outcomes)
            if (o.rangeReductionC >= edges[b] &&
                o.rangeReductionC < edges[b + 1])
                ++n;
        hist.addRow({labels[b], std::to_string(n),
                     util::TextTable::fmt(
                         100.0 * double(n) / double(outcomes.size()), 1)});
    }
    hist.print(std::cout);

    // Latitude-band breakdown (the "map" in table form).
    std::printf("\n--- by latitude band (Fig. 12/13 geography) ---\n");
    util::TextTable bands({"|latitude|", "sites", "avg range cut [C]",
                           "avg PUE cut"});
    const double lat_edges[] = {0.0, 15.0, 30.0, 45.0, 90.0};
    const char *lat_labels[] = {"0-15 (equatorial)", "15-30", "30-45",
                                "45+ (cold)"};
    for (int b = 0; b < 4; ++b) {
        util::RunningStats cut, pue_cut;
        for (const auto &o : outcomes) {
            double alat = std::fabs(o.latitude);
            if (alat >= lat_edges[b] && alat < lat_edges[b + 1]) {
                cut.add(o.rangeReductionC);
                pue_cut.add(o.pueReduction);
            }
        }
        bands.addRow({lat_labels[b], std::to_string(cut.count()),
                      util::TextTable::fmt(cut.mean(), 1),
                      util::TextTable::fmt(pue_cut.mean(), 3)});
    }
    bands.print(std::cout);

    std::printf("\nShape check vs paper:\n");
    std::printf("  sites where the max range regresses: %.1f%% "
                "(paper: < 2%%), worst regression %.1f C (paper: "
                "< ~1 C)\n",
                100.0 * double(regressions) / double(outcomes.size()),
                worst_regression);
    std::printf("  cold latitudes gain the most range reduction; "
                "equatorial sites instead gain PUE.\n");
    return 0;
}
