/**
 * @file
 * Reliability impact study (the paper's motivation, quantified): the
 * annual-failure-rate multipliers each management system implies at each
 * site, under both published hypotheses — Sankar et al. (absolute
 * temperature drives failures) and El-Sayed et al. (temporal variation
 * drives sector errors) — plus the blended index.
 *
 * Expected shape: the Temperature version wins under the Sankar
 * hypothesis, the Variation version under El-Sayed, and All-ND is the
 * only system that does well under *both* — the paper's closing
 * argument ("these lessons are useful regardless of how researchers
 * eventually resolve the issue").
 */

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "reliability/disk_reliability.hpp"

using namespace coolair;
using namespace coolair::bench;
using reliability::DiskReliabilityConfig;
using reliability::DiskReliabilityModel;

int
main()
{
    std::printf("=== Disk-reliability impact of the management systems "
                "===\n");
    std::printf("(AFR multipliers vs a steady 35 C disk; year "
                "protocol)\n\n");

    std::vector<sim::SystemId> systems = {
        sim::SystemId::Baseline, sim::SystemId::Temperature,
        sim::SystemId::Variation, sim::SystemId::AllNd};
    auto grid = runGrid(paperSites(), systems);

    DiskReliabilityConfig sankar;
    sankar.variationWeight = 0.0;
    DiskReliabilityConfig elsayed;
    elsayed.variationWeight = 1.0;
    DiskReliabilityModel temp_model(sankar), var_model(elsayed),
        blend_model = DiskReliabilityModel(DiskReliabilityConfig{});

    for (const char *hypothesis : {"Sankar (temperature)",
                                   "El-Sayed (variation)", "blended"}) {
        const DiskReliabilityModel &m =
            hypothesis[0] == 'S' ? temp_model
            : hypothesis[0] == 'E' ? var_model
                                   : blend_model;
        std::printf("--- AFR multiplier under the %s hypothesis ---\n",
                    hypothesis);
        printMetricTable(grid, paperSites(), systems, "AFR x",
                         [&](const Cell &c) {
                             return m.assess(c.system).afrMultiplier;
                         },
                         2);
        std::printf("\n");
    }

    // Who wins where?
    std::printf("Shape check:\n");
    int allnd_best_both = 0;
    for (auto site : paperSites()) {
        double allnd_t = temp_model
                             .assess(grid.at({site, sim::SystemId::AllNd})
                                         .system)
                             .afrMultiplier;
        double base_t = temp_model
                            .assess(grid.at({site, sim::SystemId::Baseline})
                                        .system)
                            .afrMultiplier;
        double allnd_v = var_model
                             .assess(grid.at({site, sim::SystemId::AllNd})
                                         .system)
                             .afrMultiplier;
        double base_v = var_model
                            .assess(grid.at({site, sim::SystemId::Baseline})
                                        .system)
                            .afrMultiplier;
        if (allnd_t <= base_t + 0.05 && allnd_v <= base_v + 0.05)
            ++allnd_best_both;
    }
    std::printf("  All-ND at least matches the baseline under BOTH "
                "hypotheses at %d/5 sites\n", allnd_best_both);
    std::printf("  (the paper's thesis: manage both effects at once and "
                "the reliability question\n   need not be settled "
                "first).\n");
    return 0;
}
