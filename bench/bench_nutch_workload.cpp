/**
 * @file
 * §5.2 "Impact of workload" reproduction: re-run the Figure 9/10
 * experiments with the Nutch indexing trace instead of Facebook.
 *
 * Paper shape: Nutch exhibits the exact same trends — All-ND roughly
 * halves the maximum daily range at Newark, Santiago, and Iceland,
 * lowers average ranges everywhere, reduces PUEs at Chad/Singapore,
 * with a small PUE increase at Santiago.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Impact of workload: Nutch trace "
                "(Figure 9/10 re-run) ===\n\n");

    std::vector<sim::SystemId> systems = {sim::SystemId::Baseline,
                                          sim::SystemId::Energy,
                                          sim::SystemId::AllNd};
    auto nutch = runGrid(paperSites(), systems, 52,
                         [](sim::ExperimentSpec &s) {
                             s.workload = sim::WorkloadKind::Nutch;
                         });
    auto facebook = runGrid(paperSites(), systems);

    std::printf("--- Nutch: maximum worst daily range [C] ---\n");
    printMetricTable(
        nutch, paperSites(), systems, "max range [C]",
        [](const Cell &c) { return c.system.maxWorstDailyRangeC; }, 1);

    std::printf("\n--- Nutch: PUE ---\n");
    printMetricTable(nutch, paperSites(), systems, "PUE",
                     [](const Cell &c) { return c.system.pue; }, 3);

    std::printf("\n--- trend agreement with the Facebook workload ---\n");
    util::TextTable table({"site", "range cut (FB)", "range cut (Nutch)",
                           "dPUE All-ND (FB)", "dPUE All-ND (Nutch)"});
    int same_direction = 0;
    for (auto site : paperSites()) {
        auto cut = [&](std::map<GridKey, Cell> &g) {
            return g.at({site, sim::SystemId::Baseline})
                       .system.maxWorstDailyRangeC -
                   g.at({site, sim::SystemId::AllNd})
                       .system.maxWorstDailyRangeC;
        };
        auto dpue = [&](std::map<GridKey, Cell> &g) {
            return g.at({site, sim::SystemId::AllNd}).system.pue -
                   g.at({site, sim::SystemId::Baseline}).system.pue;
        };
        double fb_cut = cut(facebook), nutch_cut = cut(nutch);
        if ((fb_cut > 0) == (nutch_cut > 0))
            ++same_direction;
        table.addRow({environment::siteName(site),
                      util::TextTable::fmt(fb_cut, 1),
                      util::TextTable::fmt(nutch_cut, 1),
                      util::TextTable::fmt(dpue(facebook), 3),
                      util::TextTable::fmt(dpue(nutch), 3)});
    }
    table.print(std::cout);

    std::printf("\nShape check vs paper: Nutch shows the exact same "
                "trends; direction agrees at %d/5 sites.\n",
                same_direction);
    return 0;
}
