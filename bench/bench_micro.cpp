/**
 * @file
 * Microbenchmarks (google-benchmark) for the performance-critical
 * building blocks: plant physics stepping, model prediction rollout,
 * regression fitting, and the cluster simulator.
 */

#include <benchmark/benchmark.h>

#include "core/optimizer.hpp"
#include "core/predictor.hpp"
#include "environment/world_grid.hpp"
#include "model/learner.hpp"
#include "model/linreg.hpp"
#include "plant/parasol.hpp"
#include "sim/batch_engine.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/spec_io.hpp"
#include "util/rng.hpp"
#include "workload/cluster.hpp"

using namespace coolair;

namespace {

environment::WeatherSample
mildWeather()
{
    environment::WeatherSample w;
    w.tempC = 15.0;
    w.rhPercent = 50.0;
    w.absHumidity = physics::absoluteHumidity(15.0, 50.0);
    return w;
}

/** The abrupt-Parasol spec the plant-level benches step. */
sim::ExperimentSpec
abruptSpec()
{
    sim::ExperimentSpec spec;
    spec.style = cooling::ActuatorStyle::Abrupt;
    spec.seed = 1;
    return spec;
}

void
BM_PlantStep(benchmark::State &state)
{
    std::unique_ptr<plant::Plant> plant = sim::makePlant(abruptSpec());
    plant->initializeSteadyState(mildWeather(), 6.0);
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    cooling::Regime fc = cooling::Regime::freeCooling(0.5);
    auto w = mildWeather();
    for (auto _ : state) {
        plant->step(30.0, w, load, fc);
        benchmark::DoNotOptimize(plant->truePodInletC(0));
    }
}
BENCHMARK(BM_PlantStep);

void
BM_SensorRead(benchmark::State &state)
{
    std::unique_ptr<plant::Plant> plant = sim::makePlant(abruptSpec());
    plant->initializeSteadyState(mildWeather(), 6.0);
    for (auto _ : state) {
        auto sensors = plant->readSensors();
        benchmark::DoNotOptimize(sensors.podInletC[0]);
    }
}
BENCHMARK(BM_SensorRead);

void
BM_PredictorRollout(benchmark::State &state)
{
    const model::LearnedBundle &bundle = sim::sharedBundle();
    core::CoolingPredictor predictor(&bundle.model,
                                     int(state.range(0)));
    core::PredictorState st;
    st.podTempC.assign(8, 27.0);
    st.podTempPrevC.assign(8, 27.0);
    st.podPowerFraction.assign(8, 0.6);
    cooling::Regime fc = cooling::Regime::freeCooling(0.4);
    for (auto _ : state) {
        core::Trajectory traj = predictor.predict(st, fc);
        benchmark::DoNotOptimize(traj.steps.back().podTempC[0]);
    }
}
BENCHMARK(BM_PredictorRollout)->Arg(5)->Arg(8);

void
BM_OptimizerChoose(benchmark::State &state)
{
    const model::LearnedBundle &bundle = sim::sharedBundle();
    core::CoolingPredictor predictor(&bundle.model, 8);
    core::UtilityConfig ucfg;
    core::CoolingOptimizer opt(cooling::RegimeMenu::smooth(), ucfg);
    core::TemperatureBand band = core::TemperatureBand::fixed(25.0, 30.0);

    core::PredictorState st;
    st.podTempC.assign(8, 29.0);
    st.podTempPrevC.assign(8, 28.8);
    st.podPowerFraction.assign(8, 0.6);
    std::vector<int> pods{0, 1, 2, 3, 4, 5, 6, 7};
    for (auto _ : state) {
        auto d = opt.choose(predictor, st, pods, band);
        benchmark::DoNotOptimize(d.score);
    }
}
BENCHMARK(BM_OptimizerChoose);

void
BM_RidgeFit(benchmark::State &state)
{
    util::Rng rng(1);
    model::Dataset data;
    std::array<double, model::TempFeatures::kCount> row;
    for (int i = 0; i < int(state.range(0)); ++i) {
        for (auto &v : row)
            v = rng.uniform(-1.0, 1.0);
        row[0] = 1.0;
        data.addRow(row, rng.uniform(15.0, 35.0));
    }
    for (auto _ : state) {
        model::LinearModel m = model::fitRidge(data, 1e-4);
        benchmark::DoNotOptimize(m.weights()[0]);
    }
}
BENCHMARK(BM_RidgeFit)->Arg(256)->Arg(4096);

void
BM_ClusterDayStep(benchmark::State &state)
{
    sim::ExperimentSpec spec;
    spec.seed = 2013;
    workload::ClusterSim cluster({}, sim::traceForSpec(spec));
    cluster.applyPlan(workload::ComputePlan::passthrough());
    int64_t t = 0;
    for (auto _ : state) {
        cluster.step(util::SimTime(t), 30.0);
        t += 30;
        benchmark::DoNotOptimize(cluster.busySlots());
    }
}
BENCHMARK(BM_ClusterDayStep);

void
BM_ScenarioBuild(benchmark::State &state)
{
    // Baseline assembly: plant + climate + workload + controller +
    // engine, without the (memoized) learning campaign.
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    for (auto _ : state) {
        auto scenario = sim::ScenarioBuilder(spec).build();
        benchmark::DoNotOptimize(scenario->engine());
    }
}
BENCHMARK(BM_ScenarioBuild);

void
BM_SpecRoundTrip(benchmark::State &state)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Santiago);
    spec.system = sim::SystemId::AllNd;
    spec.bandWidthC = 4.0;
    for (auto _ : state) {
        sim::ExperimentSpec parsed = sim::parseSpec(sim::formatSpec(spec));
        benchmark::DoNotOptimize(parsed.seed);
    }
}
BENCHMARK(BM_SpecRoundTrip);

/**
 * End-to-end year-run throughput (the repo's headline perf number):
 * a 52-week YearWeekly run — one sampled day plus a 2 h warm-up per
 * week, 81,120 simulated minutes — through the scenario layer exactly
 * as `runExperiment` executes it.  Args: {system, workload} with
 * system 0 = Baseline / 1 = AllNd and workload 0 = task-level
 * FacebookCluster / 1 = FacebookProfile.  The learning campaign is
 * prewarmed outside the timed region (it is shared, memoized state).
 * The `sim_minutes_per_s` counter is the figure recorded in
 * BENCH_micro.json and compared by bench/compare_bench.py.
 */
void
BM_YearRun(benchmark::State &state)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.weeks = 52;
    if (state.range(0) != 0)
        spec.system = sim::SystemId::AllNd;
    if (state.range(1) != 0)
        spec.workload = sim::WorkloadKind::FacebookProfile;
    sim::prewarmSharedState({spec});

    for (auto _ : state) {
        sim::ExperimentResult r = sim::runExperiment(spec);
        benchmark::DoNotOptimize(r.system.pue);
    }

    // 52 sampled days (24 h) plus 52 warm-up tails (2 h), in minutes.
    const double sim_minutes = 52.0 * (24.0 + 2.0) * 60.0;
    state.counters["sim_minutes_per_s"] = benchmark::Counter(
        sim_minutes * double(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YearRun)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * The world-sweep shape the lane-batched engine targets: 8 worldGrid
 * sites, FacebookProfile workload, 26 strided weeks at a 120 s physics
 * step (bench_world_sweep's per-site spec).  Seeds match the sweep's
 * derivation so the work is byte-for-byte the sweep's.  Arg: system
 * (0 = Baseline, 1 = AllNd).
 */
std::vector<sim::ExperimentSpec>
worldShapeSpecs(int system, int batch)
{
    auto sites = environment::worldGrid(8);
    std::vector<sim::ExperimentSpec> specs;
    specs.reserve(sites.size());
    for (size_t i = 0; i < sites.size(); ++i) {
        sim::ExperimentSpec spec;
        spec.location = sites[i];
        spec.workload = sim::WorkloadKind::FacebookProfile;
        spec.weeks = 26;
        spec.physicsStepS = 120.0;
        spec.seed = sim::ExperimentRunner::deriveSeed(7, i, sites[i].name);
        spec.batch = batch;
        if (system != 0)
            spec.system = sim::SystemId::AllNd;
        specs.push_back(spec);
    }
    return specs;
}

/** Simulated minutes covered by one pass over @p specs. */
double
worldShapeSimMinutes(const std::vector<sim::ExperimentSpec> &specs)
{
    // Per spec: 26 sampled days of 24 h plus a 2 h warm-up each.
    return double(specs.size()) * 26.0 * (24.0 + 2.0) * 60.0;
}

/** Scalar oracle on the world-sweep shape (the 4x gate's numerator is
    BM_YearRunBatched; this records the honest same-shape scalar). */
void
BM_YearRunWorld(benchmark::State &state)
{
    const auto specs = worldShapeSpecs(int(state.range(0)), 0);
    sim::prewarmSharedState(specs);

    for (auto _ : state) {
        for (const auto &spec : specs) {
            sim::ExperimentResult r = sim::runExperiment(spec);
            benchmark::DoNotOptimize(r.system.pue);
        }
    }

    state.counters["sim_minutes_per_s"] = benchmark::Counter(
        worldShapeSimMinutes(specs) * double(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YearRunWorld)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * The tentpole gate: the same 8-site world-sweep shape through the
 * lane-batched engine, all 8 lanes per instruction stream.  The
 * sim_minutes_per_s counter must be >= 4x the scalar BM_YearRun
 * FacebookProfile baseline recorded in BENCH_micro.json
 * (compare_bench.py asserts the ratio).
 */
void
BM_YearRunBatched(benchmark::State &state)
{
    const auto specs = worldShapeSpecs(int(state.range(0)), 8);
    sim::prewarmSharedState(specs);

    for (auto _ : state) {
        auto lanes = sim::runBatchedGroup(specs, 8);
        for (const auto &lane : lanes) {
            if (!lane.ok)
                state.SkipWithError(lane.error.c_str());
            benchmark::DoNotOptimize(lane.result.system.pue);
        }
    }

    state.counters["sim_minutes_per_s"] = benchmark::Counter(
        worldShapeSimMinutes(specs) * double(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_YearRunBatched)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_ClimateSample(benchmark::State &state)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(7);
    int64_t t = 0;
    for (auto _ : state) {
        auto w = climate.sample(util::SimTime(t));
        t += 30;
        benchmark::DoNotOptimize(w.tempC);
    }
}
BENCHMARK(BM_ClimateSample);

} // anonymous namespace

BENCHMARK_MAIN();
