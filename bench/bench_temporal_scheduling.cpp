/**
 * @file
 * §5.2 "Temporal scheduling" reproduction: All-DEF (band-aware deferral)
 * vs All-ND, and Energy-DEF (energy-centric deferral, standing in for
 * the prior-art techniques [2, 22, 27]).
 *
 * Paper shape: All-DEF provides only minor range reductions over All-ND
 * (on the hard days it forgoes scheduling anyway); Energy-DEF widens
 * temperature variation dramatically — Newark's maximum range grows from
 * 10 (All-ND) to 19 C, Santiago's from 10 to 18 C, worse than the
 * baseline — in exchange for a modest PUE reduction.
 */

#include <cstdio>

#include "bench_common.hpp"

using namespace coolair;
using namespace coolair::bench;

int
main()
{
    std::printf("=== Temporal scheduling: All-ND vs All-DEF vs "
                "Energy-DEF ===\n");
    std::printf("(deferrable jobs carry 6-hour start deadlines)\n\n");

    std::vector<sim::SystemId> systems = {
        sim::SystemId::Baseline, sim::SystemId::AllNd,
        sim::SystemId::AllDef, sim::SystemId::EnergyDef};
    auto grid = runGrid(paperSites(), systems);

    std::printf("--- maximum worst daily range [C] ---\n");
    printMetricTable(
        grid, paperSites(), systems, "max range [C]",
        [](const Cell &c) { return c.system.maxWorstDailyRangeC; }, 1);

    std::printf("\n--- average worst daily range [C] ---\n");
    printMetricTable(
        grid, paperSites(), systems, "avg range [C]",
        [](const Cell &c) { return c.system.avgWorstDailyRangeC; }, 1);

    std::printf("\n--- PUE ---\n");
    printMetricTable(grid, paperSites(), systems, "PUE",
                     [](const Cell &c) { return c.system.pue; }, 3);

    std::printf("\nShape check vs paper:\n");
    using environment::NamedSite;
    for (auto site : {NamedSite::Newark, NamedSite::Santiago}) {
        double allnd = grid.at({site, sim::SystemId::AllNd})
                           .system.maxWorstDailyRangeC;
        double edef = grid.at({site, sim::SystemId::EnergyDef})
                          .system.maxWorstDailyRangeC;
        double pue_allnd =
            grid.at({site, sim::SystemId::AllNd}).system.pue;
        double pue_edef =
            grid.at({site, sim::SystemId::EnergyDef}).system.pue;
        std::printf("  %s: Energy-DEF max range %.1f vs All-ND %.1f "
                    "(paper: ~19 vs 10 / 18 vs 10), PUE %.3f vs %.3f\n",
                    environment::siteName(site), edef, allnd, pue_edef,
                    pue_allnd);
    }
    int minor = 0;
    for (auto site : paperSites()) {
        double allnd = grid.at({site, sim::SystemId::AllNd})
                           .system.maxWorstDailyRangeC;
        double alldef = grid.at({site, sim::SystemId::AllDef})
                            .system.maxWorstDailyRangeC;
        if (std::abs(alldef - allnd) < 3.0)
            ++minor;
    }
    std::printf("  All-DEF within 3 C of All-ND at %d/5 sites (paper: "
                "only minor differences)\n", minor);
    return 0;
}
