/**
 * @file
 * Figure 1 reproduction: disk, inlet, and outside temperatures under
 * free cooling for two days, with disks 50 % utilized.
 *
 * Paper (Figure 1, July 6-7 2013): there is a strong correlation between
 * air and disk temperatures; disks run ~10 C above inlets at 50 %
 * utilization; inlets ride a couple of degrees above the outside air
 * (Offset ~2.5 C in the figure).
 *
 * This physics probe runs through the standard scenario layer: a
 * two-day DayRange spec with the steady 50 % workload, and a
 * FixedRegimeController override holding free cooling at 60 % fan.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace coolair;

int
main()
{
    std::printf("=== Figure 1: disk, inlet, and outside temps under free "
                "cooling ===\n");
    std::printf("(two July days at Newark; disks 50%% utilized; free "
                "cooling at 60%% fan)\n\n");

    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.style = cooling::ActuatorStyle::Abrupt;
    spec.workload = sim::WorkloadKind::SteadyHalf;
    spec.runKind = sim::RunKind::DayRange;
    spec.startDay = 186;  // early July
    spec.endDay = 188;

    util::TextTable table({"hour", "outside [C]", "inlet lo [C]",
                           "inlet hi [C]", "disk lo [C]", "disk hi [C]"});

    // For the correlation statistic.
    std::vector<double> inlets, disks, outs;

    int idx = 0;
    auto scenario =
        sim::ScenarioBuilder(spec)
            .withController(std::make_unique<sim::FixedRegimeController>(
                cooling::Regime::freeCooling(0.6)))
            .withTraceSink([&](const sim::TraceRow &r) {
                if (idx % 120 == 0) {  // one table row every two hours
                    char hour[16];
                    std::snprintf(hour, sizeof(hour), "%d", idx / 60);
                    table.addRow({hour, util::TextTable::fmt(r.outsideC, 1),
                                  util::TextTable::fmt(r.inletMinC, 1),
                                  util::TextTable::fmt(r.inletMaxC, 1),
                                  util::TextTable::fmt(r.diskMinC, 1),
                                  util::TextTable::fmt(r.diskMaxC, 1)});
                }
                if (idx % 10 == 0) {  // 10-min correlation samples
                    outs.push_back(r.outsideC);
                    inlets.push_back(r.inletMaxC);
                    disks.push_back(r.diskMaxC);
                }
                ++idx;
            })
            .build();
    scenario->run();
    table.print(std::cout);

    // Correlation between inlet and disk temperature.
    auto correlation = [](const std::vector<double> &a,
                          const std::vector<double> &b) {
        util::RunningStats sa, sb;
        for (double x : a) sa.add(x);
        for (double x : b) sb.add(x);
        double cov = 0.0;
        for (size_t i = 0; i < a.size(); ++i)
            cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
        cov /= double(a.size());
        return cov / (sa.stddev() * sb.stddev() + 1e-12);
    };

    util::RunningStats offset_air, offset_disk;
    for (size_t i = 0; i < inlets.size(); ++i) {
        offset_air.add(inlets[i] - outs[i]);
        offset_disk.add(disks[i] - inlets[i]);
    }

    std::printf("\nShape check vs paper:\n");
    std::printf("  inlet-outside offset: mean %.1f C (paper Fig.1 ~2.5 C "
                "at speed)\n", offset_air.mean());
    std::printf("  disk-inlet offset at 50%% util: mean %.1f C (paper "
                "~10 C)\n", offset_disk.mean());
    std::printf("  corr(inlet, disk) = %.3f (paper: \"strong "
                "correlation\")\n", correlation(inlets, disks));
    std::printf("  corr(outside, inlet) = %.3f\n",
                correlation(outs, inlets));
    return 0;
}
