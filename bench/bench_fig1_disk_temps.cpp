/**
 * @file
 * Figure 1 reproduction: disk, inlet, and outside temperatures under
 * free cooling for two days, with disks 50 % utilized.
 *
 * Paper (Figure 1, July 6-7 2013): there is a strong correlation between
 * air and disk temperatures; disks run ~10 C above inlets at 50 %
 * utilization; inlets ride a couple of degrees above the outside air
 * (Offset ~2.5 C in the figure).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "plant/parasol.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace coolair;

int
main()
{
    std::printf("=== Figure 1: disk, inlet, and outside temps under free "
                "cooling ===\n");
    std::printf("(two July days at Newark; disks 50%% utilized; free "
                "cooling at 60%% fan)\n\n");

    environment::Location newark =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = newark.makeClimate(7);

    plant::PlantConfig pc = plant::PlantConfig::parasol();
    plant::Plant plant(pc, 7);
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);

    const int kStartDay = 186;  // early July
    util::SimTime start = util::SimTime::fromCalendar(kStartDay, 0);
    plant.initializeSteadyState(climate.sample(start), 4.0);

    util::TextTable table({"hour", "outside [C]", "inlet lo [C]",
                           "inlet hi [C]", "disk lo [C]", "disk hi [C]"});

    // For the correlation statistic.
    std::vector<double> inlets, disks, outs;

    cooling::Regime fc = cooling::Regime::freeCooling(0.6);
    for (int64_t t = 0; t < 48 * util::kSecondsPerHour; t += 30) {
        util::SimTime now = start + t;
        environment::WeatherSample w = climate.sample(now);
        plant.step(30.0, w, load, fc);

        if (t % (2 * util::kSecondsPerHour) == 0) {
            double ilo = 1e9, ihi = -1e9, dlo = 1e9, dhi = -1e9;
            for (int p = 0; p < 8; ++p) {
                ilo = std::min(ilo, plant.truePodInletC(p));
                ihi = std::max(ihi, plant.truePodInletC(p));
                dlo = std::min(dlo, plant.diskTempC(p));
                dhi = std::max(dhi, plant.diskTempC(p));
            }
            char hour[16];
            std::snprintf(hour, sizeof(hour), "%lld",
                          (long long)(t / util::kSecondsPerHour));
            table.addRow({hour, util::TextTable::fmt(w.tempC, 1),
                          util::TextTable::fmt(ilo, 1),
                          util::TextTable::fmt(ihi, 1),
                          util::TextTable::fmt(dlo, 1),
                          util::TextTable::fmt(dhi, 1)});
        }
        if (t % 600 == 0) {
            outs.push_back(w.tempC);
            inlets.push_back(plant.truePodInletC(4));
            disks.push_back(plant.diskTempC(4));
        }
    }
    table.print(std::cout);

    // Correlation between inlet and disk temperature.
    auto correlation = [](const std::vector<double> &a,
                          const std::vector<double> &b) {
        util::RunningStats sa, sb;
        for (double x : a) sa.add(x);
        for (double x : b) sb.add(x);
        double cov = 0.0;
        for (size_t i = 0; i < a.size(); ++i)
            cov += (a[i] - sa.mean()) * (b[i] - sb.mean());
        cov /= double(a.size());
        return cov / (sa.stddev() * sb.stddev() + 1e-12);
    };

    util::RunningStats offset_air, offset_disk;
    for (size_t i = 0; i < inlets.size(); ++i) {
        offset_air.add(inlets[i] - outs[i]);
        offset_disk.add(disks[i] - inlets[i]);
    }

    std::printf("\nShape check vs paper:\n");
    std::printf("  inlet-outside offset: mean %.1f C (paper Fig.1 ~2.5 C "
                "at speed)\n", offset_air.mean());
    std::printf("  disk-inlet offset at 50%% util: mean %.1f C (paper "
                "~10 C)\n", offset_disk.mean());
    std::printf("  corr(inlet, disk) = %.3f (paper: \"strong "
                "correlation\")\n", correlation(inlets, disks));
    std::printf("  corr(outside, inlet) = %.3f\n",
                correlation(outs, inlets));
    return 0;
}
