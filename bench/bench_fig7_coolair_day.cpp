/**
 * @file
 * Figure 7 reproduction: one CoolAir day on (b) the real abrupt plant,
 * (c) Real-Sim, and (d) the smooth infrastructure.
 *
 * Paper (§5.1): Parasol's cooling reacts too abruptly to regime changes
 * — opening up at the 15 % minimum fan speed dropped the inlet 9 C in
 * 12 minutes — making variation uncontrollable; with the smooth units
 * CoolAir holds temperatures far more stable (Figure 7(d)).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

using namespace coolair;

namespace {

struct DayStats
{
    sim::Summary summary;
    double worstDropPer12MinC = 0.0;  ///< Largest 12-minute inlet drop.
};

DayStats
runCoolAirDay(int day, cooling::ActuatorStyle style)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.system = sim::SystemId::AllNd;
    spec.style = style;
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = day;

    std::vector<double> trace;  // per-minute max inlet
    auto scenario =
        sim::ScenarioBuilder(spec)
            .withTraceSink([&](const sim::TraceRow &r) {
                trace.push_back(r.inletMaxC);
            })
            .build();

    DayStats out;
    out.summary = scenario->run().system;

    // Largest drop over any 12-minute window (paper: 9 C on Parasol).
    for (size_t i = 0; i + 12 < trace.size(); ++i) {
        out.worstDropPer12MinC = std::max(
            out.worstDropPer12MinC, trace[i] - trace[i + 12]);
    }
    return out;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 7: CoolAir day on abrupt vs smooth cooling "
                "infrastructure ===\n");
    std::printf("(Newark, mid June; All-ND; Facebook workload)\n\n");

    const int kDay = 166;  // mid June, like the paper's 6/15 run

    DayStats abrupt = runCoolAirDay(kDay, cooling::ActuatorStyle::Abrupt);
    DayStats smooth = runCoolAirDay(kDay, cooling::ActuatorStyle::Smooth);

    util::TextTable table({"metric", "Parasol (abrupt)", "smooth units"});
    table.addRow(
        {"worst daily range [C]",
         util::TextTable::fmt(abrupt.summary.maxWorstDailyRangeC, 2),
         util::TextTable::fmt(smooth.summary.maxWorstDailyRangeC, 2)});
    table.addRow(
        {"worst 12-min drop [C]",
         util::TextTable::fmt(abrupt.worstDropPer12MinC, 2),
         util::TextTable::fmt(smooth.worstDropPer12MinC, 2)});
    table.addRow({"avg violation >30C [C]",
                  util::TextTable::fmt(abrupt.summary.avgViolationC, 2),
                  util::TextTable::fmt(smooth.summary.avgViolationC, 2)});
    table.addRow({"cooling energy [kWh]",
                  util::TextTable::fmt(abrupt.summary.coolingKwh, 2),
                  util::TextTable::fmt(smooth.summary.coolingKwh, 2)});
    table.addRow(
        {"rate-violation fraction",
         util::TextTable::fmt(abrupt.summary.rateViolationFrac, 3),
         util::TextTable::fmt(smooth.summary.rateViolationFrac, 3)});
    table.print(std::cout);

    std::printf("\nShape check vs paper:\n");
    std::printf("  Parasol's units cause large fast drops (paper: 9 C in "
                "12 min); got %.1f C.\n", abrupt.worstDropPer12MinC);
    std::printf("  The smooth infrastructure holds temperature tighter "
                "(smaller range and drops):\n");
    std::printf("  smooth range %.1f C vs abrupt %.1f C; smooth drop "
                "%.1f C vs abrupt %.1f C.\n",
                smooth.summary.maxWorstDailyRangeC,
                abrupt.summary.maxWorstDailyRangeC,
                smooth.worstDropPer12MinC, abrupt.worstDropPer12MinC);
    return 0;
}
