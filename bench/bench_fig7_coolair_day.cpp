/**
 * @file
 * Figure 7 reproduction: one CoolAir day on (b) the real abrupt plant,
 * (c) Real-Sim, and (d) the smooth infrastructure.
 *
 * Paper (§5.1): Parasol's cooling reacts too abruptly to regime changes
 * — opening up at the 15 % minimum fan speed dropped the inlet 9 C in
 * 12 minutes — making variation uncontrollable; with the smooth units
 * CoolAir holds temperatures far more stable (Figure 7(d)).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;

namespace {

struct DayStats
{
    sim::Summary summary;
    double worstDropPer12MinC = 0.0;  ///< Largest 12-minute inlet drop.
};

DayStats
runCoolAirDay(const environment::Climate &climate, int day,
              cooling::ActuatorStyle style)
{
    DayStats out;

    plant::PlantConfig pc = style == cooling::ActuatorStyle::Abrupt
                                ? plant::PlantConfig::parasol()
                                : plant::PlantConfig::smoothParasol();
    plant::Plant plant(pc, 7);
    workload::ClusterSim cluster({}, workload::facebookTrace({}));
    environment::Forecaster forecaster(climate);
    cooling::RegimeMenu menu = style == cooling::ActuatorStyle::Abrupt
                                   ? cooling::RegimeMenu::parasol()
                                   : cooling::RegimeMenu::smooth();
    core::CoolAirConfig config =
        core::CoolAirConfig::forVersion(core::Version::AllNd, menu);
    sim::CoolAirController coolair(config, sim::sharedBundle(),
                                   &forecaster, "All-ND");

    sim::MetricsCollector metrics({}, 8);
    sim::Engine engine(plant, cluster, coolair, climate);
    engine.setMetrics(&metrics);

    std::vector<double> trace;  // per-minute max inlet
    engine.setTraceSink(
        [&](const sim::TraceRow &r) { trace.push_back(r.inletMaxC); });
    engine.runDay(day);
    out.summary = metrics.summary();

    // Largest drop over any 12-minute window (paper: 9 C on Parasol).
    for (size_t i = 0; i + 12 < trace.size(); ++i) {
        out.worstDropPer12MinC = std::max(
            out.worstDropPer12MinC, trace[i] - trace[i + 12]);
    }
    return out;
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 7: CoolAir day on abrupt vs smooth cooling "
                "infrastructure ===\n");
    std::printf("(Newark, mid June; All-ND; Facebook workload)\n\n");

    environment::Location newark =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = newark.makeClimate(7);
    const int kDay = 166;  // mid June, like the paper's 6/15 run

    DayStats abrupt =
        runCoolAirDay(climate, kDay, cooling::ActuatorStyle::Abrupt);
    DayStats smooth =
        runCoolAirDay(climate, kDay, cooling::ActuatorStyle::Smooth);

    util::TextTable table({"metric", "Parasol (abrupt)", "smooth units"});
    table.addRow(
        {"worst daily range [C]",
         util::TextTable::fmt(abrupt.summary.maxWorstDailyRangeC, 2),
         util::TextTable::fmt(smooth.summary.maxWorstDailyRangeC, 2)});
    table.addRow(
        {"worst 12-min drop [C]",
         util::TextTable::fmt(abrupt.worstDropPer12MinC, 2),
         util::TextTable::fmt(smooth.worstDropPer12MinC, 2)});
    table.addRow({"avg violation >30C [C]",
                  util::TextTable::fmt(abrupt.summary.avgViolationC, 2),
                  util::TextTable::fmt(smooth.summary.avgViolationC, 2)});
    table.addRow({"cooling energy [kWh]",
                  util::TextTable::fmt(abrupt.summary.coolingKwh, 2),
                  util::TextTable::fmt(smooth.summary.coolingKwh, 2)});
    table.addRow(
        {"rate-violation fraction",
         util::TextTable::fmt(abrupt.summary.rateViolationFrac, 3),
         util::TextTable::fmt(smooth.summary.rateViolationFrac, 3)});
    table.print(std::cout);

    std::printf("\nShape check vs paper:\n");
    std::printf("  Parasol's units cause large fast drops (paper: 9 C in "
                "12 min); got %.1f C.\n", abrupt.worstDropPer12MinC);
    std::printf("  The smooth infrastructure holds temperature tighter "
                "(smaller range and drops):\n");
    std::printf("  smooth range %.1f C vs abrupt %.1f C; smooth drop "
                "%.1f C vs abrupt %.1f C.\n",
                smooth.summary.maxWorstDailyRangeC,
                abrupt.summary.maxWorstDailyRangeC,
                smooth.worstDropPer12MinC, abrupt.worstDropPer12MinC);
    return 0;
}
