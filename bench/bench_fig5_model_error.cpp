/**
 * @file
 * Figure 5 reproduction: CDFs of the Cooling Model's temperature
 * prediction error on held-out days.
 *
 * Paper protocol (§4.2): compare predicted to measured temperatures on
 * two entire days *not in the learning dataset*, for four cases —
 * 2-minute and 10-minute-ahead predictions, each with and without
 * cooling-regime transitions in the prediction window.
 *
 * Paper result (shape target): without transitions, 95 % of 2-minute and
 * 90 % of 10-minute predictions are within 1 °C; with transitions
 * included, over 90 % (2-min) and over 80 % (10-min) are within 1 °C.
 * Humidity: 97 % of predictions within 5 % RH (absolute).
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/predictor.hpp"
#include "model/learner.hpp"
#include "physics/psychrometrics.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace coolair;

namespace {

struct ErrorCdfs
{
    util::EmpiricalCdf twoMin;
    util::EmpiricalCdf twoMinNoTransition;
    util::EmpiricalCdf tenMin;
    util::EmpiricalCdf tenMinNoTransition;
    util::EmpiricalCdf humidity;   // |RH error| in percentage points
};

/**
 * Run a held-out exploration day on the plant; at every model step,
 * predict 1 step (2 min) and 5 steps (10 min) ahead with the learned
 * model, then compare against what the plant actually did.
 */
ErrorCdfs
evaluateHeldOut(const sim::ExperimentSpec &spec)
{
    ErrorCdfs out;

    const model::LearnedBundle &bundle = sim::bundleFor(spec);
    const plant::PlantConfig pc = sim::plantConfigFor(spec);
    const uint64_t day_seed = spec.seed;

    std::unique_ptr<plant::Plant> plant_owner = sim::makePlant(spec);
    plant::Plant &plant = *plant_owner;
    model::CampaignWeather weather(-2.0, 33.0, day_seed);
    util::Rng rng(day_seed, "heldout");

    plant.initializeSteadyState(weather.at(util::SimTime(0)), 6.0);
    core::CoolingPredictor predictor(&bundle.model, 5);

    const int64_t step_s = int64_t(bundle.model.config().stepS);
    const int sub = 4;
    const double sub_dt = double(step_s) / sub;

    cooling::Regime regime = cooling::Regime::closed();
    int64_t hold_until = 0;
    plant::PodLoad load = plant::PodLoad::uniform(pc.numPods,
                                                  pc.serversPerPod, 0.5);

    plant::SensorReadings sensors = plant.readSensors();
    std::vector<double> prev_temp = sensors.podInletC;
    double prev_fan = 0.0;
    double prev_outside = weather.at(util::SimTime(0)).tempC;

    for (int64_t t = 0; t < util::kSecondsPerDay; t += step_s) {
        util::SimTime now(t);
        cooling::Regime prev_regime = regime;
        bool transition = false;
        if (t >= hold_until) {
            double r = rng.uniform();
            if (r < 0.45) {
                regime = cooling::Regime::freeCooling(
                    rng.uniform(0.15, 1.0));
            } else if (r < 0.7) {
                regime = cooling::Regime::closed();
            } else if (r < 0.85) {
                regime = cooling::Regime::acFanOnly();
            } else {
                regime = cooling::Regime::acCompressor(1.0);
            }
            hold_until = t + rng.uniformInt(900, 3600);
            transition = !(regime == prev_regime);
        }

        // Predict 5 model steps ahead from current readings.
        core::PredictorState state = core::PredictorState::fromSensors(
            sensors, prev_temp, prev_fan, prev_outside, prev_regime,
            &load);
        environment::WeatherSample outside = weather.at(now);
        state.outsideC = outside.tempC;
        state.outsideAbsHumidity = outside.absHumidity;
        core::Trajectory traj = predictor.predict(state, regime);

        // Advance the plant 5 model steps under the same regime,
        // comparing at +1 step (2 min) and +5 steps (10 min).
        plant::Plant scratch = plant;  // value copy: same trajectory
        for (int k = 0; k < 5; ++k) {
            for (int s = 0; s < sub; ++s) {
                scratch.step(sub_dt, weather.at(now + (k * step_s)), load,
                             regime);
            }
            if (k == 0 || k == 4) {
                for (int p = 0; p < pc.numPods; ++p) {
                    double err = std::fabs(traj.steps[size_t(k)]
                                               .podTempC[size_t(p)] -
                                           scratch.truePodInletC(p));
                    if (k == 0) {
                        out.twoMin.add(err);
                        if (!transition)
                            out.twoMinNoTransition.add(err);
                    } else {
                        out.tenMin.add(err);
                        if (!transition)
                            out.tenMinNoTransition.add(err);
                    }
                }
            }
            if (k == 0) {
                double rh_err = std::fabs(
                    traj.steps[0].rhPercent -
                    util::clamp(scratch.trueColdAisleRh(), 0.0, 100.0));
                out.humidity.add(rh_err);
            }
        }

        // Advance the real plant one model step.
        std::vector<double> inside_now = sensors.podInletC;
        for (int s = 0; s < sub; ++s)
            plant.step(sub_dt, outside, load, regime);
        sensors = plant.readSensors();
        prev_temp = inside_now;
        prev_fan = sensors.cooling.fcFanSpeed;
        prev_outside = outside.tempC;
    }
    return out;
}

void
printCdfRow(util::TextTable &table, const char *name,
            const util::EmpiricalCdf &cdf)
{
    table.addRow({name,
                  util::TextTable::fmt(100.0 * cdf.fractionAtOrBelow(0.5), 1),
                  util::TextTable::fmt(100.0 * cdf.fractionAtOrBelow(1.0), 1),
                  util::TextTable::fmt(100.0 * cdf.fractionAtOrBelow(2.0), 1),
                  util::TextTable::fmt(cdf.quantile(0.5), 2),
                  util::TextTable::fmt(cdf.quantile(0.95), 2)});
}

} // anonymous namespace

int
main()
{
    std::printf("=== Figure 5: Cooling Model prediction-error CDFs ===\n");
    std::printf("(held-out days; paper: >=90%% of no-transition 2-min "
                "errors within 1 C)\n\n");

    // Held-out days share the abrupt-plant spec; only the seed (which
    // day it is) differs.
    sim::ExperimentSpec spec;
    spec.system = sim::SystemId::AllNd;
    spec.style = cooling::ActuatorStyle::Abrupt;

    spec.seed = 501;                          // 5/1/13 stand-in
    ErrorCdfs a = evaluateHeldOut(spec);
    spec.seed = 620;                          // 6/20/13 stand-in
    ErrorCdfs b = evaluateHeldOut(spec);

    // Merge the two held-out days.
    ErrorCdfs all;
    for (const ErrorCdfs *day : {&a, &b}) {
        for (double e : day->twoMin.sorted()) all.twoMin.add(e);
        for (double e : day->twoMinNoTransition.sorted())
            all.twoMinNoTransition.add(e);
        for (double e : day->tenMin.sorted()) all.tenMin.add(e);
        for (double e : day->tenMinNoTransition.sorted())
            all.tenMinNoTransition.add(e);
        for (double e : day->humidity.sorted()) all.humidity.add(e);
    }

    util::TextTable table({"case", "<=0.5C [%]", "<=1C [%]", "<=2C [%]",
                           "p50 [C]", "p95 [C]"});
    printCdfRow(table, "2-minutes no-transition", all.twoMinNoTransition);
    printCdfRow(table, "10-minutes no-transition", all.tenMinNoTransition);
    printCdfRow(table, "2-minutes", all.twoMin);
    printCdfRow(table, "10-minutes", all.tenMin);
    table.print(std::cout);

    std::printf("\nHumidity: %.1f%% of predictions within 5%% RH "
                "(paper: 97%%)\n",
                100.0 * all.humidity.fractionAtOrBelow(5.0));

    std::printf("\nShape check vs paper:\n");
    std::printf("  2-min no-transition within 1C: %.1f%% (paper ~95%%)\n",
                100.0 * all.twoMinNoTransition.fractionAtOrBelow(1.0));
    std::printf("  10-min no-transition within 1C: %.1f%% (paper ~90%%)\n",
                100.0 * all.tenMinNoTransition.fractionAtOrBelow(1.0));
    std::printf("  2-min all within 1C: %.1f%% (paper >90%%)\n",
                100.0 * all.twoMin.fractionAtOrBelow(1.0));
    std::printf("  10-min all within 1C: %.1f%% (paper >80%%)\n",
                100.0 * all.tenMin.fractionAtOrBelow(1.0));
    return 0;
}
