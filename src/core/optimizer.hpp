#ifndef COOLAIR_CORE_OPTIMIZER_HPP
#define COOLAIR_CORE_OPTIMIZER_HPP

/**
 * @file
 * The Cooling Optimizer (paper §3.2): every 10 minutes, roll out each
 * candidate cooling regime over the horizon with the Cooling Predictor,
 * score it with the utility function, and pick the cheapest.  Energy-
 * aware versions weigh predicted cooling energy into the score; ties
 * prefer the incumbent regime to avoid churn.
 */

#include <vector>

#include "cooling/regime.hpp"
#include "core/predictor.hpp"
#include "core/utility.hpp"

namespace coolair {
namespace core {

/** The optimizer's choice and its diagnostics. */
struct OptimizerDecision
{
    cooling::Regime regime;
    double penalty = 0.0;          ///< Violation units along the horizon.
    double energyKwh = 0.0;        ///< Predicted cooling energy.
    double score = 0.0;            ///< penalty + energy term.
};

/** Selects cooling regimes. */
class CoolingOptimizer
{
  public:
    CoolingOptimizer(const cooling::RegimeMenu &menu,
                     const UtilityConfig &utility);

    /**
     * Choose the regime for the next period.
     *
     * @param predictor  rollout engine over the learned model
     * @param state      current predictor inputs
     * @param activePods pods whose sensors are charged penalties
     * @param band       today's temperature band
     */
    OptimizerDecision choose(const CoolingPredictor &predictor,
                             const PredictorState &state,
                             const std::vector<int> &activePods,
                             const TemperatureBand &band) const;

    /**
     * choose() with caller-provided buffers: @p outlook is the epoch's
     * shared weather context (materialize once, every candidate reads
     * it) and @p traj_scratch holds each rollout without reallocating.
     * Bit-identical to the plain overload.
     */
    OptimizerDecision choose(const CoolingPredictor &predictor,
                             const PredictorState &state,
                             const EpochOutlook &outlook,
                             const std::vector<int> &activePods,
                             const TemperatureBand &band,
                             Trajectory &traj_scratch) const;

    /**
     * choose() via the predictor's batched candidate scorer: every
     * candidate of the epoch is rolled out in one flat-array pass
     * against the shared @p outlook, then the winner is selected with
     * exactly choose()'s comparison semantics (1e-9 tie window,
     * incumbent preference, 1e-12 energy tie).  Scores can differ from
     * the scalar path in the last ulps (the batched scorer reassociates
     * the model arithmetic), so a near-tie may resolve differently —
     * covered by the batched engine's tolerance contract, DESIGN.md §10.
     */
    OptimizerDecision chooseBatched(const CoolingPredictor &predictor,
                                    const PredictorState &state,
                                    const EpochOutlook &outlook,
                                    const std::vector<int> &activePods,
                                    const TemperatureBand &band) const;

    /** The candidate menu. */
    const cooling::RegimeMenu &menu() const { return _menu; }

    /** The utility configuration. */
    const UtilityConfig &utility() const { return _utility; }

    /** Lifetime decision counters (plain increments on the
        thread-private optimizer; harvested once per run). */
    struct OptimizerStats
    {
        int64_t epochs = 0;      ///< choose() decisions made
        int64_t candidates = 0;  ///< candidate regimes considered
    };

    OptimizerStats stats() const { return _stats; }

  private:
    cooling::RegimeMenu _menu;
    UtilityConfig _utility;
    mutable OptimizerStats _stats;

    // chooseBatched() scratch (one optimizer per controller; never
    // shared across threads).
    mutable std::vector<double> _switchTerms;
    mutable std::vector<CandidateScore> _scores;
};

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_OPTIMIZER_HPP
