#include "core/optimizer.hpp"

#include <limits>

#include "util/logging.hpp"

namespace coolair {
namespace core {

CoolingOptimizer::CoolingOptimizer(const cooling::RegimeMenu &menu,
                                   const UtilityConfig &utility)
    : _menu(menu), _utility(utility)
{
    if (_menu.candidates.empty())
        util::fatal("CoolingOptimizer: empty regime menu");
}

OptimizerDecision
CoolingOptimizer::choose(const CoolingPredictor &predictor,
                         const PredictorState &state,
                         const std::vector<int> &activePods,
                         const TemperatureBand &band) const
{
    EpochOutlook outlook;
    outlook.materialize(state, predictor.horizonSteps(),
                        predictor.model().config().evapEffectiveness);
    Trajectory traj;
    return choose(predictor, state, outlook, activePods, band, traj);
}

OptimizerDecision
CoolingOptimizer::choose(const CoolingPredictor &predictor,
                         const PredictorState &state,
                         const EpochOutlook &outlook,
                         const std::vector<int> &activePods,
                         const TemperatureBand &band,
                         Trajectory &traj_scratch) const
{
    ++_stats.epochs;
    _stats.candidates += int64_t(_menu.candidates.size());

    OptimizerDecision best;
    bool have_best = false;

    const cooling::RegimeClass current_cls =
        cooling::classify(state.currentRegime);

    ScoreContext sc;
    sc.activePods = &activePods;
    sc.band = &band;
    sc.utility = &_utility;

    Trajectory &traj = traj_scratch;
    for (const auto &candidate : _menu.candidates) {
        sc.switchTerm = cooling::classify(candidate) != current_cls
                            ? _utility.switchPenalty
                            : 0.0;
        // A candidate only beats (or ties) the incumbent when its score
        // is below best.score + 1e-9, so rollouts whose score lower
        // bound reaches that can be abandoned without changing the
        // decision (see predictScoredInto).
        sc.abandonAtScore =
            have_best ? best.score + 1e-9
                      : std::numeric_limits<double>::infinity();
        double penalty = 0.0;
        if (!predictor.predictScoredInto(state, candidate, outlook, sc,
                                         traj, penalty))
            continue;
        double score = penalty;
        if (_utility.energyAware)
            score += _utility.energyWeightPerKwh * traj.coolingEnergyKwh;
        score += sc.switchTerm;

        bool better;
        if (!have_best) {
            better = true;
        } else if (score < best.score - 1e-9) {
            better = true;
        } else if (score < best.score + 1e-9) {
            // Tie: prefer the incumbent regime (stability), then the
            // cheaper candidate.
            bool cand_incumbent = candidate == state.currentRegime;
            bool best_incumbent = best.regime == state.currentRegime;
            if (cand_incumbent && !best_incumbent)
                better = true;
            else if (cand_incumbent == best_incumbent &&
                     traj.coolingEnergyKwh < best.energyKwh - 1e-12)
                better = true;
            else
                better = false;
        } else {
            better = false;
        }

        if (better) {
            best.regime = candidate;
            best.penalty = penalty;
            best.energyKwh = traj.coolingEnergyKwh;
            best.score = score;
            have_best = true;
        }
    }
    return best;
}

OptimizerDecision
CoolingOptimizer::chooseBatched(const CoolingPredictor &predictor,
                                const PredictorState &state,
                                const EpochOutlook &outlook,
                                const std::vector<int> &activePods,
                                const TemperatureBand &band) const
{
    ++_stats.epochs;
    _stats.candidates += int64_t(_menu.candidates.size());

    const cooling::RegimeClass current_cls =
        cooling::classify(state.currentRegime);
    _switchTerms.resize(_menu.candidates.size());
    for (size_t c = 0; c < _menu.candidates.size(); ++c) {
        _switchTerms[c] =
            cooling::classify(_menu.candidates[c]) != current_cls
                ? _utility.switchPenalty
                : 0.0;
    }

    predictor.scoreCandidates(state, _menu, outlook, activePods, band,
                              _utility, _switchTerms, _scores);

    // Selection replicates choose(): first candidate wins outright,
    // then strictly-better (1e-9), then the tie window preferring the
    // incumbent and the cheaper rollout.
    OptimizerDecision best;
    bool have_best = false;
    for (size_t c = 0; c < _menu.candidates.size(); ++c) {
        const cooling::Regime &candidate = _menu.candidates[c];
        const CandidateScore &cs = _scores[c];

        bool better;
        if (!have_best) {
            better = true;
        } else if (cs.score < best.score - 1e-9) {
            better = true;
        } else if (cs.score < best.score + 1e-9) {
            bool cand_incumbent = candidate == state.currentRegime;
            bool best_incumbent = best.regime == state.currentRegime;
            if (cand_incumbent && !best_incumbent)
                better = true;
            else if (cand_incumbent == best_incumbent &&
                     cs.energyKwh < best.energyKwh - 1e-12)
                better = true;
            else
                better = false;
        } else {
            better = false;
        }

        if (better) {
            best.regime = candidate;
            best.penalty = cs.penalty;
            best.energyKwh = cs.energyKwh;
            best.score = cs.score;
            have_best = true;
        }
    }
    return best;
}

} // namespace core
} // namespace coolair
