#include "core/optimizer.hpp"

#include "util/logging.hpp"

namespace coolair {
namespace core {

CoolingOptimizer::CoolingOptimizer(const cooling::RegimeMenu &menu,
                                   const UtilityConfig &utility)
    : _menu(menu), _utility(utility)
{
    if (_menu.candidates.empty())
        util::fatal("CoolingOptimizer: empty regime menu");
}

OptimizerDecision
CoolingOptimizer::choose(const CoolingPredictor &predictor,
                         const PredictorState &state,
                         const std::vector<int> &activePods,
                         const TemperatureBand &band) const
{
    OptimizerDecision best;
    bool have_best = false;

    for (const auto &candidate : _menu.candidates) {
        Trajectory traj = predictor.predict(state, candidate);
        double penalty =
            trajectoryPenalty(traj.steps, state.podTempC, activePods, band,
                              candidate, _utility);
        double score = penalty;
        if (_utility.energyAware)
            score += _utility.energyWeightPerKwh * traj.coolingEnergyKwh;
        if (cooling::classify(candidate) !=
            cooling::classify(state.currentRegime)) {
            score += _utility.switchPenalty;
        }

        bool better;
        if (!have_best) {
            better = true;
        } else if (score < best.score - 1e-9) {
            better = true;
        } else if (score < best.score + 1e-9) {
            // Tie: prefer the incumbent regime (stability), then the
            // cheaper candidate.
            bool cand_incumbent = candidate == state.currentRegime;
            bool best_incumbent = best.regime == state.currentRegime;
            if (cand_incumbent && !best_incumbent)
                better = true;
            else if (cand_incumbent == best_incumbent &&
                     traj.coolingEnergyKwh < best.energyKwh - 1e-12)
                better = true;
            else
                better = false;
        } else {
            better = false;
        }

        if (better) {
            best.regime = candidate;
            best.penalty = penalty;
            best.energyKwh = traj.coolingEnergyKwh;
            best.score = score;
            have_best = true;
        }
    }
    return best;
}

} // namespace core
} // namespace coolair
