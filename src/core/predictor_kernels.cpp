/**
 * @file
 * Batched-scorer kernels.  This TU is compiled with
 * COOLAIR_KERNEL_OPTIONS (see the top-level CMakeLists.txt): fast-math
 * and the native ISA, so GCC vectorizes the pod/lane loops and may
 * reassociate reductions — covered by the batched path's tolerance
 * contract (DESIGN.md §10).  Keep the loops free of per-element
 * branches; express conditionals as max()/mask terms.
 */

#include "core/predictor_kernels.hpp"

#include <cmath>

namespace coolair {
namespace core {
namespace kernels {

void
collapseAffineN(int pods, const double *__restrict WT, double fan,
                double out_c, double out_prev, double fan_prev, double dc_u,
                const double *__restrict pf, double *__restrict A,
                double *__restrict B, double *__restrict C)
{
    // TempFeatures order: {1, insideC, insidePrevC, outsideC,
    // outsidePrevC, fan, fanPrev, dcUtil, fan*insideC, fan*outsideC,
    // podPowerFraction}.  Terms 1 and 8 fold into a, 2 into b, the rest
    // into the constant c.
    const int64_t P = pods;
    const double fan_out = fan * out_c;
    const double *w0 = WT;
    const double *w1 = WT + P;
    const double *w2 = WT + 2 * P;
    const double *w3 = WT + 3 * P;
    const double *w4 = WT + 4 * P;
    const double *w5 = WT + 5 * P;
    const double *w6 = WT + 6 * P;
    const double *w7 = WT + 7 * P;
    const double *w8 = WT + 8 * P;
    const double *w9 = WT + 9 * P;
    const double *w10 = WT + 10 * P;
    for (int64_t p = 0; p < P; ++p) {
        A[p] = w1[p] + w8[p] * fan;
        B[p] = w2[p];
        C[p] = w0[p] + w3[p] * out_c + w4[p] * out_prev + w5[p] * fan +
               w6[p] * fan_prev + w7[p] * dc_u + w9[p] * fan_out +
               w10[p] * pf[p];
    }
}

void
collapseMenuN(int cands, int pods, const double *const *WT,
              const double *__restrict fan, const double *__restrict out_c,
              const double *__restrict out_prev,
              const double *__restrict fan_prev, double dc_u,
              const double *__restrict pf, double *__restrict A,
              double *__restrict B, double *__restrict C)
{
    for (int c = 0; c < cands; ++c) {
        const int64_t base = int64_t(c) * pods;
        collapseAffineN(pods, WT[c], fan[c], out_c[c], out_prev[c],
                        fan_prev[c], dc_u, pf, A + base, B + base,
                        C + base);
    }
}

void
blendAffineN(int pods, const double *__restrict offA,
             const double *__restrict offB, const double *__restrict offC,
             double s, double *__restrict A, double *__restrict B,
             double *__restrict C)
{
    for (int p = 0; p < pods; ++p) {
        A[p] = offA[p] + (A[p] - offA[p]) * s;
        B[p] = offB[p] + (B[p] - offB[p]) * s;
        C[p] = offC[p] + (C[p] - offC[p]) * s;
    }
}

void
rolloutN(int64_t n, int horizon, const double *__restrict A0,
         const double *__restrict B0, const double *__restrict C0,
         const double *__restrict A1, const double *__restrict B1,
         const double *__restrict C1, double *__restrict T,
         double *__restrict Tprev, double *__restrict hist)
{
    for (int step = 0; step < horizon; ++step) {
        const bool first = step == 0;
        const double *__restrict A = first ? A0 : A1;
        const double *__restrict B = first ? B0 : B1;
        const double *__restrict C = first ? C0 : C1;
        double *__restrict out = hist + (int64_t(step) + 1) * n;
        for (int64_t i = 0; i < n; ++i) {
            const double t = T[i];
            const double tn = A[i] * t + B[i] * Tprev[i] + C[i];
            Tprev[i] = t;
            T[i] = tn;
            out[i] = tn;
        }
    }
}

void
podAvgN(int cands, int pods, int horizon, const double *__restrict hist,
        double *__restrict avg)
{
    const int64_t n = int64_t(cands) * pods;
    const double inv = 1.0 / double(pods);
    for (int step = 0; step < horizon; ++step) {
        const double *row = hist + (int64_t(step) + 1) * n;
        for (int c = 0; c < cands; ++c) {
            const double *t = row + int64_t(c) * pods;
            double sum = 0.0;
            for (int p = 0; p < pods; ++p)
                sum += t[p];
            avg[int64_t(c) * horizon + step] = sum * inv;
        }
    }
}

void
penaltyN(int cands, int pods, int horizon, const double *__restrict hist,
         const double *__restrict maskN, double w_mt, double max_t,
         double w_band, double band_lo, double band_hi, double w_rate,
         double inv_h, double step_h, double max_rate, double w_center,
         double center, double *__restrict peA, double *__restrict pen)
{
    // Element-wise accumulation over the full cands x pods width: every
    // loop is a single flat streaming pass with no per-row horizontal
    // reductions (the per-candidate sums happen once at the end, over
    // pods values each).
    const int64_t n = int64_t(cands) * pods;
    for (int64_t i = 0; i < n; ++i)
        peA[i] = 0.0;
    for (int step = 0; step < horizon; ++step) {
        const double *t = hist + (int64_t(step) + 1) * n;
        const double *prev = hist + int64_t(step) * n;
        for (int64_t i = 0; i < n; ++i) {
            const double x = t[i];
            double term = w_mt * std::fmax(x - max_t, 0.0);
            term += w_band * (std::fmax(band_lo - x, 0.0) +
                              std::fmax(x - band_hi, 0.0));
            const double rate = std::fabs(x - prev[i]) * inv_h;
            term += w_rate * std::fmax(rate - max_rate, 0.0) * step_h;
            peA[i] += maskN[i] * term;
        }
    }
    const double *last = hist + int64_t(horizon) * n;
    for (int64_t i = 0; i < n; ++i)
        peA[i] += w_center * maskN[i] * std::fabs(last[i] - center);
    for (int c = 0; c < cands; ++c) {
        const double *e = peA + int64_t(c) * pods;
        double acc = 0.0;
        for (int p = 0; p < pods; ++p)
            acc += e[p];
        pen[c] = acc;
    }
}

} // namespace kernels
} // namespace core
} // namespace coolair
