#ifndef COOLAIR_CORE_PREDICTOR_HPP
#define COOLAIR_CORE_PREDICTOR_HPP

/**
 * @file
 * The Cooling Predictor (paper §3.2): the Cooling Model predicts only
 * one short model step ahead, so the Predictor chains it — each
 * prediction's outputs become the next prediction's inputs — to cover
 * the Optimizer's 10-minute decision horizon.
 */

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "cooling/regime.hpp"
#include "core/utility.hpp"
#include "model/cooling_model.hpp"
#include "plant/parasol.hpp"

namespace coolair {
namespace core {

/** A rolled-out prediction over the decision horizon. */
struct Trajectory
{
    std::vector<PredictedStep> steps;

    /** Predicted cooling energy over the horizon [kWh]. */
    double coolingEnergyKwh = 0.0;
};

/** The state the predictor starts a rollout from. */
struct PredictorState
{
    std::vector<double> podTempC;       ///< Current pod inlet temps.
    std::vector<double> podTempPrevC;   ///< One model step ago.
    double coldAbsHumidity = 8.0;
    double outsideC = 15.0;
    double outsidePrevC = 15.0;
    double outsideAbsHumidity = 8.0;
    double fanSpeedPrev = 0.0;
    double dcUtilization = 1.0;

    /** Per-pod power fractions [0..1]; empty means 0.5 everywhere. */
    std::vector<double> podPowerFraction;

    cooling::Regime currentRegime;      ///< Regime in effect right now.

    /** Build from current sensor readings and controller memory. */
    static PredictorState fromSensors(const plant::SensorReadings &sensors,
                                      const std::vector<double> &prev_temp,
                                      double prev_fan,
                                      double prev_outside,
                                      const cooling::Regime &current,
                                      const plant::PodLoad *load = nullptr);

    /**
     * fromSensors() into this object, reusing its vector storage.  Every
     * field is (re)assigned, so a stale state may be refilled freely.
     */
    void fill(const plant::SensorReadings &sensors,
              const std::vector<double> &prev_temp, double prev_fan,
              double prev_outside, const cooling::Regime &current,
              const plant::PodLoad *load = nullptr);
};

/**
 * The weather context shared by every candidate rollout of one control
 * epoch (paper §3.2 holds outside conditions at the current observation
 * over the 10-minute horizon).  Materialized once per epoch so the
 * psychrometric conversions — relative humidity of the observation and
 * the evaporative-cooler outlet temperature — are computed once instead
 * of once per evaporative candidate.
 */
struct EpochOutlook
{
    /** Outside dry-bulb per horizon step [°C]. */
    std::vector<double> outsideC;

    /** Dry-bulb one model step before the horizon starts [°C]. */
    double outsidePrevC = 15.0;

    /** Relative humidity of the current observation [%]. */
    double outsideRhPercent = 50.0;

    /** Evaporative-cooler outlet temp for the observation [°C]. */
    double evapOutletC = 15.0;

    /**
     * Fill the horizon from @p state: @p steps copies of the current
     * observation (the §3.2 hold), plus the derived psychrometrics.
     */
    void materialize(const PredictorState &state, int steps,
                     double evap_effectiveness);
};

/**
 * Scoring context for CoolingPredictor::predictScoredInto(): everything
 * needed to accumulate the §3.2 utility penalty while the rollout runs.
 */
struct ScoreContext
{
    const std::vector<int> *activePods = nullptr;
    const TemperatureBand *band = nullptr;
    const UtilityConfig *utility = nullptr;

    /** Exact switch-penalty term for this candidate (0 when its regime
        class matches the incumbent's). */
    double switchTerm = 0.0;

    /** Abandon the rollout once the candidate's score lower bound
        reaches this value (+inf disables abandonment). */
    double abandonAtScore = std::numeric_limits<double>::infinity();
};

/** One candidate's fully-evaluated score (batched scoring path). */
struct CandidateScore
{
    double penalty = 0.0;    ///< Violation units along the horizon.
    double energyKwh = 0.0;  ///< Predicted cooling energy.
    double score = 0.0;      ///< penalty + energy term + switch term.
};

/** Chains the Cooling Model over the optimizer horizon. */
class CoolingPredictor
{
  public:
    /**
     * @param model         the learned cooling model
     * @param horizon_steps model steps per rollout (5 x 2 min = 10 min)
     */
    CoolingPredictor(const model::CoolingModel *model, int horizon_steps = 5);

    /** Roll out @p candidate from @p state. */
    Trajectory predict(const PredictorState &state,
                       const cooling::Regime &candidate) const;

    /**
     * Roll out @p candidate from @p state into @p traj, reusing the
     * trajectory's storage and the shared per-epoch @p outlook.  The
     * hot path: model lookups are resolved once per rollout (only two
     * transition keys ever occur — current->candidate at step 0,
     * candidate->candidate after) and no heap allocation happens once
     * the scratch buffers reach capacity.  Produces bit-identical
     * results to predict().
     */
    void predictInto(const PredictorState &state,
                     const cooling::Regime &candidate,
                     const EpochOutlook &outlook, Trajectory &traj) const;

    /**
     * predictInto() fused with the §3.2 utility: the trajectory penalty
     * is accumulated term-for-term in trajectoryPenalty()'s order while
     * the rollout advances, and the rollout is abandoned as soon as a
     * lower bound on the candidate's final score reaches
     * @p score.abandonAtScore.  Every penalty and energy increment is
     * non-negative, and floating-point accumulation of non-negative
     * terms is monotone, so the bound is safe: an abandoned candidate's
     * fully-evaluated score could never have beaten the incumbent, and
     * candidates that complete produce in @p penalty exactly what
     * trajectoryPenalty() returns for the finished @p traj.  Returns
     * false when abandoned (then @p traj's contents are unspecified).
     */
    bool predictScoredInto(const PredictorState &state,
                           const cooling::Regime &candidate,
                           const EpochOutlook &outlook,
                           const ScoreContext &score, Trajectory &traj,
                           double &penalty) const;

    /**
     * Score every candidate of @p menu against the shared @p outlook in
     * one batched pass (the lane-batched engine's scoring path).
     *
     * Algebraically this evaluates exactly what predictScoredInto()
     * does per candidate, but the linear models are collapsed once per
     * (candidate, pod) into affine recurrences
     * `T' = a*T + b*Tprev + c` (the outlook holds outside conditions
     * fixed, so every non-state feature is rollout-constant) and the
     * rollout then advances all candidates x pods through flat arrays.
     * The reassociation means scores can differ from the scalar path in
     * the last ulps — a near-tie between candidates may resolve the
     * other way, which is why the batched engine carries a tolerance
     * contract instead of bit-identity (DESIGN.md §10).  No candidate
     * is abandoned: all scores in @p out are fully evaluated, with the
     * energy and @p switch_terms already folded into .score.
     *
     * @p out is resized to the menu; @p switch_terms holds the exact
     * per-candidate switch-penalty term choose() would use.
     */
    void scoreCandidates(const PredictorState &state,
                         const cooling::RegimeMenu &menu,
                         const EpochOutlook &outlook,
                         const std::vector<int> &activePods,
                         const TemperatureBand &band,
                         const UtilityConfig &utility,
                         const std::vector<double> &switch_terms,
                         std::vector<CandidateScore> &out) const;

    /** Number of steps per rollout. */
    int horizonSteps() const { return _horizonSteps; }

    /** The model driving predictions. */
    const model::CoolingModel &model() const { return *_model; }

    /** Lifetime rollout / resolved-cache counters (plain increments on
        the thread-private predictor; harvested once per run). */
    struct PredictorStats
    {
        int64_t rollouts = 0;           ///< predictScoredInto calls
        int64_t rolloutsAbandoned = 0;  ///< early-abandoned (bound hit)
        int64_t resolveHits = 0;        ///< resolved() served from cache
        int64_t resolveMisses = 0;      ///< resolved() filled an entry
    };

    PredictorStats stats() const { return _stats; }

  private:
    const model::CoolingModel *_model;
    int _horizonSteps;

    /** Resolved per-pod temperature models + humidity model for one
        transition key, with the fallback chain already applied. */
    struct ResolvedModels
    {
        bool valid = false;
        std::vector<const model::LinearModel *> temp;
        const model::LinearModel *humidity = nullptr;

        /**
         * The same models flattened for the batched scorer: tempW holds
         * the temperature weights transposed (feature-major,
         * [feature * pods + pod]) so the per-pod collapse kernel reads
         * contiguous lanes, and humW the humidity weights.  Persistence
         * (null) entries are encoded as identity rows (weight 1 on the
         * inside-state feature) so the collapse runs branch-free.
         */
        std::vector<double> tempW;
        std::array<double, model::HumidityFeatures::kCount> humW{};
    };

    /**
     * The resolved models for @p key, from a cache invalidated whenever
     * CoolingModel::revision() changes.  Resolution is a pure lookup, so
     * a cache hit returns exactly the pointers a fresh resolve would —
     * this just stops every candidate rollout from re-walking the
     * fallback chain for keys the epoch (or the whole run, absent
     * recalibration) has already seen.
     */
    const ResolvedModels &resolved(const cooling::TransitionKey &key) const;

    // Rollout scratch (predictInto is logically const; one predictor per
    // controller, controllers are never shared across threads).
    mutable std::vector<double> _temp;
    mutable std::vector<double> _tempPrev;

    // Batched-scoring scratch, candidate-major ([cand*pods+pod],
    // [cand*horizon+step], or [cand]); sized on first use, reused per
    // epoch.
    mutable std::vector<double> _ctA0, _ctB0, _ctC0;  ///< step-0 affine
    mutable std::vector<double> _ctA1, _ctB1, _ctC1;  ///< later steps
    mutable std::vector<double> _ctT, _ctTPrev;       ///< rollout state
    mutable std::vector<double> _ctHist;              ///< temps per step
    mutable std::vector<double> _ctTmpA, _ctTmpB, _ctTmpC;  ///< blend
    mutable std::vector<double> _chAlpha0, _chBeta0;  ///< humidity, step 0
    mutable std::vector<double> _chAlpha1, _chBeta1;
    mutable std::vector<double> _chHist;              ///< humidity per step
    mutable std::vector<double> _cAvgT, _cRh;         ///< per-step RH
    mutable std::vector<double> _cPowerW;             ///< steady power
    mutable std::vector<double> _cPf;                 ///< pod power frac
    mutable std::vector<double> _cMask;               ///< active-pod mask
    mutable std::vector<double> _cMaskN;              ///< mask tiled to n
    mutable std::vector<double> _cPeA;                ///< per-lane penalty
    mutable std::vector<double> _cPen;                ///< penalty per cand
    // Per-candidate collapse inputs for the fused menu kernel.
    mutable std::vector<double> _cFan, _cOutC, _cOutPrev0, _cFanPrev0,
        _cCandFan;
    mutable std::vector<const double *> _cBankFirst, _cBankRest;

    mutable std::vector<ResolvedModels> _resolveCache;
    mutable uint64_t _resolveRevision = 0;
    mutable bool _resolveCacheReady = false;
    mutable PredictorStats _stats;
};

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_PREDICTOR_HPP
