#ifndef COOLAIR_CORE_PREDICTOR_HPP
#define COOLAIR_CORE_PREDICTOR_HPP

/**
 * @file
 * The Cooling Predictor (paper §3.2): the Cooling Model predicts only
 * one short model step ahead, so the Predictor chains it — each
 * prediction's outputs become the next prediction's inputs — to cover
 * the Optimizer's 10-minute decision horizon.
 */

#include <vector>

#include "cooling/regime.hpp"
#include "core/utility.hpp"
#include "model/cooling_model.hpp"
#include "plant/parasol.hpp"

namespace coolair {
namespace core {

/** A rolled-out prediction over the decision horizon. */
struct Trajectory
{
    std::vector<PredictedStep> steps;

    /** Predicted cooling energy over the horizon [kWh]. */
    double coolingEnergyKwh = 0.0;
};

/** The state the predictor starts a rollout from. */
struct PredictorState
{
    std::vector<double> podTempC;       ///< Current pod inlet temps.
    std::vector<double> podTempPrevC;   ///< One model step ago.
    double coldAbsHumidity = 8.0;
    double outsideC = 15.0;
    double outsidePrevC = 15.0;
    double outsideAbsHumidity = 8.0;
    double fanSpeedPrev = 0.0;
    double dcUtilization = 1.0;

    /** Per-pod power fractions [0..1]; empty means 0.5 everywhere. */
    std::vector<double> podPowerFraction;

    cooling::Regime currentRegime;      ///< Regime in effect right now.

    /** Build from current sensor readings and controller memory. */
    static PredictorState fromSensors(const plant::SensorReadings &sensors,
                                      const std::vector<double> &prev_temp,
                                      double prev_fan,
                                      double prev_outside,
                                      const cooling::Regime &current,
                                      const plant::PodLoad *load = nullptr);
};

/** Chains the Cooling Model over the optimizer horizon. */
class CoolingPredictor
{
  public:
    /**
     * @param model         the learned cooling model
     * @param horizon_steps model steps per rollout (5 x 2 min = 10 min)
     */
    CoolingPredictor(const model::CoolingModel *model, int horizon_steps = 5);

    /** Roll out @p candidate from @p state. */
    Trajectory predict(const PredictorState &state,
                       const cooling::Regime &candidate) const;

    /** Number of steps per rollout. */
    int horizonSteps() const { return _horizonSteps; }

    /** The model driving predictions. */
    const model::CoolingModel &model() const { return *_model; }

  private:
    const model::CoolingModel *_model;
    int _horizonSteps;
};

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_PREDICTOR_HPP
