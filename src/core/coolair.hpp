#ifndef COOLAIR_CORE_COOLAIR_HPP
#define COOLAIR_CORE_COOLAIR_HPP

/**
 * @file
 * The CoolAir manager: ties band selection, the Cooling Optimizer /
 * Predictor, and the Compute Optimizer into the control loop of
 * Figure 2.  Every control epoch (10 minutes) it consumes sensor
 * readings and workload status and emits a cooling regime command plus a
 * compute plan.
 *
 * Table 1's evaluation versions (Temperature, Variation, Energy, All-ND,
 * All-DEF) and the ablation systems (Var-Low-Recirc, Var-High-Recirc,
 * Energy-DEF) are expressed as configuration presets.
 */

#include <cstdint>
#include <string>

#include "cooling/regime.hpp"
#include "core/band.hpp"
#include "core/compute.hpp"
#include "core/optimizer.hpp"
#include "core/predictor.hpp"
#include "environment/forecast.hpp"
#include "model/learner.hpp"
#include "plant/parasol.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace core {

/** The CoolAir versions of the paper's evaluation (Table 1 + §5.2). */
enum class Version
{
    Temperature,    ///< Low setpoint + energy + humidity; low recirc.
    Variation,      ///< Adaptive band + humidity; high recirc.
    Energy,         ///< Max temp + energy + humidity; low recirc.
    AllNd,          ///< Band + energy + humidity; high recirc.
    AllDef,         ///< All-ND + temporal scheduling; low recirc.
    VarLowRecirc,   ///< Fixed 25-30 band; low-recirc placement (ablation).
    VarHighRecirc,  ///< Fixed 25-30 band; high-recirc placement (ablation).
    EnergyDef       ///< Energy + cold-hours temporal (prior-art proxy).
};

/** Name of a version as the paper prints it. */
const char *versionName(Version v);

/** How the day's temperature band is chosen. */
enum class BandMode
{
    Adaptive,  ///< From the outside forecast (§3.2).
    Fixed,     ///< A static band (the Fig. 11 ablation systems).
    None       ///< No band; only the max-temp ceiling applies.
};

/** Full CoolAir configuration. */
struct CoolAirConfig
{
    BandConfig band;
    BandMode bandMode = BandMode::Adaptive;
    double fixedBandLowC = 25.0;
    double fixedBandHighC = 30.0;

    UtilityConfig utility;
    ComputeConfig compute;
    cooling::RegimeMenu menu = cooling::RegimeMenu::parasol();

    /** Control epoch [s] (paper: every 10 minutes). */
    int64_t controlEpochS = 600;

    /** Prediction horizon in model steps (8 x 2 min = 16 min). */
    int horizonSteps = 8;

    /**
     * Build the preset for a Table 1 / §5.2 version.
     *
     * @param v          the version
     * @param menu       the regime menu of the installed cooling units
     * @param max_temp_c the operator's desired maximum temperature
     *                   (§5.2 studies 25 and 30 °C)
     */
    static CoolAirConfig forVersion(Version v,
                                    const cooling::RegimeMenu &menu,
                                    double max_temp_c = 30.0);
};

/** The runtime manager. */
class CoolAir
{
  public:
    /** One control decision. */
    struct Decision
    {
        cooling::Regime regime;
        workload::ComputePlan plan;
        TemperatureBand band;
        double penalty = 0.0;
        double predictedEnergyKwh = 0.0;
    };

    /**
     * @param config     version preset (or custom configuration)
     * @param bundle     the learned cooling model + recirculation rank
     * @param forecaster weather forecast service (not owned)
     */
    CoolAir(const CoolAirConfig &config, model::LearnedBundle bundle,
            environment::Forecaster *forecaster);

    /**
     * Run one control epoch.  Call every config.controlEpochS seconds
     * with fresh readings.
     */
    Decision control(const plant::SensorReadings &sensors,
                     const workload::WorkloadStatus &status,
                     const plant::PodLoad &load, util::SimTime now);

    /** The band currently in force. */
    const TemperatureBand &currentBand() const { return _band; }

    /** The configuration in effect. */
    const CoolAirConfig &config() const { return _config; }

    /** The learned bundle (model + ranking). */
    const model::LearnedBundle &bundle() const { return _bundle; }

    /** The rollout engine (for stats harvesting / inspection). */
    const CoolingPredictor &predictor() const { return _predictor; }

    /** The regime selector (for stats harvesting / inspection). */
    const CoolingOptimizer &optimizer() const { return _optimizer; }

    /**
     * Route candidate scoring through the batched one-pass scorer
     * (CoolingOptimizer::chooseBatched) instead of per-candidate
     * rollouts.  Same decisions up to last-ulp score ties; used by the
     * lane-batched engine, whose tolerance contract (DESIGN.md §10)
     * covers the difference.
     */
    void setBatchedCandidates(bool on) { _batchedCandidates = on; }

    /** True when candidate scoring runs through the batched scorer. */
    bool batchedCandidates() const { return _batchedCandidates; }

  private:
    void refreshDay(util::SimTime now);
    cooling::Regime regimeFromStatus(const plant::CoolingStatus &cs) const;

    CoolAirConfig _config;
    model::LearnedBundle _bundle;
    environment::Forecaster *_forecaster;

    CoolingPredictor _predictor;
    CoolingOptimizer _optimizer;
    ComputeOptimizer _computeOptimizer;

    TemperatureBand _band;
    environment::Forecast _dayForecast;
    int _bandDay = -1;
    bool _batchedCandidates = false;

    // Controller memory feeding the model's "last" inputs.
    std::vector<double> _prevTemp;
    double _prevFan = 0.0;
    double _prevOutside = 15.0;
    bool _havePrev = false;

    // Per-epoch buffers, reused so steady-state control allocates
    // nothing: predictor inputs, the shared weather outlook every
    // candidate rollout reads, the rollout scratch trajectory, and the
    // charged-pod list.
    PredictorState _state;
    EpochOutlook _outlook;
    Trajectory _trajScratch;
    std::vector<int> _activePods;
};

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_COOLAIR_HPP
