#include "core/utility.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace core {

double
trajectoryPenalty(const std::vector<PredictedStep> &steps,
                  const std::vector<double> &initialTempC,
                  const std::vector<int> &activePods,
                  const TemperatureBand &band,
                  const cooling::Regime &regime,
                  const UtilityConfig &config)
{
    double penalty = 0.0;

    const std::vector<double> *prev = &initialTempC;
    for (const auto &step : steps) {
        for (int pod : activePods) {
            if (pod < 0 || pod >= int(step.podTempC.size()))
                util::panic("trajectoryPenalty: pod index out of range");
            double t = step.podTempC[size_t(pod)];

            if (config.penalizeMaxTemp && t > config.maxTempC)
                penalty += (t - config.maxTempC) / 0.5;

            if (config.penalizeBand)
                penalty += band.violation(t) / 0.5;

            if (config.penalizeRate && pod < int(prev->size())) {
                double rate = std::fabs(t - (*prev)[size_t(pod)]) /
                              std::max(step.stepHours, 1e-9);
                // Pro-rate by the step duration so the charge for a
                // sustained 1 °C/hour excess over one hour is one unit
                // regardless of prediction granularity; a brief
                // corrective swing costs little, a sustained drift a lot.
                if (rate > config.maxRateCPerHour) {
                    penalty += (rate - config.maxRateCPerHour) *
                               step.stepHours;
                }
            }
        }

        if (config.penalizeHumidity) {
            if (step.rhPercent > config.humidityMaxPercent) {
                penalty +=
                    (step.rhPercent - config.humidityMaxPercent) / 5.0;
            } else if (step.rhPercent < config.humidityMinPercent) {
                penalty +=
                    (config.humidityMinPercent - step.rhPercent) / 5.0;
            }
        }

        if (config.penalizeAcFull &&
            regime.mode == cooling::Mode::AirConditioning &&
            regime.compressorOn && regime.compressorSpeed >= 1.0 - 1e-9) {
            penalty += 1.0;
        }

        prev = &step.podTempC;
    }

    if (config.penalizeBand && config.centeringWeightPerC > 0.0 &&
        !steps.empty()) {
        const PredictedStep &last = steps.back();
        double center = band.center();
        for (int pod : activePods) {
            penalty += config.centeringWeightPerC *
                       std::fabs(last.podTempC[size_t(pod)] - center);
        }
    }
    return penalty;
}

} // namespace core
} // namespace coolair
