#ifndef COOLAIR_CORE_COMPUTE_HPP
#define COOLAIR_CORE_COMPUTE_HPP

/**
 * @file
 * The Compute Optimizer (paper §3.3): decides how many servers stay
 * awake, which pods host load (spatial placement by recirculation rank),
 * and when deferrable jobs run (temporal scheduling within deadlines).
 *
 * CoolAir deliberately places load on the pods *most* prone to heat
 * recirculation: those pods stay consistently warm and are less exposed
 * to cooling-infrastructure swings, which shrinks temperature variation.
 * The energy-centric prior art places on the *least* recirculating pods;
 * both policies are provided for the Figure 11 ablation.
 */

#include <vector>

#include "core/band.hpp"
#include "environment/forecast.hpp"
#include "workload/compute_plan.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace core {

/** Spatial placement policy. */
enum class Placement
{
    LowRecircFirst,   ///< Energy-centric prior art [30, 32].
    HighRecircFirst   ///< CoolAir's variation-centric choice.
};

/** Temporal scheduling policy. */
enum class TemporalPolicy
{
    None,        ///< Release jobs on submission.
    BandHours,   ///< Prefer hours whose forecast lies in the band (§3.3).
    ColdHours    ///< Prefer the coldest hours (energy-centric, Energy-DEF).
};

/** Compute-management configuration. */
struct ComputeConfig
{
    Placement placement = Placement::HighRecircFirst;
    TemporalPolicy temporal = TemporalPolicy::None;

    /** Put unneeded servers to sleep. */
    bool manageServerStates = true;

    /** Awake-server headroom above instantaneous demand. */
    double headroomFraction = 0.25;

    /**
     * Shrink factor applied to the awake-server target per epoch when
     * demand falls.  Waking is instantaneous (queued work must run) but
     * sleeping is gradual — otherwise bursty arrivals make the cluster
     * flap between near-idle and fully-awake, and the resulting IT-power
     * swings become the dominant source of temperature variation.
     */
    double sleepDecayPerEpoch = 0.85;

    /** Total servers (for clamping targets). */
    int totalServers = 64;

    /** Covering-subset size (never sleeps). */
    int coveringSubsetSize = 8;
};

/** Produces compute plans. */
class ComputeOptimizer
{
  public:
    /**
     * @param config      policy knobs
     * @param recirc_rank pods by *increasing* recirculation potential
     *                    (from the Cooling Modeler's probe)
     */
    ComputeOptimizer(const ComputeConfig &config,
                     std::vector<int> recirc_rank);

    /**
     * Build the day's plan.
     *
     * @param status    current workload status
     * @param band      today's temperature band
     * @param forecast  full-day hourly forecast (for temporal policy)
     * @param bandCfg   band parameters (offset maps band to outside air)
     */
    workload::ComputePlan plan(const workload::WorkloadStatus &status,
                               const TemperatureBand &band,
                               const environment::Forecast &forecast,
                               const BandConfig &bandCfg);

    /** Pod activation order implied by the placement policy. */
    std::vector<int> podOrder() const;

  private:
    std::array<bool, 24> hourMask(const TemperatureBand &band,
                                  const environment::Forecast &forecast,
                                  const BandConfig &bandCfg) const;

    ComputeConfig _config;
    std::vector<int> _recircRankAscending;
    double _targetEwma = -1.0;   ///< Decaying awake-server target.
};

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_COMPUTE_HPP
