#include "core/compute.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace core {

ComputeOptimizer::ComputeOptimizer(const ComputeConfig &config,
                                   std::vector<int> recirc_rank)
    : _config(config), _recircRankAscending(std::move(recirc_rank))
{
    if (_recircRankAscending.empty())
        util::fatal("ComputeOptimizer: empty recirculation ranking");
}

std::vector<int>
ComputeOptimizer::podOrder() const
{
    std::vector<int> order = _recircRankAscending;
    if (_config.placement == Placement::HighRecircFirst)
        std::reverse(order.begin(), order.end());
    return order;
}

std::array<bool, 24>
ComputeOptimizer::hourMask(const TemperatureBand &band,
                           const environment::Forecast &forecast,
                           const BandConfig &bandCfg) const
{
    std::array<bool, 24> mask;
    mask.fill(true);

    switch (_config.temporal) {
      case TemporalPolicy::None:
        return mask;

      case TemporalPolicy::BandHours: {
        // Skip deferral entirely on futile days (§3.3).
        if (temporalSchedulingFutile(forecast, band, bandCfg))
            return mask;
        mask.fill(false);
        double lo = band.lowC - bandCfg.offsetC;
        double hi = band.highC - bandCfg.offsetC;
        for (const auto &h : forecast.hours) {
            int hour = h.hourStart.hourOfDay();
            if (h.tempC >= lo && h.tempC <= hi)
                mask[size_t(hour)] = true;
        }
        return mask;
      }

      case TemporalPolicy::ColdHours: {
        // Energy-centric deferral: allow the colder half of the day.
        if (forecast.empty())
            return mask;
        double mean = forecast.meanTempC();
        mask.fill(false);
        bool any = false;
        for (const auto &h : forecast.hours) {
            int hour = h.hourStart.hourOfDay();
            if (h.tempC <= mean) {
                mask[size_t(hour)] = true;
                any = true;
            }
        }
        if (!any)
            mask.fill(true);
        return mask;
      }
    }
    util::panic("ComputeOptimizer::hourMask: unknown temporal policy");
}

workload::ComputePlan
ComputeOptimizer::plan(const workload::WorkloadStatus &status,
                       const TemperatureBand &band,
                       const environment::Forecast &forecast,
                       const BandConfig &bandCfg)
{
    workload::ComputePlan plan;
    plan.podOrder = podOrder();
    plan.hourAllowed = hourMask(band, forecast, bandCfg);
    plan.manageServerStates = _config.manageServerStates;

    if (_config.manageServerStates) {
        double wanted =
            double(status.demandServers) * (1.0 + _config.headroomFraction);
        // Wake instantly, sleep gradually (see sleepDecayPerEpoch).
        if (wanted >= _targetEwma) {
            _targetEwma = wanted;
        } else {
            _targetEwma =
                std::max(wanted, _targetEwma * _config.sleepDecayPerEpoch);
        }
        plan.targetActiveServers =
            std::clamp(int(std::ceil(_targetEwma)),
                       _config.coveringSubsetSize, _config.totalServers);
    } else {
        plan.targetActiveServers = _config.totalServers;
    }
    return plan;
}

} // namespace core
} // namespace coolair
