#ifndef COOLAIR_CORE_PREDICTOR_KERNELS_HPP
#define COOLAIR_CORE_PREDICTOR_KERNELS_HPP

/**
 * @file
 * Flat-array kernels for the batched candidate scorer
 * (CoolingPredictor::scoreCandidates).  Compiled in their own TU with
 * COOLAIR_KERNEL_OPTIONS (fast-math + native ISA), so everything here
 * lives under the batched path's tolerance contract (DESIGN.md §10) —
 * never call these from the scalar oracle path.
 *
 * Layout conventions (matching the scorer's scratch):
 *   - "banks" are feature-major transposed weight tables
 *     [feature * pods + pod] so the per-pod collapse loops read
 *     contiguous lanes;
 *   - rollout state is candidate-major [cand * pods + pod] (= one flat
 *     array of n = cands * pods recurrences);
 *   - the temperature history holds horizon+1 rows of n: row 0 is the
 *     tiled current temps, row s+1 the prediction for step s.
 */

#include <cstdint>

namespace coolair {
namespace core {
namespace kernels {

/**
 * Collapse one transposed temperature-weight bank into per-pod affine
 * coefficients `T' = a*T + b*Tprev + c`, holding every non-state
 * feature at its rollout-constant value.  @p WT is feature-major
 * (TempFeatures::kCount rows of @p pods), @p pf the per-pod power
 * fractions; outputs are @p pods wide.
 */
void collapseAffineN(int pods, const double *WT, double fan, double out_c,
                     double out_prev, double fan_prev, double dc_u,
                     const double *pf, double *A, double *B, double *C);

/**
 * collapseAffineN over a whole candidate menu in one call: candidate c
 * reads bank WT[c] with its per-candidate fan / outside / fan-prev
 * values and writes pods-wide coefficient blocks at c * pods.  One
 * kernel call per epoch instead of one per candidate.
 */
void collapseMenuN(int cands, int pods, const double *const *WT,
                   const double *fan, const double *out_c,
                   const double *out_prev, const double *fan_prev,
                   double dc_u, const double *pf, double *A, double *B,
                   double *C);

/**
 * In-place blend of affine coefficients toward a compressor-off bank:
 * X[i] = offX[i] + (X[i] - offX[i]) * s (the interpolated-AC model;
 * affine maps blend coefficient-wise exactly like outputs).
 */
void blendAffineN(int pods, const double *offA, const double *offB,
                  const double *offC, double s, double *A, double *B,
                  double *C);

/**
 * Advance all n recurrences @p horizon steps, using the step-0 banks
 * (A0/B0/C0) for the first step and the steady banks after.  @p T and
 * @p Tprev hold the current and one-step-back temps on entry and are
 * clobbered; rows 1..horizon of @p hist receive the predictions (row 0
 * is the caller-tiled current temps and is read as the step-0 rate
 * reference).
 */
void rolloutN(int64_t n, int horizon, const double *A0, const double *B0,
              const double *C0, const double *A1, const double *B1,
              const double *C1, double *T, double *Tprev, double *hist);

/**
 * Per-(candidate, step) cold-aisle averages over pods: avg[c * horizon
 * + s] = mean of hist row s+1, candidate block c.  @p pods must be > 0.
 */
void podAvgN(int cands, int pods, int horizon, const double *hist,
             double *avg);

/**
 * The per-step temperature penalty terms of trajectoryPenalty(),
 * accumulated per candidate: max-temp and band violations (in 0.5 °C
 * units via w_mt / w_band = 2 or 0), the rate-of-change excess, and the
 * final-step centering pull.  @p maskN is the active-pod mask tiled to
 * all n = cands * pods lanes (1.0 active, 0.0 not) — each max()/mask
 * term is zero exactly when the scalar branch would not fire, so
 * masking keeps the sum equal to iterating the active subset.  The
 * per-step sweep accumulates element-wise into the n-wide scratch
 * @p peA (no per-row horizontal reductions); the per-candidate pod sums
 * land in @p pen.
 */
void penaltyN(int cands, int pods, int horizon, const double *hist,
              const double *maskN, double w_mt, double max_t,
              double w_band, double band_lo, double band_hi, double w_rate,
              double inv_h, double step_h, double max_rate,
              double w_center, double center, double *peA, double *pen);

} // namespace kernels
} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_PREDICTOR_KERNELS_HPP
