#ifndef COOLAIR_CORE_BAND_HPP
#define COOLAIR_CORE_BAND_HPP

/**
 * @file
 * Daily temperature-band selection (paper §3.2, Figure 3).
 *
 * Once per day CoolAir picks the band of inlet temperatures it will try
 * to hold: Width degrees around the day's average predicted outside
 * temperature plus Offset (the natural outside-to-inlet warm-up).  The
 * band may not extend above Max or below Min; it slides just below Max
 * or just above Min when it would.
 */

#include "environment/forecast.hpp"

namespace coolair {
namespace core {

/** Band-selection parameters (§5.1 defaults). */
struct BandConfig
{
    /** Band width [°C].  Narrower costs energy; wider allows variation. */
    double widthC = 5.0;

    /** Typical outside-to-inlet temperature offset [°C]. */
    double offsetC = 8.0;

    /** Absolute floor for the band [°C]. */
    double minC = 10.0;

    /** Absolute ceiling for the band [°C] (the desired max temp). */
    double maxC = 30.0;
};

/** A selected inlet-temperature band. */
struct TemperatureBand
{
    double lowC = 20.0;
    double highC = 25.0;

    /** True if the band had to slide down to fit under Max. */
    bool slidToMax = false;

    /** True if the band had to slide up to stay above Min. */
    bool slidToMin = false;

    /** Width of the band. */
    double width() const { return highC - lowC; }

    /** Center of the band. */
    double center() const { return 0.5 * (lowC + highC); }

    /** True if @p temp_c falls inside the band. */
    bool contains(double temp_c) const
    {
        return temp_c >= lowC && temp_c <= highC;
    }

    /** Distance outside the band (0 when inside) [°C]. */
    double violation(double temp_c) const
    {
        if (temp_c < lowC)
            return lowC - temp_c;
        if (temp_c > highC)
            return temp_c - highC;
        return 0.0;
    }

    /** A fixed band that never slides (Fig. 11's Var-*-Recirc systems). */
    static TemperatureBand fixed(double low_c, double high_c);
};

/**
 * Select the band for the day from the hourly outside forecast.
 * An empty forecast yields a band pinned just below Max.
 */
TemperatureBand selectBand(const environment::Forecast &forecast,
                           const BandConfig &config);

/**
 * True if temporal scheduling should be skipped for the day (§3.3): the
 * band slid against Min/Max, or the predicted outside temperatures never
 * overlap the band (shifted back to outside-air coordinates).
 */
bool temporalSchedulingFutile(const environment::Forecast &forecast,
                              const TemperatureBand &band,
                              const BandConfig &config);

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_BAND_HPP
