#include "core/coolair.hpp"

#include "util/logging.hpp"

namespace coolair {
namespace core {

const char *
versionName(Version v)
{
    switch (v) {
      case Version::Temperature:   return "Temperature";
      case Version::Variation:     return "Variation";
      case Version::Energy:        return "Energy";
      case Version::AllNd:         return "All-ND";
      case Version::AllDef:        return "All-DEF";
      case Version::VarLowRecirc:  return "Var-Low-Recirc";
      case Version::VarHighRecirc: return "Var-High-Recirc";
      case Version::EnergyDef:     return "Energy-DEF";
    }
    util::panic("versionName: unknown version");
}

CoolAirConfig
CoolAirConfig::forVersion(Version v, const cooling::RegimeMenu &menu,
                          double max_temp_c)
{
    CoolAirConfig c;
    c.menu = menu;
    c.band.maxC = max_temp_c;
    c.utility.maxTempC = max_temp_c;
    c.compute.manageServerStates = true;

    switch (v) {
      case Version::Temperature:
        // Absolute temperature only, below a low setpoint — what energy-
        // aware thermal management does in non-free-cooled datacenters.
        c.bandMode = BandMode::None;
        c.utility.maxTempC = max_temp_c - 1.0;
        c.utility.penalizeBand = false;
        c.utility.penalizeRate = false;
        c.utility.energyAware = true;
        c.compute.placement = Placement::LowRecircFirst;
        c.compute.temporal = TemporalPolicy::None;
        break;

      case Version::Variation:
        c.bandMode = BandMode::Adaptive;
        c.utility.energyAware = false;
        c.compute.placement = Placement::HighRecircFirst;
        c.compute.temporal = TemporalPolicy::None;
        break;

      case Version::Energy:
        c.bandMode = BandMode::None;
        c.utility.penalizeBand = false;
        c.utility.penalizeRate = false;
        c.utility.energyAware = true;
        c.compute.placement = Placement::LowRecircFirst;
        c.compute.temporal = TemporalPolicy::None;
        break;

      case Version::AllNd:
        c.bandMode = BandMode::Adaptive;
        c.utility.energyAware = true;
        c.compute.placement = Placement::HighRecircFirst;
        c.compute.temporal = TemporalPolicy::None;
        break;

      case Version::AllDef:
        c.bandMode = BandMode::Adaptive;
        c.utility.energyAware = true;
        c.compute.placement = Placement::LowRecircFirst;
        c.compute.temporal = TemporalPolicy::BandHours;
        break;

      case Version::VarLowRecirc:
        c.bandMode = BandMode::Fixed;
        c.fixedBandLowC = max_temp_c - 5.0;
        c.fixedBandHighC = max_temp_c;
        c.utility.energyAware = false;
        c.compute.placement = Placement::LowRecircFirst;
        c.compute.temporal = TemporalPolicy::None;
        break;

      case Version::VarHighRecirc:
        c.bandMode = BandMode::Fixed;
        c.fixedBandLowC = max_temp_c - 5.0;
        c.fixedBandHighC = max_temp_c;
        c.utility.energyAware = false;
        c.compute.placement = Placement::HighRecircFirst;
        c.compute.temporal = TemporalPolicy::None;
        break;

      case Version::EnergyDef:
        c.bandMode = BandMode::None;
        c.utility.penalizeBand = false;
        c.utility.penalizeRate = false;
        c.utility.energyAware = true;
        c.compute.placement = Placement::LowRecircFirst;
        c.compute.temporal = TemporalPolicy::ColdHours;
        break;
    }
    return c;
}

CoolAir::CoolAir(const CoolAirConfig &config, model::LearnedBundle bundle,
                 environment::Forecaster *forecaster)
    : _config(config),
      _bundle(std::move(bundle)),
      _forecaster(forecaster),
      _predictor(&_bundle.model, config.horizonSteps),
      _optimizer(config.menu, config.utility),
      _computeOptimizer(config.compute, _bundle.recircRankAscending)
{
    if (!forecaster && config.bandMode == BandMode::Adaptive)
        util::fatal("CoolAir: adaptive band requires a forecaster");
    _band = TemperatureBand::fixed(_config.fixedBandLowC,
                                   _config.fixedBandHighC);
}

void
CoolAir::refreshDay(util::SimTime now)
{
    int day = now.dayOfYear();
    if (day == _bandDay)
        return;
    _bandDay = day;

    if (_forecaster)
        _dayForecast = _forecaster->fullDay(now);
    else
        _dayForecast = environment::Forecast{};

    switch (_config.bandMode) {
      case BandMode::Adaptive:
        _band = selectBand(_dayForecast, _config.band);
        break;
      case BandMode::Fixed:
        _band = TemperatureBand::fixed(_config.fixedBandLowC,
                                       _config.fixedBandHighC);
        break;
      case BandMode::None:
        // A vacuous band; the band penalty is off for these versions,
        // but temporal policies may still consult the forecast.
        _band = TemperatureBand::fixed(_config.band.minC,
                                       _config.utility.maxTempC);
        break;
    }
}

cooling::Regime
CoolAir::regimeFromStatus(const plant::CoolingStatus &cs) const
{
    switch (cs.mode) {
      case cooling::Mode::Closed:
        return cooling::Regime::closed();
      case cooling::Mode::FreeCooling: {
        cooling::Regime r = cooling::Regime::freeCooling(cs.fcFanSpeed);
        r.evaporative = cs.evapOn;
        return r;
      }
      case cooling::Mode::AirConditioning:
        if (cs.compressorSpeed > 0.0)
            return cooling::Regime::acCompressor(cs.compressorSpeed);
        return cooling::Regime::acFanOnly();
    }
    util::panic("CoolAir::regimeFromStatus: unknown mode");
}

CoolAir::Decision
CoolAir::control(const plant::SensorReadings &sensors,
                 const workload::WorkloadStatus &status,
                 const plant::PodLoad &load, util::SimTime now)
{
    refreshDay(now);

    cooling::Regime current = regimeFromStatus(sensors.cooling);

    if (!_havePrev) {
        _prevTemp = sensors.podInletC;
        _prevFan = sensors.cooling.fcFanSpeed;
        _prevOutside = sensors.outsideC;
        _havePrev = true;
    }

    _state.fill(sensors, _prevTemp, _prevFan, _prevOutside, current,
                &load);
    _outlook.materialize(_state, _predictor.horizonSteps(),
                         _bundle.model.config().evapEffectiveness);

    _activePods.clear();
    for (size_t p = 0; p < load.activeServers.size(); ++p) {
        if (load.activeServers[p] > 0)
            _activePods.push_back(int(p));
    }
    if (_activePods.empty()) {
        // Nothing awake (shouldn't happen with a covering subset); fall
        // back to charging every sensor.
        for (size_t p = 0; p < sensors.podInletC.size(); ++p)
            _activePods.push_back(int(p));
    }

    OptimizerDecision opt =
        _batchedCandidates
            ? _optimizer.chooseBatched(_predictor, _state, _outlook,
                                       _activePods, _band)
            : _optimizer.choose(_predictor, _state, _outlook,
                                _activePods, _band, _trajScratch);

    Decision decision;
    decision.regime = opt.regime;
    decision.band = _band;
    decision.penalty = opt.penalty;
    decision.predictedEnergyKwh = opt.energyKwh;
    decision.plan =
        _computeOptimizer.plan(status, _band, _dayForecast, _config.band);

    _prevTemp = sensors.podInletC;
    _prevFan = sensors.cooling.fcFanSpeed;
    _prevOutside = sensors.outsideC;

    return decision;
}

} // namespace core
} // namespace coolair
