#include "core/predictor.hpp"

#include "util/logging.hpp"

namespace coolair {
namespace core {

PredictorState
PredictorState::fromSensors(const plant::SensorReadings &sensors,
                            const std::vector<double> &prev_temp,
                            double prev_fan, double prev_outside,
                            const cooling::Regime &current,
                            const plant::PodLoad *load)
{
    PredictorState st;
    if (load && !load->activeServers.empty()) {
        int pods = int(load->activeServers.size());
        st.podPowerFraction.resize(size_t(pods));
        for (int p = 0; p < pods; ++p)
            st.podPowerFraction[size_t(p)] = load->podPowerFraction(p);
    }
    st.podTempC = sensors.podInletC;
    st.podTempPrevC =
        prev_temp.size() == sensors.podInletC.size() ? prev_temp
                                                     : sensors.podInletC;
    st.coldAbsHumidity = sensors.coldAisleAbsHumidity;
    st.outsideC = sensors.outsideC;
    st.outsidePrevC = prev_outside;
    st.outsideAbsHumidity = sensors.outsideAbsHumidity;
    st.fanSpeedPrev = prev_fan;
    st.dcUtilization = sensors.dcUtilization;
    st.currentRegime = current;
    return st;
}

CoolingPredictor::CoolingPredictor(const model::CoolingModel *model,
                                   int horizon_steps)
    : _model(model), _horizonSteps(horizon_steps)
{
    if (!model)
        util::panic("CoolingPredictor: null model");
    if (horizon_steps <= 0)
        util::fatal("CoolingPredictor: horizon must be positive");
}

Trajectory
CoolingPredictor::predict(const PredictorState &state,
                          const cooling::Regime &candidate) const
{
    Trajectory traj;
    traj.steps.reserve(size_t(_horizonSteps));

    const int pods = int(state.podTempC.size());
    const double step_s = _model->config().stepS;
    const double step_h = step_s / 3600.0;

    std::vector<double> temp = state.podTempC;
    std::vector<double> temp_prev = state.podTempPrevC;
    double abs_h = state.coldAbsHumidity;
    double fan_prev = state.fanSpeedPrev;
    cooling::Regime prev = state.currentRegime;

    double candidate_fan = candidate.mode == cooling::Mode::FreeCooling
                               ? candidate.fanSpeed
                               : 0.0;

    // Evaporative candidates are driven by the pre-cooled intake.
    double outside_c = state.outsideC;
    double outside_prev_c = state.outsidePrevC;
    if (candidate.mode == cooling::Mode::FreeCooling &&
        candidate.evaporative) {
        double rh = physics::relativeHumidity(state.outsideC,
                                              state.outsideAbsHumidity);
        outside_c = physics::evaporativeOutletTemp(
            state.outsideC, rh, _model->config().evapEffectiveness);
        outside_prev_c = outside_c;
    }

    for (int step = 0; step < _horizonSteps; ++step) {
        PredictedStep out;
        out.stepHours = step_h;
        out.podTempC.resize(size_t(pods));

        model::TempInputs tin;
        // Outside conditions held at the current observation across the
        // short horizon — they change far slower than that.
        tin.outsideC = outside_c;
        tin.outsidePrevC = step == 0 ? outside_prev_c : outside_c;
        tin.fanSpeed = candidate_fan;
        tin.fanSpeedPrev = fan_prev;
        tin.dcUtilization = state.dcUtilization;

        for (int p = 0; p < pods; ++p) {
            tin.insideC = temp[size_t(p)];
            tin.insidePrevC = temp_prev[size_t(p)];
            tin.podPowerFraction =
                p < int(state.podPowerFraction.size())
                    ? state.podPowerFraction[size_t(p)]
                    : 0.5;
            out.podTempC[size_t(p)] =
                _model->predictTemp(prev, candidate, p, tin);
        }

        model::HumidityInputs hin;
        hin.insideAbs = abs_h;
        hin.outsideAbs = state.outsideAbsHumidity;
        hin.fanSpeed = candidate_fan;
        double next_abs = _model->predictHumidity(prev, candidate, hin);

        // Relative humidity at the (predicted) cold-aisle temperature.
        double avg_t = 0.0;
        for (double t : out.podTempC)
            avg_t += t;
        avg_t = pods > 0 ? avg_t / pods : 20.0;
        out.rhPercent = physics::relativeHumidity(avg_t, next_abs);

        traj.coolingEnergyKwh +=
            _model->predictCoolingPower(candidate) * step_h / 1000.0;

        temp_prev = temp;
        temp = out.podTempC;
        abs_h = next_abs;
        fan_prev = candidate_fan;
        prev = candidate;

        traj.steps.push_back(std::move(out));
    }
    return traj;
}

} // namespace core
} // namespace coolair
