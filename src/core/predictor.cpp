#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "core/predictor_kernels.hpp"
#include "physics/psychrometrics.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace core {

PredictorState
PredictorState::fromSensors(const plant::SensorReadings &sensors,
                            const std::vector<double> &prev_temp,
                            double prev_fan, double prev_outside,
                            const cooling::Regime &current,
                            const plant::PodLoad *load)
{
    PredictorState st;
    st.fill(sensors, prev_temp, prev_fan, prev_outside, current, load);
    return st;
}

void
PredictorState::fill(const plant::SensorReadings &sensors,
                     const std::vector<double> &prev_temp, double prev_fan,
                     double prev_outside, const cooling::Regime &current,
                     const plant::PodLoad *load)
{
    if (load && !load->activeServers.empty()) {
        int pods = int(load->activeServers.size());
        podPowerFraction.resize(size_t(pods));
        for (int p = 0; p < pods; ++p)
            podPowerFraction[size_t(p)] = load->podPowerFraction(p);
    } else {
        podPowerFraction.clear();
    }
    podTempC.assign(sensors.podInletC.begin(), sensors.podInletC.end());
    if (prev_temp.size() == sensors.podInletC.size())
        podTempPrevC.assign(prev_temp.begin(), prev_temp.end());
    else
        podTempPrevC.assign(sensors.podInletC.begin(),
                            sensors.podInletC.end());
    coldAbsHumidity = sensors.coldAisleAbsHumidity;
    outsideC = sensors.outsideC;
    outsidePrevC = prev_outside;
    outsideAbsHumidity = sensors.outsideAbsHumidity;
    fanSpeedPrev = prev_fan;
    dcUtilization = sensors.dcUtilization;
    currentRegime = current;
}

void
EpochOutlook::materialize(const PredictorState &state, int steps,
                          double evap_effectiveness)
{
    // Outside conditions held at the current observation across the
    // short horizon — they change far slower than that (§3.2).
    outsideC.assign(size_t(std::max(steps, 0)), state.outsideC);
    outsidePrevC = state.outsidePrevC;
    outsideRhPercent = physics::relativeHumidity(state.outsideC,
                                                 state.outsideAbsHumidity);
    evapOutletC = physics::evaporativeOutletTemp(
        state.outsideC, outsideRhPercent, evap_effectiveness);
}

CoolingPredictor::CoolingPredictor(const model::CoolingModel *model,
                                   int horizon_steps)
    : _model(model), _horizonSteps(horizon_steps)
{
    if (!model)
        util::panic("CoolingPredictor: null model");
    if (horizon_steps <= 0)
        util::fatal("CoolingPredictor: horizon must be positive");
}

const CoolingPredictor::ResolvedModels &
CoolingPredictor::resolved(const cooling::TransitionKey &key) const
{
    if (!_resolveCacheReady || _model->revision() != _resolveRevision) {
        _resolveCache.assign(size_t(cooling::TransitionKey::count()),
                             ResolvedModels{});
        _resolveRevision = _model->revision();
        _resolveCacheReady = true;
    }
    ResolvedModels &entry = _resolveCache[size_t(key.index())];
    if (!entry.valid) {
        _model->resolveTempModels(key, entry.temp);
        entry.humidity = _model->resolveHumidityModel(key);

        // Flatten for the batched scorer: transposed (feature-major)
        // weight banks, persistence encoded as an identity row so the
        // collapse kernel needs no null checks.
        constexpr size_t kT = model::TempFeatures::kCount;
        const size_t pods = entry.temp.size();
        entry.tempW.assign(pods * kT, 0.0);
        for (size_t p = 0; p < pods; ++p) {
            if (const model::LinearModel *m = entry.temp[p]) {
                const std::vector<double> &w = m->weights();
                if (w.size() != kT)
                    util::panic(
                        "CoolingPredictor: temp-model arity mismatch");
                for (size_t f = 0; f < kT; ++f)
                    entry.tempW[f * pods + p] = w[f];
            } else {
                entry.tempW[1 * pods + p] = 1.0;  // persistence: T' = T
            }
        }
        entry.humW.fill(0.0);
        if (entry.humidity) {
            const std::vector<double> &w = entry.humidity->weights();
            if (w.size() != entry.humW.size())
                util::panic(
                    "CoolingPredictor: humidity-model arity mismatch");
            std::copy(w.begin(), w.end(), entry.humW.begin());
        } else {
            entry.humW[1] = 1.0;  // persistence: h' = h
        }

        entry.valid = true;
        ++_stats.resolveMisses;
    } else {
        ++_stats.resolveHits;
    }
    return entry;
}

Trajectory
CoolingPredictor::predict(const PredictorState &state,
                          const cooling::Regime &candidate) const
{
    EpochOutlook outlook;
    outlook.materialize(state, _horizonSteps,
                        _model->config().evapEffectiveness);
    Trajectory traj;
    predictInto(state, candidate, outlook, traj);
    return traj;
}

void
CoolingPredictor::predictInto(const PredictorState &state,
                              const cooling::Regime &candidate,
                              const EpochOutlook &outlook,
                              Trajectory &traj) const
{
    ScoreContext none;  // utility == nullptr: roll out without scoring
    double penalty = 0.0;
    (void)predictScoredInto(state, candidate, outlook, none, traj, penalty);
}

void
CoolingPredictor::scoreCandidates(const PredictorState &state,
                                  const cooling::RegimeMenu &menu,
                                  const EpochOutlook &outlook,
                                  const std::vector<int> &activePods,
                                  const TemperatureBand &band,
                                  const UtilityConfig &cfg,
                                  const std::vector<double> &switch_terms,
                                  std::vector<CandidateScore> &out) const
{
    using cooling::RegimeClass;

    const int pods = int(state.podTempC.size());
    const int cands = int(menu.candidates.size());
    const int horizon = _horizonSteps;
    if (pods > _model->config().numPods)
        util::panic("CoolingPredictor: pod out of range");
    if (int(outlook.outsideC.size()) < horizon)
        util::panic("CoolingPredictor: outlook shorter than the horizon");
    if (int(switch_terms.size()) != cands)
        util::panic("scoreCandidates: switch_terms arity mismatch");
    for (int pod : activePods)
        if (pod < 0 || pod >= pods)
            util::panic("trajectoryPenalty: pod index out of range");
    _stats.rollouts += cands;

    const double step_h = _model->config().stepS / 3600.0;
    const RegimeClass cur_cls = cooling::classify(state.currentRegime);

    const size_t n = size_t(cands) * size_t(pods);
    const size_t nh = size_t(cands) * size_t(horizon);
    _ctA0.resize(n); _ctB0.resize(n); _ctC0.resize(n);
    _ctA1.resize(n); _ctB1.resize(n); _ctC1.resize(n);
    _ctT.resize(n); _ctTPrev.resize(n);
    _ctHist.resize(size_t(horizon + 1) * n);
    _ctTmpA.resize(size_t(pods));
    _ctTmpB.resize(size_t(pods));
    _ctTmpC.resize(size_t(pods));
    _chAlpha0.resize(size_t(cands)); _chBeta0.resize(size_t(cands));
    _chAlpha1.resize(size_t(cands)); _chBeta1.resize(size_t(cands));
    _chHist.resize(nh);
    _cAvgT.resize(nh); _cRh.resize(nh);
    _cPowerW.resize(size_t(cands));
    _cPf.resize(size_t(pods));
    _cMask.resize(size_t(pods));
    _cMaskN.resize(n);
    _cPeA.resize(n);
    _cPen.resize(size_t(cands));
    _cFan.resize(size_t(cands));
    _cOutC.resize(size_t(cands));
    _cOutPrev0.resize(size_t(cands));
    _cFanPrev0.resize(size_t(cands));
    _cCandFan.resize(size_t(cands));
    _cBankFirst.resize(size_t(cands));
    _cBankRest.resize(size_t(cands));
    out.assign(size_t(cands), CandidateScore{});

    for (int p = 0; p < pods; ++p)
        _cPf[size_t(p)] = p < int(state.podPowerFraction.size())
                              ? state.podPowerFraction[size_t(p)]
                              : 0.5;
    std::fill(_cMask.begin(), _cMask.end(), 0.0);
    for (int pod : activePods)
        _cMask[size_t(pod)] = 1.0;
    for (int c = 0; c < cands; ++c)
        std::copy(_cMask.begin(), _cMask.end(),
                  _cMaskN.begin() + size_t(c) * size_t(pods));

    // --- Collapse each (candidate, pod) linear model into an affine
    // recurrence T' = a*T + b*Tprev + c.  Per candidate, only two
    // resolved-model sets ever apply (current->candidate at step 0,
    // candidate->candidate after), and the outlook holds every
    // non-state feature constant, so the collapse happens once per
    // rollout instead of per pod per step.  The transposed weight banks
    // (persistence = identity rows) keep the collapse kernel branch-
    // free over contiguous pod lanes.
    const double dc_u = state.dcUtilization;
    bool any_interp = false;

    // Per-epoch memo of the resolved banks by candidate class: the menu
    // reuses a handful of transition keys, so resolve each at most once
    // per epoch instead of per candidate.
    constexpr size_t kCls = size_t(RegimeClass::NumClasses);
    std::array<const ResolvedModels *, kCls> first_by_cls{};
    std::array<const ResolvedModels *, kCls> rest_by_cls{};
    auto first_for = [&](RegimeClass cls) {
        const ResolvedModels *&e = first_by_cls[size_t(cls)];
        if (!e)
            e = &resolved({cur_cls, cls});
        return e;
    };
    auto rest_for = [&](RegimeClass cls) {
        const ResolvedModels *&e = rest_by_cls[size_t(cls)];
        if (!e)
            e = &resolved({cls, cls});
        return e;
    };

    for (int c = 0; c < cands; ++c) {
        const cooling::Regime &candidate = menu.candidates[size_t(c)];
        const double candidate_fan =
            candidate.mode == cooling::Mode::FreeCooling
                ? candidate.fanSpeed
                : 0.0;
        const bool evap = candidate.mode == cooling::Mode::FreeCooling &&
                          candidate.evaporative;
        const RegimeClass cand_cls = cooling::classify(candidate);
        const bool ac_interp =
            candidate.mode == cooling::Mode::AirConditioning &&
            candidate.compressorOn &&
            candidate.compressorSpeed < 1.0 - 1e-9;
        const double interp_s =
            util::clamp(candidate.compressorSpeed, 0.0, 1.0);
        const double fan = ac_interp ? 0.0 : candidate_fan;

        const ResolvedModels *res_first = nullptr;
        const ResolvedModels *res_rest = nullptr;
        const ResolvedModels *res_first_off = nullptr;
        const ResolvedModels *res_rest_off = nullptr;
        if (ac_interp) {
            // cand_cls is AcCompressor here, so the class memo covers
            // the "on" banks; the off banks share one key pair across
            // every interpolated candidate.
            res_first = first_for(RegimeClass::AcCompressor);
            res_rest = rest_for(RegimeClass::AcCompressor);
            res_first_off = first_for(RegimeClass::AcFanOnly);
            res_rest_off = &resolved({cand_cls, RegimeClass::AcFanOnly});
        } else {
            res_first = first_for(cand_cls);
            res_rest = rest_for(cand_cls);
        }

        _cPowerW[size_t(c)] = _model->predictCoolingPower(candidate);

        // Outside features: held at the observation (or the evaporative
        // outlet) for the whole horizon; only outsidePrevC differs at
        // step 0.
        const double out_c =
            evap ? outlook.evapOutletC : outlook.outsideC[0];
        const double out_prev0 =
            evap ? outlook.evapOutletC : outlook.outsidePrevC;

        // Collapse inputs for the fused menu kernel below.
        const size_t base = size_t(c) * size_t(pods);
        _cBankFirst[size_t(c)] = res_first->tempW.data();
        _cBankRest[size_t(c)] = res_rest->tempW.data();
        _cFan[size_t(c)] = fan;
        _cOutC[size_t(c)] = out_c;
        _cOutPrev0[size_t(c)] = out_prev0;
        _cFanPrev0[size_t(c)] = state.fanSpeedPrev;
        _cCandFan[size_t(c)] = candidate_fan;
        any_interp = any_interp || ac_interp;

        // Humidity: h' = alpha*h + beta, constant across the horizon
        // except the step-0 transition model.
        auto collapse_h = [&](const ResolvedModels *res, double &alpha,
                              double &beta) {
            const auto &w = res->humW;
            alpha = w[1] + w[4] * fan;
            beta = w[0] + (w[2] + w[5] * fan) * state.outsideAbsHumidity +
                   w[3] * fan;
        };
        double al_on, be_on;
        collapse_h(res_first, al_on, be_on);
        if (ac_interp) {
            double al_off, be_off;
            collapse_h(res_first_off, al_off, be_off);
            _chAlpha0[size_t(c)] = al_off + (al_on - al_off) * interp_s;
            _chBeta0[size_t(c)] = be_off + (be_on - be_off) * interp_s;
        } else {
            _chAlpha0[size_t(c)] = al_on;
            _chBeta0[size_t(c)] = be_on;
        }
        collapse_h(res_rest, al_on, be_on);
        if (ac_interp) {
            double al_off, be_off;
            collapse_h(res_rest_off, al_off, be_off);
            _chAlpha1[size_t(c)] = al_off + (al_on - al_off) * interp_s;
            _chBeta1[size_t(c)] = be_off + (be_on - be_off) * interp_s;
        } else {
            _chAlpha1[size_t(c)] = al_on;
            _chBeta1[size_t(c)] = be_on;
        }

        // Rollout state + history row 0 (the step-0 rate reference).
        for (int p = 0; p < pods; ++p) {
            _ctT[base + size_t(p)] = state.podTempC[size_t(p)];
            _ctTPrev[base + size_t(p)] = state.podTempPrevC[size_t(p)];
            _ctHist[base + size_t(p)] = state.podTempC[size_t(p)];
        }
    }

    // --- Fused collapse: every candidate's step-0 and steady banks in
    // two kernel calls, from the inputs staged above.
    kernels::collapseMenuN(cands, pods, _cBankFirst.data(), _cFan.data(),
                           _cOutC.data(), _cOutPrev0.data(),
                           _cFanPrev0.data(), dc_u, _cPf.data(),
                           _ctA0.data(), _ctB0.data(), _ctC0.data());
    kernels::collapseMenuN(cands, pods, _cBankRest.data(), _cFan.data(),
                           _cOutC.data(), _cOutC.data(), _cCandFan.data(),
                           dc_u, _cPf.data(), _ctA1.data(), _ctB1.data(),
                           _ctC1.data());
    if (any_interp) {
        // Interpolated AC: blend each candidate's compressor-on affine
        // map toward the compressor-off map by compressor speed (affine
        // maps blend coefficient-wise exactly like outputs).  Every
        // interpolated candidate has fan = 0 and is not evaporative, so
        // one off-bank collapse serves them all.
        auto is_interp = [&](const cooling::Regime &r) {
            return r.mode == cooling::Mode::AirConditioning &&
                   r.compressorOn && r.compressorSpeed < 1.0 - 1e-9;
        };
        const double out_c = outlook.outsideC[0];
        const ResolvedModels &off_first =
            resolved({cur_cls, RegimeClass::AcFanOnly});
        kernels::collapseAffineN(pods, off_first.tempW.data(), 0.0, out_c,
                                 outlook.outsidePrevC, state.fanSpeedPrev,
                                 dc_u, _cPf.data(), _ctTmpA.data(),
                                 _ctTmpB.data(), _ctTmpC.data());
        for (int c = 0; c < cands; ++c) {
            const cooling::Regime &candidate = menu.candidates[size_t(c)];
            if (!is_interp(candidate))
                continue;
            const size_t base = size_t(c) * size_t(pods);
            kernels::blendAffineN(
                pods, _ctTmpA.data(), _ctTmpB.data(), _ctTmpC.data(),
                util::clamp(candidate.compressorSpeed, 0.0, 1.0),
                _ctA0.data() + base, _ctB0.data() + base,
                _ctC0.data() + base);
        }
        const ResolvedModels &off_rest =
            resolved({RegimeClass::AcCompressor, RegimeClass::AcFanOnly});
        kernels::collapseAffineN(pods, off_rest.tempW.data(), 0.0, out_c,
                                 out_c, 0.0, dc_u, _cPf.data(),
                                 _ctTmpA.data(), _ctTmpB.data(),
                                 _ctTmpC.data());
        for (int c = 0; c < cands; ++c) {
            const cooling::Regime &candidate = menu.candidates[size_t(c)];
            if (!is_interp(candidate))
                continue;
            const size_t base = size_t(c) * size_t(pods);
            kernels::blendAffineN(
                pods, _ctTmpA.data(), _ctTmpB.data(), _ctTmpC.data(),
                util::clamp(candidate.compressorSpeed, 0.0, 1.0),
                _ctA1.data() + base, _ctB1.data() + base,
                _ctC1.data() + base);
        }
    }

    // --- Advance all candidates x pods in one pass, keeping the whole
    // temperature history for the penalty kernel.
    kernels::rolloutN(int64_t(n), horizon, _ctA0.data(), _ctB0.data(),
                      _ctC0.data(), _ctA1.data(), _ctB1.data(),
                      _ctC1.data(), _ctT.data(), _ctTPrev.data(),
                      _ctHist.data());

    // Per-step cold-aisle averages and the humidity recurrences, then
    // one batched RH conversion for the whole candidates x steps grid.
    if (pods > 0)
        kernels::podAvgN(cands, pods, horizon, _ctHist.data(),
                         _cAvgT.data());
    else
        std::fill(_cAvgT.begin(), _cAvgT.end(), 20.0);
    for (int c = 0; c < cands; ++c) {
        const size_t hbase = size_t(c) * size_t(horizon);
        double h = state.coldAbsHumidity;
        for (int step = 0; step < horizon; ++step) {
            h = (step == 0 ? _chAlpha0[size_t(c)] : _chAlpha1[size_t(c)]) *
                    h +
                (step == 0 ? _chBeta0[size_t(c)] : _chBeta1[size_t(c)]);
            _chHist[hbase + size_t(step)] = h;
        }
    }
    physics::relativeHumidityN(_cAvgT.data(), _chHist.data(), _cRh.data(),
                               int(nh));

    // --- Penalty pass: the temperature terms run in the kernel (each
    // max()/mask term is zero exactly when the scalar branch would not
    // fire); humidity, energy, and the AC-full surcharge finish here.
    const double w_mt = cfg.penalizeMaxTemp ? 2.0 : 0.0;   // 1 / 0.5 C
    const double w_band = cfg.penalizeBand ? 2.0 : 0.0;
    const double w_rate = cfg.penalizeRate ? 1.0 : 0.0;
    const double w_center =
        cfg.penalizeBand && cfg.centeringWeightPerC > 0.0
            ? cfg.centeringWeightPerC
            : 0.0;
    const double inv_h = 1.0 / std::max(step_h, 1e-9);
    kernels::penaltyN(cands, pods, horizon, _ctHist.data(),
                      _cMaskN.data(), w_mt, cfg.maxTempC, w_band,
                      band.lowC, band.highC, w_rate, inv_h, step_h,
                      cfg.maxRateCPerHour, w_center, band.center(),
                      _cPeA.data(), _cPen.data());

    for (int c = 0; c < cands; ++c) {
        const cooling::Regime &candidate = menu.candidates[size_t(c)];
        CandidateScore &cs = out[size_t(c)];
        const size_t hbase = size_t(c) * size_t(horizon);
        double pen = _cPen[size_t(c)];
        if (cfg.penalizeHumidity) {
            for (int step = 0; step < horizon; ++step) {
                const double rh = _cRh[hbase + size_t(step)];
                if (rh > cfg.humidityMaxPercent)
                    pen += (rh - cfg.humidityMaxPercent) / 5.0;
                else if (rh < cfg.humidityMinPercent)
                    pen += (cfg.humidityMinPercent - rh) / 5.0;
            }
        }
        cs.energyKwh =
            _cPowerW[size_t(c)] * step_h / 1000.0 * double(horizon);

        const bool ac_full =
            cfg.penalizeAcFull &&
            candidate.mode == cooling::Mode::AirConditioning &&
            candidate.compressorOn &&
            candidate.compressorSpeed >= 1.0 - 1e-9;
        if (ac_full)
            pen += double(horizon);
        cs.penalty = pen;
        cs.score = cs.penalty;
        if (cfg.energyAware)
            cs.score += cfg.energyWeightPerKwh * cs.energyKwh;
        cs.score += switch_terms[size_t(c)];
    }
}

bool
CoolingPredictor::predictScoredInto(const PredictorState &state,
                                    const cooling::Regime &candidate,
                                    const EpochOutlook &outlook,
                                    const ScoreContext &score,
                                    Trajectory &traj, double &penalty) const
{
    using cooling::RegimeClass;
    using cooling::TransitionKey;

    ++_stats.rollouts;

    const int pods = int(state.podTempC.size());
    if (pods > _model->config().numPods)
        util::panic("CoolingPredictor: pod out of range");
    if (int(outlook.outsideC.size()) < _horizonSteps)
        util::panic("CoolingPredictor: outlook shorter than the horizon");

    const double step_h = _model->config().stepS / 3600.0;

    traj.coolingEnergyKwh = 0.0;
    traj.steps.resize(size_t(_horizonSteps));

    _temp.assign(state.podTempC.begin(), state.podTempC.end());
    _tempPrev.assign(state.podTempPrevC.begin(), state.podTempPrevC.end());
    double abs_h = state.coldAbsHumidity;
    double fan_prev = state.fanSpeedPrev;

    const double candidate_fan =
        candidate.mode == cooling::Mode::FreeCooling ? candidate.fanSpeed
                                                     : 0.0;
    // Evaporative candidates are driven by the pre-cooled intake.
    const bool evap = candidate.mode == cooling::Mode::FreeCooling &&
                      candidate.evaporative;

    // Only two transition keys appear in a rollout — (current ->
    // candidate) at step 0 and (candidate -> candidate) after — so the
    // per-pod model lookup + fallback chain runs twice per rollout
    // instead of per pod per step.  Variable-speed AC candidates
    // interpolate compressor-on and -off models, needing both sets.
    const RegimeClass cur_cls = cooling::classify(state.currentRegime);
    const RegimeClass cand_cls = cooling::classify(candidate);
    const bool ac_interp =
        candidate.mode == cooling::Mode::AirConditioning &&
        candidate.compressorOn && candidate.compressorSpeed < 1.0 - 1e-9;
    const double interp_s =
        util::clamp(candidate.compressorSpeed, 0.0, 1.0);

    const ResolvedModels *res_first = nullptr;
    const ResolvedModels *res_rest = nullptr;
    const ResolvedModels *res_first_off = nullptr;
    const ResolvedModels *res_rest_off = nullptr;
    if (ac_interp) {
        res_first = &resolved({cur_cls, RegimeClass::AcCompressor});
        res_rest = &resolved({cand_cls, RegimeClass::AcCompressor});
        res_first_off = &resolved({cur_cls, RegimeClass::AcFanOnly});
        res_rest_off = &resolved({cand_cls, RegimeClass::AcFanOnly});
    } else {
        res_first = &resolved({cur_cls, cand_cls});
        res_rest = &resolved({cand_cls, cand_cls});
    }

    // Cooling power depends only on the candidate, not the step.
    const double power_w = _model->predictCoolingPower(candidate);

    // Everything about the §3.2 penalty that doesn't vary per step.
    penalty = 0.0;
    const bool scoring = score.utility != nullptr;
    bool ac_full = false;
    bool can_prune = false;
    if (scoring) {
        const UtilityConfig &cfg = *score.utility;
        for (int pod : *score.activePods)
            if (pod < 0 || pod >= pods)
                util::panic("trajectoryPenalty: pod index out of range");
        ac_full = cfg.penalizeAcFull &&
                  candidate.mode == cooling::Mode::AirConditioning &&
                  candidate.compressorOn &&
                  candidate.compressorSpeed >= 1.0 - 1e-9;
        // A negative energy weight would make the partial energy term an
        // upper bound on the final one, breaking the lower-bound
        // argument — never abandon in that configuration.
        can_prune = !cfg.energyAware || cfg.energyWeightPerKwh >= 0.0;
    }

    for (int step = 0; step < _horizonSteps; ++step) {
        const bool first = step == 0;
        PredictedStep &out = traj.steps[size_t(step)];
        out.stepHours = step_h;
        out.podTempC.resize(size_t(pods));

        model::TempInputs tin;
        tin.outsideC = evap ? outlook.evapOutletC
                            : outlook.outsideC[size_t(step)];
        tin.outsidePrevC =
            evap ? outlook.evapOutletC
                 : (first ? outlook.outsidePrevC
                          : outlook.outsideC[size_t(step - 1)]);
        // Interpolated-AC rollouts query with fan speed forced to zero,
        // matching CoolingModel::predictTemp's in_ac construction (the
        // candidate fan is already zero for AC modes).
        tin.fanSpeed = ac_interp ? 0.0 : candidate_fan;
        tin.fanSpeedPrev = fan_prev;
        tin.dcUtilization = state.dcUtilization;

        const auto &m_on = (first ? res_first : res_rest)->temp;
        const auto &m_off =
            ac_interp ? (first ? res_first_off : res_rest_off)->temp
                      : (first ? res_first : res_rest)->temp;
        for (int p = 0; p < pods; ++p) {
            tin.insideC = _temp[size_t(p)];
            tin.insidePrevC = _tempPrev[size_t(p)];
            tin.podPowerFraction =
                p < int(state.podPowerFraction.size())
                    ? state.podPowerFraction[size_t(p)]
                    : 0.5;
            double predicted;
            if (ac_interp) {
                double t_on = model::CoolingModel::predictTempWith(
                    m_on[size_t(p)], tin);
                double t_off = model::CoolingModel::predictTempWith(
                    m_off[size_t(p)], tin);
                predicted = t_off + (t_on - t_off) * interp_s;
            } else {
                predicted = model::CoolingModel::predictTempWith(
                    m_on[size_t(p)], tin);
            }
            out.podTempC[size_t(p)] = predicted;
        }

        model::HumidityInputs hin;
        hin.insideAbs = abs_h;
        hin.outsideAbs = state.outsideAbsHumidity;
        hin.fanSpeed = ac_interp ? 0.0 : candidate_fan;
        double next_abs;
        if (ac_interp) {
            double h_on = model::CoolingModel::predictHumidityWith(
                (first ? res_first : res_rest)->humidity, hin);
            double h_off = model::CoolingModel::predictHumidityWith(
                (first ? res_first_off : res_rest_off)->humidity, hin);
            next_abs = h_off + (h_on - h_off) * interp_s;
        } else {
            next_abs = model::CoolingModel::predictHumidityWith(
                (first ? res_first : res_rest)->humidity, hin);
        }

        // Relative humidity at the (predicted) cold-aisle temperature.
        double avg_t = 0.0;
        for (double t : out.podTempC)
            avg_t += t;
        avg_t = pods > 0 ? avg_t / pods : 20.0;
        out.rhPercent = physics::relativeHumidity(avg_t, next_abs);

        traj.coolingEnergyKwh += power_w * step_h / 1000.0;

        if (scoring) {
            // Accumulate this step's penalty terms in exactly
            // trajectoryPenalty()'s order so surviving candidates score
            // bit-identically to the unfused path.
            const UtilityConfig &cfg = *score.utility;
            const std::vector<double> &prevT =
                first ? state.podTempC
                      : traj.steps[size_t(step - 1)].podTempC;
            for (int pod : *score.activePods) {
                double t = out.podTempC[size_t(pod)];

                if (cfg.penalizeMaxTemp && t > cfg.maxTempC)
                    penalty += (t - cfg.maxTempC) / 0.5;

                if (cfg.penalizeBand)
                    penalty += score.band->violation(t) / 0.5;

                if (cfg.penalizeRate && pod < int(prevT.size())) {
                    double rate = std::fabs(t - prevT[size_t(pod)]) /
                                  std::max(out.stepHours, 1e-9);
                    if (rate > cfg.maxRateCPerHour) {
                        penalty += (rate - cfg.maxRateCPerHour) *
                                   out.stepHours;
                    }
                }
            }
            if (cfg.penalizeHumidity) {
                if (out.rhPercent > cfg.humidityMaxPercent) {
                    penalty +=
                        (out.rhPercent - cfg.humidityMaxPercent) / 5.0;
                } else if (out.rhPercent < cfg.humidityMinPercent) {
                    penalty +=
                        (cfg.humidityMinPercent - out.rhPercent) / 5.0;
                }
            }
            if (ac_full)
                penalty += 1.0;

            if (can_prune) {
                // Lower bound on the final score, built in the
                // optimizer's exact operation order.  All remaining
                // increments are non-negative and FP accumulation of
                // non-negative terms is monotone, so reaching the
                // abandonment threshold here proves the full score
                // would too.
                double bound = penalty;
                if (cfg.energyAware)
                    bound +=
                        cfg.energyWeightPerKwh * traj.coolingEnergyKwh;
                bound += score.switchTerm;
                if (bound >= score.abandonAtScore) {
                    ++_stats.rolloutsAbandoned;
                    return false;
                }
            }
        }

        std::swap(_temp, _tempPrev);
        _temp.assign(out.podTempC.begin(), out.podTempC.end());
        abs_h = next_abs;
        fan_prev = candidate_fan;
    }

    if (scoring) {
        const UtilityConfig &cfg = *score.utility;
        if (cfg.penalizeBand && cfg.centeringWeightPerC > 0.0 &&
            !traj.steps.empty()) {
            const PredictedStep &last = traj.steps.back();
            double center = score.band->center();
            for (int pod : *score.activePods) {
                penalty += cfg.centeringWeightPerC *
                           std::fabs(last.podTempC[size_t(pod)] - center);
            }
        }
    }
    return true;
}

} // namespace core
} // namespace coolair
