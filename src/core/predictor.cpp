#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace core {

PredictorState
PredictorState::fromSensors(const plant::SensorReadings &sensors,
                            const std::vector<double> &prev_temp,
                            double prev_fan, double prev_outside,
                            const cooling::Regime &current,
                            const plant::PodLoad *load)
{
    PredictorState st;
    st.fill(sensors, prev_temp, prev_fan, prev_outside, current, load);
    return st;
}

void
PredictorState::fill(const plant::SensorReadings &sensors,
                     const std::vector<double> &prev_temp, double prev_fan,
                     double prev_outside, const cooling::Regime &current,
                     const plant::PodLoad *load)
{
    if (load && !load->activeServers.empty()) {
        int pods = int(load->activeServers.size());
        podPowerFraction.resize(size_t(pods));
        for (int p = 0; p < pods; ++p)
            podPowerFraction[size_t(p)] = load->podPowerFraction(p);
    } else {
        podPowerFraction.clear();
    }
    podTempC.assign(sensors.podInletC.begin(), sensors.podInletC.end());
    if (prev_temp.size() == sensors.podInletC.size())
        podTempPrevC.assign(prev_temp.begin(), prev_temp.end());
    else
        podTempPrevC.assign(sensors.podInletC.begin(),
                            sensors.podInletC.end());
    coldAbsHumidity = sensors.coldAisleAbsHumidity;
    outsideC = sensors.outsideC;
    outsidePrevC = prev_outside;
    outsideAbsHumidity = sensors.outsideAbsHumidity;
    fanSpeedPrev = prev_fan;
    dcUtilization = sensors.dcUtilization;
    currentRegime = current;
}

void
EpochOutlook::materialize(const PredictorState &state, int steps,
                          double evap_effectiveness)
{
    // Outside conditions held at the current observation across the
    // short horizon — they change far slower than that (§3.2).
    outsideC.assign(size_t(std::max(steps, 0)), state.outsideC);
    outsidePrevC = state.outsidePrevC;
    outsideRhPercent = physics::relativeHumidity(state.outsideC,
                                                 state.outsideAbsHumidity);
    evapOutletC = physics::evaporativeOutletTemp(
        state.outsideC, outsideRhPercent, evap_effectiveness);
}

CoolingPredictor::CoolingPredictor(const model::CoolingModel *model,
                                   int horizon_steps)
    : _model(model), _horizonSteps(horizon_steps)
{
    if (!model)
        util::panic("CoolingPredictor: null model");
    if (horizon_steps <= 0)
        util::fatal("CoolingPredictor: horizon must be positive");
}

const CoolingPredictor::ResolvedModels &
CoolingPredictor::resolved(const cooling::TransitionKey &key) const
{
    if (!_resolveCacheReady || _model->revision() != _resolveRevision) {
        _resolveCache.assign(size_t(cooling::TransitionKey::count()),
                             ResolvedModels{});
        _resolveRevision = _model->revision();
        _resolveCacheReady = true;
    }
    ResolvedModels &entry = _resolveCache[size_t(key.index())];
    if (!entry.valid) {
        _model->resolveTempModels(key, entry.temp);
        entry.humidity = _model->resolveHumidityModel(key);
        entry.valid = true;
        ++_stats.resolveMisses;
    } else {
        ++_stats.resolveHits;
    }
    return entry;
}

Trajectory
CoolingPredictor::predict(const PredictorState &state,
                          const cooling::Regime &candidate) const
{
    EpochOutlook outlook;
    outlook.materialize(state, _horizonSteps,
                        _model->config().evapEffectiveness);
    Trajectory traj;
    predictInto(state, candidate, outlook, traj);
    return traj;
}

void
CoolingPredictor::predictInto(const PredictorState &state,
                              const cooling::Regime &candidate,
                              const EpochOutlook &outlook,
                              Trajectory &traj) const
{
    ScoreContext none;  // utility == nullptr: roll out without scoring
    double penalty = 0.0;
    (void)predictScoredInto(state, candidate, outlook, none, traj, penalty);
}

bool
CoolingPredictor::predictScoredInto(const PredictorState &state,
                                    const cooling::Regime &candidate,
                                    const EpochOutlook &outlook,
                                    const ScoreContext &score,
                                    Trajectory &traj, double &penalty) const
{
    using cooling::RegimeClass;
    using cooling::TransitionKey;

    ++_stats.rollouts;

    const int pods = int(state.podTempC.size());
    if (pods > _model->config().numPods)
        util::panic("CoolingPredictor: pod out of range");
    if (int(outlook.outsideC.size()) < _horizonSteps)
        util::panic("CoolingPredictor: outlook shorter than the horizon");

    const double step_h = _model->config().stepS / 3600.0;

    traj.coolingEnergyKwh = 0.0;
    traj.steps.resize(size_t(_horizonSteps));

    _temp.assign(state.podTempC.begin(), state.podTempC.end());
    _tempPrev.assign(state.podTempPrevC.begin(), state.podTempPrevC.end());
    double abs_h = state.coldAbsHumidity;
    double fan_prev = state.fanSpeedPrev;

    const double candidate_fan =
        candidate.mode == cooling::Mode::FreeCooling ? candidate.fanSpeed
                                                     : 0.0;
    // Evaporative candidates are driven by the pre-cooled intake.
    const bool evap = candidate.mode == cooling::Mode::FreeCooling &&
                      candidate.evaporative;

    // Only two transition keys appear in a rollout — (current ->
    // candidate) at step 0 and (candidate -> candidate) after — so the
    // per-pod model lookup + fallback chain runs twice per rollout
    // instead of per pod per step.  Variable-speed AC candidates
    // interpolate compressor-on and -off models, needing both sets.
    const RegimeClass cur_cls = cooling::classify(state.currentRegime);
    const RegimeClass cand_cls = cooling::classify(candidate);
    const bool ac_interp =
        candidate.mode == cooling::Mode::AirConditioning &&
        candidate.compressorOn && candidate.compressorSpeed < 1.0 - 1e-9;
    const double interp_s =
        util::clamp(candidate.compressorSpeed, 0.0, 1.0);

    const ResolvedModels *res_first = nullptr;
    const ResolvedModels *res_rest = nullptr;
    const ResolvedModels *res_first_off = nullptr;
    const ResolvedModels *res_rest_off = nullptr;
    if (ac_interp) {
        res_first = &resolved({cur_cls, RegimeClass::AcCompressor});
        res_rest = &resolved({cand_cls, RegimeClass::AcCompressor});
        res_first_off = &resolved({cur_cls, RegimeClass::AcFanOnly});
        res_rest_off = &resolved({cand_cls, RegimeClass::AcFanOnly});
    } else {
        res_first = &resolved({cur_cls, cand_cls});
        res_rest = &resolved({cand_cls, cand_cls});
    }

    // Cooling power depends only on the candidate, not the step.
    const double power_w = _model->predictCoolingPower(candidate);

    // Everything about the §3.2 penalty that doesn't vary per step.
    penalty = 0.0;
    const bool scoring = score.utility != nullptr;
    bool ac_full = false;
    bool can_prune = false;
    if (scoring) {
        const UtilityConfig &cfg = *score.utility;
        for (int pod : *score.activePods)
            if (pod < 0 || pod >= pods)
                util::panic("trajectoryPenalty: pod index out of range");
        ac_full = cfg.penalizeAcFull &&
                  candidate.mode == cooling::Mode::AirConditioning &&
                  candidate.compressorOn &&
                  candidate.compressorSpeed >= 1.0 - 1e-9;
        // A negative energy weight would make the partial energy term an
        // upper bound on the final one, breaking the lower-bound
        // argument — never abandon in that configuration.
        can_prune = !cfg.energyAware || cfg.energyWeightPerKwh >= 0.0;
    }

    for (int step = 0; step < _horizonSteps; ++step) {
        const bool first = step == 0;
        PredictedStep &out = traj.steps[size_t(step)];
        out.stepHours = step_h;
        out.podTempC.resize(size_t(pods));

        model::TempInputs tin;
        tin.outsideC = evap ? outlook.evapOutletC
                            : outlook.outsideC[size_t(step)];
        tin.outsidePrevC =
            evap ? outlook.evapOutletC
                 : (first ? outlook.outsidePrevC
                          : outlook.outsideC[size_t(step - 1)]);
        // Interpolated-AC rollouts query with fan speed forced to zero,
        // matching CoolingModel::predictTemp's in_ac construction (the
        // candidate fan is already zero for AC modes).
        tin.fanSpeed = ac_interp ? 0.0 : candidate_fan;
        tin.fanSpeedPrev = fan_prev;
        tin.dcUtilization = state.dcUtilization;

        const auto &m_on = (first ? res_first : res_rest)->temp;
        const auto &m_off =
            ac_interp ? (first ? res_first_off : res_rest_off)->temp
                      : (first ? res_first : res_rest)->temp;
        for (int p = 0; p < pods; ++p) {
            tin.insideC = _temp[size_t(p)];
            tin.insidePrevC = _tempPrev[size_t(p)];
            tin.podPowerFraction =
                p < int(state.podPowerFraction.size())
                    ? state.podPowerFraction[size_t(p)]
                    : 0.5;
            double predicted;
            if (ac_interp) {
                double t_on = model::CoolingModel::predictTempWith(
                    m_on[size_t(p)], tin);
                double t_off = model::CoolingModel::predictTempWith(
                    m_off[size_t(p)], tin);
                predicted = t_off + (t_on - t_off) * interp_s;
            } else {
                predicted = model::CoolingModel::predictTempWith(
                    m_on[size_t(p)], tin);
            }
            out.podTempC[size_t(p)] = predicted;
        }

        model::HumidityInputs hin;
        hin.insideAbs = abs_h;
        hin.outsideAbs = state.outsideAbsHumidity;
        hin.fanSpeed = ac_interp ? 0.0 : candidate_fan;
        double next_abs;
        if (ac_interp) {
            double h_on = model::CoolingModel::predictHumidityWith(
                (first ? res_first : res_rest)->humidity, hin);
            double h_off = model::CoolingModel::predictHumidityWith(
                (first ? res_first_off : res_rest_off)->humidity, hin);
            next_abs = h_off + (h_on - h_off) * interp_s;
        } else {
            next_abs = model::CoolingModel::predictHumidityWith(
                (first ? res_first : res_rest)->humidity, hin);
        }

        // Relative humidity at the (predicted) cold-aisle temperature.
        double avg_t = 0.0;
        for (double t : out.podTempC)
            avg_t += t;
        avg_t = pods > 0 ? avg_t / pods : 20.0;
        out.rhPercent = physics::relativeHumidity(avg_t, next_abs);

        traj.coolingEnergyKwh += power_w * step_h / 1000.0;

        if (scoring) {
            // Accumulate this step's penalty terms in exactly
            // trajectoryPenalty()'s order so surviving candidates score
            // bit-identically to the unfused path.
            const UtilityConfig &cfg = *score.utility;
            const std::vector<double> &prevT =
                first ? state.podTempC
                      : traj.steps[size_t(step - 1)].podTempC;
            for (int pod : *score.activePods) {
                double t = out.podTempC[size_t(pod)];

                if (cfg.penalizeMaxTemp && t > cfg.maxTempC)
                    penalty += (t - cfg.maxTempC) / 0.5;

                if (cfg.penalizeBand)
                    penalty += score.band->violation(t) / 0.5;

                if (cfg.penalizeRate && pod < int(prevT.size())) {
                    double rate = std::fabs(t - prevT[size_t(pod)]) /
                                  std::max(out.stepHours, 1e-9);
                    if (rate > cfg.maxRateCPerHour) {
                        penalty += (rate - cfg.maxRateCPerHour) *
                                   out.stepHours;
                    }
                }
            }
            if (cfg.penalizeHumidity) {
                if (out.rhPercent > cfg.humidityMaxPercent) {
                    penalty +=
                        (out.rhPercent - cfg.humidityMaxPercent) / 5.0;
                } else if (out.rhPercent < cfg.humidityMinPercent) {
                    penalty +=
                        (cfg.humidityMinPercent - out.rhPercent) / 5.0;
                }
            }
            if (ac_full)
                penalty += 1.0;

            if (can_prune) {
                // Lower bound on the final score, built in the
                // optimizer's exact operation order.  All remaining
                // increments are non-negative and FP accumulation of
                // non-negative terms is monotone, so reaching the
                // abandonment threshold here proves the full score
                // would too.
                double bound = penalty;
                if (cfg.energyAware)
                    bound +=
                        cfg.energyWeightPerKwh * traj.coolingEnergyKwh;
                bound += score.switchTerm;
                if (bound >= score.abandonAtScore) {
                    ++_stats.rolloutsAbandoned;
                    return false;
                }
            }
        }

        std::swap(_temp, _tempPrev);
        _temp.assign(out.podTempC.begin(), out.podTempC.end());
        abs_h = next_abs;
        fan_prev = candidate_fan;
    }

    if (scoring) {
        const UtilityConfig &cfg = *score.utility;
        if (cfg.penalizeBand && cfg.centeringWeightPerC > 0.0 &&
            !traj.steps.empty()) {
            const PredictedStep &last = traj.steps.back();
            double center = score.band->center();
            for (int pod : *score.activePods) {
                penalty += cfg.centeringWeightPerC *
                           std::fabs(last.podTempC[size_t(pod)] - center);
            }
        }
    }
    return true;
}

} // namespace core
} // namespace coolair
