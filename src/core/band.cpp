#include "core/band.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace core {

TemperatureBand
TemperatureBand::fixed(double low_c, double high_c)
{
    if (high_c < low_c)
        util::panic("TemperatureBand::fixed: inverted band");
    TemperatureBand band;
    band.lowC = low_c;
    band.highC = high_c;
    return band;
}

TemperatureBand
selectBand(const environment::Forecast &forecast, const BandConfig &config)
{
    TemperatureBand band;
    double center;
    if (forecast.empty()) {
        center = config.maxC - 0.5 * config.widthC;
    } else {
        center = forecast.meanTempC() + config.offsetC;
    }
    band.lowC = center - 0.5 * config.widthC;
    band.highC = center + 0.5 * config.widthC;

    if (band.highC > config.maxC) {
        band.highC = config.maxC;
        band.lowC = config.maxC - config.widthC;
        band.slidToMax = true;
    }
    if (band.lowC < config.minC) {
        band.lowC = config.minC;
        band.highC = std::min(config.minC + config.widthC, config.maxC);
        band.slidToMin = true;
    }
    return band;
}

bool
temporalSchedulingFutile(const environment::Forecast &forecast,
                         const TemperatureBand &band,
                         const BandConfig &config)
{
    if (band.slidToMax || band.slidToMin)
        return true;
    if (forecast.empty())
        return true;
    // Outside-air coordinates of the band.
    double lo = band.lowC - config.offsetC;
    double hi = band.highC - config.offsetC;
    for (const auto &h : forecast.hours) {
        if (h.tempC >= lo && h.tempC <= hi)
            return false;
    }
    return true;
}

} // namespace core
} // namespace coolair
