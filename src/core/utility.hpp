#ifndef COOLAIR_CORE_UTILITY_HPP
#define COOLAIR_CORE_UTILITY_HPP

/**
 * @file
 * The Cooling Optimizer's utility (penalty) function, paper §3.2:
 * identical penalty units are charged for each 0.5 °C above the maximum
 * temperature, each 1 °C/hour of change rate beyond 20 °C/hour, each
 * 0.5 °C outside the temperature band, each 5 % of relative humidity
 * outside the humidity band, and for running the AC at full compressor
 * speed.  The value of a cooling regime is the sum over the sensors of
 * all active pods along the predicted trajectory.  Table 1's CoolAir
 * versions enable different penalty components, so each component has a
 * switch here.
 */

#include <vector>

#include "cooling/regime.hpp"
#include "core/band.hpp"

namespace coolair {
namespace core {

/** Which penalty components a CoolAir version cares about. */
struct UtilityConfig
{
    /** Penalize exceeding the desired maximum temperature. */
    bool penalizeMaxTemp = true;
    double maxTempC = 30.0;

    /** Penalize readings outside the temperature band. */
    bool penalizeBand = true;

    /** Penalize air-temperature change rate beyond the ASHRAE limit. */
    bool penalizeRate = true;
    double maxRateCPerHour = 20.0;

    /** Penalize relative humidity outside the humidity band. */
    bool penalizeHumidity = true;
    double humidityMaxPercent = 80.0;
    double humidityMinPercent = 10.0;

    /** Penalize turning the AC compressor on at full speed. */
    bool penalizeAcFull = true;

    /**
     * If true, predicted cooling energy breaks ties (and nudges) among
     * near-equal candidates.  Weight per kWh, small relative to one
     * violation unit.
     */
    bool energyAware = true;
    double energyWeightPerKwh = 5.0;

    /**
     * Penalty units charged when a candidate changes the cooling-regime
     * class (closed / fc / ac-fan / ac-comp) relative to the current
     * one.  Damps chattering between strong cooling and sealing when
     * model error makes both look attractive in alternation; large
     * violations still force a switch.
     */
    double switchPenalty = 1.0;

    /**
     * Small preference for trajectories that end near the band center
     * (units per °C per sensor, charged on the final predicted step
     * only).  Keeps the controller from coasting to a band edge and
     * then needing a large correction; only meaningful when the band
     * penalty is enabled.
     */
    double centeringWeightPerC = 0.0;
};

/** One evaluated step of a predicted trajectory. */
struct PredictedStep
{
    std::vector<double> podTempC;
    double rhPercent = 50.0;
    double stepHours = 1.0 / 30.0;   ///< Model step expressed in hours.
};

/**
 * Penalty for one predicted trajectory under @p regime.
 *
 * @param steps        predicted states, oldest first
 * @param initialTempC pod temperatures at the start of the horizon
 * @param activePods   pods with awake servers (penalties count these)
 * @param band         today's temperature band
 * @param regime       the candidate being evaluated
 * @param config       enabled components and thresholds
 */
double trajectoryPenalty(const std::vector<PredictedStep> &steps,
                         const std::vector<double> &initialTempC,
                         const std::vector<int> &activePods,
                         const TemperatureBand &band,
                         const cooling::Regime &regime,
                         const UtilityConfig &config);

} // namespace core
} // namespace coolair

#endif // COOLAIR_CORE_UTILITY_HPP
