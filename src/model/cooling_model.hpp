#ifndef COOLAIR_MODEL_COOLING_MODEL_HPP
#define COOLAIR_MODEL_COOLING_MODEL_HPP

/**
 * @file
 * The learned Cooling Model: one linear temperature model per pod per
 * (regime, transition) key, one humidity model per key, and a power
 * model (piece-wise linear in fan speed for free cooling, constants for
 * the AC modes) — exactly the structure of paper §3.1.
 *
 * Prediction-time conventions reproduce §5.1's Smooth-Sim construction:
 * free-cooling behavior below the abrupt unit's 15 % minimum speed is
 * *extrapolated* (the linear models accept any fan value), and the
 * variable-speed AC is *interpolated* between the compressor-on and
 * compressor-off models by compressor speed.
 */

#include <cstdint>
#include <vector>

#include "cooling/regime.hpp"
#include "model/features.hpp"
#include "model/linreg.hpp"
#include "model/model_tree.hpp"

namespace coolair {
namespace model {

/** Structural configuration of a cooling model. */
struct CoolingModelConfig
{
    int numPods = 8;

    /** Model step: predictions are this far into the future [s]. */
    double stepS = 120.0;

    /**
     * Evaporative-cooler effectiveness of the plant the model was
     * learned for.  Consumers substitute the evaporative *intake*
     * temperature for the outside-temperature feature when predicting
     * FcEvap regimes, since the driving temperature under evaporation
     * is the pre-cooled intake, not the raw dry bulb.
     */
    double evapEffectiveness = 0.75;
};

/**
 * The fitted model bank.  Invalid (unfitted) entries fall back first to
 * the steady-state model of the destination regime class, then to
 * persistence (predicting no change).
 */
class CoolingModel
{
  public:
    explicit CoolingModel(const CoolingModelConfig &config = {});

    const CoolingModelConfig &config() const { return _config; }

    /** Install the temperature model for (key, pod). */
    void setTempModel(const cooling::TransitionKey &key, int pod,
                      LinearModel model);

    /** Install the humidity model for key. */
    void setHumidityModel(const cooling::TransitionKey &key,
                          LinearModel model);

    /** Install the free-cooling power model (features [1, speed]). */
    void setFcPowerModel(ModelTree tree)
    {
        _fcPower = std::move(tree);
        ++_revision;
    }

    /** Install AC power constants. */
    void setAcPower(double fan_only_w, double full_w);

    /** True if a fitted temperature model exists for (key, pod). */
    bool hasTempModel(const cooling::TransitionKey &key, int pod) const;

    /**
     * Predict pod temperature one model step ahead under a transition
     * from @p prev to @p next.  Handles key fallback, FC extrapolation,
     * and AC compressor-speed interpolation.
     */
    double predictTemp(const cooling::Regime &prev,
                       const cooling::Regime &next, int pod,
                       const TempInputs &in) const;

    /** Predict inside absolute humidity one model step ahead. */
    double predictHumidity(const cooling::Regime &prev,
                           const cooling::Regime &next,
                           const HumidityInputs &in) const;

    /** Predicted cooling power [W] for running @p regime steadily. */
    double predictCoolingPower(const cooling::Regime &regime) const;

    /**
     * Resolve the temperature model every pod would use for @p key,
     * fallback chain applied (nullptr entries mean persistence).  The
     * predictor resolves each rollout's two transition keys once and
     * then applies the models directly, instead of re-running the
     * lookup per pod per horizon step.
     */
    void resolveTempModels(const cooling::TransitionKey &key,
                           std::vector<const LinearModel *> &out) const;

    /** The humidity model for @p key with fallbacks, or nullptr. */
    const LinearModel *resolveHumidityModel(
        const cooling::TransitionKey &key) const
    {
        return humidityModelFor(key);
    }

    /** Apply a resolved temperature model (nullptr = persistence). */
    static double predictTempWith(const LinearModel *m, const TempInputs &in)
    {
        if (!m)
            return in.insideC;
        auto features = TempFeatures::build(in);
        return m->predict(features);
    }

    /** Apply a resolved humidity model (nullptr = persistence). */
    static double predictHumidityWith(const LinearModel *m,
                                      const HumidityInputs &in)
    {
        if (!m)
            return in.insideAbs;
        auto features = HumidityFeatures::build(in);
        return m->predict(features);
    }

    /** Count of fitted temperature models (for diagnostics). */
    size_t fittedTempModels() const;

    /** Raw fitted temperature model, or nullptr (for serialization). */
    const LinearModel *rawTempModel(const cooling::TransitionKey &key,
                                    int pod) const;

    /** Raw fitted humidity model, or nullptr (for serialization). */
    const LinearModel *rawHumidityModel(
        const cooling::TransitionKey &key) const;

    /** AC fan-only power constant [W]. */
    double acFanOnlyPowerW() const { return _acFanOnlyW; }

    /** AC full-blast power constant [W]. */
    double acFullPowerW() const { return _acFullW; }

    /**
     * Monotone counter bumped by every model mutation (setTempModel,
     * setHumidityModel, setFcPowerModel, setAcPower).  Lets consumers
     * cache resolved model pointers and invalidate exactly when a refit
     * could have changed them.
     */
    uint64_t revision() const { return _revision; }

  private:
    const LinearModel *tempModelFor(const cooling::TransitionKey &key,
                                    int pod) const;
    const LinearModel *humidityModelFor(
        const cooling::TransitionKey &key) const;
    double predictTempKeyed(const cooling::TransitionKey &key,
                            int pod, const TempInputs &in) const;
    double predictHumidityKeyed(const cooling::TransitionKey &key,
                                const HumidityInputs &in) const;

    CoolingModelConfig _config;
    /** [key.index()][pod] */
    std::vector<std::vector<LinearModel>> _tempModels;
    /** [key.index()] */
    std::vector<LinearModel> _humidityModels;
    ModelTree _fcPower;
    double _acFanOnlyW = 135.0;
    double _acFullW = 2200.0;
    uint64_t _revision = 0;
};

} // namespace model
} // namespace coolair

#endif // COOLAIR_MODEL_COOLING_MODEL_HPP
