#ifndef COOLAIR_MODEL_FEATURES_HPP
#define COOLAIR_MODEL_FEATURES_HPP

/**
 * @file
 * Feature vectors for the Cooling Model.
 *
 * Paper §3.1: the temperature of each sensed location is predicted as a
 * linear function of the current and last inside air temperature, the
 * current and last outside air temperature, the current and last free-
 * cooling fan speed, the current datacenter utilization, and the two
 * composed inputs fan x inside-temperature and fan x outside-temperature
 * (compositions let a linear learner capture the bilinear mixing term).
 * Humidity is predicted from the current inside and outside absolute
 * humidity, the fan speed, and the two analogous compositions.
 */

#include <array>

namespace coolair {
namespace model {

/** Raw inputs for one temperature prediction. */
struct TempInputs
{
    double insideC = 22.0;       ///< Current inside air temp at the sensor.
    double insidePrevC = 22.0;   ///< Inside temp one model step ago.
    double outsideC = 15.0;      ///< Current outside temp.
    double outsidePrevC = 15.0;  ///< Outside temp one model step ago.
    double fanSpeed = 0.0;       ///< Current FC fan fraction.
    double fanSpeedPrev = 0.0;   ///< FC fan fraction one step ago.
    double dcUtilization = 1.0;  ///< Fraction of servers awake.

    /**
     * This pod's power draw as a fraction of its maximum [0..1].
     * Extension beyond the paper's input list: with spatial placement
     * concentrating load on specific pods, a pod's inlet depends on its
     * *own* dissipation (local exhaust recirculation), which the global
     * utilization input cannot express.
     */
    double podPowerFraction = 0.5;
};

/** Raw inputs for one absolute-humidity prediction. */
struct HumidityInputs
{
    double insideAbs = 8.0;   ///< Current inside absolute humidity [g/m^3].
    double outsideAbs = 8.0;  ///< Current outside absolute humidity.
    double fanSpeed = 0.0;    ///< Current FC fan fraction.
};

/**
 * Temperature feature vector: bias + the nine paper inputs + the pod's
 * own power fraction.
 */
struct TempFeatures
{
    static constexpr size_t kCount = 11;

    static std::array<double, kCount>
    build(const TempInputs &in)
    {
        return {1.0,
                in.insideC,
                in.insidePrevC,
                in.outsideC,
                in.outsidePrevC,
                in.fanSpeed,
                in.fanSpeedPrev,
                in.dcUtilization,
                in.fanSpeed * in.insideC,
                in.fanSpeed * in.outsideC,
                in.podPowerFraction};
    }
};

/** Humidity feature vector: bias + the five paper inputs. */
struct HumidityFeatures
{
    static constexpr size_t kCount = 6;

    static std::array<double, kCount>
    build(const HumidityInputs &in)
    {
        return {1.0,
                in.insideAbs,
                in.outsideAbs,
                in.fanSpeed,
                in.fanSpeed * in.insideAbs,
                in.fanSpeed * in.outsideAbs};
    }
};

} // namespace model
} // namespace coolair

#endif // COOLAIR_MODEL_FEATURES_HPP
