#include "model/linreg.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace model {

LinearModel::LinearModel(std::vector<double> weights)
    : _weights(std::move(weights))
{
}

void
LinearModel::arityMismatch() const
{
    util::panic("LinearModel::predict: feature arity mismatch");
}

void
Dataset::addRow(std::span<const double> features, double target)
{
    if (featureCount == 0)
        featureCount = features.size();
    if (features.size() != featureCount)
        util::panic("Dataset::addRow: feature arity mismatch");
    x.insert(x.end(), features.begin(), features.end());
    y.push_back(target);
}

std::span<const double>
Dataset::row(size_t r) const
{
    if (r >= rows())
        util::panic("Dataset::row: index out of range");
    return {x.data() + r * featureCount, featureCount};
}

bool
solveCholesky(std::vector<double> &a, std::vector<double> &b, size_t n)
{
    // Decompose A = L L^T in the lower triangle of a.
    for (size_t j = 0; j < n; ++j) {
        double diag = a[j * n + j];
        for (size_t k = 0; k < j; ++k)
            diag -= a[j * n + k] * a[j * n + k];
        if (diag <= 0.0)
            return false;
        diag = std::sqrt(diag);
        a[j * n + j] = diag;
        for (size_t i = j + 1; i < n; ++i) {
            double sum = a[i * n + j];
            for (size_t k = 0; k < j; ++k)
                sum -= a[i * n + k] * a[j * n + k];
            a[i * n + j] = sum / diag;
        }
    }
    // Forward solve L z = b.
    for (size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= a[i * n + k] * b[k];
        b[i] = sum / a[i * n + i];
    }
    // Back solve L^T x = z.
    for (size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= a[k * n + ii] * b[k];
        b[ii] = sum / a[ii * n + ii];
    }
    return true;
}

namespace {

LinearModel
fitWeighted(const Dataset &data, const std::vector<double> &weights,
            double lambda)
{
    size_t n = data.featureCount;
    size_t rows = data.rows();
    std::vector<double> ata(n * n, 0.0);
    std::vector<double> atb(n, 0.0);

    for (size_t r = 0; r < rows; ++r) {
        double w = weights.empty() ? 1.0 : weights[r];
        if (w <= 0.0)
            continue;
        auto xr = data.row(r);
        for (size_t i = 0; i < n; ++i) {
            atb[i] += w * xr[i] * data.y[r];
            for (size_t j = i; j < n; ++j)
                ata[i * n + j] += w * xr[i] * xr[j];
        }
    }
    // Mirror the upper triangle and add the ridge.
    for (size_t i = 0; i < n; ++i) {
        ata[i * n + i] += lambda;
        for (size_t j = i + 1; j < n; ++j)
            ata[j * n + i] = ata[i * n + j];
    }

    if (!solveCholesky(ata, atb, n)) {
        // Severely rank-deficient even with the ridge; retry stiffer.
        util::warn("fitRidge: ill-conditioned system, raising lambda");
        return fitWeighted(data, weights, std::max(lambda * 1e6, 1e-3));
    }
    return LinearModel(std::move(atb));
}

} // anonymous namespace

LinearModel
fitRidge(const Dataset &data, double lambda, FitReport *report)
{
    if (data.rows() == 0 || data.featureCount == 0)
        return LinearModel();
    LinearModel model = fitWeighted(data, {}, lambda);
    if (report)
        *report = evaluate(model, data);
    return model;
}

LinearModel
fitRobust(const Dataset &data, double lambda, FitReport *report)
{
    if (data.rows() == 0 || data.featureCount == 0)
        return LinearModel();

    LinearModel model = fitWeighted(data, {}, lambda);
    std::vector<double> weights(data.rows(), 1.0);

    for (int round = 0; round < 2; ++round) {
        // Median absolute residual.
        std::vector<double> resid(data.rows());
        for (size_t r = 0; r < data.rows(); ++r)
            resid[r] = std::fabs(model.predict(data.row(r)) - data.y[r]);
        std::vector<double> sorted = resid;
        std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                         sorted.end());
        double mad = sorted[sorted.size() / 2];
        if (mad <= 0.0)
            break;
        double cutoff = 2.5 * mad;
        for (size_t r = 0; r < data.rows(); ++r)
            weights[r] = resid[r] <= cutoff
                             ? 1.0
                             : cutoff / std::max(resid[r], 1e-12);
        model = fitWeighted(data, weights, lambda);
    }
    if (report)
        *report = evaluate(model, data);
    return model;
}

FitReport
evaluate(const LinearModel &model, const Dataset &data)
{
    FitReport rep;
    rep.rows = data.rows();
    if (!model.valid() || rep.rows == 0)
        return rep;
    double sq_sum = 0.0;
    for (size_t r = 0; r < data.rows(); ++r) {
        double err = model.predict(data.row(r)) - data.y[r];
        sq_sum += err * err;
        rep.maxAbsError = std::max(rep.maxAbsError, std::fabs(err));
    }
    rep.rmse = std::sqrt(sq_sum / double(rep.rows));
    return rep;
}

} // namespace model
} // namespace coolair
