#include "model/learner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "physics/psychrometrics.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace model {

using cooling::Regime;
using cooling::TransitionKey;

CampaignWeather::CampaignWeather(double min_c, double max_c, uint64_t seed)
    : _minC(min_c), _maxC(max_c)
{
    util::Rng rng(seed, "campaign-weather");
    _phase = rng.uniform(0.0, 2.0 * M_PI);
    _humidityPhase = rng.uniform(0.0, 2.0 * M_PI);
}

environment::WeatherSample
CampaignWeather::at(util::SimTime t) const
{
    double mid = 0.5 * (_minC + _maxC);
    double half = 0.5 * (_maxC - _minC);
    double days = t.days();

    // Slow two-day sweep covers the range; diurnal and fast components
    // enrich the dataset with realistic short-term dynamics.
    double slow = std::sin(2.0 * M_PI * days / 2.0 + _phase);
    double diurnal =
        std::sin(2.0 * M_PI * (t.fractionalHourOfDay() - 15.0) / 24.0);
    double fast = std::sin(2.0 * M_PI * days * 11.0 + 2.0 * _phase);

    environment::WeatherSample out;
    out.tempC = mid + half * (0.78 * slow + 0.16 * diurnal + 0.06 * fast);

    double rh = 62.0 + 28.0 * std::sin(2.0 * M_PI * days / 3.0 +
                                       _humidityPhase);
    out.rhPercent = util::clamp(rh, 20.0, 97.0);
    out.absHumidity = physics::absoluteHumidity(out.tempC, out.rhPercent);
    return out;
}

std::vector<double>
CoolingLearner::probeRecirculation(const plant::PlantConfig &plant_config,
                                   double probe_minutes)
{
    std::vector<double> rises(size_t(plant_config.numPods), 0.0);
    environment::WeatherSample outside;
    outside.tempC = 15.0;
    outside.rhPercent = 50.0;
    outside.absHumidity = physics::absoluteHumidity(15.0, 50.0);

    int steps = int(probe_minutes * 60.0 / 30.0);

    // Control run: sealed container, no load.  The per-pod "change when
    // load is scheduled on a pod" is measured against this, isolating
    // the load response from each pod's static temperature offset.
    plant::Plant control(plant_config, /*seed=*/1234);
    control.initializeSteadyState(outside, 5.0);
    plant::PodLoad idle;
    idle.serversPerPod = plant_config.serversPerPod;
    idle.activeServers.assign(size_t(plant_config.numPods), 0);
    idle.utilization.assign(size_t(plant_config.numPods), 0.0);
    for (int s = 0; s < steps; ++s)
        control.step(30.0, outside, idle, Regime::closed());

    for (int pod = 0; pod < plant_config.numPods; ++pod) {
        plant::Plant probe(plant_config, /*seed=*/1234);
        probe.initializeSteadyState(outside, 5.0);

        plant::PodLoad load = idle;
        load.activeServers[size_t(pod)] = plant_config.serversPerPod;
        load.utilization[size_t(pod)] = 1.0;

        for (int s = 0; s < steps; ++s)
            probe.step(30.0, outside, load, Regime::closed());
        rises[size_t(pod)] =
            probe.truePodInletC(pod) - control.truePodInletC(pod);
    }
    return rises;
}

LearnedBundle
CoolingLearner::learn(const plant::PlantConfig &plant_config,
                      const cooling::RegimeMenu &menu,
                      const LearnerConfig &config)
{
    if (menu.candidates.empty())
        util::fatal("CoolingLearner: empty regime menu");

    LearnedBundle bundle;
    CoolingModelConfig mc;
    mc.numPods = plant_config.numPods;
    mc.stepS = config.modelStepS;
    mc.evapEffectiveness = plant_config.evapEffectiveness;
    bundle.model = CoolingModel(mc);

    plant::Plant plant(plant_config, config.seed);
    CampaignWeather weather(config.outsideMinC, config.outsideMaxC,
                            config.seed);
    util::Rng rng(config.seed, "learner");

    plant.initializeSteadyState(weather.at(util::SimTime(0)), 6.0);

    const int pods = plant_config.numPods;
    const int keys = TransitionKey::count();

    // Per-(key, pod) temperature datasets; per-key humidity datasets.
    auto temp_data = std::vector<std::vector<Dataset>>(
        size_t(keys), std::vector<Dataset>(size_t(pods)));
    auto hum_data = std::vector<Dataset>(size_t(keys));
    Dataset fc_power_data;
    util::RunningStats ac_fan_power, ac_full_power;

    // Campaign state.
    Regime current = Regime::closed();
    Regime previous = current;
    int64_t hold_until = 0;
    plant::PodLoad load = plant::PodLoad::uniform(
        pods, plant_config.serversPerPod, 0.4);
    int64_t load_until = 0;

    const int64_t model_step = int64_t(config.modelStepS);
    const int64_t total_s =
        int64_t(config.campaignDays) * util::kSecondsPerDay;
    const int sub_steps =
        std::max(1, int(config.modelStepS / config.physicsStepS));
    const double sub_dt = config.modelStepS / double(sub_steps);

    plant::SensorReadings sensors = plant.readSensors();
    std::vector<double> prev_temp = sensors.podInletC;
    double prev_fan = 0.0;
    double prev_outside = weather.at(util::SimTime(0)).tempC;

    for (int64_t t = 0; t < total_s; t += model_step) {
        util::SimTime now(t);

        // Rotate regimes and load to enrich the dataset.  Free-cooling
        // speeds are drawn from the whole runnable range (not just the
        // menu's discrete speeds) so each speed bucket sees *varied* fan
        // values — otherwise the fan and fan-x-temperature features are
        // collinear within a bucket and the fitted weights cannot
        // extrapolate to unseen speeds.
        if (t >= hold_until) {
            previous = current;
            current = menu.candidates[size_t(rng.uniformInt(
                0, int64_t(menu.candidates.size()) - 1))];
            if (current.mode == cooling::Mode::FreeCooling) {
                double min_fan =
                    plant_config.actuators.style ==
                            cooling::ActuatorStyle::Abrupt
                        ? plant_config.actuators.abruptMinFanSpeed
                        : plant_config.actuators.smoothMinFanSpeed;
                bool evap = current.evaporative;
                current =
                    Regime::freeCooling(rng.uniform(min_fan, 1.0));
                current.evaporative = evap;
            }
            hold_until = t + rng.uniformInt(config.regimeHoldMinS,
                                            config.regimeHoldMaxS);
        }
        if (t >= load_until) {
            double util_level = rng.uniform(0.05, 0.95);
            int awake = int(rng.uniformInt(pods, // at least 1/pod
                                           int64_t(plant_config
                                                       .totalServers())));
            load = plant::PodLoad::uniform(
                pods, plant_config.serversPerPod, util_level);
            // Vary placement too: half the time spread the awake
            // servers evenly, half the time concentrate them on a
            // random contiguous run of pods, mimicking the spatial
            // placement the Compute Optimizer performs at runtime.
            if (rng.bernoulli(0.5)) {
                int per_pod = awake / pods;
                for (int p = 0; p < pods; ++p)
                    load.activeServers[size_t(p)] = std::max(
                        1, std::min(plant_config.serversPerPod,
                                    per_pod + int(rng.uniformInt(-1, 1))));
            } else {
                int first = int(rng.uniformInt(0, pods - 1));
                int remaining = awake;
                for (int k = 0; k < pods; ++k) {
                    int p = (first + k) % pods;
                    int grant = std::min(remaining,
                                         plant_config.serversPerPod);
                    load.activeServers[size_t(p)] = std::max(1, grant);
                    remaining -= grant;
                }
            }
            load_until = t + rng.uniformInt(1800, 5400);
        }

        environment::WeatherSample outside = weather.at(now);

        // Under evaporative free cooling the driving temperature is the
        // pre-cooled intake, not the raw dry bulb: substitute it for the
        // outside-temperature feature (the predictor does the same).
        double effective_outside = outside.tempC;
        if (current.mode == cooling::Mode::FreeCooling &&
            current.evaporative && plant_config.hasEvaporativeCooler) {
            effective_outside = physics::evaporativeOutletTemp(
                outside.tempC, outside.rhPercent,
                plant_config.evapEffectiveness);
        }

        // Inputs *before* stepping.
        TempInputs tin;
        tin.outsideC = effective_outside;
        tin.outsidePrevC = prev_outside;
        tin.dcUtilization = sensors.dcUtilization;
        tin.fanSpeedPrev = prev_fan;

        HumidityInputs hin;
        hin.insideAbs = sensors.coldAisleAbsHumidity;
        hin.outsideAbs = outside.absHumidity;

        // The transition key covers the step we are about to take.
        TransitionKey key{classify(previous), classify(current)};

        std::vector<double> inside_now = sensors.podInletC;

        // Step the plant one model step.
        for (int s = 0; s < sub_steps; ++s)
            plant.step(sub_dt, outside, load, current);
        sensors = plant.readSensors();

        double fan_now = sensors.cooling.fcFanSpeed;
        tin.fanSpeed = fan_now;
        hin.fanSpeed = fan_now;

        // Record rows: target is the *new* reading.
        for (int p = 0; p < pods; ++p) {
            tin.insideC = inside_now[size_t(p)];
            tin.insidePrevC = prev_temp[size_t(p)];
            tin.podPowerFraction = load.podPowerFraction(p);
            auto features = TempFeatures::build(tin);
            temp_data[size_t(key.index())][size_t(p)].addRow(
                features, sensors.podInletC[size_t(p)]);
        }
        {
            auto features = HumidityFeatures::build(hin);
            hum_data[size_t(key.index())].addRow(
                features, sensors.coldAisleAbsHumidity);
        }

        // Power rows.
        switch (sensors.cooling.mode) {
          case cooling::Mode::FreeCooling: {
            std::array<double, 2> pf{1.0, fan_now};
            fc_power_data.addRow(pf, sensors.coolingPowerW);
            break;
          }
          case cooling::Mode::AirConditioning:
            if (sensors.cooling.compressorSpeed > 0.5)
                ac_full_power.add(sensors.coolingPowerW);
            else
                ac_fan_power.add(sensors.coolingPowerW);
            break;
          case cooling::Mode::Closed:
            break;
        }

        prev_temp = inside_now;
        prev_fan = fan_now;
        prev_outside = effective_outside;
        previous = current;  // steady from here until the next switch
    }

    // Enforce contraction on the autoregressive part of a fitted
    // temperature model: if the weights on Tin and TinPrev sum above 1,
    // chained prediction diverges (and Real-Sim pods run away to
    // physical clamps).  Rescale them to sum 0.995 and shift the
    // intercept so predictions at the training-mean temperature are
    // unchanged.
    auto stabilize = [](LinearModel m, const Dataset &d) {
        std::vector<double> w = m.weights();
        double ar = w[1] + w[2];
        constexpr double kMaxAr = 0.995;
        if (ar <= kMaxAr)
            return m;
        double tbar = 0.0;
        for (size_t r = 0; r < d.rows(); ++r)
            tbar += d.row(r)[1];
        tbar /= double(std::max<size_t>(d.rows(), 1));
        double scale = kMaxAr / ar;
        w[0] += (w[1] + w[2]) * (1.0 - scale) * tbar;
        w[1] *= scale;
        w[2] *= scale;
        return LinearModel(std::move(w));
    };

    // ---- Fit the bank ----------------------------------------------------
    util::RunningStats temp_rmse, hum_rmse;
    for (int k = 0; k < keys; ++k) {
        for (int p = 0; p < pods; ++p) {
            Dataset &d = temp_data[size_t(k)][size_t(p)];
            if (int(d.rows()) < config.minSamplesPerKey)
                continue;
            FitReport rep;
            LinearModel m = stabilize(fitRidge(d, 1e-4, &rep), d);
            temp_rmse.add(rep.rmse);
            TransitionKey key{cooling::RegimeClass(k / cooling::kNumRegimeClasses),
                              cooling::RegimeClass(k % cooling::kNumRegimeClasses)};
            bundle.model.setTempModel(key, p, std::move(m));
        }
        Dataset &hd = hum_data[size_t(k)];
        if (int(hd.rows()) >= config.minSamplesPerKey) {
            FitReport rep;
            LinearModel m = fitRobust(hd, 1e-4, &rep);
            hum_rmse.add(rep.rmse);
            TransitionKey key{cooling::RegimeClass(k / cooling::kNumRegimeClasses),
                              cooling::RegimeClass(k % cooling::kNumRegimeClasses)};
            bundle.model.setHumidityModel(key, std::move(m));
        }
    }
    bundle.tempTrainRmse = temp_rmse.mean();
    bundle.humidityTrainRmse = hum_rmse.mean();
    bundle.fittedTempModels = bundle.model.fittedTempModels();

    // Power models.
    if (fc_power_data.rows() >= 48) {
        ModelTreeConfig tc;
        tc.splitFeature = 1;
        tc.maxLeaves = 5;
        tc.minLeafRows = 12;
        bundle.model.setFcPowerModel(ModelTree::fit(fc_power_data, tc));
    }
    double ac_fan_w =
        ac_fan_power.count() ? ac_fan_power.mean() : 135.0;
    double ac_full_w =
        ac_full_power.count() ? ac_full_power.mean() : 2200.0;
    bundle.model.setAcPower(ac_fan_w, ac_full_w);

    // Recirculation ranking.
    bundle.recircProbeRiseC = probeRecirculation(plant_config);
    bundle.recircRankAscending.resize(size_t(pods));
    std::iota(bundle.recircRankAscending.begin(),
              bundle.recircRankAscending.end(), 0);
    std::stable_sort(bundle.recircRankAscending.begin(),
                     bundle.recircRankAscending.end(), [&](int a, int b) {
                         return bundle.recircProbeRiseC[size_t(a)] <
                                bundle.recircProbeRiseC[size_t(b)];
                     });

    return bundle;
}

} // namespace model
} // namespace coolair
