#include "model/model_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.hpp"

namespace coolair {
namespace model {

namespace {

/** Sum of squared residuals of a ridge fit over a row subset. */
double
subsetSse(const Dataset &data, const std::vector<size_t> &rows,
          double lambda, LinearModel *out_model = nullptr)
{
    Dataset subset;
    for (size_t r : rows)
        subset.addRow(data.row(r), data.y[r]);
    FitReport rep;
    LinearModel model = fitRidge(subset, lambda, &rep);
    if (out_model)
        *out_model = model;
    return rep.rmse * rep.rmse * double(rep.rows);
}

} // anonymous namespace

ModelTree
ModelTree::fit(const Dataset &data, const ModelTreeConfig &config)
{
    ModelTree tree;
    tree._splitFeature = config.splitFeature;
    if (data.rows() == 0)
        return tree;
    if (config.splitFeature >= data.featureCount)
        util::panic("ModelTree::fit: splitFeature out of range");

    // Rows sorted by the split feature.
    std::vector<size_t> order(data.rows());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return data.row(a)[config.splitFeature] <
               data.row(b)[config.splitFeature];
    });

    // Segments are (start, end) index ranges into `order`.
    struct Segment
    {
        size_t begin, end;
        double sse;
    };
    std::vector<Segment> segments;
    segments.push_back(
        {0, order.size(),
         subsetSse(data, order, config.lambda)});

    auto rows_of = [&](size_t begin, size_t end) {
        return std::vector<size_t>(order.begin() + long(begin),
                                   order.begin() + long(end));
    };

    while (int(segments.size()) < config.maxLeaves) {
        // Find the best split across all segments: candidate split points
        // are quantiles of the split feature inside each segment.
        double best_gain = 0.0;
        size_t best_seg = 0;
        size_t best_split = 0;
        double best_left_sse = 0.0, best_right_sse = 0.0;

        for (size_t s = 0; s < segments.size(); ++s) {
            const Segment &seg = segments[s];
            size_t len = seg.end - seg.begin;
            if (int(len) < 2 * config.minLeafRows)
                continue;
            for (int q = 1; q <= 3; ++q) {
                size_t split = seg.begin + len * size_t(q) / 4;
                if (split - seg.begin < size_t(config.minLeafRows) ||
                    seg.end - split < size_t(config.minLeafRows)) {
                    continue;
                }
                // Avoid splitting between equal feature values.
                double lo = data.row(order[split - 1])[config.splitFeature];
                double hi = data.row(order[split])[config.splitFeature];
                if (hi - lo < 1e-12)
                    continue;
                double left =
                    subsetSse(data, rows_of(seg.begin, split), config.lambda);
                double right =
                    subsetSse(data, rows_of(split, seg.end), config.lambda);
                double gain = seg.sse - (left + right);
                if (gain > best_gain) {
                    best_gain = gain;
                    best_seg = s;
                    best_split = split;
                    best_left_sse = left;
                    best_right_sse = right;
                }
            }
        }

        double total_sse = 0.0;
        for (const auto &seg : segments)
            total_sse += seg.sse;
        if (best_gain <= config.minGain * std::max(total_sse, 1e-12))
            break;

        Segment old = segments[best_seg];
        segments[best_seg] = {old.begin, best_split, best_left_sse};
        segments.insert(segments.begin() + long(best_seg) + 1,
                        {best_split, old.end, best_right_sse});
    }

    // Order segments by feature value and materialize leaves.
    std::sort(segments.begin(), segments.end(),
              [](const Segment &a, const Segment &b) {
                  return a.begin < b.begin;
              });
    for (size_t s = 0; s < segments.size(); ++s) {
        LinearModel leaf_model;
        subsetSse(data, rows_of(segments[s].begin, segments[s].end),
                  config.lambda, &leaf_model);
        tree._leaves.push_back({std::move(leaf_model)});
        if (s + 1 < segments.size()) {
            double lo =
                data.row(order[segments[s].end - 1])[config.splitFeature];
            double hi =
                data.row(order[segments[s].end])[config.splitFeature];
            tree._thresholds.push_back(0.5 * (lo + hi));
        }
    }
    return tree;
}

double
ModelTree::predict(std::span<const double> features) const
{
    if (_leaves.empty())
        util::panic("ModelTree::predict: unfitted tree");
    double v = features[_splitFeature];
    size_t leaf = 0;
    while (leaf < _thresholds.size() && v > _thresholds[leaf])
        ++leaf;
    return _leaves[leaf].model.predict(features);
}

} // namespace model
} // namespace coolair
