#ifndef COOLAIR_MODEL_LINREG_HPP
#define COOLAIR_MODEL_LINREG_HPP

/**
 * @file
 * Linear least-squares fitting.
 *
 * The paper's Cooling Modeler fits linear functions T = F(I) and
 * H = G(I') with Weka, choosing between ordinary linear regression and
 * least-median-of-squares, and M5P model trees for piece-wise-linear
 * behaviors (§4.2).  This module implements ordinary/ridge least squares
 * (normal equations + Cholesky) and an iteratively-reweighted robust
 * variant standing in for least-median-of-squares.
 */

#include <cstddef>
#include <span>
#include <vector>

namespace coolair {
namespace model {

/** A fitted linear model: y = w . x (the caller includes any bias in x). */
class LinearModel
{
  public:
    LinearModel() = default;

    /** Construct from explicit weights. */
    explicit LinearModel(std::vector<double> weights);

    /** Predict for a feature vector (must match weight arity). */
    double predict(std::span<const double> features) const
    {
        if (features.size() != _weights.size())
            arityMismatch();
        double sum = 0.0;
        for (size_t i = 0; i < _weights.size(); ++i)
            sum += _weights[i] * features[i];
        return sum;
    }

    /** The weight vector. */
    const std::vector<double> &weights() const { return _weights; }

    /** True if the model has been fitted. */
    bool valid() const { return !_weights.empty(); }

  private:
    [[noreturn]] void arityMismatch() const;

    std::vector<double> _weights;
};

/** A training set of feature rows and targets. */
struct Dataset
{
    size_t featureCount = 0;
    std::vector<double> x;   ///< Row-major, rows x featureCount.
    std::vector<double> y;

    /** Number of rows. */
    size_t rows() const { return featureCount ? y.size() : 0; }

    /** Append one row (arity-checked). */
    void addRow(std::span<const double> features, double target);

    /** Feature row @p r as a span. */
    std::span<const double> row(size_t r) const;
};

/** Fit statistics returned alongside a model. */
struct FitReport
{
    double rmse = 0.0;
    double maxAbsError = 0.0;
    size_t rows = 0;
};

/**
 * Ridge least squares: minimizes |Xw - y|^2 + lambda |w|^2.  lambda of
 * 1e-6 gives numerically-stable OLS behavior.  Returns an invalid model
 * when the dataset is empty.
 */
LinearModel fitRidge(const Dataset &data, double lambda = 1e-6,
                     FitReport *report = nullptr);

/**
 * Robust fit standing in for Weka's least-median-squares: ridge fit,
 * then two rounds of down-weighting rows with residuals beyond 2.5x the
 * median absolute residual.
 */
LinearModel fitRobust(const Dataset &data, double lambda = 1e-6,
                      FitReport *report = nullptr);

/** Evaluate a model on a dataset. */
FitReport evaluate(const LinearModel &model, const Dataset &data);

/**
 * Solve the symmetric positive-definite system A x = b in place via
 * Cholesky decomposition.  @p a is row-major n x n.  Returns false if
 * the matrix is not positive definite.
 */
bool solveCholesky(std::vector<double> &a, std::vector<double> &b, size_t n);

} // namespace model
} // namespace coolair

#endif // COOLAIR_MODEL_LINREG_HPP
