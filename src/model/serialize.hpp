#ifndef COOLAIR_MODEL_SERIALIZE_HPP
#define COOLAIR_MODEL_SERIALIZE_HPP

/**
 * @file
 * Persistence for learned bundles.
 *
 * The Cooling Modeler "runs offline and only once, after enough data has
 * been collected" (paper §3.1) — in a real deployment the campaign takes
 * months (§6: "6 months or 1 year ... during the normal operation of the
 * datacenter"), so the learned models must outlive the process.  This
 * module writes and reads a LearnedBundle in a line-oriented,
 * human-inspectable text format:
 *
 *   coolair-model v2
 *   pods <n> step <s> evap-eff <e>
 *   temp <key-index> <pod> <w0> <w1> ... <w10>
 *   humidity <key-index> <w0> ... <w5>
 *   fc-power-fallback | (fc-power omitted: refit or default cubic)
 *   ac-power <fan_only_w> <full_w>
 *   recirc-rank <p0> ... <p7>
 *   recirc-rise <r0> ... <r7>
 *   end
 *
 * The fan-speed power curve is stored as the AC constants plus the
 * built-in cubic default; the piece-wise tree refits quickly and is not
 * serialized.
 */

#include <istream>
#include <ostream>
#include <string>

#include "model/learner.hpp"

namespace coolair {
namespace model {

/** Write @p bundle to @p os.  Returns false on stream failure. */
bool saveBundle(const LearnedBundle &bundle, std::ostream &os);

/** Write @p bundle to a file (fatal on open failure). */
void saveBundleToFile(const LearnedBundle &bundle,
                      const std::string &path);

/**
 * Read a bundle from @p in.  Calls util::fatal on malformed input
 * (user-supplied file); returns the reconstructed bundle.
 */
LearnedBundle loadBundle(std::istream &in);

/** Read a bundle from a file (fatal on open failure). */
LearnedBundle loadBundleFromFile(const std::string &path);

} // namespace model
} // namespace coolair

#endif // COOLAIR_MODEL_SERIALIZE_HPP
