#include "model/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace coolair {
namespace model {

using cooling::RegimeClass;
using cooling::TransitionKey;

namespace {

TransitionKey
keyFromIndex(int index)
{
    return TransitionKey{
        RegimeClass(index / cooling::kNumRegimeClasses),
        RegimeClass(index % cooling::kNumRegimeClasses)};
}

void
writeWeights(std::ostream &os, const LinearModel &m)
{
    for (double w : m.weights())
        os << ' ' << std::setprecision(17) << w;
}

std::vector<double>
readWeights(std::istringstream &row, size_t count, const char *what)
{
    std::vector<double> w(count);
    for (size_t i = 0; i < count; ++i) {
        if (!(row >> w[i]))
            util::fatal(std::string("loadBundle: truncated ") + what +
                        " weights");
    }
    return w;
}

} // anonymous namespace

bool
saveBundle(const LearnedBundle &bundle, std::ostream &os)
{
    const CoolingModel &m = bundle.model;
    os << "coolair-model v2\n";
    os << "pods " << m.config().numPods << " step " << m.config().stepS
       << " evap-eff " << m.config().evapEffectiveness << '\n';

    for (int k = 0; k < TransitionKey::count(); ++k) {
        TransitionKey key = keyFromIndex(k);
        for (int p = 0; p < m.config().numPods; ++p) {
            const LinearModel *lm = m.rawTempModel(key, p);
            if (!lm)
                continue;
            os << "temp " << k << ' ' << p;
            writeWeights(os, *lm);
            os << '\n';
        }
        const LinearModel *hm = m.rawHumidityModel(key);
        if (hm) {
            os << "humidity " << k;
            writeWeights(os, *hm);
            os << '\n';
        }
    }

    os << "ac-power " << std::setprecision(17) << m.acFanOnlyPowerW() << ' '
       << m.acFullPowerW() << '\n';

    os << "recirc-rank";
    for (int pod : bundle.recircRankAscending)
        os << ' ' << pod;
    os << '\n';
    os << "recirc-rise";
    for (double r : bundle.recircProbeRiseC)
        os << ' ' << std::setprecision(17) << r;
    os << '\n';
    os << "end\n";
    return bool(os);
}

void
saveBundleToFile(const LearnedBundle &bundle, const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        util::fatal("saveBundleToFile: cannot open " + path);
    if (!saveBundle(bundle, os))
        util::fatal("saveBundleToFile: write failed for " + path);
}

LearnedBundle
loadBundle(std::istream &in)
{
    std::string line;
    if (!std::getline(in, line) || line != "coolair-model v2")
        util::fatal("loadBundle: bad magic line");

    LearnedBundle bundle;
    CoolingModelConfig cfg;
    bool have_header = false;
    bool saw_end = false;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string tag;
        row >> tag;

        if (tag == "pods") {
            std::string step_tag, evap_tag;
            if (!(row >> cfg.numPods >> step_tag >> cfg.stepS >> evap_tag >>
                  cfg.evapEffectiveness) ||
                step_tag != "step" || evap_tag != "evap-eff" ||
                cfg.numPods <= 0) {
                util::fatal("loadBundle: malformed header: " + line);
            }
            bundle.model = CoolingModel(cfg);
            have_header = true;
        } else if (tag == "temp") {
            if (!have_header)
                util::fatal("loadBundle: temp before header");
            int key_idx = -1, pod = -1;
            if (!(row >> key_idx >> pod) || key_idx < 0 ||
                key_idx >= TransitionKey::count() || pod < 0 ||
                pod >= cfg.numPods) {
                util::fatal("loadBundle: malformed temp row: " + line);
            }
            bundle.model.setTempModel(
                keyFromIndex(key_idx), pod,
                LinearModel(readWeights(row, TempFeatures::kCount,
                                        "temperature")));
        } else if (tag == "humidity") {
            if (!have_header)
                util::fatal("loadBundle: humidity before header");
            int key_idx = -1;
            if (!(row >> key_idx) || key_idx < 0 ||
                key_idx >= TransitionKey::count()) {
                util::fatal("loadBundle: malformed humidity row: " + line);
            }
            bundle.model.setHumidityModel(
                keyFromIndex(key_idx),
                LinearModel(readWeights(row, HumidityFeatures::kCount,
                                        "humidity")));
        } else if (tag == "ac-power") {
            double fan = 0.0, full = 0.0;
            if (!(row >> fan >> full))
                util::fatal("loadBundle: malformed ac-power row");
            bundle.model.setAcPower(fan, full);
        } else if (tag == "recirc-rank") {
            int pod;
            bundle.recircRankAscending.clear();
            while (row >> pod)
                bundle.recircRankAscending.push_back(pod);
        } else if (tag == "recirc-rise") {
            double rise;
            bundle.recircProbeRiseC.clear();
            while (row >> rise)
                bundle.recircProbeRiseC.push_back(rise);
        } else if (tag == "end") {
            saw_end = true;
            break;
        } else {
            util::fatal("loadBundle: unknown tag: " + tag);
        }
    }
    if (!have_header || !saw_end)
        util::fatal("loadBundle: incomplete bundle");
    bundle.fittedTempModels = bundle.model.fittedTempModels();
    return bundle;
}

LearnedBundle
loadBundleFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("loadBundleFromFile: cannot open " + path);
    return loadBundle(in);
}

} // namespace model
} // namespace coolair
