#ifndef COOLAIR_MODEL_MODEL_TREE_HPP
#define COOLAIR_MODEL_MODEL_TREE_HPP

/**
 * @file
 * M5P-style piece-wise linear model trees.
 *
 * The paper uses Weka's M5P for behaviors that are non-linear in the
 * inputs — notably cooling power as a function of free-cooling fan speed
 * (a cubic).  This is a single-split-feature model tree: the domain of
 * one designated feature is partitioned greedily by SSE reduction, and a
 * ridge linear model is fitted in each leaf.
 */

#include <vector>

#include "model/linreg.hpp"

namespace coolair {
namespace model {

/** Configuration for model-tree fitting. */
struct ModelTreeConfig
{
    /** Index of the feature whose domain is split. */
    size_t splitFeature = 0;

    /** Maximum number of leaves. */
    int maxLeaves = 6;

    /** Minimum rows per leaf. */
    int minLeafRows = 24;

    /** Ridge strength for leaf models. */
    double lambda = 1e-6;

    /** Minimum relative SSE improvement to accept a split. */
    double minGain = 0.02;
};

/** A fitted piece-wise linear model. */
class ModelTree
{
  public:
    ModelTree() = default;

    /** Fit a tree to @p data under @p config. */
    static ModelTree fit(const Dataset &data, const ModelTreeConfig &config);

    /** Predict for one feature row. */
    double predict(std::span<const double> features) const;

    /** Number of leaves (0 when unfitted). */
    size_t leafCount() const { return _leaves.size(); }

    /** True if the tree has been fitted. */
    bool valid() const { return !_leaves.empty(); }

    /** Split thresholds, ascending (leafCount() - 1 entries). */
    const std::vector<double> &thresholds() const { return _thresholds; }

  private:
    struct Leaf
    {
        LinearModel model;
    };

    size_t _splitFeature = 0;
    std::vector<double> _thresholds;
    std::vector<Leaf> _leaves;
};

} // namespace model
} // namespace coolair

#endif // COOLAIR_MODEL_MODEL_TREE_HPP
