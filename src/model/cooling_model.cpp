#include "model/cooling_model.hpp"

#include <array>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace model {

using cooling::Mode;
using cooling::Regime;
using cooling::RegimeClass;
using cooling::TransitionKey;

CoolingModel::CoolingModel(const CoolingModelConfig &config)
    : _config(config),
      _tempModels(size_t(TransitionKey::count()),
                  std::vector<LinearModel>(size_t(config.numPods))),
      _humidityModels(size_t(TransitionKey::count()))
{
    if (config.numPods <= 0)
        util::fatal("CoolingModelConfig: numPods must be positive");
}

void
CoolingModel::setTempModel(const TransitionKey &key, int pod,
                           LinearModel model)
{
    if (pod < 0 || pod >= _config.numPods)
        util::panic("CoolingModel::setTempModel: pod out of range");
    _tempModels[size_t(key.index())][size_t(pod)] = std::move(model);
    ++_revision;
}

void
CoolingModel::setHumidityModel(const TransitionKey &key, LinearModel model)
{
    _humidityModels[size_t(key.index())] = std::move(model);
    ++_revision;
}

void
CoolingModel::setAcPower(double fan_only_w, double full_w)
{
    _acFanOnlyW = fan_only_w;
    _acFullW = full_w;
    ++_revision;
}

bool
CoolingModel::hasTempModel(const TransitionKey &key, int pod) const
{
    if (pod < 0 || pod >= _config.numPods)
        return false;
    return _tempModels[size_t(key.index())][size_t(pod)].valid();
}

const LinearModel *
CoolingModel::tempModelFor(const TransitionKey &key, int pod) const
{
    const LinearModel &exact = _tempModels[size_t(key.index())][size_t(pod)];
    if (exact.valid())
        return &exact;
    // Fallback 1: steady-state model of the destination class.
    TransitionKey steady{key.to, key.to};
    const LinearModel &fb =
        _tempModels[size_t(steady.index())][size_t(pod)];
    if (fb.valid())
        return &fb;
    return nullptr;
}

const LinearModel *
CoolingModel::humidityModelFor(const TransitionKey &key) const
{
    const LinearModel &exact = _humidityModels[size_t(key.index())];
    if (exact.valid())
        return &exact;
    TransitionKey steady{key.to, key.to};
    const LinearModel &fb = _humidityModels[size_t(steady.index())];
    if (fb.valid())
        return &fb;
    return nullptr;
}

double
CoolingModel::predictTempKeyed(const TransitionKey &key, int pod,
                               const TempInputs &in) const
{
    return predictTempWith(tempModelFor(key, pod), in);
}

void
CoolingModel::resolveTempModels(const TransitionKey &key,
                                std::vector<const LinearModel *> &out) const
{
    out.resize(size_t(_config.numPods));
    for (int p = 0; p < _config.numPods; ++p)
        out[size_t(p)] = tempModelFor(key, p);
}

double
CoolingModel::predictTemp(const Regime &prev, const Regime &next, int pod,
                          const TempInputs &in) const
{
    if (pod < 0 || pod >= _config.numPods)
        util::panic("CoolingModel::predictTemp: pod out of range");

    RegimeClass from = classify(prev);

    if (next.mode == Mode::AirConditioning && next.compressorOn &&
        next.compressorSpeed < 1.0 - 1e-9) {
        // Variable-speed AC: interpolate compressor-on and -off models.
        TempInputs in_ac = in;
        in_ac.fanSpeed = 0.0;
        double t_on = predictTempKeyed(
            {from, RegimeClass::AcCompressor}, pod, in_ac);
        double t_off = predictTempKeyed(
            {from, RegimeClass::AcFanOnly}, pod, in_ac);
        double s = util::clamp(next.compressorSpeed, 0.0, 1.0);
        return t_off + (t_on - t_off) * s;
    }

    TransitionKey key{from, classify(next)};
    return predictTempKeyed(key, pod, in);
}

double
CoolingModel::predictHumidityKeyed(const TransitionKey &key,
                                   const HumidityInputs &in) const
{
    return predictHumidityWith(humidityModelFor(key), in);
}

double
CoolingModel::predictHumidity(const Regime &prev, const Regime &next,
                              const HumidityInputs &in) const
{
    RegimeClass from = classify(prev);

    if (next.mode == Mode::AirConditioning && next.compressorOn &&
        next.compressorSpeed < 1.0 - 1e-9) {
        HumidityInputs in_ac = in;
        in_ac.fanSpeed = 0.0;
        double h_on = predictHumidityKeyed(
            {from, RegimeClass::AcCompressor}, in_ac);
        double h_off = predictHumidityKeyed(
            {from, RegimeClass::AcFanOnly}, in_ac);
        double s = util::clamp(next.compressorSpeed, 0.0, 1.0);
        return h_off + (h_on - h_off) * s;
    }

    TransitionKey key{from, classify(next)};
    return predictHumidityKeyed(key, in);
}

double
CoolingModel::predictCoolingPower(const Regime &regime) const
{
    switch (regime.mode) {
      case Mode::Closed:
        return 0.0;
      case Mode::FreeCooling: {
        if (_fcPower.valid()) {
            std::array<double, 2> f{1.0, regime.fanSpeed};
            return std::max(0.0, _fcPower.predict(f));
        }
        return 8.0 + 417.0 * regime.fanSpeed * regime.fanSpeed *
                   regime.fanSpeed;
      }
      case Mode::AirConditioning: {
        if (!regime.compressorOn)
            return _acFanOnlyW;
        // Fan ~1/4 of unit power; compressor linear in speed (§5.1).
        double fan_w = 0.25 * _acFullW;
        double comp_w = 0.75 * _acFullW *
                        util::clamp(regime.compressorSpeed, 0.0, 1.0);
        return fan_w + comp_w;
      }
    }
    util::panic("CoolingModel::predictCoolingPower: unknown mode");
}

const LinearModel *
CoolingModel::rawTempModel(const TransitionKey &key, int pod) const
{
    if (pod < 0 || pod >= _config.numPods)
        return nullptr;
    const LinearModel &m = _tempModels[size_t(key.index())][size_t(pod)];
    return m.valid() ? &m : nullptr;
}

const LinearModel *
CoolingModel::rawHumidityModel(const TransitionKey &key) const
{
    const LinearModel &m = _humidityModels[size_t(key.index())];
    return m.valid() ? &m : nullptr;
}

size_t
CoolingModel::fittedTempModels() const
{
    size_t count = 0;
    for (const auto &per_pod : _tempModels)
        for (const auto &m : per_pod)
            if (m.valid())
                ++count;
    return count;
}

} // namespace model
} // namespace coolair
