#include "cooling/regime.hpp"

#include <cmath>
#include <cstdio>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace cooling {

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Closed:          return "closed";
      case Mode::FreeCooling:     return "free-cooling";
      case Mode::AirConditioning: return "air-conditioning";
    }
    util::panic("modeName: unknown mode");
}

Regime
Regime::closed()
{
    return Regime{};
}

Regime
Regime::freeCooling(double speed)
{
    Regime r;
    r.mode = Mode::FreeCooling;
    r.fanSpeed = util::clamp(speed, 0.0, 1.0);
    return r;
}

Regime
Regime::freeCoolingEvaporative(double speed)
{
    Regime r = freeCooling(speed);
    r.evaporative = true;
    return r;
}

Regime
Regime::acFanOnly()
{
    Regime r;
    r.mode = Mode::AirConditioning;
    r.compressorOn = false;
    return r;
}

Regime
Regime::acCompressor(double speed)
{
    Regime r;
    r.mode = Mode::AirConditioning;
    r.compressorOn = true;
    r.compressorSpeed = util::clamp(speed, 0.0, 1.0);
    return r;
}

Regime
Regime::normalized() const
{
    Regime r = *this;
    switch (r.mode) {
      case Mode::Closed:
        r.fanSpeed = 0.0;
        r.compressorOn = false;
        r.compressorSpeed = 0.0;
        r.evaporative = false;
        break;
      case Mode::FreeCooling:
        r.compressorOn = false;
        r.compressorSpeed = 0.0;
        break;
      case Mode::AirConditioning:
        r.fanSpeed = 0.0;
        r.evaporative = false;
        if (!r.compressorOn)
            r.compressorSpeed = 0.0;
        break;
    }
    return r;
}

std::string
Regime::str() const
{
    char buf[48];
    switch (mode) {
      case Mode::Closed:
        return "closed";
      case Mode::FreeCooling:
        std::snprintf(buf, sizeof(buf), evaporative ? "fc+evap@%.2f"
                                                    : "fc@%.2f",
                      fanSpeed);
        return buf;
      case Mode::AirConditioning:
        if (compressorOn) {
            std::snprintf(buf, sizeof(buf), "ac+comp@%.2f", compressorSpeed);
            return buf;
        }
        return "ac-fan";
    }
    util::panic("Regime::str: unknown mode");
}

bool
Regime::operator==(const Regime &other) const
{
    Regime a = normalized();
    Regime b = other.normalized();
    return a.mode == b.mode &&
           std::fabs(a.fanSpeed - b.fanSpeed) < 1e-9 &&
           a.compressorOn == b.compressorOn &&
           a.evaporative == b.evaporative &&
           std::fabs(a.compressorSpeed - b.compressorSpeed) < 1e-9;
}

RegimeClass
classify(const Regime &regime)
{
    switch (regime.mode) {
      case Mode::Closed:
        return RegimeClass::Closed;
      case Mode::FreeCooling:
        if (regime.evaporative)
            return RegimeClass::FcEvap;
        if (regime.fanSpeed <= 0.33)
            return RegimeClass::FcLow;
        if (regime.fanSpeed <= 0.66)
            return RegimeClass::FcMid;
        return RegimeClass::FcHigh;
      case Mode::AirConditioning:
        return regime.compressorOn ? RegimeClass::AcCompressor
                                   : RegimeClass::AcFanOnly;
    }
    util::panic("classify: unknown mode");
}

const char *
regimeClassName(RegimeClass c)
{
    switch (c) {
      case RegimeClass::Closed:       return "closed";
      case RegimeClass::FcLow:        return "fc-low";
      case RegimeClass::FcMid:        return "fc-mid";
      case RegimeClass::FcHigh:       return "fc-high";
      case RegimeClass::FcEvap:       return "fc-evap";
      case RegimeClass::AcFanOnly:    return "ac-fan";
      case RegimeClass::AcCompressor: return "ac-comp";
      default:
        util::panic("regimeClassName: unknown class");
    }
}

RegimeMenu
RegimeMenu::parasol()
{
    RegimeMenu menu;
    menu.candidates.push_back(Regime::closed());
    for (double s : {0.15, 0.25, 0.50, 0.75, 1.00})
        menu.candidates.push_back(Regime::freeCooling(s));
    menu.candidates.push_back(Regime::acFanOnly());
    menu.candidates.push_back(Regime::acCompressor(1.0));
    return menu;
}

RegimeMenu
RegimeMenu::smooth()
{
    RegimeMenu menu;
    menu.candidates.push_back(Regime::closed());
    for (double s : {0.01, 0.02, 0.05, 0.10, 0.15, 0.25, 0.40, 0.60, 0.80,
                     1.00}) {
        menu.candidates.push_back(Regime::freeCooling(s));
    }
    menu.candidates.push_back(Regime::acFanOnly());
    for (double s : {0.10, 0.25, 0.50, 0.75, 1.00})
        menu.candidates.push_back(Regime::acCompressor(s));
    return menu;
}

RegimeMenu
RegimeMenu::smoothWithEvaporative()
{
    RegimeMenu menu = smooth();
    for (double s : {0.25, 0.50, 1.00})
        menu.candidates.push_back(Regime::freeCoolingEvaporative(s));
    return menu;
}

} // namespace cooling
} // namespace coolair
