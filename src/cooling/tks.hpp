#ifndef COOLAIR_COOLING_TKS_HPP
#define COOLAIR_COOLING_TKS_HPP

/**
 * @file
 * The TKS 3000 feedback controller — the paper's baseline.
 *
 * Parasol ships with a commercial controller (TKS 3000) that selects the
 * cooling mode from the outside temperature relative to a setpoint SP
 * (paper §4.1):
 *
 *  - LOT (Low Outside Temperature) mode, outside < SP: use free cooling
 *    as much as possible.  When the control sensor (a typically warmer
 *    cold-aisle location) reads below SP - P, close the container and let
 *    recirculation warm it.  Between SP - P and SP, run free cooling with
 *    the fan speed proportional to how close the outside temperature is
 *    to the inside temperature (closer => faster).
 *  - HOT mode, outside > SP: close the damper, stop free cooling, run the
 *    AC.  The AC cycles its compressor: off below SP - 2 °C, on above SP.
 *  - 1 °C hysteresis around SP for the LOT/HOT switch.
 *
 * The *extended baseline* of §5.1 raises SP to 30 °C and adds relative-
 * humidity control with an 80 % ceiling.
 */

#include "cooling/regime.hpp"

namespace coolair {
namespace cooling {

/** The sensor values a reactive cooling controller consumes. */
struct ControlInputs
{
    double outsideTempC = 20.0;
    double outsideRhPercent = 50.0;
    /** Temperature at the TKS control sensor (warm cold-aisle spot). */
    double controlSensorC = 25.0;
    /** Cold-aisle relative humidity [0..100]. */
    double insideRhPercent = 50.0;
    /** Outside absolute humidity [g/m^3]. */
    double outsideAbsHumidity = 8.0;
};

/** TKS configuration knobs. */
struct TksConfig
{
    /** Temperature setpoint SP [°C] (Parasol default 25; baseline 30). */
    double setpointC = 25.0;

    /** Proportional band P [°C] below SP where FC speed modulates. */
    double proportionalBandC = 5.0;

    /** Hysteresis around SP for the LOT/HOT mode switch [°C]. */
    double hysteresisC = 1.0;

    /** Compressor cycles off below SP minus this margin [°C]. */
    double compressorOffMarginC = 2.0;

    /** Minimum free-cooling fan speed (unit limitation). */
    double minFanSpeed = 0.15;

    /**
     * Temperature gap [°C] over which FC fan speed scales: at gap 0 the
     * fan runs at max, at this gap or more it runs at minimum.
     */
    double fanSpeedGapScaleC = 10.0;

    /** Enable the extended baseline's humidity control. */
    bool humidityControl = false;

    /** Maximum relative humidity when humidity control is on [%]. */
    double maxRelHumidityPercent = 80.0;

    /** The extended baseline used in the paper's evaluation (§5.1). */
    static TksConfig extendedBaseline();
};

/**
 * Stateful TKS controller.  Call control() once per control epoch with
 * fresh sensor inputs; returns the regime the unit should run.
 */
class TksController
{
  public:
    explicit TksController(const TksConfig &config = {});

    /** Select the cooling regime given current sensor readings. */
    Regime control(const ControlInputs &in);

    /** True if currently in HOT (AC) mode. */
    bool inHotMode() const { return _hotMode; }

    /** True if the AC compressor is currently commanded on. */
    bool compressorOn() const { return _compressorOn; }

    /** Change the setpoint at runtime (CoolAir's Configurer does this). */
    void setSetpoint(double sp_c) { _config.setpointC = sp_c; }

    /** Current configuration. */
    const TksConfig &config() const { return _config; }

  private:
    Regime controlLot(const ControlInputs &in);
    Regime controlHot(const ControlInputs &in);
    bool freeCoolingTooHumid(const ControlInputs &in) const;

    TksConfig _config;
    bool _hotMode = false;
    bool _compressorOn = false;
};

} // namespace cooling
} // namespace coolair

#endif // COOLAIR_COOLING_TKS_HPP
