#ifndef COOLAIR_COOLING_REGIME_HPP
#define COOLAIR_COOLING_REGIME_HPP

/**
 * @file
 * Cooling regimes and the regime/transition taxonomy.
 *
 * Parasol's main cooling regimes (paper §4.1): (1) free cooling with a fan
 * speed above the unit minimum; (2) air conditioning with the compressor
 * on or off; (3) neither — the datacenter is closed.  CoolAir learns one
 * thermal model per regime *and per transition between regimes* (§3.1),
 * so regimes also need a coarse, discrete key.
 */

#include <string>
#include <vector>

namespace coolair {
namespace cooling {

/** Top-level cooling mode. */
enum class Mode
{
    Closed,          ///< Neither free cooling nor AC; container sealed.
    FreeCooling,     ///< Outside air blown in; damper open.
    AirConditioning  ///< Damper closed, DX AC running.
};

/** Human-readable mode name. */
const char *modeName(Mode mode);

/**
 * A cooling regime: the target operating point the controller requests.
 * Fields not applicable to the mode are ignored (and normalized to zero
 * by normalize()).
 */
struct Regime
{
    Mode mode = Mode::Closed;

    /** Free-cooling fan speed, fraction of max [0..1]. */
    double fanSpeed = 0.0;

    /** Whether the AC compressor runs. */
    bool compressorOn = false;

    /**
     * AC compressor speed, fraction of max [0..1].  Fixed-speed units
     * (Parasol) only honor 0 or 1; variable-speed units honor any value.
     */
    double compressorSpeed = 0.0;

    /**
     * Run the adiabatic (evaporative) pre-cooler on the intake air
     * (§2's alternative for warmer climates).  Only meaningful for
     * FreeCooling, and only on plants equipped with the cooler.
     */
    bool evaporative = false;

    /** Canonical closed regime. */
    static Regime closed();

    /** Free cooling at @p speed (fraction of max fan speed). */
    static Regime freeCooling(double speed);

    /** Free cooling with the evaporative pre-cooler engaged. */
    static Regime freeCoolingEvaporative(double speed);

    /** AC with the compressor off (fan-only). */
    static Regime acFanOnly();

    /** AC with the compressor at @p speed (1.0 = full). */
    static Regime acCompressor(double speed = 1.0);

    /** Zero out fields that do not apply to the mode. */
    Regime normalized() const;

    /** Short string like "fc@0.50" or "ac+comp@1.00". */
    std::string str() const;

    bool operator==(const Regime &other) const;
};

/**
 * Discrete key identifying a regime class for model learning.  Free
 * cooling speeds are bucketed so each bucket gathers enough training
 * samples.
 */
enum class RegimeClass
{
    Closed,
    FcLow,      ///< fan in (0, 0.33]
    FcMid,      ///< fan in (0.33, 0.66]
    FcHigh,     ///< fan in (0.66, 1.0]
    FcEvap,     ///< free cooling with the evaporative pre-cooler
    AcFanOnly,
    AcCompressor,
    NumClasses
};

/** Number of regime classes. */
constexpr int kNumRegimeClasses = int(RegimeClass::NumClasses);

/** Classify a regime into its model-bank class. */
RegimeClass classify(const Regime &regime);

/** Name of a regime class. */
const char *regimeClassName(RegimeClass c);

/**
 * A (from, to) regime-class pair.  CoolAir learns distinct models for
 * steady regimes (from == to) and for transitions (from != to).
 */
struct TransitionKey
{
    RegimeClass from = RegimeClass::Closed;
    RegimeClass to = RegimeClass::Closed;

    bool isSteady() const { return from == to; }

    /** Dense index in [0, kNumRegimeClasses^2). */
    int index() const
    {
        return int(from) * kNumRegimeClasses + int(to);
    }

    /** Total number of distinct keys. */
    static constexpr int
    count()
    {
        return kNumRegimeClasses * kNumRegimeClasses;
    }

    bool operator==(const TransitionKey &other) const = default;
};

/**
 * Candidate regimes a controller may choose from, given the capabilities
 * of the installed cooling units.
 */
struct RegimeMenu
{
    std::vector<Regime> candidates;

    /**
     * Parasol's menu: closed; FC at {15, 25, 50, 75, 100} % (the unit's
     * minimum speed is 15 %); AC fan-only; AC compressor full-blast.
     */
    static RegimeMenu parasol();

    /**
     * Menu for the smooth infrastructure of §5.1: FC speeds down to 1 %,
     * and variable compressor speeds {25, 50, 75, 100} %.
     */
    static RegimeMenu smooth();

    /**
     * The smooth menu extended with evaporative free-cooling candidates
     * (for plants equipped with the adiabatic pre-cooler).
     */
    static RegimeMenu smoothWithEvaporative();
};

} // namespace cooling
} // namespace coolair

#endif // COOLAIR_COOLING_REGIME_HPP
