#include "cooling/tks.hpp"

#include <algorithm>

#include "physics/psychrometrics.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace cooling {

TksConfig
TksConfig::extendedBaseline()
{
    TksConfig c;
    c.setpointC = 30.0;
    c.humidityControl = true;
    c.maxRelHumidityPercent = 80.0;
    return c;
}

TksController::TksController(const TksConfig &config) : _config(config)
{
}

bool
TksController::freeCoolingTooHumid(const ControlInputs &in) const
{
    if (!_config.humidityControl)
        return false;
    // Relative humidity the outside air would have once warmed to the
    // inside temperature.  If that already exceeds the ceiling, letting
    // it in can only make things worse.
    double rh_at_inlet = physics::relativeHumidity(in.controlSensorC,
                                                   in.outsideAbsHumidity);
    return rh_at_inlet > _config.maxRelHumidityPercent;
}

Regime
TksController::control(const ControlInputs &in)
{
    // LOT/HOT mode selection from outside temperature, with hysteresis.
    if (_hotMode) {
        if (in.outsideTempC < _config.setpointC - _config.hysteresisC)
            _hotMode = false;
    } else {
        if (in.outsideTempC > _config.setpointC + _config.hysteresisC)
            _hotMode = true;
    }

    return _hotMode ? controlHot(in) : controlLot(in);
}

Regime
TksController::controlLot(const ControlInputs &in)
{
    _compressorOn = false;

    double sp = _config.setpointC;
    double band_lo = sp - _config.proportionalBandC;

    if (in.controlSensorC < band_lo) {
        // Cold enough: seal the container; recirculation warms it back.
        return Regime::closed();
    }

    if (freeCoolingTooHumid(in)) {
        // Outside air too humid to admit.  Recirculate if we can afford
        // to; otherwise fall back to the AC, which dehumidifies.
        if (in.controlSensorC <= sp)
            return Regime::closed();
        _compressorOn = true;
        return Regime::acCompressor(1.0);
    }

    if (in.controlSensorC <= sp) {
        // Inside the proportional band: fan speed scales with how close
        // outside is to inside (closer => less driving gradient => blow
        // faster).
        double gap = std::max(0.0, in.controlSensorC - in.outsideTempC);
        double closeness =
            util::clamp(1.0 - gap / _config.fanSpeedGapScaleC, 0.0, 1.0);
        double speed = _config.minFanSpeed +
                       (1.0 - _config.minFanSpeed) * closeness;
        return Regime::freeCooling(speed);
    }

    // Above the setpoint but outside air is still cool: free cool at max.
    return Regime::freeCooling(1.0);
}

Regime
TksController::controlHot(const ControlInputs &in)
{
    // Damper closed, free cooling off, AC on.  Compressor cycles between
    // SP and SP - margin.
    double sp = _config.setpointC;
    if (_compressorOn) {
        if (in.controlSensorC < sp - _config.compressorOffMarginC)
            _compressorOn = false;
    } else {
        if (in.controlSensorC > sp)
            _compressorOn = true;
    }
    return _compressorOn ? Regime::acCompressor(1.0) : Regime::acFanOnly();
}

} // namespace cooling
} // namespace coolair
