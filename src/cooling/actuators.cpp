#include "cooling/actuators.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace coolair {
namespace cooling {

double
PowerModel::freeCoolingPower(double speed) const
{
    speed = util::clamp(speed, 0.0, 1.0);
    if (speed <= 0.0)
        return 0.0;
    return fcBaseW + fcSpanW * speed * speed * speed;
}

double
PowerModel::acPower(double fan, double compressor) const
{
    fan = util::clamp(fan, 0.0, 1.0);
    compressor = util::clamp(compressor, 0.0, 1.0);
    if (fan <= 0.0 && compressor <= 0.0)
        return 0.0;
    double fan_full = acFanFraction * acFullW;
    double comp_full = acFullW - fan_full;
    double fan_w = fan_full * fan * fan * fan;
    // The fixed-speed unit draws 135 W fan-only; honor that floor so the
    // abrupt model reproduces Parasol's published numbers.
    fan_w = std::max(fan_w, fan > 0.0 ? acFanOnlyW : 0.0);
    return fan_w + comp_full * compressor;
}

double
UnitState::coolingPowerW(const PowerModel &pm) const
{
    double total = 0.0;
    if (fcFanSpeed > 0.0)
        total += pm.freeCoolingPower(fcFanSpeed);
    if (evapOn)
        total += pm.evapPumpW;
    total += pm.acPower(acFanSpeed, compressorSpeed);
    return total;
}

Actuators::Actuators(const ActuatorConfig &config) : _config(config)
{
    _command = Regime::closed();
}

void
Actuators::setCommand(const Regime &regime)
{
    _command = regime.normalized();
}

void
Actuators::step(double dt_s)
{
    if (_config.style == ActuatorStyle::Abrupt)
        stepAbrupt();
    else
        stepSmooth(dt_s);
}

void
Actuators::stepAbrupt()
{
    // The abrupt units simply snap to the command, with the FC fan
    // clipped to its physical minimum and the compressor fixed-speed.
    _state.mode = _command.mode;
    switch (_command.mode) {
      case Mode::Closed:
        _state.fcFanSpeed = 0.0;
        _state.acFanSpeed = 0.0;
        _state.compressorSpeed = 0.0;
        _state.damperOpen = false;
        _state.evapOn = false;
        break;
      case Mode::FreeCooling:
        _state.fcFanSpeed =
            std::max(_command.fanSpeed, _config.abruptMinFanSpeed);
        _state.acFanSpeed = 0.0;
        _state.compressorSpeed = 0.0;
        _state.damperOpen = true;
        _state.evapOn = _command.evaporative;
        break;
      case Mode::AirConditioning:
        _state.fcFanSpeed = 0.0;
        _state.acFanSpeed = 1.0;
        _state.compressorSpeed = _command.compressorOn ? 1.0 : 0.0;
        _state.damperOpen = false;
        _state.evapOn = false;
        break;
    }
}

namespace {

/**
 * Ramp @p current toward @p target at up to @p rate per second, with the
 * smooth units' asymmetric shutdown: anything at or below 0.15 heading to
 * zero drops straight to zero.
 */
double
rampToward(double current, double target, double rate, double dt_s,
           double min_running)
{
    if (target <= 0.0) {
        if (current <= 0.15 + 1e-12)
            return 0.0;
        // Ramp down toward 0.15, then snap off on a later step.
        double next = current - rate * dt_s;
        return std::max(next, 0.15);
    }
    target = std::max(target, min_running);
    if (current <= 0.0) {
        // Starting from off: begin at the minimum runnable speed.
        current = min_running;
    }
    double delta = target - current;
    double max_step = rate * dt_s;
    if (std::fabs(delta) <= max_step)
        return target;
    return current + (delta > 0.0 ? max_step : -max_step);
}

} // anonymous namespace

void
Actuators::stepSmooth(double dt_s)
{
    double rate = _config.smoothRampPerSecond;
    double min_fan = _config.smoothMinFanSpeed;

    double fc_target =
        _command.mode == Mode::FreeCooling ? _command.fanSpeed : 0.0;
    double ac_fan_target =
        _command.mode == Mode::AirConditioning ? 1.0 : 0.0;
    double comp_target =
        (_command.mode == Mode::AirConditioning && _command.compressorOn)
            ? std::max(_command.compressorSpeed, min_fan)
            : 0.0;

    _state.fcFanSpeed =
        rampToward(_state.fcFanSpeed, fc_target, rate, dt_s, min_fan);
    _state.acFanSpeed =
        rampToward(_state.acFanSpeed, ac_fan_target, rate, dt_s, min_fan);
    _state.compressorSpeed =
        rampToward(_state.compressorSpeed, comp_target, rate, dt_s, min_fan);

    // Mode and damper reflect what is physically happening: the damper
    // only opens for free cooling and closes as soon as the FC fan stops.
    if (_state.fcFanSpeed > 0.0) {
        _state.mode = Mode::FreeCooling;
        _state.damperOpen = true;
        _state.evapOn = _command.mode == Mode::FreeCooling &&
                        _command.evaporative;
    } else if (_state.acFanSpeed > 0.0 || _state.compressorSpeed > 0.0) {
        _state.mode = Mode::AirConditioning;
        _state.damperOpen = false;
        _state.evapOn = false;
    } else {
        _state.mode = Mode::Closed;
        _state.damperOpen = false;
        _state.evapOn = false;
    }
}

} // namespace cooling
} // namespace coolair
