#ifndef COOLAIR_COOLING_ACTUATORS_HPP
#define COOLAIR_COOLING_ACTUATORS_HPP

/**
 * @file
 * Cooling-unit actuator dynamics and power models.
 *
 * Two actuator personalities reproduce the paper's two testbeds:
 *
 *  - Abrupt (Parasol): the Dantherm free-cooling unit cannot run below
 *    15 % fan speed, so opening the container jumps straight to 15 %; the
 *    DX AC compressor is fixed-speed and runs full-blast when on.  These
 *    discontinuities are why the paper found it "impossible to control
 *    temperature variation with Parasol's cooling infrastructure".
 *
 *  - Smooth (§5.1 Smooth-Sim): the FC fan ramps finely from 1 %, the AC
 *    fan ramps from 1 % settling at 100 %, and the compressor speed is
 *    variable.  Ramp *down* still goes from 15 % straight to off.
 *
 * Power models follow the paper: FC draws 8–425 W cubic in fan speed
 * (§6, "power as a cubic function of fan speed, as in [27]"); the AC
 * draws 135 W fan-only or 2.2 kW with the compressor on; for the smooth
 * AC, the fan accounts for 1/4 of unit power and the compressor scales
 * linearly with speed (§5.1, based on [26]).
 */

#include "cooling/regime.hpp"

namespace coolair {
namespace cooling {

/** Which actuator personality the plant has installed. */
enum class ActuatorStyle
{
    Abrupt,  ///< Parasol's units: discontinuous regime changes.
    Smooth   ///< Fine-grained ramps and variable compressor speed.
};

/** Number of ActuatorStyle enumerators (keep in sync with the enum). */
inline constexpr int kActuatorStyleCount = 2;

/** Power-model constants for Parasol's units. */
struct PowerModel
{
    /** FC power at zero speed (controller electronics) [W]. */
    double fcBaseW = 8.0;

    /** FC power increment at full fan speed [W] (total 425 W). */
    double fcSpanW = 417.0;

    /** AC power with fan only [W]. */
    double acFanOnlyW = 135.0;

    /** AC power with compressor full-blast [W]. */
    double acFullW = 2200.0;

    /** Fraction of full AC power attributed to the fan (smooth AC). */
    double acFanFraction = 0.25;

    /** Evaporative pre-cooler pump/media power when engaged [W]. */
    double evapPumpW = 60.0;

    /** FC power at fan fraction @p speed [W] (cubic law). */
    double freeCoolingPower(double speed) const;

    /**
     * AC power [W] at fan fraction @p fan and compressor fraction
     * @p compressor (0 = off).
     */
    double acPower(double fan, double compressor) const;
};

/**
 * Instantaneous physical state of the cooling units: where the fans and
 * compressor actually are, as opposed to where the controller asked them
 * to be.
 */
struct UnitState
{
    Mode mode = Mode::Closed;
    double fcFanSpeed = 0.0;       ///< Actual FC fan fraction [0..1].
    double acFanSpeed = 0.0;       ///< Actual AC fan fraction [0..1].
    double compressorSpeed = 0.0;  ///< Actual compressor fraction [0..1].
    bool damperOpen = false;       ///< Outside-air path open.
    bool evapOn = false;           ///< Evaporative pre-cooler engaged.

    /** Total cooling power draw [W] under @p pm. */
    double coolingPowerW(const PowerModel &pm) const;
};

/** Configuration of the actuator model. */
struct ActuatorConfig
{
    ActuatorStyle style = ActuatorStyle::Abrupt;

    /** Minimum runnable FC fan speed for the abrupt unit. */
    double abruptMinFanSpeed = 0.15;

    /** Minimum runnable FC fan speed for the smooth unit. */
    double smoothMinFanSpeed = 0.01;

    /**
     * Smooth ramp rate: maximum change in fan/compressor fraction per
     * second.  0.002/s crosses the full range in ~8.3 minutes, matching
     * commercial variable-speed drives.
     */
    double smoothRampPerSecond = 0.002;

    PowerModel power;
};

/**
 * Tracks actual unit state and advances it toward a commanded regime.
 */
class Actuators
{
  public:
    explicit Actuators(const ActuatorConfig &config = {});

    /** Current physical state. */
    const UnitState &state() const { return _state; }

    /** The most recent commanded regime. */
    const Regime &command() const { return _command; }

    /** Issue a new target regime. */
    void setCommand(const Regime &regime);

    /** Advance the physical state by @p dt_s seconds. */
    void step(double dt_s);

    /** Cooling power draw [W] right now. */
    double coolingPowerW() const { return _state.coolingPowerW(_config.power); }

    /** The configuration in effect. */
    const ActuatorConfig &config() const { return _config; }

  private:
    void stepAbrupt();
    void stepSmooth(double dt_s);

    ActuatorConfig _config;
    Regime _command;
    UnitState _state;
};

} // namespace cooling
} // namespace coolair

#endif // COOLAIR_COOLING_ACTUATORS_HPP
