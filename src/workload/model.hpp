#ifndef COOLAIR_WORKLOAD_MODEL_HPP
#define COOLAIR_WORKLOAD_MODEL_HPP

/**
 * @file
 * Abstract workload model consumed by the simulation engine.
 *
 * Two implementations exist: ClusterSim (task-level Hadoop-like cluster,
 * used for the named-site experiments) and ProfileWorkload (a fast
 * utilization-profile replay used for the 1520-site world sweep, where
 * task-level simulation would be needlessly expensive).
 */

#include <cstdint>

#include "plant/parasol.hpp"
#include "util/sim_time.hpp"
#include "workload/compute_plan.hpp"

namespace coolair {
namespace workload {

/** What the Compute Manager can observe about the workload. */
struct WorkloadStatus
{
    /** Servers needed to run everything runnable right now. */
    int demandServers = 0;

    /** Servers currently awake (active + decommissioned). */
    int awakeServers = 0;

    /** Tasks waiting for a slot. */
    int queuedTasks = 0;

    /** Busy slots / total slots across the whole cluster. */
    double offeredUtilization = 0.0;

    /** True if deferrable jobs exist in today's trace. */
    bool hasDeferrableJobs = false;
};

/** Interface between the simulation engine and a workload. */
class WorkloadModel
{
  public:
    virtual ~WorkloadModel() = default;

    /** Install a new compute plan (takes effect on following steps). */
    virtual void applyPlan(const ComputePlan &plan) = 0;

    /** Advance the workload by @p dt_s seconds ending at @p now. */
    virtual void step(util::SimTime now, double dt_s) = 0;

    /** Current per-pod load for the plant. */
    virtual plant::PodLoad podLoad() const = 0;

    /**
     * Fill @p out with the current per-pod load.  The engine calls this
     * every physics step with one reused buffer; implementations should
     * override it allocation-free.  Must produce exactly podLoad().
     */
    virtual void podLoadInto(plant::PodLoad &out) const { out = podLoad(); }

    /**
     * Monotonic counter that changes whenever podLoad() would change.
     * 0 means "no change tracking": callers must re-read the load every
     * step.  A nonzero value lets the engine skip the per-step load
     * copy (and the plant its IT-power recompute) while the workload is
     * between load changes — the values produced are identical either
     * way.
     */
    virtual uint64_t loadVersion() const { return 0; }

    /** Current status for the Compute Manager. */
    virtual WorkloadStatus status() const = 0;
};

} // namespace workload
} // namespace coolair

#endif // COOLAIR_WORKLOAD_MODEL_HPP
