#ifndef COOLAIR_WORKLOAD_JOB_HPP
#define COOLAIR_WORKLOAD_JOB_HPP

/**
 * @file
 * MapReduce job and trace representation.
 *
 * The paper drives Parasol with day-long Hadoop traces (§5.1): a scaled-
 * down Facebook trace generated with SWIM (~5500 jobs / ~68000 tasks,
 * 27 % average utilization) and the Nutch indexing workload from
 * CloudSuite (2000 jobs, Poisson arrivals).  Jobs comprise a map phase
 * followed by a reduce phase; deferrable variants carry a 6-hour start
 * deadline.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace coolair {
namespace workload {

/** One MapReduce job. */
struct Job
{
    int id = 0;

    /** Submission time, seconds from the start of the trace day. */
    int64_t submitS = 0;

    /**
     * Latest allowed start, seconds from the start of the trace day.
     * Equal to submitS for non-deferrable jobs.
     */
    int64_t startDeadlineS = 0;

    int mapTasks = 1;
    int reduceTasks = 1;

    /** Duration of each map task [s]. */
    int64_t mapTaskDurS = 30;

    /** Duration of each reduce task [s]. */
    int64_t reduceTaskDurS = 60;

    /** Input size [MB] (reported by trace statistics only). */
    double inputMb = 64.0;

    /** Total task-seconds of work in this job. */
    int64_t totalWorkS() const
    {
        return int64_t(mapTasks) * mapTaskDurS +
               int64_t(reduceTasks) * reduceTaskDurS;
    }

    /** True if the job may be delayed past its submission. */
    bool deferrable() const { return startDeadlineS > submitS; }
};

/** A day-long trace of jobs, sorted by submission time. */
struct Trace
{
    std::string name;
    std::vector<Job> jobs;

    /** Total task count across all jobs. */
    int64_t totalTasks() const;

    /** Total task-seconds across all jobs. */
    int64_t totalWorkS() const;

    /**
     * Average utilization this trace would impose on a cluster with
     * @p total_slots task slots over a day, if perfectly packed.
     */
    double offeredUtilization(int total_slots) const;

    /** Mark every job deferrable with a start deadline @p hours out. */
    void makeDeferrable(double hours);
};

} // namespace workload
} // namespace coolair

#endif // COOLAIR_WORKLOAD_JOB_HPP
