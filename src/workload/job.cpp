#include "workload/job.hpp"

namespace coolair {
namespace workload {

int64_t
Trace::totalTasks() const
{
    int64_t total = 0;
    for (const auto &job : jobs)
        total += job.mapTasks + job.reduceTasks;
    return total;
}

int64_t
Trace::totalWorkS() const
{
    int64_t total = 0;
    for (const auto &job : jobs)
        total += job.totalWorkS();
    return total;
}

double
Trace::offeredUtilization(int total_slots) const
{
    if (total_slots <= 0)
        return 0.0;
    double slot_seconds = double(total_slots) * double(util::kSecondsPerDay);
    return double(totalWorkS()) / slot_seconds;
}

void
Trace::makeDeferrable(double hours)
{
    int64_t window = int64_t(hours * double(util::kSecondsPerHour));
    for (auto &job : jobs)
        job.startDeadlineS = job.submitS + window;
}

} // namespace workload
} // namespace coolair
