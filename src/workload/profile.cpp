#include "workload/profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace workload {

UtilizationProfile::UtilizationProfile(std::vector<double> fractions,
                                       int interval_s)
    : _fractions(std::move(fractions)), _intervalS(interval_s)
{
    if (_fractions.empty())
        util::fatal("UtilizationProfile: empty profile");
    if (interval_s <= 0)
        util::fatal("UtilizationProfile: interval must be positive");
}

UtilizationProfile
UtilizationProfile::fromTrace(const Trace &trace,
                              const ClusterConfig &config, int interval_s)
{
    ClusterSim sim(config, trace);
    sim.applyPlan(ComputePlan::passthrough());

    size_t intervals =
        size_t(util::kSecondsPerDay / int64_t(interval_s));
    std::vector<double> fractions(intervals, 0.0);

    constexpr int kStepS = 30;
    std::vector<int> samples(intervals, 0);
    for (int64_t t = 0; t < util::kSecondsPerDay; t += kStepS) {
        sim.step(util::SimTime(t), kStepS);
        size_t idx = size_t(t / interval_s);
        fractions[idx] += double(sim.busySlots()) /
                          double(config.totalSlots());
        samples[idx]++;
    }
    for (size_t i = 0; i < intervals; ++i) {
        if (samples[i] > 0)
            fractions[i] /= double(samples[i]);
    }
    return UtilizationProfile(std::move(fractions), interval_s);
}

double
UtilizationProfile::demandFraction(util::SimTime now) const
{
    int64_t in_day = now.secondOfDay();
    size_t idx = size_t(in_day / _intervalS) % _fractions.size();
    return _fractions[idx];
}

double
UtilizationProfile::meanFraction() const
{
    double sum = 0.0;
    for (double f : _fractions)
        sum += f;
    return sum / double(_fractions.size());
}

ProfileWorkload::ProfileWorkload(const ClusterConfig &config,
                                 UtilizationProfile profile)
    : _config(config), _profile(std::move(profile))
{
}

void
ProfileWorkload::applyPlan(const ComputePlan &plan)
{
    _plan = plan;
    _loadDirty = true;
    ++_version;
}

void
ProfileWorkload::step(util::SimTime now, double dt_s)
{
    (void)dt_s;
    const int64_t t = now.seconds();
    if (t >= _windowStartS && t < _windowEndS)
        return;  // Same profile interval: demand cannot have changed.

    double demand = _profile.demandFraction(now);
    const int64_t interval = _profile.intervalS();
    const int64_t into = now.secondOfDay() % interval;
    _windowStartS = t - into;
    // Clamp to the current day: demandFraction wraps on day boundaries
    // (and on the profile length), so a window may never span midnight.
    _windowEndS = std::min(_windowStartS + interval,
                           t + (util::kSecondsPerDay - now.secondOfDay()));
    if (demand != _demand) {
        _demand = demand;
        _loadDirty = true;
        ++_version;
    }
}

plant::PodLoad
ProfileWorkload::podLoad() const
{
    plant::PodLoad load;
    podLoadInto(load);
    return load;
}

void
ProfileWorkload::podLoadInto(plant::PodLoad &load) const
{
    if (_loadDirty) {
        computeLoad(_cachedLoad);
        _loadDirty = false;
    }
    load.serversPerPod = _cachedLoad.serversPerPod;
    load.activeServers.assign(_cachedLoad.activeServers.begin(),
                              _cachedLoad.activeServers.end());
    load.utilization.assign(_cachedLoad.utilization.begin(),
                            _cachedLoad.utilization.end());
}

void
ProfileWorkload::computeLoad(plant::PodLoad &load) const
{
    load.serversPerPod = _config.serversPerPod;
    load.activeServers.assign(size_t(_config.numPods), 0);
    load.utilization.assign(size_t(_config.numPods), 0.0);

    // How many servers are awake.
    int awake = _config.totalServers();
    if (_plan.manageServerStates) {
        int target = _plan.targetActiveServers;
        if (target < 0)
            target = _config.totalServers();
        awake = std::clamp(target, _config.coveringSubsetSize,
                           _config.totalServers());
    }

    // Pod preference order (covering subset keeps one server per pod).
    // Iterate the plan's order directly instead of materializing a
    // default 0..N-1 vector per call.
    auto forEachPod = [&](auto &&body) {
        if (!_plan.podOrder.empty()) {
            for (int pod : _plan.podOrder)
                if (!body(pod))
                    break;
        } else {
            for (int p = 0; p < _config.numPods; ++p)
                if (!body(p))
                    break;
        }
    };

    // One covering server per pod stays awake.
    int remaining = awake;
    for (int p = 0; p < _config.numPods; ++p) {
        load.activeServers[size_t(p)] = 1;
        remaining -= 1;
    }
    remaining = std::max(remaining, 0);
    forEachPod([&](int pod) {
        if (remaining <= 0)
            return false;
        int room = _config.serversPerPod - load.activeServers[size_t(pod)];
        int grant = std::min(room, remaining);
        load.activeServers[size_t(pod)] += grant;
        remaining -= grant;
        return true;
    });

    // Busy slots fill awake servers, preferred pods first.
    double busy_slots = _demand * double(_config.totalSlots());
    forEachPod([&](int pod) {
        double pod_slots = double(load.activeServers[size_t(pod)] *
                                  _config.slotsPerServer);
        if (pod_slots > 0.0) {
            double take = std::min(busy_slots, pod_slots);
            load.utilization[size_t(pod)] = take / pod_slots;
            busy_slots -= take;
        }
        return true;
    });
}

WorkloadStatus
ProfileWorkload::status() const
{
    WorkloadStatus st;
    double busy_slots = _demand * double(_config.totalSlots());
    st.demandServers = int(std::min<double>(
        std::ceil(busy_slots / double(_config.slotsPerServer)),
        double(_config.totalServers())));
    st.awakeServers = _plan.manageServerStates
                          ? std::clamp(_plan.targetActiveServers,
                                       _config.coveringSubsetSize,
                                       _config.totalServers())
                          : _config.totalServers();
    st.queuedTasks = 0;
    st.offeredUtilization = _demand;
    st.hasDeferrableJobs = false;
    return st;
}

} // namespace workload
} // namespace coolair
