#ifndef COOLAIR_WORKLOAD_COMPUTE_PLAN_HPP
#define COOLAIR_WORKLOAD_COMPUTE_PLAN_HPP

/**
 * @file
 * The plan CoolAir's Compute Manager hands to the cluster.
 *
 * The Compute Configurer (paper §3.3, §4.2) controls three things:
 * how many servers are awake, *which* pods host the load (spatial
 * placement by recirculation rank), and when deferrable jobs are released
 * (temporal scheduling within start deadlines).
 */

#include <array>
#include <vector>

namespace coolair {
namespace workload {

/** Directive for the cluster's power/placement/schedule behavior. */
struct ComputePlan
{
    /**
     * If true, the cluster puts unneeded servers to sleep (through the
     * decommissioned state) and wakes them on demand.  The baseline
     * leaves every server active.
     */
    bool manageServerStates = false;

    /**
     * Desired number of awake servers.  Ignored (all awake) when
     * manageServerStates is false.  The cluster never sleeps the covering
     * subset and never sleeps servers with running tasks.
     */
    int targetActiveServers = -1;

    /**
     * Pod activation/placement preference: pods earlier in this list are
     * filled first.  Empty means natural order.
     */
    std::vector<int> podOrder;

    /**
     * Temporal-scheduling mask: deferrable jobs are only *released*
     * during hours whose entry is true, unless their start deadline
     * arrives first.  All-true disables deferral.
     */
    std::array<bool, 24> hourAllowed{};

    /** A plan that changes nothing: all awake, all hours allowed. */
    static ComputePlan passthrough()
    {
        ComputePlan plan;
        plan.hourAllowed.fill(true);
        return plan;
    }
};

} // namespace workload
} // namespace coolair

#endif // COOLAIR_WORKLOAD_COMPUTE_PLAN_HPP
