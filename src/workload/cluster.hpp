#ifndef COOLAIR_WORKLOAD_CLUSTER_HPP
#define COOLAIR_WORKLOAD_CLUSTER_HPP

/**
 * @file
 * Task-level Hadoop-like cluster simulator.
 *
 * Models the paper's modified Hadoop deployment (§4.2): 64 servers in
 * pods, two task slots per server, three power states (active,
 * decommissioned, sleeping/S3), and the Covering Subset scheme [24] — a
 * fixed set of servers that holds a full copy of the dataset and must
 * stay awake.  Decommissioned servers finish their running tasks but
 * accept no new ones; once idle they may sleep.  Disk power cycles are
 * counted per server so the load/unload budget argument of §4.2 can be
 * checked (no disk should exceed a few cycles per hour).
 */

#include <cstdint>
#include <deque>
#include <vector>

#include "util/sim_time.hpp"
#include "workload/job.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace workload {

/** Server power states (paper §4.2). */
enum class ServerState
{
    Active,          ///< Running; accepts new tasks.
    Decommissioned,  ///< Running; finishes tasks but accepts none.
    Sleeping         ///< ACPI S3; draws ~2 W.
};

/** Cluster configuration. */
struct ClusterConfig
{
    int numPods = 8;
    int serversPerPod = 8;
    int slotsPerServer = 2;

    /**
     * Number of servers in the covering subset (always awake).  The
     * paper stores a full copy of the dataset on the smallest possible
     * number of servers; one per pod keeps every pod observable.
     */
    int coveringSubsetSize = 8;

    int totalServers() const { return numPods * serversPerPod; }
    int totalSlots() const { return totalServers() * slotsPerServer; }
};

/** Per-run accounting the metrics module consumes. */
struct ClusterStats
{
    int64_t jobsCompleted = 0;
    int64_t tasksCompleted = 0;
    double meanJobDelayS = 0.0;     ///< Mean (start - submit) over jobs.
    double maxJobDelayS = 0.0;
    int maxPowerCycles = 0;         ///< Worst per-server sleep count.
    double maxPowerCyclesPerHour = 0.0;
};

/**
 * The cluster simulator.  Feed it a day trace, then step it alongside
 * the plant.  Time wraps daily: a trace is replayed each simulated day
 * (the paper repeats the day-long workload for each simulated day of the
 * year, §5.1).
 */
class ClusterSim : public WorkloadModel
{
  public:
    ClusterSim(const ClusterConfig &config, Trace trace);

    /** Replace the day trace (takes effect at the next day boundary). */
    void setTrace(Trace trace);

    /**
     * Inject a job directly (bypassing the day trace).  @p job's submitS
     * is interpreted as an absolute time; the job is released
     * immediately.  Used by multi-zone balancers that assign a shared
     * job stream across clusters at submission time.
     */
    void submitJob(const Job &job, util::SimTime now);

    // WorkloadModel interface.
    void applyPlan(const ComputePlan &plan) override;
    void step(util::SimTime now, double dt_s) override;
    plant::PodLoad podLoad() const override;
    void podLoadInto(plant::PodLoad &out) const override;
    WorkloadStatus status() const override;

    /** Aggregate accounting for metrics. */
    ClusterStats stats() const;

    /** Power state of one server (for tests). */
    ServerState serverState(int server) const;

    /** Number of awake (active + decommissioned) servers. */
    int awakeServers() const;

    /** Busy slots across the cluster. */
    int busySlots() const { return _busySlots; }

    /** The configuration in effect. */
    const ClusterConfig &config() const { return _config; }

  private:
    struct Server
    {
        ServerState state = ServerState::Active;
        int pod = 0;
        int busySlots = 0;
        bool covering = false;
        int powerCycles = 0;
    };

    struct JobRun
    {
        Job job;
        int64_t releasedAtS = 0;      ///< Absolute release time.
        int64_t startedAtS = -1;      ///< First task launch.
        int mapsQueued = 0;
        int mapsRunning = 0;
        int mapsDone = 0;
        int reducesQueued = 0;
        int reducesRunning = 0;
        int reducesDone = 0;

        bool mapsFinished() const { return mapsDone == job.mapTasks; }
        bool finished() const
        {
            return mapsFinished() && reducesDone == job.reduceTasks;
        }
    };

    struct RunningTask
    {
        int64_t finishS = 0;   ///< Absolute completion time.
        int server = 0;
        size_t jobSlot = 0;    ///< Index into _activeJobs.
        bool isMap = true;
    };

    void rolloverDay(int day_index);
    void activateJob(const Job &job, int64_t released, int64_t abs_submit);
    void releaseJobs(util::SimTime now);
    void completeTasks(util::SimTime now);
    void wakeServer(Server &server);
    void applyPowerStates();
    void scheduleTasks(util::SimTime now);
    int freeSlotsOn(const Server &server) const;
    const std::vector<int> &serverPreference();

    ClusterConfig _config;
    Trace _trace;
    Trace _pendingTrace;
    bool _hasPendingTrace = false;
    bool _traceHasDeferrable = false;    ///< any_of(_trace), cached.
    bool _pendingHasDeferrable = false;  ///< same for _pendingTrace.
    ComputePlan _plan = ComputePlan::passthrough();

    std::vector<Server> _servers;
    std::vector<JobRun> _activeJobs;
    std::vector<size_t> _freeJobSlots;
    std::deque<size_t> _runnableJobs;   ///< Jobs with queued tasks, FIFO.
    std::vector<Job> _deferredAbs;      ///< Held jobs, times absolute.
    std::vector<RunningTask> _running;
    /** Earliest finishS in _running (INT64_MAX when empty-ish); lets
        completeTasks() skip its scan on steps where nothing expires. */
    int64_t _nextFinishS = INT64_MAX;
    size_t _nextJobIdx = 0;
    int _currentDay = -1;
    int _busySlots = 0;

    // Incremental mirrors of quantities the hot loop used to recount by
    // scanning (step() runs every 30 simulated seconds, so each O(N)
    // rescan was a measurable slice of year runs).  Every state flip
    // updates them in place; they must always equal the scan result.
    int _sleepingServers = 0;       ///< Servers in ServerState::Sleeping.
    int _decommissionedServers = 0; ///< Servers in Decommissioned.
    int _freeActiveSlots = 0;       ///< Σ free slots over Active servers.
    int64_t _queuedTasks = 0;       ///< Σ queued tasks over _runnableJobs.
    std::vector<int> _podAwakeServers;  ///< Non-sleeping servers per pod.
    std::vector<int> _podBusySlots;     ///< Busy slots per pod.
    /** _plan.manageServerStates || any hour disallowed; recomputed only
        when the plan changes instead of per step in releaseJobs(). */
    bool _planManages = false;

    std::vector<int> _serverPreference;
    bool _preferenceDirty = true;

    // Accounting.
    int64_t _jobsCompleted = 0;
    int64_t _tasksCompleted = 0;
    double _delaySumS = 0.0;
    double _delayMaxS = 0.0;
    int64_t _elapsedS = 0;
};

} // namespace workload
} // namespace coolair

#endif // COOLAIR_WORKLOAD_CLUSTER_HPP
