#ifndef COOLAIR_WORKLOAD_PROFILE_HPP
#define COOLAIR_WORKLOAD_PROFILE_HPP

/**
 * @file
 * Utilization-profile workload replay.
 *
 * The world-wide sweep (Figures 12/13) runs 1520 sites x 2 systems x a
 * year; task-level cluster simulation there is needless expense.  A
 * UtilizationProfile captures the slot-occupancy time series that the
 * full ClusterSim produces for a trace (one precomputation, shared by
 * every site), and ProfileWorkload replays it: same IT power, same
 * per-pod placement semantics, no task bookkeeping.
 *
 * Limitation (documented, by design): ProfileWorkload does not model
 * temporal job deferral; experiments involving All-DEF/Energy-DEF use
 * the full ClusterSim.
 */

#include <vector>

#include "workload/cluster.hpp"
#include "workload/job.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace workload {

/** A day-long slot-occupancy profile at fixed intervals. */
class UtilizationProfile
{
  public:
    /** Build from explicit per-interval busy-slot fractions. */
    UtilizationProfile(std::vector<double> fractions, int interval_s);

    /**
     * Derive a profile by simulating @p trace on an unmanaged cluster
     * (all servers awake) for one day at @p interval_s resolution.
     */
    static UtilizationProfile fromTrace(const Trace &trace,
                                        const ClusterConfig &config,
                                        int interval_s = 600);

    /** Busy-slot fraction at @p now (time wraps daily). */
    double demandFraction(util::SimTime now) const;

    /** Mean busy-slot fraction over the day. */
    double meanFraction() const;

    /** Interval resolution [s]. */
    int intervalS() const { return _intervalS; }

  private:
    std::vector<double> _fractions;
    int _intervalS;
};

/** Profile-replay implementation of WorkloadModel. */
class ProfileWorkload : public WorkloadModel
{
  public:
    ProfileWorkload(const ClusterConfig &config, UtilizationProfile profile);

    void applyPlan(const ComputePlan &plan) override;
    void step(util::SimTime now, double dt_s) override;
    plant::PodLoad podLoad() const override;
    void podLoadInto(plant::PodLoad &out) const override;
    WorkloadStatus status() const override;
    uint64_t loadVersion() const override { return _version; }

  private:
    void computeLoad(plant::PodLoad &load) const;

    ClusterConfig _config;
    UtilizationProfile _profile;
    ComputePlan _plan = ComputePlan::passthrough();
    double _demand = 0.0;   ///< Current busy-slot fraction.

    // step() runs every physics step but the profile only changes at
    // interval boundaries: while `now` stays inside the absolute window
    // [_windowStartS, _windowEndS) the demand lookup is skipped
    // entirely.  The window is re-derived on any exit — including
    // backward jumps (each simulated day re-runs its warm-up) — so the
    // demand always matches a fresh demandFraction(now).
    int64_t _windowStartS = 0;
    int64_t _windowEndS = -1;   ///< Empty window forces the first lookup.

    /** Change counter backing loadVersion(); bumps with _loadDirty. */
    uint64_t _version = 1;

    // The pod load is a pure function of (_demand, _plan), and both are
    // piecewise-constant — demand changes once per profile interval,
    // the plan once per control epoch — while podLoadInto() is queried
    // every physics step.  Memoize the computed load and serve copies
    // (values identical to a fresh computation by purity).
    mutable plant::PodLoad _cachedLoad;
    mutable bool _loadDirty = true;
};

} // namespace workload
} // namespace coolair

#endif // COOLAIR_WORKLOAD_PROFILE_HPP
