#include "workload/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace workload {

ClusterSim::ClusterSim(const ClusterConfig &config, Trace trace)
    : _config(config), _trace(std::move(trace))
{
    if (config.numPods <= 0 || config.serversPerPod <= 0 ||
        config.slotsPerServer <= 0) {
        util::fatal("ClusterConfig: dimensions must be positive");
    }
    if (config.coveringSubsetSize > config.totalServers())
        util::fatal("ClusterConfig: covering subset larger than cluster");

    std::sort(_trace.jobs.begin(), _trace.jobs.end(),
              [](const Job &a, const Job &b) { return a.submitS < b.submitS; });

    _servers.resize(config.totalServers());
    for (int s = 0; s < config.totalServers(); ++s) {
        _servers[s].pod = s / config.serversPerPod;
        _servers[s].state = ServerState::Active;
    }
    // Covering subset: spread across pods round-robin so every pod keeps
    // at least one awake server (and its sensor context) at all times.
    for (int k = 0; k < config.coveringSubsetSize; ++k) {
        int pod = k % config.numPods;
        int within = k / config.numPods;
        int idx = pod * config.serversPerPod + within;
        _servers[idx].covering = true;
    }
}

void
ClusterSim::setTrace(Trace trace)
{
    std::sort(trace.jobs.begin(), trace.jobs.end(),
              [](const Job &a, const Job &b) { return a.submitS < b.submitS; });
    _pendingTrace = std::move(trace);
    _hasPendingTrace = true;
}

void
ClusterSim::applyPlan(const ComputePlan &plan)
{
    _plan = plan;
    _preferenceDirty = true;
}

const std::vector<int> &
ClusterSim::serverPreference()
{
    if (!_preferenceDirty)
        return _serverPreference;

    std::vector<int> pod_rank(_config.numPods);
    for (int p = 0; p < _config.numPods; ++p)
        pod_rank[p] = p;
    if (!_plan.podOrder.empty()) {
        for (int p = 0; p < _config.numPods; ++p)
            pod_rank[p] = _config.numPods;  // unlisted pods go last
        int rank = 0;
        for (int pod : _plan.podOrder) {
            if (pod >= 0 && pod < _config.numPods)
                pod_rank[pod] = rank++;
        }
    }

    _serverPreference.resize(_servers.size());
    for (size_t s = 0; s < _servers.size(); ++s)
        _serverPreference[s] = int(s);
    std::stable_sort(_serverPreference.begin(), _serverPreference.end(),
                     [&](int a, int b) {
                         return pod_rank[_servers[a].pod] <
                                pod_rank[_servers[b].pod];
                     });
    _preferenceDirty = false;
    return _serverPreference;
}

void
ClusterSim::rolloverDay(int day_index)
{
    _currentDay = day_index;
    _nextJobIdx = 0;
    if (_hasPendingTrace) {
        _trace = std::move(_pendingTrace);
        _hasPendingTrace = false;
    }
}

void
ClusterSim::activateJob(const Job &job, int64_t released,
                        int64_t abs_submit)
{
    size_t slot;
    if (!_freeJobSlots.empty()) {
        slot = _freeJobSlots.back();
        _freeJobSlots.pop_back();
        _activeJobs[slot] = JobRun{};
    } else {
        slot = _activeJobs.size();
        _activeJobs.emplace_back();
    }
    JobRun &run = _activeJobs[slot];
    run.job = job;
    run.job.submitS = abs_submit;  // delay accounting vs. wall clock
    run.releasedAtS = released;
    run.mapsQueued = job.mapTasks;
    _runnableJobs.push_back(slot);
}

void
ClusterSim::submitJob(const Job &job, util::SimTime now)
{
    activateJob(job, now.seconds(), job.submitS);
}

void
ClusterSim::releaseJobs(util::SimTime now)
{
    int64_t day_start = now.startOfDay().seconds();
    bool manage = _plan.manageServerStates ||
                  !std::all_of(_plan.hourAllowed.begin(),
                               _plan.hourAllowed.end(),
                               [](bool b) { return b; });
    int hour = now.hourOfDay();

    auto activate = [&](const Job &job, int64_t released,
                        int64_t abs_submit) {
        activateJob(job, released, abs_submit);
    };

    // Intake from today's trace.
    while (_nextJobIdx < _trace.jobs.size()) {
        const Job &job = _trace.jobs[_nextJobIdx];
        int64_t abs_submit = day_start + job.submitS;
        if (abs_submit > now.seconds())
            break;
        ++_nextJobIdx;

        int64_t abs_deadline = day_start + job.startDeadlineS;
        bool defer = manage && job.deferrable() &&
                     !_plan.hourAllowed[size_t(hour)] &&
                     now.seconds() < abs_deadline;
        if (defer) {
            Job held = job;
            // Re-express times as absolute for the holding queue.
            held.startDeadlineS = abs_deadline;
            held.submitS = abs_submit;
            _deferredAbs.push_back(held);
        } else {
            activate(job, now.seconds(), abs_submit);
        }
    }

    // Re-examine held jobs.
    for (size_t i = 0; i < _deferredAbs.size();) {
        const Job &job = _deferredAbs[i];
        bool release = _plan.hourAllowed[size_t(hour)] ||
                       now.seconds() >= job.startDeadlineS;
        if (release) {
            activate(job, now.seconds(), job.submitS);
            _deferredAbs[i] = _deferredAbs.back();
            _deferredAbs.pop_back();
        } else {
            ++i;
        }
    }
}

void
ClusterSim::completeTasks(util::SimTime now)
{
    for (size_t i = 0; i < _running.size();) {
        if (_running[i].finishS > now.seconds()) {
            ++i;
            continue;
        }
        RunningTask task = _running[i];
        _running[i] = _running.back();
        _running.pop_back();

        Server &server = _servers[size_t(task.server)];
        server.busySlots--;
        _busySlots--;
        _tasksCompleted++;

        JobRun &run = _activeJobs[task.jobSlot];
        if (task.isMap) {
            run.mapsRunning--;
            run.mapsDone++;
            if (run.mapsFinished() && run.job.reduceTasks > 0) {
                run.reducesQueued = run.job.reduceTasks;
                _runnableJobs.push_back(task.jobSlot);
            }
        } else {
            run.reducesRunning--;
            run.reducesDone++;
        }

        if (run.finished()) {
            _jobsCompleted++;
            double delay =
                double(std::max<int64_t>(0, run.startedAtS - run.job.submitS));
            _delaySumS += delay;
            _delayMaxS = std::max(_delayMaxS, delay);
            _freeJobSlots.push_back(task.jobSlot);
        }
    }
}

void
ClusterSim::applyPowerStates()
{
    if (!_plan.manageServerStates) {
        for (auto &server : _servers) {
            if (server.state == ServerState::Sleeping)
                server.powerCycles++;  // waking completes a cycle
            server.state = ServerState::Active;
        }
        return;
    }

    int target = _plan.targetActiveServers;
    if (target < 0)
        target = _config.totalServers();
    target = std::clamp(target, _config.coveringSubsetSize,
                        _config.totalServers());

    const auto &pref = serverPreference();

    int awake = 0;
    for (const auto &server : _servers)
        if (server.state != ServerState::Sleeping)
            ++awake;

    if (awake < target) {
        // Wake in preference order until we reach the target.
        for (int idx : pref) {
            if (awake >= target)
                break;
            Server &server = _servers[size_t(idx)];
            if (server.state == ServerState::Sleeping) {
                server.state = ServerState::Active;
                server.powerCycles++;
                ++awake;
            }
        }
        // Surviving decommissioned servers are needed again.
        for (auto &server : _servers)
            if (server.state == ServerState::Decommissioned)
                server.state = ServerState::Active;
        return;
    }

    // Shrink: walk preference in reverse, spare the covering subset.
    int surplus = awake - target;
    for (auto it = pref.rbegin(); it != pref.rend() && surplus > 0; ++it) {
        Server &server = _servers[size_t(*it)];
        if (server.covering || server.state == ServerState::Sleeping)
            continue;
        if (server.busySlots == 0) {
            server.state = ServerState::Sleeping;
            --surplus;
        } else {
            server.state = ServerState::Decommissioned;
            --surplus;
        }
    }
    // Idle decommissioned servers may now complete their descent.
    for (auto &server : _servers) {
        if (server.state == ServerState::Decommissioned &&
            server.busySlots == 0) {
            server.state = ServerState::Sleeping;
        }
    }
}

int
ClusterSim::freeSlotsOn(const Server &server) const
{
    if (server.state != ServerState::Active)
        return 0;
    return _config.slotsPerServer - server.busySlots;
}

void
ClusterSim::scheduleTasks(util::SimTime now)
{
    if (_runnableJobs.empty())
        return;
    const auto &pref = serverPreference();

    for (int idx : pref) {
        Server &server = _servers[size_t(idx)];
        int free = freeSlotsOn(server);
        while (free > 0 && !_runnableJobs.empty()) {
            size_t slot = _runnableJobs.front();
            JobRun &run = _activeJobs[slot];

            bool launched = false;
            if (run.mapsQueued > 0) {
                run.mapsQueued--;
                run.mapsRunning++;
                _running.push_back({now.seconds() + run.job.mapTaskDurS,
                                    idx, slot, true});
                launched = true;
            } else if (run.reducesQueued > 0) {
                run.reducesQueued--;
                run.reducesRunning++;
                _running.push_back({now.seconds() + run.job.reduceTaskDurS,
                                    idx, slot, false});
                launched = true;
            }

            if (launched) {
                if (run.startedAtS < 0)
                    run.startedAtS = now.seconds();
                server.busySlots++;
                _busySlots++;
                free--;
            }

            if (run.mapsQueued == 0 && run.reducesQueued == 0) {
                // Nothing left to launch for this job right now.
                _runnableJobs.pop_front();
                if (!launched)
                    continue;
            }
        }
        if (_runnableJobs.empty())
            break;
    }
}

void
ClusterSim::step(util::SimTime now, double dt_s)
{
    int day = int(now.seconds() / util::kSecondsPerDay);
    if (day != _currentDay)
        rolloverDay(day);

    completeTasks(now);
    releaseJobs(now);
    applyPowerStates();
    scheduleTasks(now);
    _elapsedS += int64_t(dt_s);
}

plant::PodLoad
ClusterSim::podLoad() const
{
    plant::PodLoad load;
    load.serversPerPod = _config.serversPerPod;
    load.activeServers.assign(size_t(_config.numPods), 0);
    load.utilization.assign(size_t(_config.numPods), 0.0);

    std::vector<int> busy(size_t(_config.numPods), 0);
    for (const auto &server : _servers) {
        if (server.state != ServerState::Sleeping) {
            load.activeServers[size_t(server.pod)]++;
            busy[size_t(server.pod)] += server.busySlots;
        }
    }
    for (int p = 0; p < _config.numPods; ++p) {
        int awake = load.activeServers[size_t(p)];
        if (awake > 0) {
            load.utilization[size_t(p)] =
                double(busy[size_t(p)]) /
                double(awake * _config.slotsPerServer);
        }
    }
    return load;
}

WorkloadStatus
ClusterSim::status() const
{
    WorkloadStatus st;
    int64_t queued = 0;
    for (size_t slot : _runnableJobs) {
        const JobRun &run = _activeJobs[slot];
        queued += run.mapsQueued + run.reducesQueued;
    }
    st.queuedTasks = int(std::min<int64_t>(queued, 1 << 30));

    int64_t wanted_slots = queued + int64_t(_running.size());
    st.demandServers = int(std::min<int64_t>(
        (wanted_slots + _config.slotsPerServer - 1) / _config.slotsPerServer,
        _config.totalServers()));

    st.awakeServers = awakeServers();
    st.offeredUtilization =
        double(_busySlots) / double(_config.totalSlots());
    st.hasDeferrableJobs =
        std::any_of(_trace.jobs.begin(), _trace.jobs.end(),
                    [](const Job &j) { return j.deferrable(); });
    return st;
}

ClusterStats
ClusterSim::stats() const
{
    ClusterStats st;
    st.jobsCompleted = _jobsCompleted;
    st.tasksCompleted = _tasksCompleted;
    st.meanJobDelayS =
        _jobsCompleted > 0 ? _delaySumS / double(_jobsCompleted) : 0.0;
    st.maxJobDelayS = _delayMaxS;
    for (const auto &server : _servers)
        st.maxPowerCycles = std::max(st.maxPowerCycles, server.powerCycles);
    double hours = double(_elapsedS) / double(util::kSecondsPerHour);
    st.maxPowerCyclesPerHour =
        hours > 0.0 ? double(st.maxPowerCycles) / hours : 0.0;
    return st;
}

ServerState
ClusterSim::serverState(int server) const
{
    if (server < 0 || server >= int(_servers.size()))
        util::panic("ClusterSim::serverState: index out of range");
    return _servers[size_t(server)].state;
}

int
ClusterSim::awakeServers() const
{
    int awake = 0;
    for (const auto &server : _servers)
        if (server.state != ServerState::Sleeping)
            ++awake;
    return awake;
}

} // namespace workload
} // namespace coolair
