#include "workload/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace workload {

ClusterSim::ClusterSim(const ClusterConfig &config, Trace trace)
    : _config(config), _trace(std::move(trace))
{
    if (config.numPods <= 0 || config.serversPerPod <= 0 ||
        config.slotsPerServer <= 0) {
        util::fatal("ClusterConfig: dimensions must be positive");
    }
    if (config.coveringSubsetSize > config.totalServers())
        util::fatal("ClusterConfig: covering subset larger than cluster");

    std::sort(_trace.jobs.begin(), _trace.jobs.end(),
              [](const Job &a, const Job &b) { return a.submitS < b.submitS; });
    _traceHasDeferrable =
        std::any_of(_trace.jobs.begin(), _trace.jobs.end(),
                    [](const Job &j) { return j.deferrable(); });

    _servers.resize(config.totalServers());
    for (int s = 0; s < config.totalServers(); ++s) {
        _servers[s].pod = s / config.serversPerPod;
        _servers[s].state = ServerState::Active;
    }
    _freeActiveSlots = config.totalSlots();
    _podAwakeServers.assign(size_t(config.numPods), config.serversPerPod);
    _podBusySlots.assign(size_t(config.numPods), 0);
    // Covering subset: spread across pods round-robin so every pod keeps
    // at least one awake server (and its sensor context) at all times.
    for (int k = 0; k < config.coveringSubsetSize; ++k) {
        int pod = k % config.numPods;
        int within = k / config.numPods;
        int idx = pod * config.serversPerPod + within;
        _servers[idx].covering = true;
    }
}

void
ClusterSim::setTrace(Trace trace)
{
    std::sort(trace.jobs.begin(), trace.jobs.end(),
              [](const Job &a, const Job &b) { return a.submitS < b.submitS; });
    _pendingTrace = std::move(trace);
    _hasPendingTrace = true;
    _pendingHasDeferrable =
        std::any_of(_pendingTrace.jobs.begin(), _pendingTrace.jobs.end(),
                    [](const Job &j) { return j.deferrable(); });
}

void
ClusterSim::applyPlan(const ComputePlan &plan)
{
    _plan = plan;
    _preferenceDirty = true;
    _planManages = _plan.manageServerStates ||
                   !std::all_of(_plan.hourAllowed.begin(),
                                _plan.hourAllowed.end(),
                                [](bool b) { return b; });
}

const std::vector<int> &
ClusterSim::serverPreference()
{
    if (!_preferenceDirty)
        return _serverPreference;

    std::vector<int> pod_rank(_config.numPods);
    for (int p = 0; p < _config.numPods; ++p)
        pod_rank[p] = p;
    if (!_plan.podOrder.empty()) {
        for (int p = 0; p < _config.numPods; ++p)
            pod_rank[p] = _config.numPods;  // unlisted pods go last
        int rank = 0;
        for (int pod : _plan.podOrder) {
            if (pod >= 0 && pod < _config.numPods)
                pod_rank[pod] = rank++;
        }
    }

    _serverPreference.resize(_servers.size());
    for (size_t s = 0; s < _servers.size(); ++s)
        _serverPreference[s] = int(s);
    std::stable_sort(_serverPreference.begin(), _serverPreference.end(),
                     [&](int a, int b) {
                         return pod_rank[_servers[a].pod] <
                                pod_rank[_servers[b].pod];
                     });
    _preferenceDirty = false;
    return _serverPreference;
}

void
ClusterSim::rolloverDay(int day_index)
{
    _currentDay = day_index;
    _nextJobIdx = 0;
    if (_hasPendingTrace) {
        _trace = std::move(_pendingTrace);
        _hasPendingTrace = false;
        _traceHasDeferrable = _pendingHasDeferrable;
    }
}

void
ClusterSim::activateJob(const Job &job, int64_t released,
                        int64_t abs_submit)
{
    size_t slot;
    if (!_freeJobSlots.empty()) {
        slot = _freeJobSlots.back();
        _freeJobSlots.pop_back();
        _activeJobs[slot] = JobRun{};
    } else {
        slot = _activeJobs.size();
        _activeJobs.emplace_back();
    }
    JobRun &run = _activeJobs[slot];
    run.job = job;
    run.job.submitS = abs_submit;  // delay accounting vs. wall clock
    run.releasedAtS = released;
    run.mapsQueued = job.mapTasks;
    _runnableJobs.push_back(slot);
    _queuedTasks += job.mapTasks;
}

void
ClusterSim::submitJob(const Job &job, util::SimTime now)
{
    activateJob(job, now.seconds(), job.submitS);
}

void
ClusterSim::releaseJobs(util::SimTime now)
{
    int64_t day_start = now.startOfDay().seconds();
    bool manage = _planManages;
    int hour = now.hourOfDay();

    auto activate = [&](const Job &job, int64_t released,
                        int64_t abs_submit) {
        activateJob(job, released, abs_submit);
    };

    // Intake from today's trace.
    while (_nextJobIdx < _trace.jobs.size()) {
        const Job &job = _trace.jobs[_nextJobIdx];
        int64_t abs_submit = day_start + job.submitS;
        if (abs_submit > now.seconds())
            break;
        ++_nextJobIdx;

        int64_t abs_deadline = day_start + job.startDeadlineS;
        bool defer = manage && job.deferrable() &&
                     !_plan.hourAllowed[size_t(hour)] &&
                     now.seconds() < abs_deadline;
        if (defer) {
            Job held = job;
            // Re-express times as absolute for the holding queue.
            held.startDeadlineS = abs_deadline;
            held.submitS = abs_submit;
            _deferredAbs.push_back(held);
        } else {
            activate(job, now.seconds(), abs_submit);
        }
    }

    // Re-examine held jobs.
    for (size_t i = 0; i < _deferredAbs.size();) {
        const Job &job = _deferredAbs[i];
        bool release = _plan.hourAllowed[size_t(hour)] ||
                       now.seconds() >= job.startDeadlineS;
        if (release) {
            activate(job, now.seconds(), job.submitS);
            _deferredAbs[i] = _deferredAbs.back();
            _deferredAbs.pop_back();
        } else {
            ++i;
        }
    }
}

void
ClusterSim::completeTasks(util::SimTime now)
{
    // Nothing can have expired before the earliest finish time, and a
    // scan without expirations mutates no state — skip it outright.
    // Most physics steps (30 s) complete no tasks (durations are
    // minutes), so this removes the O(running) walk from the hot loop.
    if (_nextFinishS > now.seconds())
        return;

    int64_t next_finish = INT64_MAX;
    for (size_t i = 0; i < _running.size();) {
        if (_running[i].finishS > now.seconds()) {
            next_finish = std::min(next_finish, _running[i].finishS);
            ++i;
            continue;
        }
        RunningTask task = _running[i];
        _running[i] = _running.back();
        _running.pop_back();

        Server &server = _servers[size_t(task.server)];
        server.busySlots--;
        _podBusySlots[size_t(server.pod)]--;
        if (server.state == ServerState::Active)
            _freeActiveSlots++;
        _busySlots--;
        _tasksCompleted++;

        JobRun &run = _activeJobs[task.jobSlot];
        if (task.isMap) {
            run.mapsRunning--;
            run.mapsDone++;
            if (run.mapsFinished() && run.job.reduceTasks > 0) {
                run.reducesQueued = run.job.reduceTasks;
                _runnableJobs.push_back(task.jobSlot);
                _queuedTasks += run.job.reduceTasks;
            }
        } else {
            run.reducesRunning--;
            run.reducesDone++;
        }

        if (run.finished()) {
            _jobsCompleted++;
            double delay =
                double(std::max<int64_t>(0, run.startedAtS - run.job.submitS));
            _delaySumS += delay;
            _delayMaxS = std::max(_delayMaxS, delay);
            _freeJobSlots.push_back(task.jobSlot);
        }
    }
    _nextFinishS = next_finish;
}

void
ClusterSim::wakeServer(Server &server)
{
    // Any state -> Active, with the counter bookkeeping.  Sleeping
    // servers are idle by invariant (tasks only land on Active servers
    // and must drain before sleep).
    if (server.state == ServerState::Sleeping) {
        _sleepingServers--;
        _podAwakeServers[size_t(server.pod)]++;
        _freeActiveSlots += _config.slotsPerServer;
    } else if (server.state == ServerState::Decommissioned) {
        _decommissionedServers--;
        _freeActiveSlots += _config.slotsPerServer - server.busySlots;
    }
    server.state = ServerState::Active;
}

void
ClusterSim::applyPowerStates()
{
    if (!_plan.manageServerStates) {
        // With every server already Active this loop is a no-op; the
        // counters let the baseline (which never manages states) skip
        // it outright.
        if (_sleepingServers == 0 && _decommissionedServers == 0)
            return;
        for (auto &server : _servers) {
            if (server.state == ServerState::Sleeping)
                server.powerCycles++;  // waking completes a cycle
            wakeServer(server);
        }
        return;
    }

    int target = _plan.targetActiveServers;
    if (target < 0)
        target = _config.totalServers();
    target = std::clamp(target, _config.coveringSubsetSize,
                        _config.totalServers());

    const auto &pref = serverPreference();

    int awake = _config.totalServers() - _sleepingServers;

    if (awake < target) {
        // Wake in preference order until we reach the target.
        for (int idx : pref) {
            if (awake >= target)
                break;
            Server &server = _servers[size_t(idx)];
            if (server.state == ServerState::Sleeping) {
                wakeServer(server);
                server.powerCycles++;
                ++awake;
            }
        }
        // Surviving decommissioned servers are needed again.
        if (_decommissionedServers > 0) {
            for (auto &server : _servers)
                if (server.state == ServerState::Decommissioned)
                    wakeServer(server);
        }
        return;
    }

    if (awake == target && _decommissionedServers == 0)
        return;  // nothing to shrink, nothing descending

    // Shrink: walk preference in reverse, spare the covering subset.
    int surplus = awake - target;
    for (auto it = pref.rbegin(); it != pref.rend() && surplus > 0; ++it) {
        Server &server = _servers[size_t(*it)];
        if (server.covering || server.state == ServerState::Sleeping)
            continue;
        if (server.busySlots == 0) {
            if (server.state == ServerState::Active)
                _freeActiveSlots -= _config.slotsPerServer;
            else
                _decommissionedServers--;
            server.state = ServerState::Sleeping;
            _sleepingServers++;
            _podAwakeServers[size_t(server.pod)]--;
            --surplus;
        } else {
            if (server.state == ServerState::Active) {
                _freeActiveSlots -=
                    _config.slotsPerServer - server.busySlots;
                _decommissionedServers++;
            }
            server.state = ServerState::Decommissioned;
            --surplus;
        }
    }
    // Idle decommissioned servers may now complete their descent.
    if (_decommissionedServers > 0) {
        for (auto &server : _servers) {
            if (server.state == ServerState::Decommissioned &&
                server.busySlots == 0) {
                server.state = ServerState::Sleeping;
                _decommissionedServers--;
                _sleepingServers++;
                _podAwakeServers[size_t(server.pod)]--;
            }
        }
    }
}

int
ClusterSim::freeSlotsOn(const Server &server) const
{
    if (server.state != ServerState::Active)
        return 0;
    return _config.slotsPerServer - server.busySlots;
}

void
ClusterSim::scheduleTasks(util::SimTime now)
{
    if (_runnableJobs.empty())
        return;
    // A fully-busy (or fully-asleep) cluster can launch nothing, and a
    // placement walk that launches nothing mutates nothing — skip it.
    if (_freeActiveSlots <= 0)
        return;
    const auto &pref = serverPreference();

    for (int idx : pref) {
        Server &server = _servers[size_t(idx)];
        int free = freeSlotsOn(server);
        while (free > 0 && !_runnableJobs.empty()) {
            size_t slot = _runnableJobs.front();
            JobRun &run = _activeJobs[slot];

            bool launched = false;
            if (run.mapsQueued > 0) {
                run.mapsQueued--;
                run.mapsRunning++;
                int64_t finish = now.seconds() + run.job.mapTaskDurS;
                _running.push_back({finish, idx, slot, true});
                _nextFinishS = std::min(_nextFinishS, finish);
                launched = true;
            } else if (run.reducesQueued > 0) {
                run.reducesQueued--;
                run.reducesRunning++;
                int64_t finish = now.seconds() + run.job.reduceTaskDurS;
                _running.push_back({finish, idx, slot, false});
                _nextFinishS = std::min(_nextFinishS, finish);
                launched = true;
            }

            if (launched) {
                if (run.startedAtS < 0)
                    run.startedAtS = now.seconds();
                server.busySlots++;
                _podBusySlots[size_t(server.pod)]++;
                _busySlots++;
                _queuedTasks--;
                _freeActiveSlots--;
                free--;
            }

            if (run.mapsQueued == 0 && run.reducesQueued == 0) {
                // Nothing left to launch for this job right now.
                _runnableJobs.pop_front();
                if (!launched)
                    continue;
            }
        }
        if (_runnableJobs.empty() || _freeActiveSlots <= 0)
            break;
    }
}

void
ClusterSim::step(util::SimTime now, double dt_s)
{
    int day = int(now.seconds() / util::kSecondsPerDay);
    if (day != _currentDay)
        rolloverDay(day);

    completeTasks(now);
    releaseJobs(now);
    applyPowerStates();
    scheduleTasks(now);
    _elapsedS += int64_t(dt_s);
}

plant::PodLoad
ClusterSim::podLoad() const
{
    plant::PodLoad load;
    podLoadInto(load);
    return load;
}

void
ClusterSim::podLoadInto(plant::PodLoad &load) const
{
    load.serversPerPod = _config.serversPerPod;
    load.activeServers.resize(size_t(_config.numPods));
    load.utilization.resize(size_t(_config.numPods));

    // Read the per-pod counters instead of walking every server.  The
    // counters are exact integer mirrors of the old scan (busy slots
    // only exist on awake servers, so a per-pod busy total needs no
    // state filter), and integer sums are exact in a double, so the
    // reported utilization is bit-identical to the scan's.
    for (int p = 0; p < _config.numPods; ++p) {
        int awake = _podAwakeServers[size_t(p)];
        load.activeServers[size_t(p)] = awake;
        load.utilization[size_t(p)] =
            awake > 0 ? double(_podBusySlots[size_t(p)]) /
                            double(awake * _config.slotsPerServer)
                      : 0.0;
    }
}

WorkloadStatus
ClusterSim::status() const
{
    WorkloadStatus st;
    // _queuedTasks mirrors the sum over _runnableJobs exactly; this call
    // runs once per control epoch and was the hottest walk in year runs.
    st.queuedTasks = int(std::min<int64_t>(_queuedTasks, 1 << 30));

    int64_t wanted_slots = _queuedTasks + int64_t(_running.size());
    st.demandServers = int(std::min<int64_t>(
        (wanted_slots + _config.slotsPerServer - 1) / _config.slotsPerServer,
        _config.totalServers()));

    st.awakeServers = awakeServers();
    st.offeredUtilization =
        double(_busySlots) / double(_config.totalSlots());
    // Cached at trace install: the trace is immutable between swaps, so
    // re-scanning every job per control epoch only burned time (it was
    // the single hottest call in baseline year runs).
    st.hasDeferrableJobs = _traceHasDeferrable;
    return st;
}

ClusterStats
ClusterSim::stats() const
{
    ClusterStats st;
    st.jobsCompleted = _jobsCompleted;
    st.tasksCompleted = _tasksCompleted;
    st.meanJobDelayS =
        _jobsCompleted > 0 ? _delaySumS / double(_jobsCompleted) : 0.0;
    st.maxJobDelayS = _delayMaxS;
    for (const auto &server : _servers)
        st.maxPowerCycles = std::max(st.maxPowerCycles, server.powerCycles);
    double hours = double(_elapsedS) / double(util::kSecondsPerHour);
    st.maxPowerCyclesPerHour =
        hours > 0.0 ? double(st.maxPowerCycles) / hours : 0.0;
    return st;
}

ServerState
ClusterSim::serverState(int server) const
{
    if (server < 0 || server >= int(_servers.size()))
        util::panic("ClusterSim::serverState: index out of range");
    return _servers[size_t(server)].state;
}

int
ClusterSim::awakeServers() const
{
    return _config.totalServers() - _sleepingServers;
}

} // namespace workload
} // namespace coolair
