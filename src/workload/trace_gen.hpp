#ifndef COOLAIR_WORKLOAD_TRACE_GEN_HPP
#define COOLAIR_WORKLOAD_TRACE_GEN_HPP

/**
 * @file
 * Statistical trace generators.
 *
 * We cannot redistribute the SWIM-generated Facebook trace or the
 * CloudSuite Nutch inputs, so these generators synthesize day-long traces
 * matching the published shape (§5.1):
 *
 *  Facebook: ~5500 jobs, ~68000 tasks; jobs have 2–1190 map tasks and
 *  1–63 reduce tasks, heavy-tailed; map phases 25–13000 s, reduce phases
 *  15–2600 s; inputs 64 MB–74 GB; 27 % average utilization on 64
 *  machines; a pronounced diurnal arrival pattern (Figure 7(a)).
 *
 *  Nutch: 2000 jobs, Poisson arrivals with 40 s mean inter-arrival;
 *  each job runs 42 map tasks (15–40 s) and 1 reduce task (150 s),
 *  touching ~85 MB; 32 % average utilization.
 */

#include <cstdint>

#include "workload/job.hpp"

namespace coolair {
namespace workload {

/** Parameters shared by the generators. */
struct TraceGenConfig
{
    /** Cluster task slots the utilization target refers to. */
    int totalSlots = 128;

    /** Root seed for trace randomness. */
    uint64_t seed = 2013;
};

/** Generate a SWIM-Facebook-like day trace. */
Trace facebookTrace(const TraceGenConfig &config = {});

/** Generate a Nutch-indexing-like day trace. */
Trace nutchTrace(const TraceGenConfig &config = {});

/**
 * Generate a synthetic constant-rate trace with @p utilization average
 * load — used by unit tests and by the data-collection campaign.
 */
Trace steadyTrace(double utilization, const TraceGenConfig &config = {});

} // namespace workload
} // namespace coolair

#endif // COOLAIR_WORKLOAD_TRACE_GEN_HPP
