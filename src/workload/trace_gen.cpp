#include "workload/trace_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace workload {

namespace {

/**
 * Diurnal arrival-rate multiplier: interactive-analytics clusters see a
 * trough in the early morning and a peak in the evening (as in the
 * paper's Figure 7(a) utilization curve).
 */
double
diurnalRate(double hour)
{
    // Peak near 19:00, trough near 05:00; multiplier in ~[0.45, 1.55].
    return 1.0 + 0.55 * std::sin(2.0 * M_PI * (hour - 13.0) / 24.0);
}

} // anonymous namespace

Trace
facebookTrace(const TraceGenConfig &config)
{
    util::Rng rng(config.seed, "trace.facebook");
    Trace trace;
    trace.name = "facebook";

    constexpr int kTargetJobs = 5500;
    // Generate arrivals by thinning: expected inter-arrival scaled by the
    // diurnal multiplier around the mean of one day / kTargetJobs.
    double mean_gap = double(util::kSecondsPerDay) / double(kTargetJobs);

    int id = 0;
    double t = rng.exponential(mean_gap);
    while (t < double(util::kSecondsPerDay)) {
        Job job;
        job.id = id++;
        job.submitS = int64_t(t);
        job.startDeadlineS = job.submitS;

        // Heavy-tailed map-task counts: median ~6, tail to 1190.
        job.mapTasks = int(util::clamp(
            std::round(rng.logNormal(std::log(6.0), 1.15)), 2.0, 1190.0));
        job.reduceTasks = int(util::clamp(
            std::round(double(job.mapTasks) / 15.0 +
                       rng.logNormal(0.0, 0.7)),
            1.0, 63.0));

        job.mapTaskDurS = int64_t(util::clamp(
            rng.logNormal(std::log(33.0), 0.95), 12.0, 3600.0));
        job.reduceTaskDurS = int64_t(util::clamp(
            rng.logNormal(std::log(40.0), 0.85), 15.0, 2600.0));

        // Input sizes 64 MB .. 74 GB, correlated with map count (HDFS
        // block per map task, roughly).
        job.inputMb = util::clamp(64.0 * double(job.mapTasks) *
                                      rng.uniform(0.8, 1.2),
                                  64.0, 74.0 * 1024.0);

        trace.jobs.push_back(job);

        double hour = t / double(util::kSecondsPerHour);
        t += rng.exponential(mean_gap / diurnalRate(hour));
    }

    // Nudge durations so the offered load lands on the published 27 %.
    double util_now = trace.offeredUtilization(config.totalSlots);
    if (util_now > 0.0) {
        double scale = 0.27 / util_now;
        for (auto &job : trace.jobs) {
            job.mapTaskDurS = std::max<int64_t>(
                12, int64_t(double(job.mapTaskDurS) * scale));
            job.reduceTaskDurS = std::max<int64_t>(
                15, int64_t(double(job.reduceTaskDurS) * scale));
        }
    }
    return trace;
}

Trace
nutchTrace(const TraceGenConfig &config)
{
    util::Rng rng(config.seed, "trace.nutch");
    Trace trace;
    trace.name = "nutch";

    constexpr double kMeanInterArrivalS = 40.0;
    constexpr int kTargetJobs = 2000;

    int id = 0;
    double t = rng.exponential(kMeanInterArrivalS);
    while (t < double(util::kSecondsPerDay) && id < kTargetJobs + 200) {
        Job job;
        job.id = id++;
        job.submitS = int64_t(t);
        job.startDeadlineS = job.submitS;
        job.mapTasks = 42;
        job.reduceTasks = 1;
        job.mapTaskDurS = int64_t(rng.uniform(25.0, 45.0));
        job.reduceTaskDurS = 150;
        job.inputMb = 85.0 * rng.uniform(0.9, 1.1);
        trace.jobs.push_back(job);
        t += rng.exponential(kMeanInterArrivalS);
    }
    return trace;
}

Trace
steadyTrace(double utilization, const TraceGenConfig &config)
{
    util::Rng rng(config.seed, "trace.steady");
    Trace trace;
    trace.name = "steady";

    utilization = util::clamp(utilization, 0.0, 1.0);
    if (utilization <= 0.0)
        return trace;

    // Fixed-size jobs arriving at a constant rate: each job occupies
    // `tasks` slots for `dur` seconds.
    constexpr int kTasks = 16;
    constexpr int64_t kDurS = 120;
    double work_per_job = double(kTasks) * double(kDurS);
    double target_work =
        utilization * double(config.totalSlots) *
        double(util::kSecondsPerDay);
    int jobs = std::max(1, int(target_work / work_per_job));
    double gap = double(util::kSecondsPerDay) / double(jobs);

    for (int i = 0; i < jobs; ++i) {
        Job job;
        job.id = i;
        job.submitS = int64_t(double(i) * gap + rng.uniform(0.0, gap * 0.2));
        job.startDeadlineS = job.submitS;
        job.mapTasks = kTasks;
        job.reduceTasks = 1;
        job.mapTaskDurS = kDurS;
        job.reduceTaskDurS = 30;
        job.inputMb = 1024.0;
        trace.jobs.push_back(job);
    }
    return trace;
}

} // namespace workload
} // namespace coolair
