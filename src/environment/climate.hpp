#ifndef COOLAIR_ENVIRONMENT_CLIMATE_HPP
#define COOLAIR_ENVIRONMENT_CLIMATE_HPP

/**
 * @file
 * Parametric synthetic climate model.
 *
 * The paper drives its simulators with "typical meteorological year" (TMY)
 * temperature and humidity data from the US DOE.  Those proprietary files
 * are not available offline, so we substitute a parametric climate model
 * that produces a frozen, deterministic year of weather per location:
 *
 *   T(t) = annual mean
 *        + seasonal sinusoid (hemisphere-phased)
 *        + diurnal sinusoid (peaking mid-afternoon)
 *        + synoptic component (multi-day "weather front" sinusoid bank
 *          with location-seeded pseudo-random phases)
 *
 * Dew point follows a parallel, slower model and is capped below the air
 * temperature; relative humidity is derived psychrometrically.  Because
 * the synthetic year is a pure function of time, it plays the same role
 * TMY data plays in the paper: the "actual" weather is frozen and a
 * forecast of it can be made perfectly accurate or deliberately biased
 * (paper §5.2, "Impact of weather forecast accuracy").
 */

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "environment/weather.hpp"
#include "physics/psychrometrics.hpp"
#include "util/sim_time.hpp"

namespace coolair {
namespace environment {

/**
 * A pre-evaluated weather time series on a uniform grid, produced by
 * Climate::sampleGridInto for the batched engine: one contiguous array
 * per field (structure-of-arrays) so downstream consumers index by step
 * without re-deriving the climate's sinusoid bank per query.
 */
struct WeatherGrid
{
    util::SimTime startTime;          ///< Time of grid point 0.
    int64_t stepS = 0;                ///< Grid spacing [s].
    std::vector<double> tempC;        ///< Dry-bulb temperature [°C].
    std::vector<double> rhPercent;    ///< Relative humidity [0..100].
    std::vector<double> absHumidity;  ///< Absolute humidity [g/m^3].

    /** Number of grid points. */
    size_t points() const { return tempC.size(); }

    /** The full observation at grid index @p i. */
    WeatherSample at(size_t i) const
    {
        return WeatherSample{tempC[i], rhPercent[i], absHumidity[i]};
    }
};

/** Parameters describing a location's climate. */
struct ClimateParams
{
    /** Annual mean dry-bulb temperature [°C]. */
    double annualMeanC = 12.0;

    /** Half peak-to-trough seasonal swing [°C]. */
    double seasonalAmplitudeC = 10.0;

    /** Half peak-to-trough average diurnal swing [°C]. */
    double diurnalAmplitudeC = 5.0;

    /** Amplitude of multi-day synoptic (weather front) variability [°C]. */
    double synopticAmplitudeC = 3.0;

    /**
     * Mean difference between air temperature and dew point [°C].
     * Small values mean humid climates; large values arid ones.
     */
    double dewPointDepressionC = 6.0;

    /** Variability of the dew point depression [°C]. */
    double dewPointVariabilityC = 2.0;

    /** True for the southern hemisphere (seasons flipped). */
    bool southernHemisphere = false;

    /** Day of year with the seasonal temperature peak (northern). */
    double seasonalPeakDay = 201.0;

    /** Hour of day of the diurnal peak (solar-afternoon lag). */
    double diurnalPeakHour = 15.0;

    friend bool operator==(const ClimateParams &,
                           const ClimateParams &) = default;
};

/**
 * A frozen synthetic meteorological year for one location.  Thread-safe
 * after construction: sampling is a pure function of time.
 */
class Climate : public WeatherProvider
{
  public:
    /**
     * Build the climate from parameters and a seed.  The seed fixes the
     * synoptic sinusoid bank's phases, i.e. *which* typical year this is.
     */
    Climate(const ClimateParams &params, uint64_t seed);

    /** Outside dry-bulb temperature [°C] at @p t. */
    double temperature(util::SimTime t) const override;

    /**
     * Smooth (seasonal + diurnal only) temperature at @p t — the
     * climatological expectation without synoptic weather.  Used by tests
     * and by biased forecasts.
     */
    double smoothTemperature(util::SimTime t) const;

    /** Outside dew point [°C] at @p t (always <= temperature). */
    double dewPointAt(util::SimTime t) const;

    /** Full weather observation at @p t. */
    WeatherSample sample(util::SimTime t) const override;

    /**
     * Evaluate @p n grid points starting at @p start with spacing
     * @p step_s into @p out (vectors are resized; prior contents
     * dropped).  Matches sample() at every grid point up to the
     * last-few-ulps drift of the kernel TU's fast-math build (see
     * DESIGN.md §10); implemented in climate_kernels.cpp with the
     * sinusoid banks walked time-inner so the loops vectorize.
     */
    void sampleGridInto(util::SimTime start, int64_t step_s, int n,
                        WeatherGrid &out) const;

    /** The parameters this climate was built from. */
    const ClimateParams &params() const { return _params; }

  private:
    /** Number of sinusoids in the synoptic bank. */
    static constexpr int kSynopticBankSize = 8;

    /** Number of sinusoids modulating the diurnal amplitude. */
    static constexpr int kDiurnalModBankSize = 3;

    struct Sinusoid
    {
        double periodDays;
        double phase;       // radians
        double amplitude;   // relative weight, sums to ~1 over the bank
    };

    double synoptic(util::SimTime t) const;
    double depressionAt(util::SimTime t) const;
    double diurnalModulation(double day) const;

    ClimateParams _params;
    std::array<Sinusoid, kSynopticBankSize> _bank;
    std::array<Sinusoid, kSynopticBankSize> _humidityBank;
    std::array<Sinusoid, kDiurnalModBankSize> _diurnalModBank;
};

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_CLIMATE_HPP
