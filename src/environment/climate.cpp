#include "environment/climate.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace environment {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

} // anonymous namespace

Climate::Climate(const ClimateParams &params, uint64_t seed)
    : _params(params)
{
    util::Rng rng(seed, "climate.synoptic");
    // Periods spread from sub-daily frontal passages (0.8 d) to slow
    // highs/lows (12 d); amplitudes grow with the square root of the
    // period so the slowest fronts dominate, matching real synoptic
    // spectra, while the fast components still produce occasional large
    // *intra-day* swings.
    double weight_sum = 0.0;
    for (int i = 0; i < kSynopticBankSize; ++i) {
        double frac = double(i) / double(kSynopticBankSize - 1);
        _bank[i].periodDays = 0.8 + (12.0 - 0.8) * frac * frac;
        _bank[i].periodDays *= rng.uniform(0.85, 1.15);
        _bank[i].phase = rng.uniform(0.0, kTwoPi);
        _bank[i].amplitude = std::pow(_bank[i].periodDays, 0.3);
        weight_sum += _bank[i].amplitude;
    }
    for (auto &s : _bank)
        s.amplitude /= weight_sum;

    // Day-to-day modulation of the diurnal swing (clear vs. overcast
    // days): factor in roughly [0.45, 1.55].
    util::Rng drng(seed, "climate.diurnal-mod");
    for (int i = 0; i < kDiurnalModBankSize; ++i) {
        _diurnalModBank[i].periodDays = drng.uniform(4.0, 17.0);
        _diurnalModBank[i].phase = drng.uniform(0.0, kTwoPi);
        _diurnalModBank[i].amplitude = 1.0 / double(i + 1);
    }

    util::Rng hrng(seed, "climate.humidity");
    weight_sum = 0.0;
    for (int i = 0; i < kSynopticBankSize; ++i) {
        _humidityBank[i].periodDays = hrng.uniform(3.0, 15.0);
        _humidityBank[i].phase = hrng.uniform(0.0, kTwoPi);
        _humidityBank[i].amplitude = 1.0 / double(i + 1);
        weight_sum += _humidityBank[i].amplitude;
    }
    for (auto &s : _humidityBank)
        s.amplitude /= weight_sum;
}

double
Climate::smoothTemperature(util::SimTime t) const
{
    double peak_day = _params.seasonalPeakDay;
    if (_params.southernHemisphere)
        peak_day = std::fmod(peak_day + 182.5, 365.0);

    // Use fractional day so the seasonal term is continuous across
    // midnight (no 0.1 °C jumps at day boundaries).
    double day = t.days();
    double seasonal = _params.seasonalAmplitudeC *
        std::cos(kTwoPi * (day - peak_day) / double(util::kDaysPerYear));

    double hour = t.fractionalHourOfDay();
    double diurnal = _params.diurnalAmplitudeC * diurnalModulation(day) *
        std::cos(kTwoPi * (hour - _params.diurnalPeakHour) / 24.0);

    return _params.annualMeanC + seasonal + diurnal;
}

double
Climate::diurnalModulation(double day) const
{
    double sum = 0.0;
    double weight = 0.0;
    for (const auto &s : _diurnalModBank) {
        sum += s.amplitude * std::sin(kTwoPi * day / s.periodDays + s.phase);
        weight += s.amplitude;
    }
    return 1.0 + 0.55 * (sum / weight);
}

double
Climate::synoptic(util::SimTime t) const
{
    double day = t.days();
    double sum = 0.0;
    for (const auto &s : _bank)
        sum += s.amplitude * std::sin(kTwoPi * day / s.periodDays + s.phase);
    // The bank's weighted sum has RMS < 1; scale to the configured
    // amplitude so the typical excursion matches synopticAmplitudeC.
    return 1.8 * _params.synopticAmplitudeC * sum;
}

double
Climate::temperature(util::SimTime t) const
{
    return smoothTemperature(t) + synoptic(t);
}

double
Climate::depressionAt(util::SimTime t) const
{
    double day = t.days();
    double sum = 0.0;
    for (const auto &s : _humidityBank)
        sum += s.amplitude * std::sin(kTwoPi * day / s.periodDays + s.phase);
    double depression =
        _params.dewPointDepressionC + 1.6 * _params.dewPointVariabilityC * sum;
    // Dew point can touch but not exceed the air temperature.
    return std::max(0.0, depression);
}

double
Climate::dewPointAt(util::SimTime t) const
{
    return temperature(t) - depressionAt(t);
}

WeatherSample
Climate::sample(util::SimTime t) const
{
    WeatherSample out;
    // temperature(t) is pure, so evaluate the sinusoid banks once and
    // derive the dew point from the same value instead of paying a
    // second smoothTemperature + synoptic pass through dewPointAt().
    out.tempC = temperature(t);
    double dew = out.tempC - depressionAt(t);
    // RH from dew point: ratio of saturation pressures.
    double rh = 100.0 * physics::saturationVaporPressure(dew) /
                physics::saturationVaporPressure(out.tempC);
    out.rhPercent = util::clamp(rh, 1.0, 100.0);
    out.absHumidity = physics::absoluteHumidity(out.tempC, out.rhPercent);
    return out;
}

} // namespace environment
} // namespace coolair
