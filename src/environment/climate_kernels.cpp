/**
 * @file
 * Grid-evaluated climate sampling for the batched engine.
 *
 * Climate::sample is the hottest function of a scalar Baseline year run
 * (~55% of wall time): every physics step pays 12 sin/cos calls plus the
 * psychrometric exps.  The batched path instead evaluates a whole day of
 * grid points at once; this TU is built with COOLAIR_KERNEL_OPTIONS
 * (fast-math) so the time-inner loops vectorize through libmvec.
 *
 * The formulas transliterate climate.cpp exactly — sinusoid banks walked
 * outer, time inner — so grid values match sample() to within the
 * fast-math ulp drift documented in DESIGN.md §10.
 */

#include "environment/climate.hpp"

#include <cmath>

namespace coolair {
namespace environment {

namespace {

constexpr double kTwoPi = 2.0 * M_PI;

} // anonymous namespace

void
Climate::sampleGridInto(util::SimTime start, int64_t step_s, int n,
                        WeatherGrid &out) const
{
    out.startTime = start;
    out.stepS = step_s;
    out.tempC.resize(size_t(n));
    out.rhPercent.resize(size_t(n));
    out.absHumidity.resize(size_t(n));
    if (n <= 0)
        return;

    double *temp = out.tempC.data();
    double *rh = out.rhPercent.data();
    double *abs = out.absHumidity.data();

    // Scratch: fractional day / hour-of-day per grid point, then the
    // accumulated sinusoid banks.  thread_local so repeated chunk
    // evaluations (one call per lane per chunk) never reallocate;
    // sampling stays safe to run concurrently on one Climate.
    const size_t nz = size_t(n);
    thread_local std::vector<double> day, hour, depression, diurnal_mod;
    day.resize(nz);
    hour.resize(nz);
    depression.assign(nz, 0.0);
    diurnal_mod.assign(nz, 0.0);

    for (int i = 0; i < n; ++i) {
        util::SimTime t = start + int64_t(i) * step_s;
        day[size_t(i)] = t.days();
        hour[size_t(i)] = t.fractionalHourOfDay();
    }

    double peak_day = _params.seasonalPeakDay;
    if (_params.southernHemisphere)
        peak_day = std::fmod(peak_day + 182.5, 365.0);

    // Seasonal term + synoptic bank into temp[].
    const double seas_amp = _params.seasonalAmplitudeC;
    const double base = _params.annualMeanC;
    for (int i = 0; i < n; ++i)
        temp[i] = base + seas_amp *
            std::cos(kTwoPi * (day[size_t(i)] - peak_day) /
                     double(util::kDaysPerYear));
    for (const auto &s : _bank) {
        const double w = 1.8 * _params.synopticAmplitudeC * s.amplitude;
        const double omega = kTwoPi / s.periodDays;
        const double phase = s.phase;
        for (int i = 0; i < n; ++i)
            temp[i] += w * std::sin(omega * day[size_t(i)] + phase);
    }

    // Diurnal modulation bank, then the diurnal term itself.
    double mod_weight = 0.0;
    for (const auto &s : _diurnalModBank) {
        const double omega = kTwoPi / s.periodDays;
        const double phase = s.phase;
        const double amp = s.amplitude;
        mod_weight += amp;
        for (int i = 0; i < n; ++i)
            diurnal_mod[size_t(i)] +=
                amp * std::sin(omega * day[size_t(i)] + phase);
    }
    const double di_amp = _params.diurnalAmplitudeC;
    const double peak_hour = _params.diurnalPeakHour;
    for (int i = 0; i < n; ++i) {
        double mod = 1.0 + 0.55 * (diurnal_mod[size_t(i)] / mod_weight);
        temp[i] += di_amp * mod *
            std::cos(kTwoPi * (hour[size_t(i)] - peak_hour) / 24.0);
    }

    // Humidity bank -> dew-point depression, clamped at 0.
    for (const auto &s : _humidityBank) {
        const double w = 1.6 * _params.dewPointVariabilityC * s.amplitude;
        const double omega = kTwoPi / s.periodDays;
        const double phase = s.phase;
        for (int i = 0; i < n; ++i)
            depression[size_t(i)] +=
                w * std::sin(omega * day[size_t(i)] + phase);
    }
    const double dep_base = _params.dewPointDepressionC;
    for (int i = 0; i < n; ++i)
        depression[size_t(i)] =
            std::max(0.0, dep_base + depression[size_t(i)]);

    // RH from the saturation-pressure ratio at dew vs. air temperature,
    // then absolute humidity — same formulas as Climate::sample, with
    // the svp exps batched through the vectorizable kernel loops.
    thread_local std::vector<double> dew, svp_dew, svp_air;
    dew.resize(nz);
    svp_dew.resize(nz);
    svp_air.resize(nz);
    for (int i = 0; i < n; ++i)
        dew[size_t(i)] = temp[i] - depression[size_t(i)];
    physics::saturationVaporPressureN(dew.data(), svp_dew.data(), n);
    physics::saturationVaporPressureN(temp, svp_air.data(), n);
    for (int i = 0; i < n; ++i) {
        double r = 100.0 * svp_dew[size_t(i)] / svp_air[size_t(i)];
        rh[i] = std::min(std::max(r, 1.0), 100.0);
        // absoluteHumidity(tempC, rh) inlined against the already-
        // computed svp_air.
        double vp = svp_air[size_t(i)] * rh[i] / 100.0;
        abs[i] = 1000.0 * vp /
                 (physics::kVaporGasConstant * (temp[i] + 273.15));
    }
}

} // namespace environment
} // namespace coolair
