#ifndef COOLAIR_ENVIRONMENT_WEATHER_CACHE_HPP
#define COOLAIR_ENVIRONMENT_WEATHER_CACHE_HPP

/**
 * @file
 * Cached weather evaluation for the simulation hot loop.
 *
 * A year-long run queries the weather provider on a rigid grid: the
 * engine samples every physics step, the metrics/trace path reads the
 * same instants, and the Forecaster's hourly means walk a 300 s
 * sub-grid of the same timestamps.  Every one of those queries pays the
 * full sinusoid-bank evaluation of Climate::sample.
 *
 * CachedWeatherProvider decorates any WeatherProvider with a per-day
 * memo table on a fixed grid: each grid timestamp is evaluated through
 * the underlying provider exactly once and then served from the table,
 * so results are *bit-identical* to the direct path by construction
 * (no interpolation, no approximation).  Queries that fall off the grid
 * pass straight through to the underlying provider, also unchanged.
 *
 * Invariants:
 *  - A cached sample equals inner().sample(t) exactly (same object
 *    state, same arithmetic) — the cache only deduplicates calls.
 *  - The grid step divides both the day length and the Forecaster's
 *    300 s mean-temperature stride, so engine and forecaster queries
 *    share table entries.
 *  - Two day blocks are resident (the measured day plus the warm-up
 *    tail of the previous day); older blocks are evicted LRU with their
 *    storage reused.
 *
 * Thread safety: sample() fills the memo table lazily behind a const
 * interface (mutable state), so one instance must not be shared across
 * threads.  The scenario layer builds one provider per scenario and the
 * parallel sweep runner builds one scenario per worker, which keeps
 * every instance thread-private (covered by the sweep_tsan_smoke
 * target).  Disable per experiment with the `weather_cache = false`
 * spec key.
 */

#include <cstdint>
#include <vector>

#include "environment/weather.hpp"

namespace coolair {
namespace environment {

/**
 * The grid step [s] the scenario layer caches on for a physics step:
 * the largest step dividing the physics step, the Forecaster's 300 s
 * stride, and the day length.  Returns 0 (caching disabled, every
 * query passes through) for non-integral physics steps.
 */
int64_t weatherCacheGridStepS(double physics_step_s);

/** Exact memoizing decorator over a WeatherProvider. */
class CachedWeatherProvider : public WeatherProvider
{
  public:
    /**
     * @param inner       the provider to memoize (not owned; must
     *                    outlive this object)
     * @param grid_step_s memo grid resolution [s]; must divide the day
     *                    length.  <= 0 disables caching entirely.
     */
    CachedWeatherProvider(const WeatherProvider &inner, int64_t grid_step_s);

    WeatherSample sample(util::SimTime t) const override;

    /** The decorated provider. */
    const WeatherProvider &inner() const { return _inner; }

    /** The memo grid step [s] (0 = pass-through). */
    int64_t gridStepS() const { return _gridStepS; }

    /** Underlying sample() evaluations so far (for tests/diagnostics). */
    int64_t underlyingEvals() const { return _underlyingEvals; }

    /** Query-outcome counters, harvested once per run by the scenario. */
    struct CacheStats
    {
        int64_t hits = 0;         ///< served from a memo table entry
        int64_t misses = 0;       ///< grid query that filled an entry
        int64_t evictions = 0;    ///< day blocks recycled (LRU)
        int64_t passthrough = 0;  ///< off-grid / cache-disabled queries
    };

    CacheStats cacheStats() const { return _stats; }

  private:
    /** One day-aligned window of memoized grid samples. */
    struct Block
    {
        int64_t startS = 0;
        bool active = false;
        std::vector<WeatherSample> samples;
        std::vector<uint8_t> filled;
    };

    Block &blockFor(int64_t block_start) const;

    const WeatherProvider &_inner;
    int64_t _gridStepS;
    size_t _entriesPerBlock;

    mutable Block _blocks[2];
    mutable int _mru = 0;
    mutable int64_t _underlyingEvals = 0;
    mutable CacheStats _stats;
};

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_WEATHER_CACHE_HPP
