#include "environment/weather_cache.hpp"

#include <cmath>
#include <numeric>

#include "util/logging.hpp"

namespace coolair {
namespace environment {

namespace {

/** Floor division for possibly negative times (warm-ups start at -2 h). */
int64_t
floorDiv(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if (a % b != 0 && ((a < 0) != (b < 0)))
        --q;
    return q;
}

} // anonymous namespace

int64_t
weatherCacheGridStepS(double physics_step_s)
{
    if (physics_step_s <= 0.0)
        return 0;
    double rounded = std::floor(physics_step_s);
    if (rounded != physics_step_s)
        return 0;  // off-grid steps would never hit the table
    // The Forecaster walks hourly means at a 300 s stride; caching on
    // gcd(step, 300) lets engine and forecaster queries share entries.
    // 300 divides the day length, so blocks stay day-aligned.
    return std::gcd(int64_t(rounded), int64_t(300));
}

CachedWeatherProvider::CachedWeatherProvider(const WeatherProvider &inner,
                                             int64_t grid_step_s)
    : _inner(inner), _gridStepS(grid_step_s > 0 ? grid_step_s : 0)
{
    if (_gridStepS > 0 && util::kSecondsPerDay % _gridStepS != 0)
        util::fatal("CachedWeatherProvider: grid step must divide the day "
                    "length");
    _entriesPerBlock =
        _gridStepS > 0 ? size_t(util::kSecondsPerDay / _gridStepS) : 0;
}

CachedWeatherProvider::Block &
CachedWeatherProvider::blockFor(int64_t block_start) const
{
    for (Block &b : _blocks) {
        if (b.active && b.startS == block_start) {
            _mru = int(&b - _blocks);
            return b;
        }
    }
    // Evict the least-recently-used block, reusing its storage.
    Block &victim = _blocks[1 - _mru];
    if (victim.active)
        ++_stats.evictions;
    victim.startS = block_start;
    victim.active = true;
    victim.samples.resize(_entriesPerBlock);
    victim.filled.assign(_entriesPerBlock, 0);
    _mru = int(&victim - _blocks);
    return victim;
}

WeatherSample
CachedWeatherProvider::sample(util::SimTime t) const
{
    const int64_t s = t.seconds();
    if (_gridStepS <= 0) {
        ++_underlyingEvals;
        ++_stats.passthrough;
        return _inner.sample(t);
    }

    const int64_t block_start =
        floorDiv(s, util::kSecondsPerDay) * util::kSecondsPerDay;
    const int64_t offset = s - block_start;
    if (offset % _gridStepS != 0) {
        ++_underlyingEvals;
        ++_stats.passthrough;
        return _inner.sample(t);
    }

    Block &block = blockFor(block_start);
    const size_t idx = size_t(offset / _gridStepS);
    if (!block.filled[idx]) {
        block.samples[idx] = _inner.sample(t);
        block.filled[idx] = 1;
        ++_underlyingEvals;
        ++_stats.misses;
    } else {
        ++_stats.hits;
    }
    return block.samples[idx];
}

} // namespace environment
} // namespace coolair
