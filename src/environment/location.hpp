#ifndef COOLAIR_ENVIRONMENT_LOCATION_HPP
#define COOLAIR_ENVIRONMENT_LOCATION_HPP

/**
 * @file
 * Geographic locations and the five named evaluation sites.
 *
 * The paper evaluates CoolAir at Newark (hot summers / cold winters),
 * Chad (hot year-round), Santiago de Chile (mild), Iceland (cold), and
 * Singapore (hot and humid), plus 1520 world-wide sites.  Each location
 * carries the climate parameters used to synthesize its typical year.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "environment/climate.hpp"

namespace coolair {
namespace environment {

/** A geographic site with its climate description. */
struct Location
{
    std::string name;
    double latitude = 0.0;     ///< Degrees, positive north.
    double longitude = 0.0;    ///< Degrees, positive east.
    ClimateParams climate;

    /** Build the frozen typical year for this site. */
    Climate makeClimate(uint64_t seed = 0) const;

    friend bool operator==(const Location &, const Location &) = default;
};

/** The five named sites of the paper's evaluation (§5.1). */
enum class NamedSite
{
    Newark,     ///< Hot summer, cold winter (closest TMY site to Parasol).
    Chad,       ///< N'Djamena: hot year-round, arid.
    Santiago,   ///< Mild year-round, large diurnal swing.
    Iceland,    ///< Reykjavik: cold year-round, maritime.
    Singapore   ///< Hot and humid year-round.
};

/** Number of NamedSite enumerators (keep in sync with the enum). */
inline constexpr int kNamedSiteCount = 5;

/** All five named sites, in the paper's presentation order. */
const std::vector<NamedSite> &allNamedSites();

/** Location (with calibrated climate normals) for a named site. */
Location namedLocation(NamedSite site);

/** Human-readable name of a named site. */
const char *siteName(NamedSite site);

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_LOCATION_HPP
