#include "environment/location.hpp"

#include "util/logging.hpp"

namespace coolair {
namespace environment {

Climate
Location::makeClimate(uint64_t seed) const
{
    // Mix the coordinates into the seed so distinct sites sharing a root
    // seed still get distinct synoptic years.
    uint64_t site_seed = seed ^
        (uint64_t(int64_t(latitude * 100.0)) * 0x9E3779B97F4A7C15ULL) ^
        (uint64_t(int64_t(longitude * 100.0)) * 0xC2B2AE3D27D4EB4FULL);
    return Climate(climate, site_seed);
}

const std::vector<NamedSite> &
allNamedSites()
{
    static const std::vector<NamedSite> sites = {
        NamedSite::Newark, NamedSite::Chad, NamedSite::Santiago,
        NamedSite::Iceland, NamedSite::Singapore
    };
    return sites;
}

const char *
siteName(NamedSite site)
{
    switch (site) {
      case NamedSite::Newark:    return "Newark";
      case NamedSite::Chad:      return "Chad";
      case NamedSite::Santiago:  return "Santiago";
      case NamedSite::Iceland:   return "Iceland";
      case NamedSite::Singapore: return "Singapore";
    }
    util::panic("siteName: unknown site");
}

Location
namedLocation(NamedSite site)
{
    Location loc;
    loc.name = siteName(site);
    ClimateParams &c = loc.climate;

    // Climate normals below are calibrated to published monthly means for
    // each city; seasonal/diurnal amplitudes are half the peak-to-trough
    // swings of those normals.
    switch (site) {
      case NamedSite::Newark:
        loc.latitude = 40.7;
        loc.longitude = -74.2;
        c.annualMeanC = 12.5;
        c.seasonalAmplitudeC = 12.0;
        c.diurnalAmplitudeC = 5.5;
        c.synopticAmplitudeC = 5.5;
        c.dewPointDepressionC = 5.5;
        c.dewPointVariabilityC = 3.0;
        break;
      case NamedSite::Chad:
        loc.latitude = 12.1;
        loc.longitude = 15.0;
        c.annualMeanC = 28.0;
        c.seasonalAmplitudeC = 5.0;
        c.diurnalAmplitudeC = 6.0;
        c.synopticAmplitudeC = 1.5;
        c.dewPointDepressionC = 13.0;
        c.dewPointVariabilityC = 6.0;
        // Sahel heat peaks before the rainy season, in April/May.
        c.seasonalPeakDay = 115.0;
        break;
      case NamedSite::Santiago:
        loc.latitude = -33.4;
        loc.longitude = -70.7;
        c.annualMeanC = 14.5;
        c.seasonalAmplitudeC = 6.5;
        c.diurnalAmplitudeC = 6.5;
        c.synopticAmplitudeC = 3.0;
        c.dewPointDepressionC = 8.0;
        c.dewPointVariabilityC = 3.0;
        c.southernHemisphere = true;
        break;
      case NamedSite::Iceland:
        loc.latitude = 64.1;
        loc.longitude = -21.9;
        c.annualMeanC = 4.5;
        c.seasonalAmplitudeC = 5.5;
        c.diurnalAmplitudeC = 2.5;
        c.synopticAmplitudeC = 4.5;
        c.dewPointDepressionC = 2.5;
        c.dewPointVariabilityC = 1.5;
        break;
      case NamedSite::Singapore:
        loc.latitude = 1.35;
        loc.longitude = 103.8;
        c.annualMeanC = 27.5;
        c.seasonalAmplitudeC = 1.0;
        c.diurnalAmplitudeC = 3.5;
        c.synopticAmplitudeC = 1.0;
        c.dewPointDepressionC = 3.0;
        c.dewPointVariabilityC = 1.0;
        break;
    }
    return loc;
}

} // namespace environment
} // namespace coolair
