#ifndef COOLAIR_ENVIRONMENT_WORLD_GRID_HPP
#define COOLAIR_ENVIRONMENT_WORLD_GRID_HPP

/**
 * @file
 * Deterministic generation of the world-wide site set.
 *
 * The paper's Figures 12 and 13 sweep 1520 locations with TMY data.  We
 * substitute a deterministic sampler over the habitable-latitude band with
 * climate parameters derived from latitude plus pseudo-random
 * continentality and aridity factors.  The derivation follows first-order
 * climatology: annual means fall with |latitude|, seasonal swing grows
 * with |latitude| and continentality, diurnal swing grows with aridity,
 * synoptic variability grows with latitude (storm tracks).
 */

#include <cstdint>
#include <vector>

#include "environment/location.hpp"

namespace coolair {
namespace environment {

/**
 * Generate @p count world-wide locations, deterministically from
 * @p seed.  Latitudes span [-55, 68] weighted toward the land-heavy
 * northern mid-latitudes.
 */
std::vector<Location> worldGrid(size_t count = 1520, uint64_t seed = 42);

/**
 * Derive climate parameters for a site at @p latitude with the given
 * @p continentality (0 = maritime .. 1 = deep continental) and
 * @p aridity (0 = rainforest .. 1 = desert) factors.
 */
ClimateParams climateFor(double latitude, double continentality,
                         double aridity);

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_WORLD_GRID_HPP
