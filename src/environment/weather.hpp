#ifndef COOLAIR_ENVIRONMENT_WEATHER_HPP
#define COOLAIR_ENVIRONMENT_WEATHER_HPP

/**
 * @file
 * The weather-provider abstraction.
 *
 * Everything that consumes outdoor conditions (the plant, the engine,
 * the Forecaster) does so through WeatherProvider, so the same
 * experiments run against the parametric synthetic climate (Climate),
 * a recorded hourly series loaded from CSV (CsvWeatherSeries — e.g.
 * real TMY exports), or any custom source a downstream user supplies.
 */

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace coolair {
namespace environment {

/** One instantaneous outdoor weather observation. */
struct WeatherSample
{
    double tempC = 0.0;        ///< Outside dry-bulb temperature [°C].
    double rhPercent = 50.0;   ///< Outside relative humidity [0..100].
    double absHumidity = 5.0;  ///< Outside absolute humidity [g/m^3].
};

/** Source of outdoor conditions over the simulated year. */
class WeatherProvider
{
  public:
    virtual ~WeatherProvider() = default;

    /** Full weather observation at @p t. */
    virtual WeatherSample sample(util::SimTime t) const = 0;

    /** Outside dry-bulb temperature [°C] at @p t. */
    virtual double temperature(util::SimTime t) const
    {
        return sample(t).tempC;
    }

    /**
     * Mean temperature over [@p from, @p to] sampled at @p step_s
     * resolution.
     */
    double meanTemperature(util::SimTime from, util::SimTime to,
                           int64_t step_s = 600) const;
};

/**
 * Upper bound on CSV hour indices (a leap year of hours): anything at
 * or above this is a malformed row, not a request for a multi-year
 * series.
 */
inline constexpr long long kMaxCsvHours = 24 * 366;

/**
 * A recorded hourly weather series (e.g. exported from TMY data as CSV)
 * with linear interpolation between hours and yearly wrap-around.
 *
 * CSV format: one header line, then rows `hour_of_year,temp_c,rh_percent`
 * with strictly increasing hour_of_year in [0, kMaxCsvHours).  Missing
 * hours repeat the last recorded value.  Parsing is strict: every cell
 * must be a complete number (no atof-style silent zeros), and a bad row
 * raises std::invalid_argument naming its 1-based data-row number
 * ("weather row N: ...").
 */
class CsvWeatherSeries : public WeatherProvider
{
  public:
    /** Build from explicit hourly (temp, rh) pairs. */
    CsvWeatherSeries(std::vector<double> hourly_temp_c,
                     std::vector<double> hourly_rh_percent);

    /**
     * Parse the CSV format described above from a stream.
     * @throws std::invalid_argument on any malformed row or when the
     *         stream holds no data rows.
     */
    static CsvWeatherSeries fromCsv(std::istream &in);

    /** Parse from a file path (fatal on open failure). */
    static CsvWeatherSeries fromCsvFile(const std::string &path);

    WeatherSample sample(util::SimTime t) const override;

    /** Number of recorded hours. */
    size_t hours() const { return _tempC.size(); }

  private:
    std::vector<double> _tempC;
    std::vector<double> _rhPercent;
};

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_WEATHER_HPP
