#ifndef COOLAIR_ENVIRONMENT_WEATHER_HPP
#define COOLAIR_ENVIRONMENT_WEATHER_HPP

/**
 * @file
 * The weather-provider abstraction.
 *
 * Everything that consumes outdoor conditions (the plant, the engine,
 * the Forecaster) does so through WeatherProvider, so the same
 * experiments run against the parametric synthetic climate (Climate),
 * a recorded hourly series loaded from CSV (CsvWeatherSeries — e.g.
 * real TMY exports), or any custom source a downstream user supplies.
 */

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "util/sim_time.hpp"

namespace coolair {
namespace environment {

/** One instantaneous outdoor weather observation. */
struct WeatherSample
{
    double tempC = 0.0;        ///< Outside dry-bulb temperature [°C].
    double rhPercent = 50.0;   ///< Outside relative humidity [0..100].
    double absHumidity = 5.0;  ///< Outside absolute humidity [g/m^3].
};

/** Source of outdoor conditions over the simulated year. */
class WeatherProvider
{
  public:
    virtual ~WeatherProvider() = default;

    /** Full weather observation at @p t. */
    virtual WeatherSample sample(util::SimTime t) const = 0;

    /** Outside dry-bulb temperature [°C] at @p t. */
    virtual double temperature(util::SimTime t) const
    {
        return sample(t).tempC;
    }

    /**
     * Mean temperature over [@p from, @p to] sampled at @p step_s
     * resolution.
     */
    double meanTemperature(util::SimTime from, util::SimTime to,
                           int64_t step_s = 600) const;
};

/**
 * A recorded hourly weather series (e.g. exported from TMY data as CSV)
 * with linear interpolation between hours and yearly wrap-around.
 *
 * CSV format: one header line, then rows `hour_of_year,temp_c,rh_percent`
 * with hour_of_year in [0, 8760).  Missing trailing hours repeat the
 * last value.
 */
class CsvWeatherSeries : public WeatherProvider
{
  public:
    /** Build from explicit hourly (temp, rh) pairs. */
    CsvWeatherSeries(std::vector<double> hourly_temp_c,
                     std::vector<double> hourly_rh_percent);

    /** Parse the CSV format described above from a stream. */
    static CsvWeatherSeries fromCsv(std::istream &in);

    /** Parse from a file path (fatal on open failure). */
    static CsvWeatherSeries fromCsvFile(const std::string &path);

    WeatherSample sample(util::SimTime t) const override;

    /** Number of recorded hours. */
    size_t hours() const { return _tempC.size(); }

  private:
    std::vector<double> _tempC;
    std::vector<double> _rhPercent;
};

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_WEATHER_HPP
