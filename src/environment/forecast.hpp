#ifndef COOLAIR_ENVIRONMENT_FORECAST_HPP
#define COOLAIR_ENVIRONMENT_FORECAST_HPP

/**
 * @file
 * Weather forecast service.
 *
 * CoolAir queries a Web-based forecast service for the hourly outside
 * temperatures for the rest of the day (paper §3.2).  Since our typical
 * year is frozen, the Forecaster can reproduce both the paper's baseline
 * assumption ("our simulated predictions of average outside temperature
 * are perfectly accurate") and its sensitivity study (predictions
 * consistently 5 °C too high / too low, §5.2).
 */

#include <cstdint>
#include <vector>

#include "environment/climate.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace coolair {
namespace environment {

/** One hourly temperature prediction. */
struct HourlyPrediction
{
    util::SimTime hourStart;   ///< Start of the predicted hour.
    double tempC = 0.0;        ///< Predicted mean temperature [°C].
};

/** A day-scoped forecast: hourly predictions for the rest of the day. */
struct Forecast
{
    std::vector<HourlyPrediction> hours;

    /** Mean predicted temperature across the forecast horizon. */
    double meanTempC() const;

    /** Lowest hourly prediction. */
    double minTempC() const;

    /** Highest hourly prediction. */
    double maxTempC() const;

    /** True if no hours are predicted. */
    bool empty() const { return hours.empty(); }
};

/** Configuration for forecast error injection. */
struct ForecastErrorModel
{
    /** Systematic bias added to every prediction [°C]. */
    double biasC = 0.0;

    /** Std-dev of independent per-hour gaussian noise [°C]. */
    double noiseStddevC = 0.0;

    friend bool operator==(const ForecastErrorModel &,
                           const ForecastErrorModel &) = default;
};

/**
 * Produces hourly outside-temperature forecasts against a frozen Climate.
 * Not thread-safe when noise is enabled (owns an RNG stream).
 */
class Forecaster
{
  public:
    /** Forecast against @p weather with optional error injection. */
    Forecaster(const WeatherProvider &weather,
               const ForecastErrorModel &error = {}, uint64_t seed = 7);

    /**
     * Hourly predictions from the hour containing @p now through the end
     * of that calendar day.  Each prediction is the true hourly-mean
     * temperature plus the configured error.
     */
    Forecast restOfDay(util::SimTime now);

    /**
     * Hourly predictions covering the full calendar day containing
     * @p day_start.  Used by temporal scheduling, which plans the next
     * 24 hours.
     */
    Forecast fullDay(util::SimTime day_start);

    /** Predictions for @p hours hours starting at the hour of @p now. */
    Forecast horizon(util::SimTime now, int hours);

  private:
    double predictHour(util::SimTime hour_start);

    const WeatherProvider &_weather;
    ForecastErrorModel _error;
    util::Rng _rng;
};

} // namespace environment
} // namespace coolair

#endif // COOLAIR_ENVIRONMENT_FORECAST_HPP
