#include "environment/forecast.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace coolair {
namespace environment {

double
Forecast::meanTempC() const
{
    if (hours.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &h : hours)
        sum += h.tempC;
    return sum / double(hours.size());
}

double
Forecast::minTempC() const
{
    if (hours.empty())
        return 0.0;
    double lo = hours.front().tempC;
    for (const auto &h : hours)
        lo = std::min(lo, h.tempC);
    return lo;
}

double
Forecast::maxTempC() const
{
    if (hours.empty())
        return 0.0;
    double hi = hours.front().tempC;
    for (const auto &h : hours)
        hi = std::max(hi, h.tempC);
    return hi;
}

Forecaster::Forecaster(const WeatherProvider &weather,
                       const ForecastErrorModel &error, uint64_t seed)
    : _weather(weather), _error(error), _rng(seed, "forecaster")
{
}

double
Forecaster::predictHour(util::SimTime hour_start)
{
    double truth =
        _weather.meanTemperature(hour_start,
                                 hour_start + util::kSecondsPerHour, 300);
    double value = truth + _error.biasC;
    if (_error.noiseStddevC > 0.0)
        value += _rng.normal(0.0, _error.noiseStddevC);
    return value;
}

Forecast
Forecaster::restOfDay(util::SimTime now)
{
    Forecast fc;
    util::SimTime day_start = now.startOfDay();
    int first_hour = now.hourOfDay();
    for (int h = first_hour; h < 24; ++h) {
        util::SimTime hs = day_start + int64_t(h) * util::kSecondsPerHour;
        fc.hours.push_back({hs, predictHour(hs)});
    }
    return fc;
}

Forecast
Forecaster::fullDay(util::SimTime day_start)
{
    return horizon(day_start.startOfDay(), 24);
}

Forecast
Forecaster::horizon(util::SimTime now, int hours)
{
    if (hours < 0)
        util::panic("Forecaster::horizon: negative horizon");
    Forecast fc;
    util::SimTime hour_start =
        now - (now.secondOfDay() % int(util::kSecondsPerHour));
    for (int h = 0; h < hours; ++h) {
        util::SimTime hs = hour_start + int64_t(h) * util::kSecondsPerHour;
        fc.hours.push_back({hs, predictHour(hs)});
    }
    return fc;
}

} // namespace environment
} // namespace coolair
