#include "environment/weather.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "physics/psychrometrics.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace environment {

double
WeatherProvider::meanTemperature(util::SimTime from, util::SimTime to,
                                 int64_t step_s) const
{
    if (to <= from)
        return temperature(from);
    util::RunningStats stats;
    for (util::SimTime t = from; t < to; t += step_s)
        stats.add(temperature(t));
    return stats.mean();
}

CsvWeatherSeries::CsvWeatherSeries(std::vector<double> hourly_temp_c,
                                   std::vector<double> hourly_rh_percent)
    : _tempC(std::move(hourly_temp_c)),
      _rhPercent(std::move(hourly_rh_percent))
{
    if (_tempC.empty() || _tempC.size() != _rhPercent.size())
        util::fatal("CsvWeatherSeries: need matching, non-empty series");
}

namespace {

/** Trim ASCII whitespace (CSV exports often pad cells and end lines
    with \r). */
std::string
trimCell(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
badRow(size_t row, const std::string &what)
{
    throw std::invalid_argument("weather row " + std::to_string(row) +
                                ": " + what);
}

} // anonymous namespace

CsvWeatherSeries
CsvWeatherSeries::fromCsv(std::istream &in)
{
    std::vector<double> temps, rhs;
    std::string line;
    bool first = true;
    size_t row = 0;        // 1-based data-row number (header excluded)
    long long last_hour = -1;
    while (std::getline(in, line)) {
        if (first) {  // header
            first = false;
            continue;
        }
        if (trimCell(line).empty())
            continue;
        ++row;

        std::istringstream cells_in(line);
        std::string cell;
        std::vector<std::string> cells;
        while (std::getline(cells_in, cell, ','))
            cells.push_back(trimCell(cell));
        if (cells.size() < 2 || cells.size() > 3)
            badRow(row, "expected hour,temp_c[,rh_percent], got '" +
                            line + "'");

        // Cells parse strictly (strtod-to-end, the spec_io style): a
        // garbage cell is an error, never a silent 0.0.
        static const char *const kColNames[3] = {"hour", "temp_c",
                                                 "rh_percent"};
        double vals[3] = {0.0, 0.0, 50.0};
        for (size_t c = 0; c < cells.size(); ++c)
            if (!util::parseDouble(cells[c], vals[c]))
                badRow(row, std::string("malformed ") + kColNames[c] +
                                " cell '" + cells[c] + "'");

        // The hour index addresses the series; a bogus one would index
        // row 0 (negative cast) or resize to an absurd length.
        if (vals[0] != std::floor(vals[0]))
            badRow(row, "hour index '" + cells[0] + "' is not an integer");
        if (vals[0] < 0.0 || vals[0] >= double(kMaxCsvHours))
            badRow(row, "hour index '" + cells[0] + "' out of [0, " +
                            std::to_string(kMaxCsvHours) + ")");
        const long long hour = (long long)(vals[0]);
        if (hour <= last_hour)
            badRow(row, "hour index " + std::to_string(hour) +
                            " does not increase (previous row was hour " +
                            std::to_string(last_hour) + ")");
        last_hour = hour;

        // Missing hours repeat the last recorded value.
        if (temps.size() <= size_t(hour)) {
            temps.resize(size_t(hour) + 1,
                         temps.empty() ? vals[1] : temps.back());
            rhs.resize(size_t(hour) + 1, rhs.empty() ? vals[2] : rhs.back());
        }
        temps[size_t(hour)] = vals[1];
        rhs[size_t(hour)] = vals[2];
    }
    if (temps.empty())
        throw std::invalid_argument("weather: no data rows");
    return CsvWeatherSeries(std::move(temps), std::move(rhs));
}

CsvWeatherSeries
CsvWeatherSeries::fromCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("CsvWeatherSeries: cannot open " + path);
    return fromCsv(in);
}

WeatherSample
CsvWeatherSeries::sample(util::SimTime t) const
{
    double hour_f = t.hours();
    double wrapped = std::fmod(hour_f, double(_tempC.size()));
    if (wrapped < 0.0)
        wrapped += double(_tempC.size());
    size_t h0 = size_t(wrapped) % _tempC.size();
    size_t h1 = (h0 + 1) % _tempC.size();
    double frac = wrapped - std::floor(wrapped);

    WeatherSample out;
    out.tempC = _tempC[h0] + frac * (_tempC[h1] - _tempC[h0]);
    out.rhPercent = util::clamp(
        _rhPercent[h0] + frac * (_rhPercent[h1] - _rhPercent[h0]), 1.0,
        100.0);
    out.absHumidity =
        physics::absoluteHumidity(out.tempC, out.rhPercent);
    return out;
}

} // namespace environment
} // namespace coolair
