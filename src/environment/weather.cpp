#include "environment/weather.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "physics/psychrometrics.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace environment {

double
WeatherProvider::meanTemperature(util::SimTime from, util::SimTime to,
                                 int64_t step_s) const
{
    if (to <= from)
        return temperature(from);
    util::RunningStats stats;
    for (util::SimTime t = from; t < to; t += step_s)
        stats.add(temperature(t));
    return stats.mean();
}

CsvWeatherSeries::CsvWeatherSeries(std::vector<double> hourly_temp_c,
                                   std::vector<double> hourly_rh_percent)
    : _tempC(std::move(hourly_temp_c)),
      _rhPercent(std::move(hourly_rh_percent))
{
    if (_tempC.empty() || _tempC.size() != _rhPercent.size())
        util::fatal("CsvWeatherSeries: need matching, non-empty series");
}

CsvWeatherSeries
CsvWeatherSeries::fromCsv(std::istream &in)
{
    std::vector<double> temps, rhs;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first) {  // header
            first = false;
            continue;
        }
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string cell;
        double vals[3] = {0.0, 0.0, 50.0};
        int col = 0;
        while (std::getline(row, cell, ',') && col < 3)
            vals[col++] = std::atof(cell.c_str());
        if (col < 2)
            util::fatal("CsvWeatherSeries: malformed row: " + line);
        size_t hour = size_t(vals[0]);
        if (temps.size() <= hour) {
            temps.resize(hour + 1,
                         temps.empty() ? vals[1] : temps.back());
            rhs.resize(hour + 1, rhs.empty() ? vals[2] : rhs.back());
        }
        temps[hour] = vals[1];
        rhs[hour] = vals[2];
    }
    if (temps.empty())
        util::fatal("CsvWeatherSeries: no data rows");
    return CsvWeatherSeries(std::move(temps), std::move(rhs));
}

CsvWeatherSeries
CsvWeatherSeries::fromCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("CsvWeatherSeries: cannot open " + path);
    return fromCsv(in);
}

WeatherSample
CsvWeatherSeries::sample(util::SimTime t) const
{
    double hour_f = t.hours();
    double wrapped = std::fmod(hour_f, double(_tempC.size()));
    if (wrapped < 0.0)
        wrapped += double(_tempC.size());
    size_t h0 = size_t(wrapped) % _tempC.size();
    size_t h1 = (h0 + 1) % _tempC.size();
    double frac = wrapped - std::floor(wrapped);

    WeatherSample out;
    out.tempC = _tempC[h0] + frac * (_tempC[h1] - _tempC[h0]);
    out.rhPercent = util::clamp(
        _rhPercent[h0] + frac * (_rhPercent[h1] - _rhPercent[h0]), 1.0,
        100.0);
    out.absHumidity =
        physics::absoluteHumidity(out.tempC, out.rhPercent);
    return out;
}

} // namespace environment
} // namespace coolair
