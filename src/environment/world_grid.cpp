#include "environment/world_grid.hpp"

#include <cmath>
#include <cstdio>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace environment {

ClimateParams
climateFor(double latitude, double continentality, double aridity)
{
    ClimateParams c;
    double abs_lat = std::fabs(latitude);

    // Annual mean: ~27 °C at the equator falling toward the poles,
    // faster once outside the tropics.
    double tropics = std::min(abs_lat, 23.5);
    double extratropics = std::max(0.0, abs_lat - 23.5);
    c.annualMeanC = 27.0 - 0.12 * tropics - 0.58 * extratropics;

    // Seasonal swing: nearly zero at the equator, large at high latitude,
    // amplified inland (continental climates).
    c.seasonalAmplitudeC =
        (0.5 + 0.26 * abs_lat) * (0.55 + 0.9 * continentality);

    // Diurnal swing: driven by aridity (clear skies) and damped at very
    // high latitudes (low sun angle).
    double lat_damp = util::clamp(1.0 - (abs_lat - 50.0) / 40.0, 0.4, 1.0);
    c.diurnalAmplitudeC = (3.0 + 7.0 * aridity) * lat_damp;

    // Synoptic variability: storm tracks live in the mid/high latitudes.
    c.synopticAmplitudeC = 0.8 + 0.05 * abs_lat +
                           1.5 * continentality * (abs_lat / 60.0);

    // Humidity: arid sites have large dew-point depressions.
    c.dewPointDepressionC = 2.0 + 14.0 * aridity;
    c.dewPointVariabilityC = 1.0 + 3.0 * aridity;

    c.southernHemisphere = latitude < 0.0;
    return c;
}

std::vector<Location>
worldGrid(size_t count, uint64_t seed)
{
    std::vector<Location> sites;
    sites.reserve(count);
    util::Rng rng(seed, "world-grid");

    for (size_t i = 0; i < count; ++i) {
        // Two-thirds of land area (and datacenters) sit in the northern
        // hemisphere; weight the draw accordingly.
        bool northern = rng.bernoulli(0.68);
        double lat;
        if (northern) {
            // Mode around the 25..55N band.
            lat = util::clamp(40.0 + 18.0 * rng.normal(), 0.0, 68.0);
        } else {
            lat = -util::clamp(22.0 + 14.0 * std::fabs(rng.normal()),
                               0.0, 55.0);
        }
        double lon = rng.uniform(-180.0, 180.0);
        double continentality = util::clamp(
            rng.uniform(0.0, 1.0) * (0.4 + std::fabs(lat) / 70.0), 0.0, 1.0);
        double aridity =
            util::clamp(rng.uniform(-0.15, 1.05), 0.0, 1.0);

        Location loc;
        char name[48];
        std::snprintf(name, sizeof(name), "site-%04zu(%+05.1f,%+06.1f)", i,
                      lat, lon);
        loc.name = name;
        loc.latitude = lat;
        loc.longitude = lon;
        loc.climate = climateFor(lat, continentality, aridity);
        sites.push_back(std::move(loc));
    }
    return sites;
}

} // namespace environment
} // namespace coolair
