#include "sim/trace_csv.hpp"

#include <cstdio>
#include <ostream>

namespace coolair {
namespace sim {

void
writeTraceCsvHeader(std::ostream &os)
{
    os << "time_s,outside_c,outside_rh,inlet_min_c,inlet_max_c,"
          "hot_aisle_c,cold_aisle_rh,mode,fc_fan,compressor,"
          "it_w,cooling_w,disk_min_c,disk_max_c,utilization\n";
}

void
writeTraceCsvRow(std::ostream &os, const TraceRow &row)
{
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "%lld,%.2f,%.1f,%.2f,%.2f,%.2f,%.1f,%s,%.2f,%.2f,"
                  "%.0f,%.0f,%.2f,%.2f,%.3f\n",
                  (long long)row.time.seconds(), row.outsideC,
                  row.outsideRhPercent, row.inletMinC, row.inletMaxC,
                  row.hotAisleC, row.coldAisleRhPercent,
                  cooling::modeName(row.mode), row.fcFanSpeed,
                  row.compressorSpeed, row.itPowerW, row.coolingPowerW,
                  row.diskMinC, row.diskMaxC, row.dcUtilization);
    os << buf;
}

TraceSink
makeCsvTraceSink(std::ostream &os)
{
    return [&os](const TraceRow &row) { writeTraceCsvRow(os, row); };
}

} // namespace sim
} // namespace coolair
