#include "sim/engine.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace coolair {
namespace sim {

Engine::Engine(plant::Plant &plant, workload::WorkloadModel &workload,
               Controller &controller, const environment::WeatherProvider &climate,
               const EngineConfig &config)
    : _plant(plant),
      _workload(workload),
      _controller(controller),
      _climate(climate),
      _config(config)
{
    _command = cooling::Regime::closed();
}

void
Engine::sample(util::SimTime now, bool collect,
               const environment::WeatherSample &outside)
{
    _plant.readSensors(_sensors);
    _sensors.time = now;

    // Controller epoch?
    if (now.seconds() >= _nextControlS) {
        workload::WorkloadStatus status = _workload.status();
        const uint64_t v = _workload.loadVersion();
        if (v == 0 || v != _loadVersion) {
            _workload.podLoadInto(_load);
            _loadVersion = v;
        }
        ControlDecision decision =
            _controller.control(_sensors, status, _load, now);
        ++_stats.controlEpochs;
        if (!(decision.regime == _command))
            ++_stats.regimeTransitions;
        _command = decision.regime;
        if (decision.hasPlan)
            _workload.applyPlan(decision.plan);
        _nextControlS = now.seconds() + _controller.epochS();
    }

    if (!collect)
        return;

    ++_stats.samples;
    if (_sensors.cooling.mode == cooling::Mode::AirConditioning)
        ++_acSamples;

    if (_metrics) {
        _metrics->record(now, _sensors, double(_config.sampleIntervalS),
                         outside.tempC);
    }

    if (_sink) {
        TraceRow row;
        row.time = now;
        row.outsideC = outside.tempC;
        row.outsideRhPercent = outside.rhPercent;
        double lo = 1e9, hi = -1e9;
        for (double t : _sensors.podInletC) {
            lo = std::min(lo, t);
            hi = std::max(hi, t);
        }
        row.inletMinC = lo;
        row.inletMaxC = hi;
        row.hotAisleC = _sensors.hotAisleC;
        row.coldAisleRhPercent = _sensors.coldAisleRhPercent;
        row.mode = _sensors.cooling.mode;
        row.fcFanSpeed = _sensors.cooling.fcFanSpeed;
        row.compressorSpeed = _sensors.cooling.compressorSpeed;
        row.itPowerW = _sensors.itPowerW;
        row.coolingPowerW = _sensors.coolingPowerW;
        double dlo = 1e9, dhi = -1e9;
        for (double d : _sensors.podDiskC) {
            dlo = std::min(dlo, d);
            dhi = std::max(dhi, d);
        }
        row.diskMinC = dlo;
        row.diskMaxC = dhi;
        row.dcUtilization = _sensors.dcUtilization;
        _sink(row);
    }
}

void
Engine::runRange(util::SimTime start, util::SimTime end, bool collect)
{
    if (end <= start)
        return;

    const int64_t step = int64_t(_config.physicsStepS);
    const int64_t interval = _config.sampleIntervalS;
    if (step <= 0 || interval <= 0 || interval % step != 0)
        util::fatal("Engine: sample interval must be a multiple of the "
                    "physics step");

    for (int64_t t = start.seconds(); t < end.seconds(); t += step) {
        ++_stats.steps;
        util::SimTime now(t);
        // One weather evaluation serves the metrics/trace sample and the
        // physics step at this instant (sample() used to re-evaluate the
        // climate model twice on top of this one).
        environment::WeatherSample outside = _climate.sample(now);
        if ((t - start.seconds()) % interval == 0)
            sample(now, collect, outside);

        _workload.step(now, double(step));
        const uint64_t v = _workload.loadVersion();
        if (v == 0 || v != _loadVersion) {
            _workload.podLoadInto(_load);
            _loadVersion = v;
        }
        _plant.step(double(step), outside, _load, _command);
    }
}

void
Engine::runDay(int day_of_year)
{
    obs::Span span("engine.runDay");
    util::SimTime day_start =
        util::SimTime(int64_t(day_of_year) * util::kSecondsPerDay);
    util::SimTime warm_start = day_start - _config.warmupS;

    _plant.initializeSteadyState(_climate.sample(warm_start));
    _nextControlS = warm_start.seconds();

    runRange(warm_start, day_start, /*collect=*/false);
    runRange(day_start, day_start + util::kSecondsPerDay, /*collect=*/true);
}

void
Engine::runDayRange(int start_day, int end_day)
{
    if (end_day <= start_day)
        return;
    obs::Span span("engine.runDayRange");

    util::SimTime start =
        util::SimTime(int64_t(start_day) * util::kSecondsPerDay);
    util::SimTime end = util::SimTime(int64_t(end_day) * util::kSecondsPerDay);
    util::SimTime warm_start = start - _config.warmupS;

    _plant.initializeSteadyState(_climate.sample(warm_start));
    _nextControlS = warm_start.seconds();

    runRange(warm_start, start, /*collect=*/false);
    runRange(start, end, /*collect=*/true);
}

std::vector<int>
yearSampleDays(int weeks)
{
    std::vector<int> days;
    if (weeks <= 0)
        return days;
    days.reserve(size_t(weeks));
    // Uniform stride across the whole year: for 52 weeks this is exactly
    // the §5.1 first-day-of-each-week protocol (w * 365 / 52 == 7 * w for
    // w < 52); for shorter runs the stride grows so the sample still
    // covers every season instead of just January onward.
    for (int w = 0; w < weeks; ++w)
        days.push_back(int(int64_t(w) * util::kDaysPerYear / weeks) %
                       util::kDaysPerYear);
    return days;
}

void
Engine::runYearWeekly(int weeks)
{
    for (int day : yearSampleDays(weeks))
        runDay(day);
}

} // namespace sim
} // namespace coolair
