#include "sim/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.hpp"

namespace coolair {
namespace sim {

MetricsCollector::MetricsCollector(const MetricsConfig &config, int num_pods)
    : _config(config),
      _numPods(num_pods),
      _ranges(size_t(num_pods)),
      _outsideRanges(1)
{
    if (num_pods <= 0)
        util::fatal("MetricsCollector: need at least one pod");
}

void
MetricsCollector::recordSample(util::SimTime now,
                               const plant::SensorReadings &sensors,
                               double dt_s, const double *outside_c)
{
    if (int(sensors.podInletC.size()) != _numPods)
        util::panic("MetricsCollector::record: pod arity mismatch");

    int day = int(now.seconds() / util::kSecondsPerDay);
    double max_inlet = sensors.maxPodInletC();
    _maxInletSum += max_inlet;
    if (max_inlet > _config.maxTempC)
        ++_violationSamples;

    for (int p = 0; p < _numPods; ++p) {
        double t = sensors.podInletC[size_t(p)];
        _ranges.record(day, size_t(p), t);
        _violationSum += std::max(0.0, t - _config.maxTempC);
    }

    if (sensors.coldAisleRhPercent > _config.maxRhPercent)
        _humidityViolations++;

    // Rate of change measured over a 10-minute window, so sensor noise
    // does not masquerade as fast temperature swings.
    while (_rateHead < _rateWindow.size() &&
           now.seconds() - _rateWindow[_rateHead].timeS > kRateWindowS) {
        _rateSpare.push_back(std::move(_rateWindow[_rateHead].temps));
        ++_rateHead;
    }
    if (_rateHead >= 16) {
        _rateWindow.erase(_rateWindow.begin(),
                          _rateWindow.begin() + long(_rateHead));
        _rateHead = 0;
    }
    if (_rateHead < _rateWindow.size() &&
        now.seconds() - _rateWindow[_rateHead].timeS >= kRateWindowS / 2) {
        const RateSample &old = _rateWindow[_rateHead];
        double hours =
            double(now.seconds() - old.timeS) / double(util::kSecondsPerHour);
        for (int p = 0; p < _numPods; ++p) {
            double rate = std::fabs(sensors.podInletC[size_t(p)] -
                                    old.temps[size_t(p)]) /
                          hours;
            if (rate > _config.maxRateCPerHour) {
                _rateViolations++;
                break;  // one violation per interval, like one reading
            }
        }
    }
    RateSample fresh;
    fresh.timeS = now.seconds();
    if (!_rateSpare.empty()) {
        fresh.temps = std::move(_rateSpare.back());
        _rateSpare.pop_back();
    }
    fresh.temps.assign(sensors.podInletC.begin(), sensors.podInletC.end());
    _rateWindow.push_back(std::move(fresh));

    _itJoules += sensors.itPowerW * dt_s;
    _coolingJoules += sensors.coolingPowerW * dt_s;
    _samples++;

    if (outside_c)
        _outsideRanges.record(day, 0, *outside_c);
}

void
MetricsCollector::recordOutside(util::SimTime now, double outside_c)
{
    int day = int(now.seconds() / util::kSecondsPerDay);
    _outsideRanges.record(day, 0, outside_c);
}

Summary
MetricsCollector::summary() const
{
    Summary s;
    util::DailyRangeTracker ranges = _ranges;
    ranges.finish();

    s.avgViolationC =
        _samples > 0 && _numPods > 0
            ? _violationSum / double(_samples * size_t(_numPods))
            : 0.0;
    s.avgWorstDailyRangeC = ranges.averageWorstDailyRange();
    s.minWorstDailyRangeC = ranges.minWorstDailyRange();
    s.maxWorstDailyRangeC = ranges.maxWorstDailyRange();
    s.days = ranges.dayCount();

    s.itKwh = _itJoules / 3.6e6;
    s.coolingKwh = _coolingJoules / 3.6e6;
    if (s.itKwh > 0.0) {
        s.pue = (s.itKwh + s.coolingKwh +
                 _config.deliveryOverhead * s.itKwh) /
                s.itKwh;
    }
    if (_samples > 0) {
        s.humidityViolationFrac =
            double(_humidityViolations) / double(_samples);
        s.rateViolationFrac = double(_rateViolations) / double(_samples);
    }
    s.avgMaxInletC =
        _samples > 0 ? _maxInletSum / double(_samples) : 0.0;
    return s;
}

Summary
MetricsCollector::outsideSummary() const
{
    Summary s;
    util::DailyRangeTracker ranges = _outsideRanges;
    ranges.finish();
    s.avgWorstDailyRangeC = ranges.averageWorstDailyRange();
    s.minWorstDailyRangeC = ranges.minWorstDailyRange();
    s.maxWorstDailyRangeC = ranges.maxWorstDailyRange();
    s.days = ranges.dayCount();
    return s;
}

} // namespace sim
} // namespace coolair
