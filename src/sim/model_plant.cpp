#include "sim/model_plant.hpp"

#include <algorithm>

#include "physics/psychrometrics.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace sim {

ModelPlant::ModelPlant(const model::CoolingModel *model,
                       const plant::PlantConfig &plant_config)
    : _model(model),
      _plantConfig(plant_config),
      _actuators(plant_config.actuators),
      _temp(size_t(plant_config.numPods), 22.0),
      _tempPrev(size_t(plant_config.numPods), 22.0)
{
    if (!model)
        util::panic("ModelPlant: null model");
    if (model->config().numPods != plant_config.numPods)
        util::fatal("ModelPlant: model/plant pod count mismatch");
}

void
ModelPlant::reset(const plant::SensorReadings &init)
{
    _temp = init.podInletC;
    _tempPrev = init.podInletC;
    _absHumidity = init.coldAisleAbsHumidity;
    _fanPrev = init.cooling.fcFanSpeed;
    _prevRegime = cooling::Regime::closed();
    _outside.tempC = init.outsideC;
    _outside.rhPercent = init.outsideRhPercent;
    _outside.absHumidity = init.outsideAbsHumidity;
    _outsidePrev = _outside;
    _itPowerW = init.itPowerW;
    _dcUtilization = init.dcUtilization;
}

double
ModelPlant::itPowerFor(const plant::PodLoad &load, double *dc_util) const
{
    double power = 0.0;
    int awake = 0;
    for (int p = 0; p < _plantConfig.numPods; ++p) {
        int act = std::clamp(load.activeServers[size_t(p)], 0,
                             _plantConfig.serversPerPod);
        double u = util::clamp(load.utilization[size_t(p)], 0.0, 1.0);
        power += double(act) * (_plantConfig.serverIdleW +
                                _plantConfig.serverBusySpanW * u);
        power += double(_plantConfig.serversPerPod - act) *
                 _plantConfig.serverSleepW;
        awake += act;
    }
    if (dc_util)
        *dc_util = double(awake) / double(_plantConfig.totalServers());
    return power;
}

void
ModelPlant::step(const environment::WeatherSample &outside,
                 const plant::PodLoad &load,
                 const cooling::Regime &command)
{
    // Actuator emulation so the model sees achievable fan speeds.
    _actuators.setCommand(command);
    _actuators.step(stepS());
    const auto &unit = _actuators.state();

    cooling::Regime actual;
    switch (unit.mode) {
      case cooling::Mode::Closed:
        actual = cooling::Regime::closed();
        break;
      case cooling::Mode::FreeCooling:
        actual = cooling::Regime::freeCooling(unit.fcFanSpeed);
        actual.evaporative = unit.evapOn;
        break;
      case cooling::Mode::AirConditioning:
        actual = unit.compressorSpeed > 0.0
                     ? cooling::Regime::acCompressor(unit.compressorSpeed)
                     : cooling::Regime::acFanOnly();
        break;
    }

    _outsidePrev = _outside;
    _outside = outside;
    _itPowerW = itPowerFor(load, &_dcUtilization);

    model::TempInputs tin;
    double outside_c = outside.tempC;
    if (actual.mode == cooling::Mode::FreeCooling && actual.evaporative &&
        _plantConfig.hasEvaporativeCooler) {
        outside_c = physics::evaporativeOutletTemp(
            outside.tempC, outside.rhPercent,
            _plantConfig.evapEffectiveness);
    }
    tin.outsideC = outside_c;
    tin.outsidePrevC = _outsidePrev.tempC;
    tin.fanSpeed = unit.fcFanSpeed;
    tin.fanSpeedPrev = _fanPrev;
    tin.dcUtilization = _dcUtilization;

    std::vector<double> next(_temp.size());
    for (int p = 0; p < _plantConfig.numPods; ++p) {
        tin.insideC = _temp[size_t(p)];
        tin.insidePrevC = _tempPrev[size_t(p)];
        tin.podPowerFraction = load.podPowerFraction(p);
        double pred = _model->predictTemp(_prevRegime, actual, p, tin);
        // Physical guardrails: chained linear models can resonate when a
        // reactive controller flips regimes every step.  Parasol's
        // fastest observed excursion is ~9 C per 12 minutes (~1.5 C per
        // 2-minute step); allow 4x slack.  Absolute bounds span the AC
        // supply floor to thermal-runaway territory.
        pred = util::clamp(pred, _temp[size_t(p)] - 6.0,
                           _temp[size_t(p)] + 6.0);
        pred = util::clamp(pred, 8.0, 55.0);
        next[size_t(p)] = pred;
    }

    model::HumidityInputs hin;
    hin.insideAbs = _absHumidity;
    hin.outsideAbs = outside.absHumidity;
    hin.fanSpeed = unit.fcFanSpeed;
    _absHumidity = std::max(
        0.1, _model->predictHumidity(_prevRegime, actual, hin));

    _tempPrev = std::move(_temp);
    _temp = std::move(next);
    _fanPrev = unit.fcFanSpeed;
    _prevRegime = actual;
}

plant::SensorReadings
ModelPlant::readSensors(util::SimTime now) const
{
    plant::SensorReadings out;
    out.time = now;
    out.podInletC = _temp;

    double avg = 0.0;
    for (double t : _temp)
        avg += t;
    avg /= double(_temp.size());

    out.coldAisleAbsHumidity = _absHumidity;
    out.coldAisleRhPercent =
        util::clamp(physics::relativeHumidity(avg, _absHumidity), 0.0,
                    100.0);
    out.hotAisleC = avg + 8.0;  // nominal; Real-Sim models the cold aisle

    out.outsideC = _outside.tempC;
    out.outsideRhPercent = _outside.rhPercent;
    out.outsideAbsHumidity = _outside.absHumidity;

    const auto &unit = _actuators.state();
    out.cooling.mode = unit.mode;
    out.cooling.fcFanSpeed = unit.fcFanSpeed;
    out.cooling.acFanSpeed = unit.acFanSpeed;
    out.cooling.compressorSpeed = unit.compressorSpeed;
    out.cooling.damperOpen = unit.damperOpen;
    out.cooling.evapOn = unit.evapOn;

    cooling::Regime actual;
    switch (unit.mode) {
      case cooling::Mode::Closed:
        actual = cooling::Regime::closed();
        break;
      case cooling::Mode::FreeCooling:
        actual = cooling::Regime::freeCooling(unit.fcFanSpeed);
        actual.evaporative = unit.evapOn;
        break;
      case cooling::Mode::AirConditioning:
        actual = unit.compressorSpeed > 0.0
                     ? cooling::Regime::acCompressor(unit.compressorSpeed)
                     : cooling::Regime::acFanOnly();
        break;
    }
    out.coolingPowerW = _model->predictCoolingPower(actual);
    out.itPowerW = _itPowerW;
    out.dcUtilization = _dcUtilization;
    return out;
}

ModelSimRunner::ModelSimRunner(ModelPlant &plant,
                               workload::WorkloadModel &workload,
                               Controller &controller,
                               const environment::WeatherProvider &climate)
    : _plant(plant),
      _workload(workload),
      _controller(controller),
      _climate(climate)
{
}

void
ModelSimRunner::runDay(int day_of_year, const plant::SensorReadings &init)
{
    _plant.reset(init);

    util::SimTime start(int64_t(day_of_year) * util::kSecondsPerDay);
    util::SimTime end = start + util::kSecondsPerDay;
    const int64_t step = int64_t(_plant.stepS());

    cooling::Regime command = cooling::Regime::closed();
    int64_t next_control = start.seconds();

    for (int64_t t = start.seconds(); t < end.seconds(); t += step) {
        util::SimTime now(t);
        plant::SensorReadings sensors = _plant.readSensors(now);

        if (t >= next_control) {
            workload::WorkloadStatus status = _workload.status();
            plant::PodLoad load = _workload.podLoad();
            ControlDecision d =
                _controller.control(sensors, status, load, now);
            command = d.regime;
            if (d.hasPlan)
                _workload.applyPlan(d.plan);
            next_control = t + _controller.epochS();
        }

        if (_metrics) {
            _metrics->record(now, sensors, double(step));
            _metrics->recordOutside(now, _climate.temperature(now));
        }
        if (_hook)
            _hook(sensors);

        environment::WeatherSample outside = _climate.sample(now);
        _workload.step(now, double(step));
        _plant.step(outside, _workload.podLoad(), command);
    }
}

} // namespace sim
} // namespace coolair
