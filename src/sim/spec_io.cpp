#include "sim/spec_io.hpp"

#include <array>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/logging.hpp"

namespace coolair {
namespace sim {

namespace {

// ---------------------------------------------------------------------------
// Enumerator tables (sized against the enum-count constants, so adding
// an enumerator without a spec key fails to compile).
// ---------------------------------------------------------------------------

constexpr std::array kWorkloadTable = {
    WorkloadKind::Facebook, WorkloadKind::Nutch,
    WorkloadKind::FacebookProfile, WorkloadKind::SteadyHalf};
static_assert(kWorkloadTable.size() == size_t(kWorkloadKindCount),
              "workload table out of sync with WorkloadKind");

constexpr std::array kVariantTable = {
    PlantVariant::Standard, PlantVariant::Evaporative, PlantVariant::Chiller};
static_assert(kVariantTable.size() == size_t(kPlantVariantCount),
              "variant table out of sync with PlantVariant");

constexpr std::array kStyleTable = {cooling::ActuatorStyle::Abrupt,
                                    cooling::ActuatorStyle::Smooth};
static_assert(kStyleTable.size() == size_t(cooling::kActuatorStyleCount),
              "style table out of sync with ActuatorStyle");

constexpr std::array kRunKindTable = {
    RunKind::YearWeekly, RunKind::SingleDay, RunKind::DayRange};
static_assert(kRunKindTable.size() == size_t(kRunKindCount),
              "run-kind table out of sync with RunKind");

constexpr std::array kSiteTable = {environment::NamedSite::Newark,
                                   environment::NamedSite::Chad,
                                   environment::NamedSite::Santiago,
                                   environment::NamedSite::Iceland,
                                   environment::NamedSite::Singapore};
static_assert(kSiteTable.size() == size_t(environment::kNamedSiteCount),
              "site table out of sync with NamedSite");

// ---------------------------------------------------------------------------
// Lexical helpers.
// ---------------------------------------------------------------------------

std::string
trim(const std::string &s)
{
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
badValue(const std::string &key, const std::string &value)
{
    throw std::invalid_argument("spec: bad value for '" + key + "': '" +
                                value + "'");
}

double
parseDouble(const std::string &key, const std::string &value)
{
    if (value.empty())
        badValue(key, value);
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size())
        badValue(key, value);
    return v;
}

int
parseInt(const std::string &key, const std::string &value)
{
    if (value.empty())
        badValue(key, value);
    char *end = nullptr;
    long v = std::strtol(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size() || v < INT_MIN || v > INT_MAX)
        badValue(key, value);
    return int(v);
}

uint64_t
parseU64(const std::string &key, const std::string &value)
{
    if (value.empty() || value[0] == '-')
        badValue(key, value);
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end != value.c_str() + value.size())
        badValue(key, value);
    return uint64_t(v);
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    badValue(key, value);
}

std::string
fmtDouble(double v)
{
    // %.17g guarantees the exact value survives the text round trip.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

template <typename Enum, size_t N, typename KeyFn>
Enum
parseEnum(const std::array<Enum, N> &table, KeyFn key_of,
          const std::string &key, const std::string &value)
{
    for (Enum e : table)
        if (value == key_of(e))
            return e;
    badValue(key, value);
}

SystemId
parseSystem(const std::string &key, const std::string &value)
{
    for (SystemId id : allSystemIds())
        if (value == systemKey(id))
            return id;
    badValue(key, value);
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// Enumerator keys (exhaustive switches; adding an enumerator without a
// key is a compile warning here and a failed static_assert above).
// ---------------------------------------------------------------------------

const char *
systemKey(SystemId id)
{
    switch (id) {
      case SystemId::Baseline:      return "baseline";
      case SystemId::Temperature:   return "temperature";
      case SystemId::Variation:     return "variation";
      case SystemId::Energy:        return "energy";
      case SystemId::AllNd:         return "allnd";
      case SystemId::AllDef:        return "alldef";
      case SystemId::VarLowRecirc:  return "varlow";
      case SystemId::VarHighRecirc: return "varhigh";
      case SystemId::EnergyDef:     return "energydef";
    }
    util::panic("systemKey: unknown system");
}

const char *
workloadKey(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Facebook:        return "facebook";
      case WorkloadKind::Nutch:           return "nutch";
      case WorkloadKind::FacebookProfile: return "profile";
      case WorkloadKind::SteadyHalf:      return "steady";
    }
    util::panic("workloadKey: unknown workload kind");
}

const char *
variantKey(PlantVariant variant)
{
    switch (variant) {
      case PlantVariant::Standard:    return "standard";
      case PlantVariant::Evaporative: return "evaporative";
      case PlantVariant::Chiller:     return "chiller";
    }
    util::panic("variantKey: unknown plant variant");
}

const char *
styleKey(cooling::ActuatorStyle style)
{
    switch (style) {
      case cooling::ActuatorStyle::Abrupt: return "abrupt";
      case cooling::ActuatorStyle::Smooth: return "smooth";
    }
    util::panic("styleKey: unknown actuator style");
}

const char *
runKindKey(RunKind kind)
{
    switch (kind) {
      case RunKind::YearWeekly: return "year";
      case RunKind::SingleDay:  return "day";
      case RunKind::DayRange:   return "range";
    }
    util::panic("runKindKey: unknown run kind");
}

const char *
siteKey(environment::NamedSite site)
{
    switch (site) {
      case environment::NamedSite::Newark:    return "newark";
      case environment::NamedSite::Chad:      return "chad";
      case environment::NamedSite::Santiago:  return "santiago";
      case environment::NamedSite::Iceland:   return "iceland";
      case environment::NamedSite::Singapore: return "singapore";
    }
    util::panic("siteKey: unknown site");
}

// ---------------------------------------------------------------------------
// Formatting.
// ---------------------------------------------------------------------------

std::string
formatSpec(const ExperimentSpec &spec)
{
    std::ostringstream os;
    os << "run = " << runKindKey(spec.runKind) << "\n";

    bool named = false;
    for (environment::NamedSite site : kSiteTable) {
        if (spec.location == environment::namedLocation(site)) {
            os << "site = " << siteKey(site) << "\n";
            named = true;
            break;
        }
    }
    if (!named) {
        const environment::ClimateParams &cl = spec.location.climate;
        os << "location.name = " << spec.location.name << "\n";
        os << "location.latitude = " << fmtDouble(spec.location.latitude)
           << "\n";
        os << "location.longitude = " << fmtDouble(spec.location.longitude)
           << "\n";
        os << "climate.annual_mean = " << fmtDouble(cl.annualMeanC) << "\n";
        os << "climate.seasonal_amplitude = "
           << fmtDouble(cl.seasonalAmplitudeC) << "\n";
        os << "climate.diurnal_amplitude = "
           << fmtDouble(cl.diurnalAmplitudeC) << "\n";
        os << "climate.synoptic_amplitude = "
           << fmtDouble(cl.synopticAmplitudeC) << "\n";
        os << "climate.dew_point_depression = "
           << fmtDouble(cl.dewPointDepressionC) << "\n";
        os << "climate.dew_point_variability = "
           << fmtDouble(cl.dewPointVariabilityC) << "\n";
        os << "climate.southern_hemisphere = "
           << (cl.southernHemisphere ? "true" : "false") << "\n";
        os << "climate.seasonal_peak_day = " << fmtDouble(cl.seasonalPeakDay)
           << "\n";
        os << "climate.diurnal_peak_hour = " << fmtDouble(cl.diurnalPeakHour)
           << "\n";
    }

    os << "system = " << systemKey(spec.system) << "\n";
    os << "style = " << styleKey(spec.style) << "\n";
    os << "variant = " << variantKey(spec.variant) << "\n";
    os << "workload = " << workloadKey(spec.workload) << "\n";
    os << "max_temp = " << fmtDouble(spec.maxTempC) << "\n";
    os << "forecast_bias = " << fmtDouble(spec.forecastError.biasC) << "\n";
    os << "forecast_noise = " << fmtDouble(spec.forecastError.noiseStddevC)
       << "\n";
    os << "weeks = " << spec.weeks << "\n";
    os << "day = " << spec.day << "\n";
    os << "start_day = " << spec.startDay << "\n";
    os << "end_day = " << spec.endDay << "\n";
    os << "physics_step = " << fmtDouble(spec.physicsStepS) << "\n";
    os << "seed = " << spec.seed << "\n";
    os << "weather_cache = " << (spec.weatherCache ? "true" : "false")
       << "\n";

    // Cache and output keys are optional (defaults are omitted), so
    // spec texts from before the result store parse unchanged and the
    // normalized cache identity (sim/result_cache.hpp) stays free of
    // them.
    if (!spec.resultCache)
        os << "result_cache = false\n";
    if (!spec.cacheDirPath.empty())
        os << "cache_dir = " << spec.cacheDirPath << "\n";
    if (!spec.traceCsvPath.empty())
        os << "trace_csv = " << spec.traceCsvPath << "\n";
    if (!spec.reportJsonPath.empty())
        os << "report_json = " << spec.reportJsonPath << "\n";
    if (!spec.traceJsonPath.empty())
        os << "trace_json = " << spec.traceJsonPath << "\n";
    if (spec.bandWidthC)
        os << "band_width = " << fmtDouble(*spec.bandWidthC) << "\n";
    if (spec.bandOffsetC)
        os << "band_offset = " << fmtDouble(*spec.bandOffsetC) << "\n";
    if (spec.switchPenalty)
        os << "switch_penalty = " << fmtDouble(*spec.switchPenalty) << "\n";
    if (spec.sleepDecayPerEpoch)
        os << "sleep_decay = " << fmtDouble(*spec.sleepDecayPerEpoch) << "\n";
    if (spec.horizonSteps)
        os << "horizon = " << *spec.horizonSteps << "\n";
    // batch=0 (the scalar path) is the default and omitted; emitting the
    // key only for batched specs gives them a distinct normalized cache
    // identity, so batched and scalar results never alias in the store.
    if (spec.batch != 0)
        os << "batch = " << spec.batch << "\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

namespace {

void
applyKeyValue(ExperimentSpec &spec, const std::string &key,
              const std::string &value)
{
    environment::ClimateParams &cl = spec.location.climate;

    if (key == "run")
        spec.runKind = parseEnum(kRunKindTable, runKindKey, key, value);
    else if (key == "site")
        spec.location = environment::namedLocation(
            parseEnum(kSiteTable, siteKey, key, value));
    else if (key == "location.name")
        spec.location.name = value;
    else if (key == "location.latitude")
        spec.location.latitude = parseDouble(key, value);
    else if (key == "location.longitude")
        spec.location.longitude = parseDouble(key, value);
    else if (key == "climate.annual_mean")
        cl.annualMeanC = parseDouble(key, value);
    else if (key == "climate.seasonal_amplitude")
        cl.seasonalAmplitudeC = parseDouble(key, value);
    else if (key == "climate.diurnal_amplitude")
        cl.diurnalAmplitudeC = parseDouble(key, value);
    else if (key == "climate.synoptic_amplitude")
        cl.synopticAmplitudeC = parseDouble(key, value);
    else if (key == "climate.dew_point_depression")
        cl.dewPointDepressionC = parseDouble(key, value);
    else if (key == "climate.dew_point_variability")
        cl.dewPointVariabilityC = parseDouble(key, value);
    else if (key == "climate.southern_hemisphere")
        cl.southernHemisphere = parseBool(key, value);
    else if (key == "climate.seasonal_peak_day")
        cl.seasonalPeakDay = parseDouble(key, value);
    else if (key == "climate.diurnal_peak_hour")
        cl.diurnalPeakHour = parseDouble(key, value);
    else if (key == "system")
        spec.system = parseSystem(key, value);
    else if (key == "style")
        spec.style = parseEnum(kStyleTable, styleKey, key, value);
    else if (key == "variant")
        spec.variant = parseEnum(kVariantTable, variantKey, key, value);
    else if (key == "workload")
        spec.workload = parseEnum(kWorkloadTable, workloadKey, key, value);
    else if (key == "max_temp")
        spec.maxTempC = parseDouble(key, value);
    else if (key == "forecast_bias")
        spec.forecastError.biasC = parseDouble(key, value);
    else if (key == "forecast_noise")
        spec.forecastError.noiseStddevC = parseDouble(key, value);
    else if (key == "weeks")
        spec.weeks = parseInt(key, value);
    else if (key == "day")
        spec.day = parseInt(key, value);
    else if (key == "start_day")
        spec.startDay = parseInt(key, value);
    else if (key == "end_day")
        spec.endDay = parseInt(key, value);
    else if (key == "physics_step")
        spec.physicsStepS = parseDouble(key, value);
    else if (key == "seed")
        spec.seed = parseU64(key, value);
    else if (key == "weather_cache")
        spec.weatherCache = parseBool(key, value);
    else if (key == "result_cache")
        spec.resultCache = parseBool(key, value);
    else if (key == "cache_dir")
        spec.cacheDirPath = value;
    else if (key == "trace_csv")
        spec.traceCsvPath = value;
    else if (key == "report_json")
        spec.reportJsonPath = value;
    else if (key == "trace_json")
        spec.traceJsonPath = value;
    else if (key == "band_width")
        spec.bandWidthC = parseDouble(key, value);
    else if (key == "band_offset")
        spec.bandOffsetC = parseDouble(key, value);
    else if (key == "switch_penalty")
        spec.switchPenalty = parseDouble(key, value);
    else if (key == "sleep_decay")
        spec.sleepDecayPerEpoch = parseDouble(key, value);
    else if (key == "horizon")
        spec.horizonSteps = parseInt(key, value);
    else if (key == "batch") {
        spec.batch = parseInt(key, value);
        if (spec.batch < 0 || spec.batch > 1024)
            badValue(key, value);
    } else
        throw std::invalid_argument("spec: unknown key '" + key + "'");
}

} // anonymous namespace

void
applySpecAssignment(ExperimentSpec &spec, const std::string &assignment)
{
    size_t eq = assignment.find('=');
    if (eq == std::string::npos)
        throw std::invalid_argument("spec: expected key=value, got '" +
                                    assignment + "'");
    std::string key = trim(assignment.substr(0, eq));
    std::string value = trim(assignment.substr(eq + 1));
    if (key.empty())
        throw std::invalid_argument("spec: empty key in '" + assignment +
                                    "'");
    applyKeyValue(spec, key, value);
}

void
applySpecText(ExperimentSpec &spec, const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        try {
            applySpecAssignment(spec, stripped);
        } catch (const std::invalid_argument &e) {
            // Re-throw with the 1-based line number so a long spec file
            // points at the offending line, not just the offending key.
            std::string what = e.what();
            const char kPrefix[] = "spec: ";
            if (what.rfind(kPrefix, 0) == 0)
                what = what.substr(sizeof(kPrefix) - 1);
            throw std::invalid_argument(
                "spec line " + std::to_string(lineno) + ": " + what);
        }
    }
}

ExperimentSpec
parseSpec(const std::string &text)
{
    ExperimentSpec spec;
    spec.location = environment::namedLocation(environment::NamedSite::Newark);
    applySpecText(spec, text);
    return spec;
}

// ---------------------------------------------------------------------------
// Result serialization (the persistent result store's payload form).
// ---------------------------------------------------------------------------

namespace {

/** The double-valued Summary fields, in serialization order. */
struct SummaryField
{
    const char *key;
    double Summary::*field;
};

constexpr SummaryField kSummaryFields[] = {
    {"avg_violation", &Summary::avgViolationC},
    {"avg_worst_daily_range", &Summary::avgWorstDailyRangeC},
    {"min_worst_daily_range", &Summary::minWorstDailyRangeC},
    {"max_worst_daily_range", &Summary::maxWorstDailyRangeC},
    {"pue", &Summary::pue},
    {"it_kwh", &Summary::itKwh},
    {"cooling_kwh", &Summary::coolingKwh},
    {"humidity_violation_frac", &Summary::humidityViolationFrac},
    {"rate_violation_frac", &Summary::rateViolationFrac},
    {"avg_max_inlet", &Summary::avgMaxInletC},
};
constexpr size_t kSummaryFieldCount =
    sizeof(kSummaryFields) / sizeof(kSummaryFields[0]);

// If this fires, Summary grew or shrank: extend kSummaryFields (or the
// `days` handling), and bump kResultFormatVersion so stored entries go
// stale instead of silently missing the new field.
static_assert(sizeof(Summary) ==
                  kSummaryFieldCount * sizeof(double) + sizeof(size_t),
              "Summary changed: update kSummaryFields and bump "
              "kResultFormatVersion");

void
formatSummary(std::ostringstream &os, const char *prefix, const Summary &s)
{
    for (const SummaryField &f : kSummaryFields)
        os << prefix << "." << f.key << " = " << fmtDouble(s.*(f.field))
           << "\n";
    os << prefix << ".days = " << s.days << "\n";
}

/** Apply one `prefix.key` assignment; returns false for unknown keys. */
bool
applySummaryKey(Summary &s, const std::string &key, const std::string &field,
                const std::string &value, bool *seen, size_t &days_seen)
{
    for (size_t i = 0; i < kSummaryFieldCount; ++i) {
        if (field == kSummaryFields[i].key) {
            s.*(kSummaryFields[i].field) = parseDouble(key, value);
            seen[i] = true;
            return true;
        }
    }
    if (field == "days") {
        s.days = size_t(parseU64(key, value));
        ++days_seen;
        return true;
    }
    return false;
}

} // anonymous namespace

std::string
formatResult(const ExperimentResult &result)
{
    std::ostringstream os;
    os << "result = " << kResultFormatVersion << "\n";
    formatSummary(os, "system", result.system);
    formatSummary(os, "outside", result.outside);
    return os.str();
}

ExperimentResult
parseResult(const std::string &text)
{
    ExperimentResult result;
    bool seen_system[kSummaryFieldCount] = {};
    bool seen_outside[kSummaryFieldCount] = {};
    size_t days_system = 0, days_outside = 0;
    bool seen_version = false;

    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::string stripped = trim(line);
        if (stripped.empty() || stripped[0] == '#')
            continue;
        size_t eq = stripped.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument(
                "result: expected key = value, got '" + stripped + "'");
        std::string key = trim(stripped.substr(0, eq));
        std::string value = trim(stripped.substr(eq + 1));

        if (key == "result") {
            if (parseInt(key, value) != kResultFormatVersion)
                throw std::invalid_argument(
                    "result: unsupported version '" + value + "'");
            seen_version = true;
            continue;
        }
        size_t dot = key.find('.');
        std::string prefix =
            dot == std::string::npos ? std::string() : key.substr(0, dot);
        std::string field =
            dot == std::string::npos ? std::string() : key.substr(dot + 1);
        bool ok = false;
        if (prefix == "system")
            ok = applySummaryKey(result.system, key, field, value,
                                 seen_system, days_system);
        else if (prefix == "outside")
            ok = applySummaryKey(result.outside, key, field, value,
                                 seen_outside, days_outside);
        if (!ok)
            throw std::invalid_argument("result: unknown key '" + key + "'");
    }

    if (!seen_version)
        throw std::invalid_argument("result: missing version header");
    for (size_t i = 0; i < kSummaryFieldCount; ++i)
        if (!seen_system[i] || !seen_outside[i])
            throw std::invalid_argument(
                std::string("result: missing field '") +
                kSummaryFields[i].key + "'");
    if (days_system != 1 || days_outside != 1)
        throw std::invalid_argument("result: missing field 'days'");
    return result;
}

} // namespace sim
} // namespace coolair
