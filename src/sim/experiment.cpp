#include "sim/experiment.hpp"

#include "util/logging.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

namespace coolair {
namespace sim {

const std::array<SystemId, kSystemIdCount> &
allSystemIds()
{
    static const std::array<SystemId, kSystemIdCount> ids = {
        SystemId::Baseline,      SystemId::Temperature,
        SystemId::Variation,     SystemId::Energy,
        SystemId::AllNd,         SystemId::AllDef,
        SystemId::VarLowRecirc,  SystemId::VarHighRecirc,
        SystemId::EnergyDef};
    return ids;
}

const char *
systemName(SystemId id)
{
    switch (id) {
      case SystemId::Baseline:      return "Baseline";
      case SystemId::Temperature:   return "Temperature";
      case SystemId::Variation:     return "Variation";
      case SystemId::Energy:        return "Energy";
      case SystemId::AllNd:         return "All-ND";
      case SystemId::AllDef:        return "All-DEF";
      case SystemId::VarLowRecirc:  return "Var-Low-Recirc";
      case SystemId::VarHighRecirc: return "Var-High-Recirc";
      case SystemId::EnergyDef:     return "Energy-DEF";
    }
    util::panic("systemName: unknown system");
}

bool
systemIsDeferrable(SystemId id)
{
    switch (id) {
      case SystemId::AllDef:
      case SystemId::EnergyDef:
        return true;
      case SystemId::Baseline:
      case SystemId::Temperature:
      case SystemId::Variation:
      case SystemId::Energy:
      case SystemId::AllNd:
      case SystemId::VarLowRecirc:
      case SystemId::VarHighRecirc:
        return false;
    }
    util::panic("systemIsDeferrable: unknown system");
}

const model::LearnedBundle &
sharedBundle()
{
    static const model::LearnedBundle bundle = [] {
        model::LearnerConfig lc;
        return model::CoolingLearner::learn(plant::PlantConfig::parasol(),
                                            cooling::RegimeMenu::parasol(),
                                            lc);
    }();
    return bundle;
}

const model::LearnedBundle &
sharedEvaporativeBundle()
{
    static const model::LearnedBundle bundle = [] {
        model::LearnerConfig lc;
        return model::CoolingLearner::learn(
            plant::PlantConfig::smoothParasolEvaporative(),
            cooling::RegimeMenu::smoothWithEvaporative(), lc);
    }();
    return bundle;
}

const workload::UtilizationProfile &
sharedFacebookProfile()
{
    static const workload::UtilizationProfile profile = [] {
        workload::ClusterConfig cc;
        return workload::UtilizationProfile::fromTrace(
            workload::facebookTrace({}), cc);
    }();
    return profile;
}

void
prewarmSharedState(const std::vector<ExperimentSpec> &specs)
{
    bool bundle = false, evaporative = false, profile = false;
    for (const ExperimentSpec &spec : specs) {
        if (spec.system != SystemId::Baseline) {
            if (spec.variant == PlantVariant::Evaporative)
                evaporative = true;
            else
                bundle = true;
        }
        if (spec.workload == WorkloadKind::FacebookProfile)
            profile = true;
    }
    if (bundle)
        sharedBundle();
    if (evaporative)
        sharedEvaporativeBundle();
    if (profile)
        sharedFacebookProfile();
}

} // namespace sim
} // namespace coolair
