#include "sim/experiment.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/engine.hpp"
#include "util/logging.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

namespace coolair {
namespace sim {

const char *
systemName(SystemId id)
{
    switch (id) {
      case SystemId::Baseline:      return "Baseline";
      case SystemId::Temperature:   return "Temperature";
      case SystemId::Variation:     return "Variation";
      case SystemId::Energy:        return "Energy";
      case SystemId::AllNd:         return "All-ND";
      case SystemId::AllDef:        return "All-DEF";
      case SystemId::VarLowRecirc:  return "Var-Low-Recirc";
      case SystemId::VarHighRecirc: return "Var-High-Recirc";
      case SystemId::EnergyDef:     return "Energy-DEF";
    }
    util::panic("systemName: unknown system");
}

bool
systemIsDeferrable(SystemId id)
{
    return id == SystemId::AllDef || id == SystemId::EnergyDef;
}

namespace {

core::Version
versionOf(SystemId id)
{
    switch (id) {
      case SystemId::Temperature:   return core::Version::Temperature;
      case SystemId::Variation:     return core::Version::Variation;
      case SystemId::Energy:        return core::Version::Energy;
      case SystemId::AllNd:         return core::Version::AllNd;
      case SystemId::AllDef:        return core::Version::AllDef;
      case SystemId::VarLowRecirc:  return core::Version::VarLowRecirc;
      case SystemId::VarHighRecirc: return core::Version::VarHighRecirc;
      case SystemId::EnergyDef:     return core::Version::EnergyDef;
      case SystemId::Baseline:
        break;
    }
    util::panic("versionOf: baseline has no CoolAir version");
}

workload::Trace
traceFor(WorkloadKind kind, SystemId system, uint64_t seed)
{
    workload::TraceGenConfig tg;
    tg.seed = seed;
    workload::Trace trace;
    switch (kind) {
      case WorkloadKind::Facebook:
      case WorkloadKind::FacebookProfile:
        trace = workload::facebookTrace(tg);
        break;
      case WorkloadKind::Nutch:
        trace = workload::nutchTrace(tg);
        break;
      case WorkloadKind::SteadyHalf:
        trace = workload::steadyTrace(0.5, tg);
        break;
    }
    if (systemIsDeferrable(system))
        trace.makeDeferrable(6.0);  // §5.1: 6-hour start deadlines
    return trace;
}

} // anonymous namespace

const model::LearnedBundle &
sharedBundle()
{
    static const model::LearnedBundle bundle = [] {
        model::LearnerConfig lc;
        return model::CoolingLearner::learn(plant::PlantConfig::parasol(),
                                            cooling::RegimeMenu::parasol(),
                                            lc);
    }();
    return bundle;
}

const model::LearnedBundle &
sharedEvaporativeBundle()
{
    static const model::LearnedBundle bundle = [] {
        model::LearnerConfig lc;
        return model::CoolingLearner::learn(
            plant::PlantConfig::smoothParasolEvaporative(),
            cooling::RegimeMenu::smoothWithEvaporative(), lc);
    }();
    return bundle;
}

const workload::UtilizationProfile &
sharedFacebookProfile()
{
    static const workload::UtilizationProfile profile = [] {
        workload::ClusterConfig cc;
        return workload::UtilizationProfile::fromTrace(
            workload::facebookTrace({}), cc);
    }();
    return profile;
}

void
prewarmSharedState(const std::vector<ExperimentSpec> &specs)
{
    bool bundle = false, evaporative = false, profile = false;
    for (const ExperimentSpec &spec : specs) {
        if (spec.system != SystemId::Baseline) {
            if (spec.variant == PlantVariant::Evaporative)
                evaporative = true;
            else
                bundle = true;
        }
        if (spec.workload == WorkloadKind::FacebookProfile)
            profile = true;
    }
    if (bundle)
        sharedBundle();
    if (evaporative)
        sharedEvaporativeBundle();
    if (profile)
        sharedFacebookProfile();
}

ExperimentResult
runYearExperiment(const ExperimentSpec &spec)
{
    if (spec.weeks <= 0)
        throw std::invalid_argument("ExperimentSpec: weeks must be positive");
    if (spec.physicsStepS <= 0.0)
        throw std::invalid_argument(
            "ExperimentSpec: physics step must be positive");

    // --- Plant -------------------------------------------------------------
    plant::PlantConfig pc = spec.style == cooling::ActuatorStyle::Abrupt
                                ? plant::PlantConfig::parasol()
                                : plant::PlantConfig::smoothParasol();
    if (spec.variant == PlantVariant::Evaporative)
        pc = plant::PlantConfig::smoothParasolEvaporative();
    else if (spec.variant == PlantVariant::Chiller)
        pc = plant::PlantConfig::smoothParasolChiller();
    plant::Plant plant(pc, spec.seed);

    // --- Environment -------------------------------------------------------
    environment::Climate climate = spec.location.makeClimate(spec.seed);
    environment::Forecaster forecaster(climate, spec.forecastError,
                                       spec.seed);

    // --- Workload ----------------------------------------------------------
    std::unique_ptr<workload::WorkloadModel> workload;
    workload::ClusterConfig cc;
    if (spec.workload == WorkloadKind::FacebookProfile) {
        workload = std::make_unique<workload::ProfileWorkload>(
            cc, sharedFacebookProfile());
    } else {
        workload = std::make_unique<workload::ClusterSim>(
            cc, traceFor(spec.workload, spec.system, spec.seed));
    }

    // --- Controller ----------------------------------------------------------
    std::unique_ptr<Controller> controller;
    if (spec.system == SystemId::Baseline) {
        cooling::TksConfig tks = cooling::TksConfig::extendedBaseline();
        tks.setpointC = spec.maxTempC;
        controller = std::make_unique<BaselineController>(tks);
    } else {
        cooling::RegimeMenu menu =
            spec.style == cooling::ActuatorStyle::Abrupt
                ? cooling::RegimeMenu::parasol()
                : cooling::RegimeMenu::smooth();
        const model::LearnedBundle *bundle = &sharedBundle();
        if (spec.variant == PlantVariant::Evaporative) {
            menu = cooling::RegimeMenu::smoothWithEvaporative();
            bundle = &sharedEvaporativeBundle();
        }
        core::CoolAirConfig config = core::CoolAirConfig::forVersion(
            versionOf(spec.system), menu, spec.maxTempC);
        controller = std::make_unique<CoolAirController>(
            config, *bundle, &forecaster,
            systemName(spec.system));
    }

    // --- Run -----------------------------------------------------------------
    MetricsConfig mc;
    mc.maxTempC = spec.maxTempC;
    MetricsCollector metrics(mc, pc.numPods);

    EngineConfig ec;
    ec.physicsStepS = spec.physicsStepS;
    ec.sampleIntervalS = std::max<int64_t>(60, int64_t(spec.physicsStepS));
    Engine engine(plant, *workload, *controller, climate, ec);
    engine.setMetrics(&metrics);
    engine.runYearWeekly(spec.weeks);

    ExperimentResult result;
    result.system = metrics.summary();
    result.outside = metrics.outsideSummary();
    return result;
}

} // namespace sim
} // namespace coolair
