#ifndef COOLAIR_SIM_BATCH_ENGINE_HPP
#define COOLAIR_SIM_BATCH_ENGINE_HPP

/**
 * @file
 * The batched simulation engine: N whole experiments ("lanes") stepped
 * in lockstep through one instruction stream.
 *
 * Lanes must share one *shape* — every spec field except the location,
 * the seed, and the output/cache paths — so the batch shares a single
 * physics-step/sample/epoch timeline and one plant::BatchedPlant.  The
 * per-step protocol transliterates sim::Engine::runRange exactly (same
 * step truncation, sample cadence, control-epoch bookkeeping, command
 * persistence across days); what changes is execution layout:
 *
 *  - plant physics and sensor noise run as SoA kernels across lanes
 *    (plant/parasol_batch.hpp, fast-math TUs);
 *  - engine-loop weather comes from per-lane pre-evaluated grids
 *    (environment::Climate::sampleGridInto) instead of per-step scalar
 *    sampling;
 *  - workload, controller, forecaster and metrics stay per-lane scalar
 *    objects walked at sample boundaries.
 *
 * The scalar path is the exactness oracle: batched Summary metrics
 * match it within the tolerance documented in DESIGN.md §10, not
 * bit-exactly.  A lane that throws — at construction (e.g. trace output
 * is unsupported here) or mid-run — is captured as a failed LaneResult
 * while the remaining lanes run to completion.
 */

#include <string>
#include <vector>

#include "plant/parasol_batch.hpp"
#include "sim/soa_state.hpp"

namespace coolair {
namespace sim {

/**
 * The batch-shape key of a spec: its canonical text with the per-lane
 * fields (location, seed, cache/output paths) cleared.  Specs with
 * equal shape keys may share a BatchedEngine; the sweep runner groups
 * by this key.
 */
std::string batchShapeKey(const ExperimentSpec &spec);

/** Outcome of one lane of a batched run. */
struct LaneResult
{
    bool ok = false;
    std::string error;          ///< Set when !ok.
    ExperimentResult result;    ///< Valid when ok.
};

/** Steps a batch of same-shape experiments in lockstep. */
class BatchedEngine
{
  public:
    /**
     * Build a batch, one lane per spec.
     *
     * @param specs  Same-shape specs (see batchShapeKey); every spec
     *               must have batch > 0.
     * @param requested_width  The lane width the caller aimed for; a
     *               batch smaller than it is a ragged tail (counted in
     *               stats().raggedTailLanes).  0 means "exact".
     * @throws std::invalid_argument if the batch is empty, a spec has
     *         batch == 0, shapes differ, or the shared shape is
     *         unrunnable (ScenarioBuilder's validation).
     *
     * Per-lane construction failures (e.g. trace output requested) do
     * NOT throw: the lane is marked dead and surfaces as a failed
     * LaneResult from run().
     */
    explicit BatchedEngine(std::vector<ExperimentSpec> specs,
                           int requested_width = 0);

    int lanes() const { return int(_lanes.size()); }

    /**
     * Run the shared runKind protocol and return one LaneResult per
     * lane, in spec order.  Writes per-lane RunReports (reportJsonPath)
     * and merges stats into obs::registry() when obs is enabled.  Call
     * once.
     */
    std::vector<LaneResult> run();

    /** Batch counters of this engine (valid after run()). */
    const BatchStats &stats() const { return _stats; }

    /** Noise-free plant probe for tests. */
    const plant::BatchedPlant &plant() const { return *_plant; }

  private:
    void runDay(int day_of_year);
    void runDayRange(int start_day, int end_day);
    void runRange(int64_t start_s, int64_t end_s, bool collect);
    void sampleAll(util::SimTime now, bool collect);
    void initDay(int64_t warm_start_s);
    void refreshGrids(int64_t from_s, int64_t end_s);
    void failLane(int lane, const char *what);
    void collectLaneStats(const LaneState &lane,
                          obs::StatsRegistry &reg) const;
    void addBatchStats(obs::StatsRegistry &reg) const;

    std::vector<LaneState> _lanes;
    std::unique_ptr<plant::BatchedPlant> _plant;
    plant::PlantConfig _plantConfig;

    // Shared timeline (shape-derived).
    double _physicsStepS = 0.0;
    int64_t _stepS = 0;        ///< int64_t(physicsStepS), like Engine.
    int64_t _intervalS = 0;    ///< max(60, step), like ScenarioBuilder.
    int64_t _warmupS = 0;

    // Current grid chunk: lane grids all start at _gridStartS with
    // _gridPoints samples spaced _stepS apart.
    int64_t _gridStartS = 0;
    int _gridPoints = 0;

    // Contiguous per-lane spans the plant kernels consume.
    std::vector<environment::WeatherSample> _outside;
    std::vector<plant::PodLoad> _loads;
    std::vector<cooling::Regime> _commands;
    std::vector<plant::SensorReadings> _sensors;

    // Per-lane change masks handed to BatchedPlant::step: set when a
    // lane's load is re-copied (workload loadVersion moved) or its
    // command reassigned (control epoch), cleared after each plant
    // step.  They only elide recomputation of values that could not
    // have changed — results are identical with the masks disabled.
    std::vector<unsigned char> _loadsDirty;
    std::vector<unsigned char> _cmdsDirty;

    BatchStats _stats;
    bool _ran = false;
};

/**
 * Run one spec through the batched engine (a single-lane batch).
 * The batched counterpart of the scalar scenario path behind
 * runExperiment(); spec.batch must be positive.
 *
 * @throws std::invalid_argument for an unrunnable spec,
 *         std::runtime_error if the lane itself fails.
 */
ExperimentResult runBatchedExperiment(const ExperimentSpec &spec);

/**
 * Run several same-shape specs as one batch, returning per-lane
 * outcomes in spec order (the sweep runner's entry point).
 */
std::vector<LaneResult>
runBatchedGroup(const std::vector<ExperimentSpec> &specs,
                int requested_width);

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_BATCH_ENGINE_HPP
