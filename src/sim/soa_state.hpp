#ifndef COOLAIR_SIM_SOA_STATE_HPP
#define COOLAIR_SIM_SOA_STATE_HPP

/**
 * @file
 * Per-lane state of the batched simulation engine (sim/batch_engine.hpp).
 *
 * A "lane" is one whole experiment — spec, climate, workload, controller,
 * metrics — stepped in lockstep with its batch siblings.  The heavy
 * physics state lives as structure-of-arrays inside plant::BatchedPlant;
 * what remains here is the per-lane scalar machinery (control decisions,
 * metrics, weather grid) that the engine walks lane-by-lane at sample
 * boundaries.  Lanes are sized to the actual batch (ragged tails are
 * simply shorter batches, never padded).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cooling/regime.hpp"
#include "environment/climate.hpp"
#include "environment/forecast.hpp"
#include "plant/parasol.hpp"
#include "sim/controller.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace sim {

/** Scalar components and control state of one batch lane. */
struct LaneState
{
    ExperimentSpec spec;

    std::unique_ptr<environment::Climate> climate;
    std::unique_ptr<environment::Forecaster> forecaster;
    std::unique_ptr<workload::WorkloadModel> workload;
    std::unique_ptr<Controller> controller;
    std::unique_ptr<MetricsCollector> metrics;

    /** Pre-evaluated weather for the current grid chunk. */
    environment::WeatherGrid grid;

    // The commanded regime lives in the engine's contiguous per-lane
    // array (BatchedPlant::step consumes it as a flat span); like the
    // scalar Engine::_command it persists across measured days.

    /** Next control-epoch boundary [s] (per lane: epochs differ). */
    int64_t nextControlS = 0;

    /**
     * workload->loadVersion() at the last pod-load copy into the
     * engine's flat loads array.  The copy (and the plant's IT-power
     * recompute) is skipped while the version is unchanged; ~0 forces
     * the first copy.
     */
    uint64_t loadVersion = ~uint64_t(0);

    /**
     * A dead lane failed (construction or a thrown step) and is masked
     * from workload/controller/metrics work; its plant lane keeps
     * stepping harmlessly so the surviving lanes stay in lockstep.
     */
    bool dead = false;
    std::string error;

    // Per-lane run counters (the scalar EngineStats split by lane).
    int64_t steps = 0;
    int64_t samples = 0;
    int64_t controlEpochs = 0;
    int64_t regimeTransitions = 0;
    int64_t acSamples = 0;
};

/** Batch-execution counters surfaced through the StatsRegistry. */
struct BatchStats
{
    int64_t batchesExecuted = 0;   ///< BatchedEngine runs completed.
    int64_t lanesStepped = 0;      ///< Lane-steps (lanes x physics steps).
    int64_t raggedTailLanes = 0;   ///< Lanes in under-width tail batches.
    int64_t simMinutes = 0;        ///< Simulated minutes, summed over lanes.
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_SOA_STATE_HPP
