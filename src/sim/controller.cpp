#include "sim/controller.hpp"

namespace coolair {
namespace sim {

BaselineController::BaselineController(const cooling::TksConfig &config,
                                       int64_t epoch_s)
    : _tks(config), _epochS(epoch_s)
{
}

ControlDecision
BaselineController::control(const plant::SensorReadings &sensors,
                            const workload::WorkloadStatus &status,
                            const plant::PodLoad &load, util::SimTime now)
{
    (void)status;
    (void)load;
    (void)now;

    cooling::ControlInputs in;
    in.outsideTempC = sensors.outsideC;
    in.outsideRhPercent = sensors.outsideRhPercent;
    in.outsideAbsHumidity = sensors.outsideAbsHumidity;
    in.insideRhPercent = sensors.coldAisleRhPercent;
    // The TKS control sensor sits in a typically warm cold-aisle spot:
    // use the warmest pod reading.
    in.controlSensorC = sensors.maxPodInletC();

    ControlDecision decision;
    decision.regime = _tks.control(in);
    decision.hasPlan = false;
    return decision;
}

CoolAirController::CoolAirController(const core::CoolAirConfig &config,
                                     model::LearnedBundle bundle,
                                     environment::Forecaster *forecaster,
                                     const char *name)
    : _coolair(config, std::move(bundle), forecaster), _name(name)
{
}

FixedRegimeController::FixedRegimeController(const cooling::Regime &regime,
                                             int64_t epoch_s)
    : _regime(regime), _epochS(epoch_s)
{
}

ControlDecision
FixedRegimeController::control(const plant::SensorReadings &sensors,
                               const workload::WorkloadStatus &status,
                               const plant::PodLoad &load, util::SimTime now)
{
    (void)sensors;
    (void)status;
    (void)load;
    (void)now;
    ControlDecision decision;
    decision.regime = _regime;
    return decision;
}

ControlDecision
CoolAirController::control(const plant::SensorReadings &sensors,
                           const workload::WorkloadStatus &status,
                           const plant::PodLoad &load, util::SimTime now)
{
    core::CoolAir::Decision d = _coolair.control(sensors, status, load, now);
    ControlDecision decision;
    decision.regime = d.regime;
    decision.plan = d.plan;
    decision.hasPlan = true;
    return decision;
}

int64_t
CoolAirController::epochS() const
{
    return _coolair.config().controlEpochS;
}

void
CoolAirController::addStats(obs::StatsRegistry &reg) const
{
    const core::CoolingPredictor::PredictorStats p =
        _coolair.predictor().stats();
    reg.counter("predictor.rollouts", "candidate rollouts started")
        .add(p.rollouts);
    reg.counter("predictor.rollouts_abandoned",
                "rollouts cut short by the score lower bound")
        .add(p.rolloutsAbandoned);
    reg.counter("predictor.resolve_hits",
                "model resolutions served from the revision cache")
        .add(p.resolveHits);
    reg.counter("predictor.resolve_misses",
                "model resolutions that walked the fallback chain")
        .add(p.resolveMisses);

    const core::CoolingOptimizer::OptimizerStats o =
        _coolair.optimizer().stats();
    reg.counter("optimizer.epochs", "control decisions made").add(o.epochs);
    reg.counter("optimizer.candidates", "candidate regimes considered")
        .add(o.candidates);
}

} // namespace sim
} // namespace coolair
