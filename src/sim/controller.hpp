#ifndef COOLAIR_SIM_CONTROLLER_HPP
#define COOLAIR_SIM_CONTROLLER_HPP

/**
 * @file
 * Controller abstraction for the simulation engine: the baseline (the
 * extended TKS scheme of §5.1) and CoolAir plug in behind the same
 * interface, so every experiment harness swaps systems with one line.
 */

#include <memory>

#include "cooling/regime.hpp"
#include "cooling/tks.hpp"
#include "core/coolair.hpp"
#include "obs/stats.hpp"
#include "plant/parasol.hpp"
#include "workload/compute_plan.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace sim {

/** One controller output. */
struct ControlDecision
{
    cooling::Regime regime;
    workload::ComputePlan plan = workload::ComputePlan::passthrough();
    bool hasPlan = false;   ///< Baseline never touches the workload.
};

/** Interface the engine drives. */
class Controller
{
  public:
    virtual ~Controller() = default;

    /** Produce the next decision. */
    virtual ControlDecision control(const plant::SensorReadings &sensors,
                                    const workload::WorkloadStatus &status,
                                    const plant::PodLoad &load,
                                    util::SimTime now) = 0;

    /** Seconds between control invocations. */
    virtual int64_t epochS() const = 0;

    /** Display name for reports. */
    virtual const char *name() const = 0;

    /**
     * Publish controller-internal counters into @p reg (scenario-run
     * harvest; called at most once per run).  Default: nothing.
     */
    virtual void addStats(obs::StatsRegistry &reg) const { (void)reg; }
};

/**
 * The baseline system: Parasol's TKS control scheme with the §5.1
 * extensions (setpoint 30 °C, 80 % humidity ceiling).  Reacts every
 * minute; never manages the workload or server states.
 */
class BaselineController : public Controller
{
  public:
    explicit BaselineController(
        const cooling::TksConfig &config =
            cooling::TksConfig::extendedBaseline(),
        int64_t epoch_s = 60);

    ControlDecision control(const plant::SensorReadings &sensors,
                            const workload::WorkloadStatus &status,
                            const plant::PodLoad &load,
                            util::SimTime now) override;

    int64_t epochS() const override { return _epochS; }
    const char *name() const override { return "Baseline"; }

    /** The wrapped TKS (for inspection in tests). */
    const cooling::TksController &tks() const { return _tks; }

  private:
    cooling::TksController _tks;
    int64_t _epochS;
};

/**
 * A controller that always commands one fixed regime and never touches
 * the workload.  Physics probes (e.g. the Figure 1 bench holds free
 * cooling at 60 % fan) run through the standard engine with this.
 */
class FixedRegimeController : public Controller
{
  public:
    explicit FixedRegimeController(const cooling::Regime &regime,
                                   int64_t epoch_s = 600);

    ControlDecision control(const plant::SensorReadings &sensors,
                            const workload::WorkloadStatus &status,
                            const plant::PodLoad &load,
                            util::SimTime now) override;

    int64_t epochS() const override { return _epochS; }
    const char *name() const override { return "Fixed-Regime"; }

  private:
    cooling::Regime _regime;
    int64_t _epochS;
};

/** CoolAir behind the Controller interface. */
class CoolAirController : public Controller
{
  public:
    CoolAirController(const core::CoolAirConfig &config,
                      model::LearnedBundle bundle,
                      environment::Forecaster *forecaster,
                      const char *name = "CoolAir");

    ControlDecision control(const plant::SensorReadings &sensors,
                            const workload::WorkloadStatus &status,
                            const plant::PodLoad &load,
                            util::SimTime now) override;

    int64_t epochS() const override;
    const char *name() const override { return _name; }

    void addStats(obs::StatsRegistry &reg) const override;

    /** The wrapped manager (for inspection). */
    const core::CoolAir &coolair() const { return _coolair; }

    /** Forwarder for the batched engine: score an epoch's candidates
        in one batched pass (core::CoolAir::setBatchedCandidates). */
    void setBatchedCandidates(bool on)
    {
        _coolair.setBatchedCandidates(on);
    }

  private:
    core::CoolAir _coolair;
    const char *_name;
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_CONTROLLER_HPP
