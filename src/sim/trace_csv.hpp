#ifndef COOLAIR_SIM_TRACE_CSV_HPP
#define COOLAIR_SIM_TRACE_CSV_HPP

/**
 * @file
 * The canonical CSV rendering of engine trace rows, shared by every
 * trace-dumping harness (parasol_day, the figure benches, scenarios
 * with a traceCsvPath) so all dumps agree on columns and formats.
 */

#include <iosfwd>

#include "sim/engine.hpp"

namespace coolair {
namespace sim {

/** Write the canonical trace header line (with trailing newline). */
void writeTraceCsvHeader(std::ostream &os);

/** Write one trace row in the canonical format (with trailing newline). */
void writeTraceCsvRow(std::ostream &os, const TraceRow &row);

/**
 * A trace sink streaming canonical CSV rows to @p os (header NOT
 * included; call writeTraceCsvHeader first).  The stream must outlive
 * the engine run.
 */
TraceSink makeCsvTraceSink(std::ostream &os);

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_TRACE_CSV_HPP
