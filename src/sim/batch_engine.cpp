#include "sim/batch_engine.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "obs/report.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"
#include "sim/spec_io.hpp"
#include "util/logging.hpp"

namespace coolair {
namespace sim {

namespace {

/** Weather-grid chunk cap: bounds lane grid memory on long day ranges
    (a full day at the finest 30 s step is 2880 points). */
constexpr int kMaxGridChunk = 4096;

} // namespace

std::string
batchShapeKey(const ExperimentSpec &spec)
{
    ExperimentSpec shape = spec;
    shape.location = environment::Location{};
    shape.seed = 0;
    shape.cacheDirPath.clear();
    shape.traceCsvPath.clear();
    shape.reportJsonPath.clear();
    shape.traceJsonPath.clear();
    return formatSpec(shape);
}

BatchedEngine::BatchedEngine(std::vector<ExperimentSpec> specs,
                             int requested_width)
{
    if (specs.empty())
        throw std::invalid_argument(
            "BatchedEngine: batch must contain at least one spec");
    const std::string shape = batchShapeKey(specs.front());
    for (const ExperimentSpec &spec : specs) {
        if (spec.batch <= 0)
            throw std::invalid_argument(
                "BatchedEngine: every lane spec must have batch > 0");
        if (batchShapeKey(spec) != shape)
            throw std::invalid_argument(
                "BatchedEngine: lane specs differ in shape (only "
                "location, seed and output paths may vary in a batch)");
    }

    // ScenarioBuilder's runnability validation, on the shared shape.
    const ExperimentSpec &proto = specs.front();
    if (proto.physicsStepS <= 0.0)
        throw std::invalid_argument(
            "ExperimentSpec: physics step must be positive");
    if (proto.runKind == RunKind::YearWeekly && proto.weeks <= 0)
        throw std::invalid_argument("ExperimentSpec: weeks must be positive");
    if (proto.runKind == RunKind::DayRange && proto.endDay <= proto.startDay)
        throw std::invalid_argument(
            "ExperimentSpec: day range must be non-empty");

    _physicsStepS = proto.physicsStepS;
    _stepS = int64_t(_physicsStepS);
    _intervalS = std::max<int64_t>(60, int64_t(_physicsStepS));
    _warmupS = EngineConfig{}.warmupS;
    if (_stepS <= 0 || _intervalS % _stepS != 0)
        util::fatal("Engine: sample interval must be a multiple of the "
                    "physics step");

    _plantConfig = plantConfigFor(proto);
    std::vector<uint64_t> seeds;
    seeds.reserve(specs.size());
    for (const ExperimentSpec &spec : specs)
        seeds.push_back(spec.seed);
    _plant = std::make_unique<plant::BatchedPlant>(_plantConfig, seeds);

    _lanes.reserve(specs.size());
    for (ExperimentSpec &spec : specs) {
        LaneState lane;
        lane.spec = std::move(spec);
        const ExperimentSpec &ls = lane.spec;
        try {
            // Trace output needs the scalar engine's per-step sink; its
            // absence here is the documented fault-injection lever.
            if (!ls.traceCsvPath.empty() || !ls.traceJsonPath.empty())
                throw std::invalid_argument(
                    "BatchedEngine: trace output is not supported on the "
                    "batched path (run with batch = 0)");
            lane.climate = std::make_unique<environment::Climate>(
                ls.location.makeClimate(ls.seed));
            // The raw climate serves the forecaster: its samples are
            // bit-identical to the scalar path's cached provider.
            lane.forecaster = std::make_unique<environment::Forecaster>(
                *lane.climate, ls.forecastError, ls.seed);
            lane.workload = makeWorkload(ls);
            lane.controller = makeController(ls, lane.forecaster.get());
            // CoolAir lanes score each epoch's candidate menu in one
            // batched pass (ulp-level score drift only; DESIGN.md §10).
            if (auto *ca =
                    dynamic_cast<CoolAirController *>(lane.controller.get()))
                ca->setBatchedCandidates(true);
            MetricsConfig mc;
            mc.maxTempC = ls.maxTempC;
            lane.metrics = std::make_unique<MetricsCollector>(
                mc, _plantConfig.numPods);
        } catch (const std::exception &e) {
            lane.dead = true;
            lane.error = e.what();
        }
        _lanes.push_back(std::move(lane));
    }

    const size_t n = _lanes.size();
    _outside.resize(n);
    // Dead lanes never refresh their load; seed every slot with a valid
    // arity so the plant's lockstep step always sees numPods pods.
    _loads.assign(n, plant::PodLoad::uniform(_plantConfig.numPods,
                                             _plantConfig.serversPerPod,
                                             0.5));
    _commands.assign(n, cooling::Regime::closed());
    _sensors.resize(n);
    // First plant step must consume every seeded load/command.
    _loadsDirty.assign(n, 1);
    _cmdsDirty.assign(n, 1);

    if (requested_width > 0 && int(n) < requested_width)
        _stats.raggedTailLanes = int64_t(n);
}

void
BatchedEngine::failLane(int lane, const char *what)
{
    LaneState &ln = _lanes[size_t(lane)];
    ln.dead = true;
    ln.error = what;
}

void
BatchedEngine::refreshGrids(int64_t from_s, int64_t end_s)
{
    const int64_t remaining = (end_s - from_s + _stepS - 1) / _stepS;
    const int n = int(std::min<int64_t>(remaining, kMaxGridChunk));
    _gridStartS = from_s;
    _gridPoints = n;
    for (LaneState &lane : _lanes) {
        if (lane.climate) {
            lane.climate->sampleGridInto(util::SimTime(from_s), _stepS, n,
                                         lane.grid);
        } else {
            // Construction-dead lane: any finite weather keeps its plant
            // lane stepping harmlessly alongside the batch.
            const size_t nz = size_t(n);
            lane.grid.startTime = util::SimTime(from_s);
            lane.grid.stepS = _stepS;
            lane.grid.tempC.assign(nz, 20.0);
            lane.grid.rhPercent.assign(nz, 50.0);
            lane.grid.absHumidity.assign(nz, 8.0);
        }
    }
}

void
BatchedEngine::sampleAll(util::SimTime now, bool collect)
{
    _plant->readSensors(_sensors.data());
    const int n = lanes();
    for (int l = 0; l < n; ++l) {
        LaneState &lane = _lanes[size_t(l)];
        if (lane.dead)
            continue;
        try {
            plant::SensorReadings &sensors = _sensors[size_t(l)];
            sensors.time = now;

            if (now.seconds() >= lane.nextControlS) {
                workload::WorkloadStatus status = lane.workload->status();
                const uint64_t v = lane.workload->loadVersion();
                if (v == 0 || v != lane.loadVersion) {
                    lane.workload->podLoadInto(_loads[size_t(l)]);
                    lane.loadVersion = v;
                    _loadsDirty[size_t(l)] = 1;
                }
                ControlDecision decision = lane.controller->control(
                    sensors, status, _loads[size_t(l)], now);
                ++lane.controlEpochs;
                if (!(decision.regime == _commands[size_t(l)])) {
                    ++lane.regimeTransitions;
                    _commands[size_t(l)] = decision.regime;
                    _cmdsDirty[size_t(l)] = 1;
                }
                // An unchanged decision leaves the command (and the
                // actuator, via the clean mask) untouched: setCommand
                // with an equal regime is a no-op by construction.
                if (decision.hasPlan)
                    lane.workload->applyPlan(decision.plan);
                lane.nextControlS =
                    now.seconds() + lane.controller->epochS();
            }

            if (!collect)
                continue;

            ++lane.samples;
            if (sensors.cooling.mode == cooling::Mode::AirConditioning)
                ++lane.acSamples;

            lane.metrics->record(now, sensors, double(_intervalS),
                                 _outside[size_t(l)].tempC);
        } catch (const std::exception &e) {
            failLane(l, e.what());
        }
    }
}

void
BatchedEngine::runRange(int64_t start_s, int64_t end_s, bool collect)
{
    if (end_s <= start_s)
        return;

    const int64_t step = _stepS;
    const int n = lanes();
    refreshGrids(start_s, end_s);
    size_t gi = 0;

    for (int64_t t = start_s; t < end_s; t += step) {
        if (int(gi) == _gridPoints) {
            refreshGrids(t, end_s);
            gi = 0;
        }
        util::SimTime now(t);
        for (int l = 0; l < n; ++l)
            _outside[size_t(l)] = _lanes[size_t(l)].grid.at(gi);
        for (LaneState &lane : _lanes)
            if (!lane.dead)
                ++lane.steps;
        _stats.lanesStepped += n;

        if ((t - start_s) % _intervalS == 0)
            sampleAll(now, collect);

        for (int l = 0; l < n; ++l) {
            LaneState &lane = _lanes[size_t(l)];
            if (lane.dead)
                continue;
            try {
                lane.workload->step(now, double(step));
                const uint64_t v = lane.workload->loadVersion();
                if (v == 0 || v != lane.loadVersion) {
                    lane.workload->podLoadInto(_loads[size_t(l)]);
                    lane.loadVersion = v;
                    _loadsDirty[size_t(l)] = 1;
                }
            } catch (const std::exception &e) {
                failLane(l, e.what());
            }
        }
        _plant->step(double(step), _outside.data(), _loads.data(),
                     _commands.data(), _loadsDirty.data(),
                     _cmdsDirty.data());
        std::fill(_loadsDirty.begin(), _loadsDirty.end(),
                  static_cast<unsigned char>(0));
        std::fill(_cmdsDirty.begin(), _cmdsDirty.end(),
                  static_cast<unsigned char>(0));
        ++gi;
    }
}

void
BatchedEngine::initDay(int64_t warm_start_s)
{
    const util::SimTime warm(warm_start_s);
    for (int l = 0; l < lanes(); ++l) {
        LaneState &lane = _lanes[size_t(l)];
        if (!lane.climate)
            continue;
        // Strict scalar sample here, so the start state is bit-identical
        // to the scalar engine's.
        _plant->initializeSteadyState(l, lane.climate->sample(warm));
        lane.nextControlS = warm_start_s;
    }
}

void
BatchedEngine::runDay(int day_of_year)
{
    obs::Span span("batch_engine.runDay");
    const int64_t day_start = int64_t(day_of_year) * util::kSecondsPerDay;
    const int64_t warm_start = day_start - _warmupS;

    initDay(warm_start);
    runRange(warm_start, day_start, /*collect=*/false);
    runRange(day_start, day_start + util::kSecondsPerDay, /*collect=*/true);
}

void
BatchedEngine::runDayRange(int start_day, int end_day)
{
    if (end_day <= start_day)
        return;
    obs::Span span("batch_engine.runDayRange");

    const int64_t start = int64_t(start_day) * util::kSecondsPerDay;
    const int64_t end = int64_t(end_day) * util::kSecondsPerDay;
    const int64_t warm_start = start - _warmupS;

    initDay(warm_start);
    runRange(warm_start, start, /*collect=*/false);
    runRange(start, end, /*collect=*/true);
}

void
BatchedEngine::collectLaneStats(const LaneState &lane,
                                obs::StatsRegistry &reg) const
{
    lane.controller->addStats(reg);

    reg.counter("engine.steps", "physics steps taken").add(lane.steps);
    reg.counter("engine.samples", "collected metric samples")
        .add(lane.samples);
    reg.counter("engine.control_epochs", "controller invocations")
        .add(lane.controlEpochs);
    reg.counter("engine.regime_transitions", "commanded regime changes")
        .add(lane.regimeTransitions);
    reg.counter("engine.ac_minutes",
                "collected simulated minutes in AC mode")
        .add(lane.acSamples * _intervalS / 60);

    reg.counter("metrics.violation_minutes",
                "simulated minutes with max inlet above the desired max")
        .add(lane.metrics->violationSamples() * _intervalS / 60);
}

void
BatchedEngine::addBatchStats(obs::StatsRegistry &reg) const
{
    reg.counter("batch.batches_executed", "batched engine runs completed")
        .add(_stats.batchesExecuted);
    reg.counter("batch.lanes_stepped",
                "lane-steps executed by the batched engine")
        .add(_stats.lanesStepped);
    reg.counter("batch.ragged_tail_lanes",
                "lanes run in under-width tail batches")
        .add(_stats.raggedTailLanes);
    reg.counter("batch.sim_minutes",
                "simulated minutes produced by the batched engine")
        .add(_stats.simMinutes);
}

std::vector<LaneResult>
BatchedEngine::run()
{
    if (_ran)
        util::panic("BatchedEngine::run: may be called only once");
    _ran = true;

    const std::chrono::steady_clock::time_point t0 =
        std::chrono::steady_clock::now();
    {
        obs::Span span("batch_engine.run");
        const ExperimentSpec &proto = _lanes.front().spec;
        switch (proto.runKind) {
          case RunKind::YearWeekly:
            for (int day : yearSampleDays(proto.weeks))
                runDay(day);
            break;
          case RunKind::SingleDay:
            runDay(proto.day);
            break;
          case RunKind::DayRange:
            runDayRange(proto.startDay, proto.endDay);
            break;
        }
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

    _stats.batchesExecuted = 1;
    for (const LaneState &lane : _lanes)
        _stats.simMinutes += lane.steps * _stepS / 60;

    std::vector<LaneResult> out(_lanes.size());
    for (size_t l = 0; l < _lanes.size(); ++l) {
        LaneState &lane = _lanes[l];
        LaneResult &res = out[l];
        if (lane.dead) {
            res.error = lane.error;
            continue;
        }
        res.ok = true;
        res.result.system = lane.metrics->summary();
        res.result.outside = lane.metrics->outsideSummary();

        if (obs::enabled() || !lane.spec.reportJsonPath.empty()) {
            obs::StatsRegistry local;
            collectLaneStats(lane, local);
            if (obs::enabled())
                obs::registry().merge(local);
            if (!lane.spec.reportJsonPath.empty()) {
                // Batch-wide counters fold into the report only (their
                // owner publishes them globally exactly once below).
                addBatchStats(local);
                obs::RunReport report = makeRunReport(
                    lane.spec, res.result, wall,
                    double(lane.steps) * _physicsStepS);
                std::ofstream os(lane.spec.reportJsonPath);
                if (!os) {
                    res.ok = false;
                    res.error =
                        "BatchedEngine: cannot open report JSON path: " +
                        lane.spec.reportJsonPath;
                    continue;
                }
                obs::writeRunReport(os, report, local);
            }
        }
    }

    if (obs::enabled()) {
        obs::StatsRegistry batch;
        addBatchStats(batch);
        obs::registry().merge(batch);
    }
    return out;
}

ExperimentResult
runBatchedExperiment(const ExperimentSpec &spec)
{
    if (spec.batch <= 0)
        throw std::invalid_argument(
            "runBatchedExperiment: spec.batch must be positive");
    BatchedEngine engine({spec}, /*requested_width=*/1);
    std::vector<LaneResult> out = engine.run();
    if (!out.front().ok)
        throw std::runtime_error(out.front().error);
    return out.front().result;
}

std::vector<LaneResult>
runBatchedGroup(const std::vector<ExperimentSpec> &specs,
                int requested_width)
{
    BatchedEngine engine(specs, requested_width);
    return engine.run();
}

} // namespace sim
} // namespace coolair
