#ifndef COOLAIR_SIM_MODEL_PLANT_HPP
#define COOLAIR_SIM_MODEL_PLANT_HPP

/**
 * @file
 * Real-Sim / Smooth-Sim: simulators whose physics *is* the learned
 * Cooling Model.
 *
 * Paper §5.1: "To compute temperatures and humidity over time, they
 * [Real-Sim and Smooth-Sim] repeatedly call the same code implementing
 * CoolAir's Cooling Predictor."  ModelPlant does exactly that — it
 * advances pod temperatures and humidity one model step at a time using
 * the learned per-regime linear models, instead of the physical plant
 * equations.  Comparing a controller run on the physics Plant ("real")
 * against the same controller run on ModelPlant reproduces the paper's
 * validation methodology (Figures 6 and 7).
 */

#include <functional>

#include "cooling/regime.hpp"
#include "environment/climate.hpp"
#include "model/cooling_model.hpp"
#include "plant/parasol.hpp"
#include "sim/controller.hpp"
#include "sim/metrics.hpp"

namespace coolair {
namespace sim {

/** Learned-model-driven plant. */
class ModelPlant
{
  public:
    /**
     * @param model        the learned cooling model (not owned)
     * @param plant_config geometry/power constants (for IT power and
     *                     actuator emulation)
     */
    ModelPlant(const model::CoolingModel *model,
               const plant::PlantConfig &plant_config);

    /** Set the state from a sensor snapshot (run start). */
    void reset(const plant::SensorReadings &init);

    /**
     * Advance one model step (model->config().stepS seconds) with the
     * commanded regime under the given outside conditions and load.
     */
    void step(const environment::WeatherSample &outside,
              const plant::PodLoad &load, const cooling::Regime &command);

    /** Current (noise-free) synthetic sensor readings. */
    plant::SensorReadings readSensors(util::SimTime now) const;

    /** Model step length [s]. */
    double stepS() const { return _model->config().stepS; }

  private:
    double itPowerFor(const plant::PodLoad &load, double *dc_util) const;

    const model::CoolingModel *_model;
    plant::PlantConfig _plantConfig;
    cooling::Actuators _actuators;

    std::vector<double> _temp;
    std::vector<double> _tempPrev;
    double _absHumidity = 8.0;
    double _fanPrev = 0.0;
    cooling::Regime _prevRegime;
    environment::WeatherSample _outside;
    environment::WeatherSample _outsidePrev;
    double _itPowerW = 0.0;
    double _dcUtilization = 1.0;
};

/**
 * A compact closed-loop runner for ModelPlant (the Engine drives the
 * physics plant; this drives Real-Sim/Smooth-Sim at model-step
 * granularity).
 */
class ModelSimRunner
{
  public:
    ModelSimRunner(ModelPlant &plant, workload::WorkloadModel &workload,
                   Controller &controller,
                   const environment::WeatherProvider &climate);

    /** Attach a metrics collector (not owned). */
    void setMetrics(MetricsCollector *metrics) { _metrics = metrics; }

    /** Callback invoked with each model step's sensor snapshot. */
    using SampleHook = std::function<void(const plant::SensorReadings &)>;

    /** Attach a per-step sample hook (e.g. for trace capture). */
    void setSampleHook(SampleHook hook) { _hook = std::move(hook); }

    /**
     * Run one measured day, starting from @p init (typically the
     * physics plant's state at the same instant, so both simulations
     * start identically).
     */
    void runDay(int day_of_year, const plant::SensorReadings &init);

  private:
    ModelPlant &_plant;
    workload::WorkloadModel &_workload;
    Controller &_controller;
    const environment::WeatherProvider &_climate;
    MetricsCollector *_metrics = nullptr;
    SampleHook _hook;
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_MODEL_PLANT_HPP
