#include "sim/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/trace_csv.hpp"
#include "util/logging.hpp"
#include "workload/cluster.hpp"
#include "workload/profile.hpp"
#include "workload/trace_gen.hpp"

namespace coolair {
namespace sim {

// ---------------------------------------------------------------------------
// Component factories.
// ---------------------------------------------------------------------------

plant::PlantConfig
plantConfigFor(const ExperimentSpec &spec)
{
    switch (spec.variant) {
      case PlantVariant::Standard:
        return spec.style == cooling::ActuatorStyle::Abrupt
                   ? plant::PlantConfig::parasol()
                   : plant::PlantConfig::smoothParasol();
      case PlantVariant::Evaporative:
        return plant::PlantConfig::smoothParasolEvaporative();
      case PlantVariant::Chiller:
        return plant::PlantConfig::smoothParasolChiller();
    }
    util::panic("plantConfigFor: unknown plant variant");
}

std::unique_ptr<plant::Plant>
makePlant(const ExperimentSpec &spec)
{
    return std::make_unique<plant::Plant>(plantConfigFor(spec), spec.seed);
}

cooling::RegimeMenu
regimeMenuFor(const ExperimentSpec &spec)
{
    if (spec.variant == PlantVariant::Evaporative)
        return cooling::RegimeMenu::smoothWithEvaporative();
    return spec.style == cooling::ActuatorStyle::Abrupt
               ? cooling::RegimeMenu::parasol()
               : cooling::RegimeMenu::smooth();
}

const model::LearnedBundle &
bundleFor(const ExperimentSpec &spec)
{
    return spec.variant == PlantVariant::Evaporative
               ? sharedEvaporativeBundle()
               : sharedBundle();
}

core::Version
systemVersion(SystemId id)
{
    switch (id) {
      case SystemId::Temperature:   return core::Version::Temperature;
      case SystemId::Variation:    return core::Version::Variation;
      case SystemId::Energy:       return core::Version::Energy;
      case SystemId::AllNd:        return core::Version::AllNd;
      case SystemId::AllDef:       return core::Version::AllDef;
      case SystemId::VarLowRecirc: return core::Version::VarLowRecirc;
      case SystemId::VarHighRecirc: return core::Version::VarHighRecirc;
      case SystemId::EnergyDef:    return core::Version::EnergyDef;
      case SystemId::Baseline:
        break;
    }
    util::panic("systemVersion: baseline has no CoolAir version");
}

core::CoolAirConfig
coolairConfigFor(const ExperimentSpec &spec)
{
    core::CoolAirConfig config = core::CoolAirConfig::forVersion(
        systemVersion(spec.system), regimeMenuFor(spec), spec.maxTempC);
    if (spec.bandWidthC)
        config.band.widthC = *spec.bandWidthC;
    if (spec.bandOffsetC)
        config.band.offsetC = *spec.bandOffsetC;
    if (spec.switchPenalty)
        config.utility.switchPenalty = *spec.switchPenalty;
    if (spec.sleepDecayPerEpoch)
        config.compute.sleepDecayPerEpoch = *spec.sleepDecayPerEpoch;
    if (spec.horizonSteps)
        config.horizonSteps = *spec.horizonSteps;
    return config;
}

workload::Trace
traceForSpec(const ExperimentSpec &spec)
{
    workload::TraceGenConfig tg;
    tg.seed = spec.seed;
    workload::Trace trace;
    switch (spec.workload) {
      case WorkloadKind::Facebook:
      case WorkloadKind::FacebookProfile:
        trace = workload::facebookTrace(tg);
        break;
      case WorkloadKind::Nutch:
        trace = workload::nutchTrace(tg);
        break;
      case WorkloadKind::SteadyHalf:
        trace = workload::steadyTrace(0.5, tg);
        break;
    }
    if (systemIsDeferrable(spec.system))
        trace.makeDeferrable(6.0);  // §5.1: 6-hour start deadlines
    return trace;
}

std::unique_ptr<workload::WorkloadModel>
makeWorkload(const ExperimentSpec &spec)
{
    workload::ClusterConfig cc;
    if (spec.workload == WorkloadKind::FacebookProfile)
        return std::make_unique<workload::ProfileWorkload>(
            cc, sharedFacebookProfile());
    return std::make_unique<workload::ClusterSim>(cc, traceForSpec(spec));
}

std::unique_ptr<Controller>
makeController(const ExperimentSpec &spec,
               environment::Forecaster *forecaster)
{
    if (spec.system == SystemId::Baseline) {
        cooling::TksConfig tks = cooling::TksConfig::extendedBaseline();
        tks.setpointC = spec.maxTempC;
        return std::make_unique<BaselineController>(tks);
    }
    return std::make_unique<CoolAirController>(
        coolairConfigFor(spec), bundleFor(spec), forecaster,
        systemName(spec.system));
}

// ---------------------------------------------------------------------------
// Scenario.
// ---------------------------------------------------------------------------

ExperimentResult
Scenario::run()
{
    switch (_spec.runKind) {
      case RunKind::YearWeekly:
        _engine->runYearWeekly(_spec.weeks);
        break;
      case RunKind::SingleDay:
        _engine->runDay(_spec.day);
        break;
      case RunKind::DayRange:
        _engine->runDayRange(_spec.startDay, _spec.endDay);
        break;
    }

    ExperimentResult result;
    result.system = _metrics->summary();
    result.outside = _metrics->outsideSummary();
    return result;
}

void
Scenario::addTraceSink(TraceSink sink)
{
    _sinks.push_back(std::move(sink));
    installFanout();
}

void
Scenario::installFanout()
{
    if (_sinks.empty())
        return;
    if (_sinks.size() == 1) {
        _engine->setTraceSink(_sinks.front());
        return;
    }
    // The engine takes one sink; fan out to all registered ones.  The
    // lambda captures `this`, which is stable: scenarios live on the
    // heap behind unique_ptr.
    _engine->setTraceSink([this](const TraceRow &row) {
        for (const TraceSink &sink : _sinks)
            sink(row);
    });
}

// ---------------------------------------------------------------------------
// ScenarioBuilder.
// ---------------------------------------------------------------------------

ScenarioBuilder::ScenarioBuilder(ExperimentSpec spec)
    : _spec(std::move(spec))
{
}

ScenarioBuilder &
ScenarioBuilder::withController(std::unique_ptr<Controller> controller)
{
    _controller = std::move(controller);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::withMetricsConfig(const MetricsConfig &config)
{
    _hasMetricsConfig = true;
    _metricsConfig = config;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::withTraceSink(TraceSink sink)
{
    _sinks.push_back(std::move(sink));
    return *this;
}

std::unique_ptr<Scenario>
ScenarioBuilder::build()
{
    if (_spec.physicsStepS <= 0.0)
        throw std::invalid_argument(
            "ExperimentSpec: physics step must be positive");
    if (_spec.runKind == RunKind::YearWeekly && _spec.weeks <= 0)
        throw std::invalid_argument("ExperimentSpec: weeks must be positive");
    if (_spec.runKind == RunKind::DayRange && _spec.endDay <= _spec.startDay)
        throw std::invalid_argument(
            "ExperimentSpec: day range must be non-empty");

    auto scenario = std::unique_ptr<Scenario>(new Scenario());
    scenario->_spec = _spec;

    // Assembly order mirrors the original runYearExperiment exactly.
    plant::PlantConfig pc = plantConfigFor(_spec);
    scenario->_plant = std::make_unique<plant::Plant>(pc, _spec.seed);

    scenario->_climate = std::make_unique<environment::Climate>(
        _spec.location.makeClimate(_spec.seed));

    // The cache memoizes exact samples on the day-grid shared by the
    // engine loop and the forecaster's hourly queries; a physics step
    // with no integral grid falls back to the raw climate.
    int64_t grid = environment::weatherCacheGridStepS(_spec.physicsStepS);
    if (_spec.weatherCache && grid > 0)
        scenario->_weather =
            std::make_unique<environment::CachedWeatherProvider>(
                *scenario->_climate, grid);

    scenario->_forecaster = std::make_unique<environment::Forecaster>(
        scenario->weather(), _spec.forecastError, _spec.seed);

    scenario->_workload = makeWorkload(_spec);

    scenario->_controller =
        _controller ? std::move(_controller)
                    : makeController(_spec, scenario->_forecaster.get());

    MetricsConfig mc;
    if (_hasMetricsConfig)
        mc = _metricsConfig;
    else
        mc.maxTempC = _spec.maxTempC;
    scenario->_metrics = std::make_unique<MetricsCollector>(mc, pc.numPods);

    EngineConfig ec;
    ec.physicsStepS = _spec.physicsStepS;
    ec.sampleIntervalS = std::max<int64_t>(60, int64_t(_spec.physicsStepS));
    scenario->_engine = std::make_unique<Engine>(
        *scenario->_plant, *scenario->_workload, *scenario->_controller,
        scenario->weather(), ec);
    scenario->_engine->setMetrics(scenario->_metrics.get());

    scenario->_sinks = std::move(_sinks);
    if (!_spec.traceCsvPath.empty()) {
        scenario->_csv =
            std::make_unique<std::ofstream>(_spec.traceCsvPath);
        if (!*scenario->_csv)
            throw std::runtime_error("Scenario: cannot open trace CSV path: " +
                                     _spec.traceCsvPath);
        writeTraceCsvHeader(*scenario->_csv);
        std::ofstream *csv = scenario->_csv.get();
        scenario->_sinks.push_back(
            [csv](const TraceRow &row) { writeTraceCsvRow(*csv, row); });
    }
    scenario->installFanout();

    return scenario;
}

// ---------------------------------------------------------------------------
// Experiment entry points.
// ---------------------------------------------------------------------------

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    return ScenarioBuilder(spec).build()->run();
}

ExperimentResult
runYearExperiment(const ExperimentSpec &spec)
{
    ExperimentSpec year = spec;
    year.runKind = RunKind::YearWeekly;
    return runExperiment(year);
}

// ---------------------------------------------------------------------------
// Real-Sim / Smooth-Sim.
// ---------------------------------------------------------------------------

ModelSimScenario
buildModelSimScenario(const ExperimentSpec &spec)
{
    ModelSimScenario ms;
    ms.spec = spec;

    ms.climate = std::make_unique<environment::Climate>(
        spec.location.makeClimate(spec.seed));
    ms.forecaster = std::make_unique<environment::Forecaster>(
        *ms.climate, spec.forecastError, spec.seed);

    ms.plant = std::make_unique<ModelPlant>(&bundleFor(spec).model,
                                            plantConfigFor(spec));
    ms.workload = makeWorkload(spec);
    ms.controller = makeController(spec, ms.forecaster.get());

    MetricsConfig mc;
    mc.maxTempC = spec.maxTempC;
    ms.metrics = std::make_unique<MetricsCollector>(
        mc, plantConfigFor(spec).numPods);

    ms.runner = std::make_unique<ModelSimRunner>(*ms.plant, *ms.workload,
                                                 *ms.controller, *ms.climate);
    ms.runner->setMetrics(ms.metrics.get());
    return ms;
}

} // namespace sim
} // namespace coolair
