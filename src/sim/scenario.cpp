#include "sim/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"
#include "sim/batch_engine.hpp"
#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"
#include "sim/trace_csv.hpp"
#include "util/logging.hpp"
#include "workload/cluster.hpp"
#include "workload/profile.hpp"
#include "workload/trace_gen.hpp"

namespace coolair {
namespace sim {

// ---------------------------------------------------------------------------
// Component factories.
// ---------------------------------------------------------------------------

plant::PlantConfig
plantConfigFor(const ExperimentSpec &spec)
{
    switch (spec.variant) {
      case PlantVariant::Standard:
        return spec.style == cooling::ActuatorStyle::Abrupt
                   ? plant::PlantConfig::parasol()
                   : plant::PlantConfig::smoothParasol();
      case PlantVariant::Evaporative:
        return plant::PlantConfig::smoothParasolEvaporative();
      case PlantVariant::Chiller:
        return plant::PlantConfig::smoothParasolChiller();
    }
    util::panic("plantConfigFor: unknown plant variant");
}

std::unique_ptr<plant::Plant>
makePlant(const ExperimentSpec &spec)
{
    return std::make_unique<plant::Plant>(plantConfigFor(spec), spec.seed);
}

cooling::RegimeMenu
regimeMenuFor(const ExperimentSpec &spec)
{
    if (spec.variant == PlantVariant::Evaporative)
        return cooling::RegimeMenu::smoothWithEvaporative();
    return spec.style == cooling::ActuatorStyle::Abrupt
               ? cooling::RegimeMenu::parasol()
               : cooling::RegimeMenu::smooth();
}

const model::LearnedBundle &
bundleFor(const ExperimentSpec &spec)
{
    return spec.variant == PlantVariant::Evaporative
               ? sharedEvaporativeBundle()
               : sharedBundle();
}

core::Version
systemVersion(SystemId id)
{
    switch (id) {
      case SystemId::Temperature:   return core::Version::Temperature;
      case SystemId::Variation:    return core::Version::Variation;
      case SystemId::Energy:       return core::Version::Energy;
      case SystemId::AllNd:        return core::Version::AllNd;
      case SystemId::AllDef:       return core::Version::AllDef;
      case SystemId::VarLowRecirc: return core::Version::VarLowRecirc;
      case SystemId::VarHighRecirc: return core::Version::VarHighRecirc;
      case SystemId::EnergyDef:    return core::Version::EnergyDef;
      case SystemId::Baseline:
        break;
    }
    util::panic("systemVersion: baseline has no CoolAir version");
}

core::CoolAirConfig
coolairConfigFor(const ExperimentSpec &spec)
{
    core::CoolAirConfig config = core::CoolAirConfig::forVersion(
        systemVersion(spec.system), regimeMenuFor(spec), spec.maxTempC);
    if (spec.bandWidthC)
        config.band.widthC = *spec.bandWidthC;
    if (spec.bandOffsetC)
        config.band.offsetC = *spec.bandOffsetC;
    if (spec.switchPenalty)
        config.utility.switchPenalty = *spec.switchPenalty;
    if (spec.sleepDecayPerEpoch)
        config.compute.sleepDecayPerEpoch = *spec.sleepDecayPerEpoch;
    if (spec.horizonSteps)
        config.horizonSteps = *spec.horizonSteps;
    return config;
}

workload::Trace
traceForSpec(const ExperimentSpec &spec)
{
    workload::TraceGenConfig tg;
    tg.seed = spec.seed;
    workload::Trace trace;
    switch (spec.workload) {
      case WorkloadKind::Facebook:
      case WorkloadKind::FacebookProfile:
        trace = workload::facebookTrace(tg);
        break;
      case WorkloadKind::Nutch:
        trace = workload::nutchTrace(tg);
        break;
      case WorkloadKind::SteadyHalf:
        trace = workload::steadyTrace(0.5, tg);
        break;
    }
    if (systemIsDeferrable(spec.system))
        trace.makeDeferrable(6.0);  // §5.1: 6-hour start deadlines
    return trace;
}

std::unique_ptr<workload::WorkloadModel>
makeWorkload(const ExperimentSpec &spec)
{
    workload::ClusterConfig cc;
    if (spec.workload == WorkloadKind::FacebookProfile)
        return std::make_unique<workload::ProfileWorkload>(
            cc, sharedFacebookProfile());
    return std::make_unique<workload::ClusterSim>(cc, traceForSpec(spec));
}

std::unique_ptr<Controller>
makeController(const ExperimentSpec &spec,
               environment::Forecaster *forecaster)
{
    if (spec.system == SystemId::Baseline) {
        cooling::TksConfig tks = cooling::TksConfig::extendedBaseline();
        tks.setpointC = spec.maxTempC;
        return std::make_unique<BaselineController>(tks);
    }
    return std::make_unique<CoolAirController>(
        coolairConfigFor(spec), bundleFor(spec), forecaster,
        systemName(spec.system));
}

// ---------------------------------------------------------------------------
// Scenario.
// ---------------------------------------------------------------------------

ExperimentResult
Scenario::run()
{
    const bool want_report = !_spec.reportJsonPath.empty();
    std::chrono::steady_clock::time_point t0;
    if (want_report)
        t0 = std::chrono::steady_clock::now();

    {
        obs::Span span("scenario.run");
        switch (_spec.runKind) {
          case RunKind::YearWeekly:
            _engine->runYearWeekly(_spec.weeks);
            break;
          case RunKind::SingleDay:
            _engine->runDay(_spec.day);
            break;
          case RunKind::DayRange:
            _engine->runDayRange(_spec.startDay, _spec.endDay);
            break;
        }
    }

    ExperimentResult result;
    result.system = _metrics->summary();
    result.outside = _metrics->outsideSummary();

    // Everything below runs after the simulation finished, so it can't
    // perturb sim results; with obs off and no report requested it is
    // skipped entirely.
    if (obs::enabled() || want_report) {
        obs::StatsRegistry local;
        collectStats(local);
        if (obs::enabled())
            obs::registry().merge(local);
        if (want_report) {
            // Report-only extras (the result store's counters) fold in
            // after the global merge, so their owner can publish them
            // to obs::registry() itself without double counting.
            for (const auto &source : _reportStatsSources)
                source(local);
            double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
            writeReport(result, local, wall);
        }
    }

    if (!_spec.traceJsonPath.empty()) {
        std::ofstream os(_spec.traceJsonPath);
        if (!os)
            throw std::runtime_error(
                "Scenario: cannot open trace JSON path: " +
                _spec.traceJsonPath);
        obs::Tracer::instance().writeJson(os);
    }
    return result;
}

void
Scenario::collectStats(obs::StatsRegistry &reg) const
{
    if (_weather) {
        environment::CachedWeatherProvider::CacheStats cs =
            _weather->cacheStats();
        reg.counter("weather.cache.hits", "grid queries served from memo")
            .add(cs.hits);
        reg.counter("weather.cache.misses", "grid queries that evaluated")
            .add(cs.misses);
        reg.counter("weather.cache.evictions", "day blocks recycled (LRU)")
            .add(cs.evictions);
        reg.counter("weather.cache.passthrough",
                    "off-grid or cache-disabled queries")
            .add(cs.passthrough);
        reg.counter("weather.underlying_evals",
                    "climate-model evaluations actually performed")
            .add(_weather->underlyingEvals());
    }

    _controller->addStats(reg);

    Engine::EngineStats es = _engine->stats();
    reg.counter("engine.steps", "physics steps taken").add(es.steps);
    reg.counter("engine.samples", "collected metric samples")
        .add(es.samples);
    reg.counter("engine.control_epochs", "controller invocations")
        .add(es.controlEpochs);
    reg.counter("engine.regime_transitions", "commanded regime changes")
        .add(es.regimeTransitions);
    reg.counter("engine.ac_minutes",
                "collected simulated minutes in AC mode")
        .add(es.acMinutes);

    const int64_t sample_s =
        std::max<int64_t>(60, int64_t(_spec.physicsStepS));
    reg.counter("metrics.violation_minutes",
                "simulated minutes with max inlet above the desired max")
        .add(_metrics->violationSamples() * sample_s / 60);
}

obs::RunReport
makeRunReport(const ExperimentSpec &spec, const ExperimentResult &result,
              double wall_seconds, double sim_seconds)
{
    obs::RunReport report;
    report.specText = formatSpec(spec);
    report.seed = spec.seed;
    report.wallSeconds = wall_seconds;
    report.simSeconds = sim_seconds;

    const Summary &s = result.system;
    report.metrics = {
        {"avg_violation_c", s.avgViolationC},
        {"avg_worst_daily_range_c", s.avgWorstDailyRangeC},
        {"min_worst_daily_range_c", s.minWorstDailyRangeC},
        {"max_worst_daily_range_c", s.maxWorstDailyRangeC},
        {"pue", s.pue},
        {"it_kwh", s.itKwh},
        {"cooling_kwh", s.coolingKwh},
        {"humidity_violation_frac", s.humidityViolationFrac},
        {"rate_violation_frac", s.rateViolationFrac},
        {"avg_max_inlet_c", s.avgMaxInletC},
        {"days", double(s.days)},
    };
    return report;
}

void
Scenario::writeReport(const ExperimentResult &result,
                      const obs::StatsRegistry &stats,
                      double wall_seconds) const
{
    // Exact simulated span, warm-ups included: every physics step
    // advances the clock by one step.
    obs::RunReport report = makeRunReport(
        _spec, result, wall_seconds,
        double(_engine->stats().steps) * _spec.physicsStepS);

    std::ofstream os(_spec.reportJsonPath);
    if (!os)
        throw std::runtime_error("Scenario: cannot open report JSON path: " +
                                 _spec.reportJsonPath);
    obs::writeRunReport(os, report, stats);
}

void
Scenario::addTraceSink(TraceSink sink)
{
    _sinks.push_back(std::move(sink));
    installFanout();
}

void
Scenario::installFanout()
{
    if (_sinks.empty())
        return;
    if (_sinks.size() == 1) {
        _engine->setTraceSink(_sinks.front());
        return;
    }
    // The engine takes one sink; fan out to all registered ones.  The
    // lambda captures `this`, which is stable: scenarios live on the
    // heap behind unique_ptr.
    _engine->setTraceSink([this](const TraceRow &row) {
        for (const TraceSink &sink : _sinks)
            sink(row);
    });
}

// ---------------------------------------------------------------------------
// ScenarioBuilder.
// ---------------------------------------------------------------------------

ScenarioBuilder::ScenarioBuilder(ExperimentSpec spec)
    : _spec(std::move(spec))
{
}

ScenarioBuilder &
ScenarioBuilder::withController(std::unique_ptr<Controller> controller)
{
    _controller = std::move(controller);
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::withMetricsConfig(const MetricsConfig &config)
{
    _hasMetricsConfig = true;
    _metricsConfig = config;
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::withTraceSink(TraceSink sink)
{
    _sinks.push_back(std::move(sink));
    return *this;
}

ScenarioBuilder &
ScenarioBuilder::withReportStatsSource(
    std::function<void(obs::StatsRegistry &)> source)
{
    _reportStatsSources.push_back(std::move(source));
    return *this;
}

std::unique_ptr<Scenario>
ScenarioBuilder::build()
{
    if (_spec.physicsStepS <= 0.0)
        throw std::invalid_argument(
            "ExperimentSpec: physics step must be positive");
    if (_spec.runKind == RunKind::YearWeekly && _spec.weeks <= 0)
        throw std::invalid_argument("ExperimentSpec: weeks must be positive");
    if (_spec.runKind == RunKind::DayRange && _spec.endDay <= _spec.startDay)
        throw std::invalid_argument(
            "ExperimentSpec: day range must be non-empty");

    auto scenario = std::unique_ptr<Scenario>(new Scenario());
    scenario->_spec = _spec;
    scenario->_reportStatsSources = std::move(_reportStatsSources);

    // A trace export request turns the process-wide tracer on for the
    // whole run (spans recorded by any component from here on).
    if (!_spec.traceJsonPath.empty())
        obs::Tracer::instance().setEnabled(true);

    // Assembly order mirrors the original runYearExperiment exactly.
    plant::PlantConfig pc = plantConfigFor(_spec);
    scenario->_plant = std::make_unique<plant::Plant>(pc, _spec.seed);

    scenario->_climate = std::make_unique<environment::Climate>(
        _spec.location.makeClimate(_spec.seed));

    // The cache memoizes exact samples on the day-grid shared by the
    // engine loop and the forecaster's hourly queries; a physics step
    // with no integral grid falls back to the raw climate.
    int64_t grid = environment::weatherCacheGridStepS(_spec.physicsStepS);
    if (_spec.weatherCache && grid > 0)
        scenario->_weather =
            std::make_unique<environment::CachedWeatherProvider>(
                *scenario->_climate, grid);

    scenario->_forecaster = std::make_unique<environment::Forecaster>(
        scenario->weather(), _spec.forecastError, _spec.seed);

    scenario->_workload = makeWorkload(_spec);

    scenario->_controller =
        _controller ? std::move(_controller)
                    : makeController(_spec, scenario->_forecaster.get());

    MetricsConfig mc;
    if (_hasMetricsConfig)
        mc = _metricsConfig;
    else
        mc.maxTempC = _spec.maxTempC;
    scenario->_metrics = std::make_unique<MetricsCollector>(mc, pc.numPods);

    EngineConfig ec;
    ec.physicsStepS = _spec.physicsStepS;
    ec.sampleIntervalS = std::max<int64_t>(60, int64_t(_spec.physicsStepS));
    scenario->_engine = std::make_unique<Engine>(
        *scenario->_plant, *scenario->_workload, *scenario->_controller,
        scenario->weather(), ec);
    scenario->_engine->setMetrics(scenario->_metrics.get());

    scenario->_sinks = std::move(_sinks);
    if (!_spec.traceCsvPath.empty()) {
        scenario->_csv =
            std::make_unique<std::ofstream>(_spec.traceCsvPath);
        if (!*scenario->_csv)
            throw std::runtime_error("Scenario: cannot open trace CSV path: " +
                                     _spec.traceCsvPath);
        writeTraceCsvHeader(*scenario->_csv);
        std::ofstream *csv = scenario->_csv.get();
        scenario->_sinks.push_back(
            [csv](const TraceRow &row) { writeTraceCsvRow(*csv, row); });
    }
    scenario->installFanout();

    return scenario;
}

// ---------------------------------------------------------------------------
// Experiment entry points.
// ---------------------------------------------------------------------------

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    // A cache-enabled spec consults the persistent result store first.
    // This standalone path owns its store for the call, so it publishes
    // the store's counters globally itself; sweeps go through
    // ExperimentRunner, which shares stores across jobs and publishes
    // once at the end.
    if (resultCacheUsable(spec)) {
        store::ResultStore st = openResultStore(spec.cacheDirPath);
        ExperimentResult result = runExperimentCached(spec, st);
        if (obs::enabled())
            st.addStats(obs::registry());
        return result;
    }
    // batch= routes through the lane-batched engine (a one-lane batch
    // here; sweeps group lanes in ExperimentRunner).  Opt-in only: the
    // batched path carries a tolerance contract, not bit-identity.
    if (spec.batch > 0)
        return runBatchedExperiment(spec);
    return ScenarioBuilder(spec).build()->run();
}

ExperimentResult
runYearExperiment(const ExperimentSpec &spec)
{
    ExperimentSpec year = spec;
    year.runKind = RunKind::YearWeekly;
    return runExperiment(year);
}

// ---------------------------------------------------------------------------
// Real-Sim / Smooth-Sim.
// ---------------------------------------------------------------------------

ModelSimScenario
buildModelSimScenario(const ExperimentSpec &spec)
{
    ModelSimScenario ms;
    ms.spec = spec;

    ms.climate = std::make_unique<environment::Climate>(
        spec.location.makeClimate(spec.seed));
    ms.forecaster = std::make_unique<environment::Forecaster>(
        *ms.climate, spec.forecastError, spec.seed);

    ms.plant = std::make_unique<ModelPlant>(&bundleFor(spec).model,
                                            plantConfigFor(spec));
    ms.workload = makeWorkload(spec);
    ms.controller = makeController(spec, ms.forecaster.get());

    MetricsConfig mc;
    mc.maxTempC = spec.maxTempC;
    ms.metrics = std::make_unique<MetricsCollector>(
        mc, plantConfigFor(spec).numPods);

    ms.runner = std::make_unique<ModelSimRunner>(*ms.plant, *ms.workload,
                                                 *ms.controller, *ms.climate);
    ms.runner->setMetrics(ms.metrics.get());
    return ms;
}

} // namespace sim
} // namespace coolair
