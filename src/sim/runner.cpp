#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <thread>

#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "sim/batch_engine.hpp"
#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"
#include "store/result_store.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"

namespace coolair {
namespace sim {

bool
SweepOutcome::ok(size_t index) const
{
    for (const auto &failure : failures)
        if (failure.index == index)
            return false;
    return true;
}

size_t
SweepOutcome::cacheHits() const
{
    size_t hits = 0;
    for (uint8_t served : fromCache)
        hits += served;
    return hits;
}

ExperimentRunner::ExperimentRunner(const RunnerConfig &config)
    : _config(config), _threads(resolveThreads(config.threads))
{
}

int
ExperimentRunner::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    // Strict: COOLAIR_THREADS=8x must not silently run 8 threads; a
    // malformed or negative value warns and falls back to auto (0).
    int n = util::envInt("COOLAIR_THREADS", 0, 0, 4096);
    if (n > 0)
        return n;
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? int(hw) : 1;
}

uint64_t
ExperimentRunner::deriveSeed(uint64_t root_seed, size_t index,
                             const std::string &name)
{
    util::Rng stream(root_seed, name + "#" + std::to_string(index));
    return stream.next();
}

std::vector<TaskFailure>
ExperimentRunner::forEach(size_t count,
                          const std::function<void(size_t)> &fn) const
{
    std::vector<TaskFailure> failures;
    if (count == 0)
        return failures;

    const size_t workers = std::min(size_t(_threads), count);
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::vector<std::vector<TaskFailure>> per_worker(workers);

    const auto sweep_start = std::chrono::steady_clock::now();

    auto work = [&](size_t slot) {
        // One trace track per worker, so the exported trace shows the
        // sweep's real parallel structure.
        obs::setThreadTrack(int(slot));
        obs::Tracer &tracer = obs::Tracer::instance();
        if (tracer.enabled())
            tracer.nameTrack(int(slot), "worker " + std::to_string(slot));

        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;

            const bool timing = obs::enabled() || tracer.enabled();
            std::chrono::steady_clock::time_point job_start;
            int64_t ts_us = 0;
            if (timing) {
                job_start = std::chrono::steady_clock::now();
                ts_us = tracer.nowUs();
            }

            bool failed = false;
            try {
                fn(i);
            } catch (const std::exception &e) {
                failed = true;
                per_worker[slot].push_back({i, e.what()});
            } catch (...) {
                failed = true;
                per_worker[slot].push_back({i, "unknown exception"});
            }

            if (timing) {
                const auto job_end = std::chrono::steady_clock::now();
                if (tracer.enabled())
                    tracer.recordComplete(
                        _config.progressLabel + " #" + std::to_string(i),
                        "runner", ts_us, tracer.nowUs() - ts_us, int(slot),
                        obs::currentTraceId());
                if (obs::enabled()) {
                    obs::StatsRegistry &reg = obs::registry();
                    reg.counter("runner.jobs", "jobs completed").inc();
                    if (failed)
                        reg.counter("runner.job_failures",
                                    "jobs that threw")
                            .inc();
                    reg.histogram("runner.job_seconds",
                                  "per-job wall time [s]", obs::kWallClock)
                        .record(std::chrono::duration<double>(job_end -
                                                              job_start)
                                    .count());
                    reg.histogram(
                           "runner.queue_wait_seconds",
                           "delay from sweep start to job start [s]",
                           obs::kWallClock)
                        .record(std::chrono::duration<double>(job_start -
                                                              sweep_start)
                                    .count());
                }
            }

            size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (_config.progress &&
                (finished % std::max<size_t>(1, _config.progressEvery) == 0 ||
                 finished == count)) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - sweep_start)
                        .count();
                const double rate =
                    elapsed > 0.0 ? double(finished) / elapsed : 0.0;
                const double eta =
                    rate > 0.0 ? double(count - finished) / rate : 0.0;
                char line[192];
                std::snprintf(line, sizeof(line),
                              "%zu/%zu %s done (%.1f jobs/s, ETA %.0f s)",
                              finished, count, _config.progressLabel.c_str(),
                              rate, eta);
                util::inform(line);
            }
        }
    };

    if (workers <= 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t t = 0; t < workers; ++t)
            pool.emplace_back(work, t);
        for (auto &thread : pool)
            thread.join();
    }

    for (auto &list : per_worker)
        failures.insert(failures.end(),
                        std::make_move_iterator(list.begin()),
                        std::make_move_iterator(list.end()));
    std::sort(failures.begin(), failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    return failures;
}

SweepOutcome
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    SweepOutcome outcome;
    outcome.results.resize(specs.size());
    outcome.fromCache.assign(specs.size(), 0);

    // One open store per distinct cache directory; a std::map keeps the
    // sweep-end stats publication deterministic.  The stores outlive
    // both forEach phases, so workers share them concurrently (they are
    // internally thread-safe: atomic counters, atomic-rename writes).
    std::map<std::string, std::unique_ptr<store::ResultStore>> stores;
    std::vector<store::ResultStore *> spec_store(specs.size(), nullptr);
    std::vector<std::string> ids(specs.size());
    std::vector<size_t> cacheable;
    for (size_t i = 0; i < specs.size(); ++i) {
        if (!resultCacheUsable(specs[i]))
            continue;
        auto [it, inserted] = stores.try_emplace(specs[i].cacheDirPath);
        if (inserted)
            it->second = std::make_unique<store::ResultStore>(
                specs[i].cacheDirPath, kResultCacheSalt,
                kResultFormatVersion);
        spec_store[i] = it->second.get();
        ids[i] = resultCacheId(specs[i]);
        cacheable.push_back(i);
    }

    // Phase 1: look every cacheable spec up before dispatch, on the
    // pool (lookups are IO-bound and independent).  A hit fills the
    // spec's result slot — and still writes its RunReport — so phase 2
    // only runs the misses.
    std::vector<TaskFailure> lookup_failures;
    if (!cacheable.empty()) {
        const auto lookup_start = std::chrono::steady_clock::now();
        lookup_failures = forEach(cacheable.size(), [&](size_t k) {
            const size_t i = cacheable[k];
            ExperimentResult result;
            if (!cacheLookup(*spec_store[i], ids[i], result))
                return;
            outcome.results[i] = result;
            outcome.fromCache[i] = 1;
            if (!specs[i].reportJsonPath.empty()) {
                const double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - lookup_start)
                        .count();
                writeCacheHitReport(specs[i], result, *spec_store[i], wall);
            }
        });
    }
    for (auto &failure : lookup_failures) {
        const size_t i = cacheable[failure.index];
        // A served result whose report could not be written is still a
        // failed spec; clear the provenance tag so callers do not treat
        // it as a good hit.
        outcome.fromCache[i] = 0;
        outcome.failures.push_back({i, specs[i], std::move(failure.message)});
    }

    // Phase 2: run the pending specs (cache misses plus everything not
    // cacheable).  First-touch of the lazy shared state must happen
    // before the pool starts: C++ magic statics serialize
    // initialization, which would park every worker behind one thread's
    // learning campaign.  Only the pending specs are prewarmed — a
    // fully warm sweep loads nothing.
    std::vector<size_t> pending;
    pending.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        if (!outcome.fromCache[i] && outcome.ok(i))
            pending.push_back(i);

    if (!pending.empty()) {
        std::vector<ExperimentSpec> pending_specs;
        pending_specs.reserve(pending.size());
        for (size_t i : pending)
            pending_specs.push_back(specs[i]);
        prewarmSharedState(pending_specs);

        // Batch-enabled pending specs (batch > 0) are grouped by shape
        // and chunked into lane batches of up to spec.batch; everything
        // else stays a one-spec job.  The job list is derived only from
        // spec order and shape keys (std::map iteration), never from
        // scheduling, so outcomes stay deterministic.
        std::vector<size_t> scalar_jobs;
        std::map<std::string, std::vector<size_t>> by_shape;
        for (size_t i : pending) {
            if (specs[i].batch > 0)
                by_shape[batchShapeKey(specs[i])].push_back(i);
            else
                scalar_jobs.push_back(i);
        }
        std::vector<std::vector<size_t>> chunks;
        for (auto &[shape, members] : by_shape) {
            const size_t width = size_t(specs[members.front()].batch);
            for (size_t at = 0; at < members.size(); at += width)
                chunks.emplace_back(
                    members.begin() + at,
                    members.begin() +
                        std::min(at + width, members.size()));
        }

        // Per-chunk lane failures: each vector is written only by the
        // one job that owns the chunk, merged (and index-sorted) after
        // the pool drains.  A lane that fails never blocks its batch —
        // the engine completes the remaining lanes — and every failure
        // is reported at the lane's original spec index.
        std::vector<std::vector<ExperimentFailure>> chunk_failures(
            chunks.size());

        const size_t total = scalar_jobs.size() + chunks.size();
        std::vector<TaskFailure> run_failures =
            forEach(total, [&](size_t j) {
                if (j < scalar_jobs.size()) {
                    const size_t i = scalar_jobs[j];
                    if (spec_store[i])
                        outcome.results[i] =
                            runAndStore(specs[i], *spec_store[i], ids[i]);
                    else
                        outcome.results[i] = runExperiment(specs[i]);
                    return;
                }
                const size_t c = j - scalar_jobs.size();
                const std::vector<size_t> &chunk = chunks[c];
                std::vector<ExperimentSpec> lane_specs;
                lane_specs.reserve(chunk.size());
                for (size_t i : chunk)
                    lane_specs.push_back(specs[i]);
                std::vector<LaneResult> lanes = runBatchedGroup(
                    lane_specs, specs[chunk.front()].batch);
                for (size_t l = 0; l < chunk.size(); ++l) {
                    const size_t i = chunk[l];
                    if (!lanes[l].ok) {
                        chunk_failures[c].push_back(
                            {i, specs[i], std::move(lanes[l].error)});
                        continue;
                    }
                    try {
                        if (spec_store[i])
                            spec_store[i]->store(
                                ids[i], formatResult(lanes[l].result));
                        outcome.results[i] = std::move(lanes[l].result);
                    } catch (const std::exception &e) {
                        chunk_failures[c].push_back({i, specs[i], e.what()});
                    }
                }
            });
        for (auto &failure : run_failures) {
            if (failure.index < scalar_jobs.size()) {
                const size_t i = scalar_jobs[failure.index];
                outcome.failures.push_back(
                    {i, specs[i], std::move(failure.message)});
                continue;
            }
            // A whole-batch failure (unrunnable shared shape) fails
            // every lane of the chunk at its own index.
            for (size_t i : chunks[failure.index - scalar_jobs.size()])
                outcome.failures.push_back({i, specs[i], failure.message});
        }
        for (auto &list : chunk_failures)
            outcome.failures.insert(outcome.failures.end(),
                                    std::make_move_iterator(list.begin()),
                                    std::make_move_iterator(list.end()));
    }

    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const ExperimentFailure &a, const ExperimentFailure &b) {
                  return a.index < b.index;
              });

    // Publish each store's counters globally exactly once, at sweep
    // end (per-run reports got them via report-stats sources, which
    // never touch the global registry).
    if (obs::enabled())
        for (auto &[dir, st] : stores)
            st->addStats(obs::registry());

    return outcome;
}

JobPool::JobPool(int threads)
{
    const int n = ExperimentRunner::resolveThreads(threads);
    _workers.reserve(size_t(n));
    for (int t = 0; t < n; ++t)
        _workers.emplace_back(&JobPool::workerLoop, this, t);
}

JobPool::~JobPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _wake.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

void
JobPool::submit(std::function<void()> job)
{
    // Carry the submitter's trace context onto the worker: spans the
    // job records (serve.run, the engine's) join the request's trace.
    const uint64_t traceId = obs::currentTraceId();
    if (traceId != 0) {
        job = [traceId, inner = std::move(job)] {
            obs::TraceContextScope scope(traceId);
            inner();
        };
    }
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(job));
    }
    _wake.notify_one();
}

void
JobPool::drain()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _queue.empty() && _running == 0; });
}

size_t
JobPool::pending() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _queue.size() + _running;
}

void
JobPool::workerLoop(int slot)
{
    // A named track per pool worker, so exported request traces show
    // which worker ran the job (the counterpart of forEach's
    // "worker N" tracks for sweeps).
    obs::Tracer::instance().nameTrack(obs::threadTrack(),
                                      "pool worker " + std::to_string(slot));
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock,
                       [this] { return _stopping || !_queue.empty(); });
            if (_queue.empty()) {
                if (_stopping)
                    return;
                continue;
            }
            job = std::move(_queue.front());
            _queue.pop_front();
            ++_running;
        }

        try {
            job();
        } catch (const std::exception &e) {
            util::warn(std::string("JobPool: job threw: ") + e.what());
        } catch (...) {
            util::warn("JobPool: job threw an unknown exception");
        }

        {
            std::lock_guard<std::mutex> lock(_mutex);
            --_running;
            if (_queue.empty() && _running == 0)
                _idle.notify_all();
        }
    }
}

} // namespace sim
} // namespace coolair
