#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>

#include "util/rng.hpp"

namespace coolair {
namespace sim {

bool
SweepOutcome::ok(size_t index) const
{
    for (const auto &failure : failures)
        if (failure.index == index)
            return false;
    return true;
}

ExperimentRunner::ExperimentRunner(const RunnerConfig &config)
    : _config(config), _threads(resolveThreads(config.threads))
{
}

int
ExperimentRunner::resolveThreads(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("COOLAIR_THREADS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? int(hw) : 1;
}

uint64_t
ExperimentRunner::deriveSeed(uint64_t root_seed, size_t index,
                             const std::string &name)
{
    util::Rng stream(root_seed, name + "#" + std::to_string(index));
    return stream.next();
}

std::vector<TaskFailure>
ExperimentRunner::forEach(size_t count,
                          const std::function<void(size_t)> &fn) const
{
    std::vector<TaskFailure> failures;
    if (count == 0)
        return failures;

    const size_t workers = std::min(size_t(_threads), count);
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::vector<std::vector<TaskFailure>> per_worker(workers);

    auto work = [&](size_t slot) {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (const std::exception &e) {
                per_worker[slot].push_back({i, e.what()});
            } catch (...) {
                per_worker[slot].push_back({i, "unknown exception"});
            }
            size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (_config.progress &&
                (finished % std::max<size_t>(1, _config.progressEvery) == 0 ||
                 finished == count))
                std::fprintf(stderr, "  %zu/%zu %s done\n", finished, count,
                             _config.progressLabel.c_str());
        }
    };

    if (workers <= 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t t = 0; t < workers; ++t)
            pool.emplace_back(work, t);
        for (auto &thread : pool)
            thread.join();
    }

    for (auto &list : per_worker)
        failures.insert(failures.end(),
                        std::make_move_iterator(list.begin()),
                        std::make_move_iterator(list.end()));
    std::sort(failures.begin(), failures.end(),
              [](const TaskFailure &a, const TaskFailure &b) {
                  return a.index < b.index;
              });
    return failures;
}

SweepOutcome
ExperimentRunner::run(const std::vector<ExperimentSpec> &specs) const
{
    // First-touch of the lazy shared state must happen before the pool
    // starts: C++ magic statics serialize initialization, which would
    // park every worker behind one thread's learning campaign.
    prewarmSharedState(specs);

    SweepOutcome outcome;
    outcome.results.resize(specs.size());
    std::vector<TaskFailure> failures = forEach(specs.size(), [&](size_t i) {
        outcome.results[i] = runExperiment(specs[i]);
    });

    outcome.failures.reserve(failures.size());
    for (auto &failure : failures)
        outcome.failures.push_back(
            {failure.index, specs[failure.index], std::move(failure.message)});
    return outcome;
}

} // namespace sim
} // namespace coolair
