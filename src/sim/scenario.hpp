#ifndef COOLAIR_SIM_SCENARIO_HPP
#define COOLAIR_SIM_SCENARIO_HPP

/**
 * @file
 * The scenario layer: one assembly path from a declarative
 * ExperimentSpec to a fully wired (climate, plant, workload,
 * controller, metrics, engine) stack.
 *
 * Every harness — the year experiments, the figure benches, the
 * examples, the multizone driver — goes through the factories or the
 * ScenarioBuilder here, so an experiment is described by *data* (a
 * spec, serializable via sim/spec_io.hpp) rather than by bespoke
 * construction code.  Harnesses that need a nonstandard piece (a fixed
 * regime, an extra trace sink, custom metrics) override just that piece
 * on the builder and inherit everything else.
 */

#include <fstream>
#include <functional>
#include <memory>
#include <vector>

#include "environment/weather_cache.hpp"
#include "obs/report.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/model_plant.hpp"
#include "workload/job.hpp"

namespace coolair {
namespace sim {

// ---------------------------------------------------------------------------
// Component factories: each builds one piece of the stack from a spec.
// ---------------------------------------------------------------------------

/** Plant hardware constants for the spec's style and variant. */
plant::PlantConfig plantConfigFor(const ExperimentSpec &spec);

/** A physics plant seeded per the spec. */
std::unique_ptr<plant::Plant> makePlant(const ExperimentSpec &spec);

/** The regime menu of the spec's installed cooling units. */
cooling::RegimeMenu regimeMenuFor(const ExperimentSpec &spec);

/**
 * The learned bundle a CoolAir controller would use for this spec
 * (the memoized evaporative bundle for that variant, the shared abrupt
 * Parasol bundle otherwise; see sharedBundle()).
 */
const model::LearnedBundle &bundleFor(const ExperimentSpec &spec);

/**
 * The CoolAir version behind a system id.
 * Panics for SystemId::Baseline, which has no CoolAir version.
 */
core::Version systemVersion(SystemId id);

/**
 * The CoolAir configuration for a (non-baseline) spec: the Table 1
 * version preset, with any of the spec's tuning overrides (band width,
 * band offset, switch penalty, sleep decay, horizon) applied on top.
 */
core::CoolAirConfig coolairConfigFor(const ExperimentSpec &spec);

/**
 * The day-long task trace for the spec's workload kind, seeded per the
 * spec and made deferrable when the system defers jobs (§5.1: 6-hour
 * start deadlines).
 */
workload::Trace traceForSpec(const ExperimentSpec &spec);

/** The workload model (task-level cluster sim or utilization profile). */
std::unique_ptr<workload::WorkloadModel>
makeWorkload(const ExperimentSpec &spec);

/**
 * The controller for the spec's system: the extended-TKS baseline, or
 * CoolAir configured by coolairConfigFor() on bundleFor()'s bundle.
 * @p forecaster may be null only for the baseline.
 */
std::unique_ptr<Controller>
makeController(const ExperimentSpec &spec,
               environment::Forecaster *forecaster);

// ---------------------------------------------------------------------------
// Scenario: an assembled, runnable experiment.
// ---------------------------------------------------------------------------

/**
 * A fully assembled experiment stack.  Owns every component, so the
 * engine's references stay valid for the scenario's lifetime.  Build
 * one with ScenarioBuilder; run it with run() (which honors
 * spec().runKind), or drive engine() by hand for custom protocols.
 */
class Scenario
{
  public:
    /**
     * Run per spec().runKind and return the summary metrics.
     *
     * Observability hooks fire after the simulation finishes, so they
     * cannot perturb it: component counters are harvested into a local
     * registry (merged into obs::registry() when obs::enabled()), a
     * RunReport is written when spec().reportJsonPath is set, and the
     * buffered trace is exported when spec().traceJsonPath is set.
     */
    ExperimentResult run();

    /**
     * Harvest every component counter (weather cache, controller,
     * engine, metrics) into @p reg.  All values are simulation-
     * deterministic; call at most once per run (counters are lifetime
     * totals, re-harvesting double-counts on merge).
     */
    void collectStats(obs::StatsRegistry &reg) const;

    /** Add a trace sink (fan-out; the CSV sink coexists with these). */
    void addTraceSink(TraceSink sink);

    const ExperimentSpec &spec() const { return _spec; }
    const environment::Climate &climate() const { return *_climate; }

    /**
     * The weather provider the engine and forecaster actually consume:
     * the grid cache when spec().weatherCache is on (and the physics
     * step admits a grid), the raw climate otherwise.
     */
    const environment::WeatherProvider &weather() const
    {
        return _weather ? static_cast<const environment::WeatherProvider &>(
                              *_weather)
                        : *_climate;
    }

    environment::Forecaster &forecaster() { return *_forecaster; }
    plant::Plant &plant() { return *_plant; }
    workload::WorkloadModel &workload() { return *_workload; }
    Controller &controller() { return *_controller; }
    MetricsCollector &metrics() { return *_metrics; }
    Engine &engine() { return *_engine; }

  private:
    friend class ScenarioBuilder;
    Scenario() = default;

    void installFanout();
    void writeReport(const ExperimentResult &result,
                     const obs::StatsRegistry &stats,
                     double wall_seconds) const;

    ExperimentSpec _spec;
    std::vector<std::function<void(obs::StatsRegistry &)>>
        _reportStatsSources;
    std::unique_ptr<environment::Climate> _climate;
    std::unique_ptr<environment::CachedWeatherProvider> _weather;
    std::unique_ptr<environment::Forecaster> _forecaster;
    std::unique_ptr<plant::Plant> _plant;
    std::unique_ptr<workload::WorkloadModel> _workload;
    std::unique_ptr<Controller> _controller;
    std::unique_ptr<MetricsCollector> _metrics;
    std::unique_ptr<Engine> _engine;
    std::unique_ptr<std::ofstream> _csv;
    std::vector<TraceSink> _sinks;
};

/**
 * Assembles a Scenario from a spec, with optional component overrides.
 *
 * ScenarioBuilder(spec).build() reproduces the §5.1 stack exactly;
 * overrides swap one piece while the rest still comes from the spec:
 *
 *     auto scenario = ScenarioBuilder(spec)
 *                         .withController(std::make_unique<
 *                             FixedRegimeController>(regime))
 *                         .build();
 */
class ScenarioBuilder
{
  public:
    explicit ScenarioBuilder(ExperimentSpec spec);

    /** Replace the spec-derived controller. */
    ScenarioBuilder &withController(std::unique_ptr<Controller> controller);

    /** Replace the default metrics configuration. */
    ScenarioBuilder &withMetricsConfig(const MetricsConfig &config);

    /** Add a trace sink to the assembled scenario. */
    ScenarioBuilder &withTraceSink(TraceSink sink);

    /**
     * Add a stats source consulted only when the run writes a RunReport
     * (spec.reportJsonPath): @p source folds extra stats — e.g. the
     * result store's counters — into the report's registry.  Sources do
     * NOT feed obs::registry(); whoever owns the underlying counters
     * publishes them globally exactly once (the runner after a sweep,
     * runExperiment after a standalone run).
     */
    ScenarioBuilder &
    withReportStatsSource(std::function<void(obs::StatsRegistry &)> source);

    /**
     * Assemble the stack.
     * @throws std::invalid_argument for an unrunnable spec (nonpositive
     *         physics step, nonpositive weeks on a year run, empty day
     *         range).
     * @throws std::runtime_error if spec.traceCsvPath cannot be opened.
     */
    std::unique_ptr<Scenario> build();

  private:
    ExperimentSpec _spec;
    std::unique_ptr<Controller> _controller;
    bool _hasMetricsConfig = false;
    MetricsConfig _metricsConfig;
    std::vector<TraceSink> _sinks;
    std::vector<std::function<void(obs::StatsRegistry &)>>
        _reportStatsSources;
};

/**
 * The RunReport skeleton every report writer shares: canonical spec
 * text, seed, timings, and the headline metric block in its canonical
 * order.  The scenario layer uses it for end-of-run reports; the result
 * cache uses it for cache-hit reports.
 */
obs::RunReport makeRunReport(const ExperimentSpec &spec,
                             const ExperimentResult &result,
                             double wall_seconds, double sim_seconds);

// ---------------------------------------------------------------------------
// Real-Sim / Smooth-Sim assembly (the Figure 6/7 validation stack).
// ---------------------------------------------------------------------------

/**
 * A learned-model simulation stack (ModelPlant + ModelSimRunner) built
 * from the same spec as the physics Scenario, for the paper's
 * real-vs-simulation validation.  Members are exposed directly: these
 * studies drive the runner by hand (custom start states, sample hooks).
 */
struct ModelSimScenario
{
    ExperimentSpec spec;
    std::unique_ptr<environment::Climate> climate;
    std::unique_ptr<environment::Forecaster> forecaster;
    std::unique_ptr<ModelPlant> plant;
    std::unique_ptr<workload::WorkloadModel> workload;
    std::unique_ptr<Controller> controller;
    std::unique_ptr<MetricsCollector> metrics;
    std::unique_ptr<ModelSimRunner> runner;
};

/** Build the Real-Sim/Smooth-Sim counterpart of a spec's scenario. */
ModelSimScenario buildModelSimScenario(const ExperimentSpec &spec);

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_SCENARIO_HPP
