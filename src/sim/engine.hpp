#ifndef COOLAIR_SIM_ENGINE_HPP
#define COOLAIR_SIM_ENGINE_HPP

/**
 * @file
 * The co-simulation engine: steps climate -> workload -> plant, invokes
 * the controller on its epoch, and feeds the metrics collector and an
 * optional trace sink.  Year-long studies follow §5.1: simulate the
 * first day of each week, repeating the day-long workload.
 */

#include <functional>
#include <vector>

#include "environment/climate.hpp"
#include "plant/parasol.hpp"
#include "sim/controller.hpp"
#include "sim/metrics.hpp"
#include "workload/model.hpp"

namespace coolair {
namespace sim {

/** Engine stepping configuration. */
struct EngineConfig
{
    /** Physics step [s]. */
    double physicsStepS = 30.0;

    /** Sensor sampling / metrics interval [s]. */
    int64_t sampleIntervalS = 60;

    /** Warm-up run before each measured day [s] (no metrics). */
    int64_t warmupS = 2 * util::kSecondsPerHour;
};

/** One row of a run trace, for CSV dumps and figures. */
struct TraceRow
{
    util::SimTime time;
    double outsideC = 0.0;
    double outsideRhPercent = 0.0;
    double inletMinC = 0.0;
    double inletMaxC = 0.0;
    double hotAisleC = 0.0;
    double coldAisleRhPercent = 0.0;
    cooling::Mode mode = cooling::Mode::Closed;
    double fcFanSpeed = 0.0;
    double compressorSpeed = 0.0;
    double itPowerW = 0.0;
    double coolingPowerW = 0.0;
    double diskMinC = 0.0;
    double diskMaxC = 0.0;
    double dcUtilization = 0.0;
};

/** Callback invoked once per sample interval. */
using TraceSink = std::function<void(const TraceRow &)>;

/**
 * The days of the year sampled by Engine::runYearWeekly(): @p weeks
 * days spread uniformly across the whole year.  For 52 weeks this is
 * exactly the §5.1 first-day-of-each-week protocol; for shorter runs
 * the stride grows so the sample still spans all seasons.
 */
std::vector<int> yearSampleDays(int weeks);

/** Drives one (plant, workload, controller) assembly. */
class Engine
{
  public:
    Engine(plant::Plant &plant, workload::WorkloadModel &workload,
           Controller &controller, const environment::WeatherProvider &climate,
           const EngineConfig &config = {});

    /** Attach a metrics collector (not owned). */
    void setMetrics(MetricsCollector *metrics) { _metrics = metrics; }

    /** Attach a trace sink. */
    void setTraceSink(TraceSink sink) { _sink = std::move(sink); }

    /**
     * Run the closed loop over [start, end).  @p collect enables
     * metrics/trace output (disabled during warm-up).
     */
    void runRange(util::SimTime start, util::SimTime end, bool collect);

    /**
     * Measure one calendar day (with warm-up): initialize the plant near
     * steady state, run the warm-up window, then the measured day.
     */
    void runDay(int day_of_year);

    /**
     * Measure the continuous day span [@p start_day, @p end_day) as one
     * run: initialize near steady state, warm up before the first day,
     * then collect across the whole range (multi-day studies like
     * Figure 1's two-day trace).
     */
    void runDayRange(int start_day, int end_day);

    /**
     * §5.1 year protocol: measure @p weeks days spread uniformly across
     * the year (the first day of each week at 52; see yearSampleDays()).
     */
    void runYearWeekly(int weeks = 52);

    /** Lifetime stepping counters (plain increments; harvested once per
        run by the scenario). */
    struct EngineStats
    {
        int64_t steps = 0;              ///< physics steps taken
        int64_t samples = 0;            ///< collected metric samples
        int64_t controlEpochs = 0;      ///< controller invocations
        int64_t regimeTransitions = 0;  ///< commanded regime changes
        int64_t acMinutes = 0;          ///< collected minutes in AC mode
    };

    EngineStats stats() const
    {
        EngineStats s = _stats;
        // _stats tallies AC *samples*; scale by the sample interval so
        // the harvested figure is wall-of-simulation minutes.
        s.acMinutes = _acSamples * _config.sampleIntervalS / 60;
        return s;
    }

  private:
    void sample(util::SimTime now, bool collect,
                const environment::WeatherSample &outside);

    plant::Plant &_plant;
    workload::WorkloadModel &_workload;
    Controller &_controller;
    const environment::WeatherProvider &_climate;
    EngineConfig _config;

    MetricsCollector *_metrics = nullptr;
    TraceSink _sink;

    cooling::Regime _command;
    int64_t _nextControlS = 0;

    EngineStats _stats;
    int64_t _acSamples = 0;

    // Reused across every step/sample so steady-state stepping performs
    // no heap allocation (buffers reach capacity within one sample).
    plant::SensorReadings _sensors;
    plant::PodLoad _load;

    /** workload.loadVersion() at the last _load refresh; the per-step
        copy is skipped while it is unchanged (0 = no tracking: always
        copy).  ~0 forces the first copy. */
    uint64_t _loadVersion = ~uint64_t(0);
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_ENGINE_HPP
