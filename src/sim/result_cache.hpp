#ifndef COOLAIR_SIM_RESULT_CACHE_HPP
#define COOLAIR_SIM_RESULT_CACHE_HPP

/**
 * @file
 * Experiment-level view of the persistent result store (src/store/):
 * key derivation from a spec, payload (de)serialization via
 * spec_io::formatResult, and the cached run entry points the runner
 * and experiment_cli share.
 *
 * Cache identity.  A spec's identity is the canonical formatSpec text
 * of a *normalized* copy: the output paths (trace_csv, report_json,
 * trace_json) and the cache keys themselves (cache_dir, result_cache)
 * are cleared first, so two specs that differ only in where they write
 * side outputs share one cached result.  PR 1 made results a pure
 * function of the spec (seeds derive from spec identity, never from
 * scheduling), which is exactly what makes this sound.
 *
 * Versioning.  Entries are salted with kResultCacheSalt (bump it when
 * simulation semantics change — any change that alters metrics for an
 * unchanged spec) and keyed on spec_io::kResultFormatVersion (bumped
 * when the serialized result shape changes).  Either bump makes every
 * old entry stale: detected on lookup, dropped, and re-run.
 *
 * Specs that dump traces (trace_csv / trace_json) are never cached:
 * serving their metrics from disk would silently skip producing the
 * trace they exist for.  A report_json spec *is* cached — on a hit the
 * report is still written, carrying the store's stats and a
 * result_source=cache annotation instead of engine counters.
 */

#include <string>

#include "sim/experiment.hpp"
#include "store/result_store.hpp"

namespace coolair {
namespace sim {

/**
 * Simulation-semantics salt of the result store.  Bump whenever a code
 * change alters the metrics an unchanged spec produces (physics,
 * controllers, workloads, metric definitions...), so stale cached
 * results are re-run instead of served.
 */
inline constexpr const char kResultCacheSalt[] = "coolair-sim-1";

/** True when @p spec asks for caching and its results are servable
    from disk (cache_dir set, result_cache on, no trace outputs). */
bool resultCacheUsable(const ExperimentSpec &spec);

/** Canonical cache identity text of @p spec (normalized formatSpec). */
std::string resultCacheId(const ExperimentSpec &spec);

/** Open the experiment result store at @p dir (sim salt + version). */
store::ResultStore openResultStore(const std::string &dir);

/**
 * Look up @p id and parse the payload.  A payload that fails to parse
 * is reclassified as corrupt, discarded, and reported as a miss.
 * Thread-safe; never throws.
 */
bool cacheLookup(store::ResultStore &st, const std::string &id,
                 ExperimentResult &out);

/**
 * Run @p spec (uncached) and store the result under @p id.  The store's
 * stats are wired into any RunReport the run writes.  The result is
 * stored only after the run succeeds, so a throwing job never poisons
 * the store.
 */
ExperimentResult runAndStore(const ExperimentSpec &spec,
                             store::ResultStore &st, const std::string &id);

/**
 * Write the RunReport for a cache-served result to spec.reportJsonPath:
 * the cached metrics, the store's stats, and a result_source=cache
 * annotation in place of engine counters.
 * @throws std::runtime_error if the report path cannot be opened.
 */
void writeCacheHitReport(const ExperimentSpec &spec,
                         const ExperimentResult &result,
                         store::ResultStore &st, double wall_seconds);

/**
 * The full cached run: lookup, else run + store.  On a hit with
 * spec.reportJsonPath set, a RunReport is still written (metrics from
 * the cached result, stats from the store, result_source=cache).
 * @p from_cache (optional) reports whether the result was served.
 */
ExperimentResult runExperimentCached(const ExperimentSpec &spec,
                                     store::ResultStore &st,
                                     bool *from_cache = nullptr);

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_RESULT_CACHE_HPP
