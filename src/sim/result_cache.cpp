#include "sim/result_cache.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>

#include "obs/report.hpp"
#include "sim/batch_engine.hpp"
#include "sim/scenario.hpp"
#include "sim/spec_io.hpp"

namespace coolair {
namespace sim {

bool
resultCacheUsable(const ExperimentSpec &spec)
{
    if (!spec.resultCache || spec.cacheDirPath.empty())
        return false;
    // A trace dump is the run's real output; a cached metrics hit would
    // silently skip producing it.  Reports are fine: hits write one.
    return spec.traceCsvPath.empty() && spec.traceJsonPath.empty();
}

std::string
resultCacheId(const ExperimentSpec &spec)
{
    ExperimentSpec canonical = spec;
    canonical.resultCache = true;
    canonical.cacheDirPath.clear();
    canonical.traceCsvPath.clear();
    canonical.reportJsonPath.clear();
    canonical.traceJsonPath.clear();
    return formatSpec(canonical);
}

store::ResultStore
openResultStore(const std::string &dir)
{
    return store::ResultStore(dir, kResultCacheSalt, kResultFormatVersion);
}

bool
cacheLookup(store::ResultStore &st, const std::string &id,
            ExperimentResult &out)
{
    std::string payload;
    if (!st.lookup(id, payload))
        return false;
    try {
        out = parseResult(payload);
    } catch (const std::invalid_argument &) {
        // CRC-valid but unparseable: a result-format drift that forgot
        // to bump kResultFormatVersion.  Drop the entry and re-run.
        st.discard(id);
        st.noteInvalidPayload();
        return false;
    }
    return true;
}

ExperimentResult
runAndStore(const ExperimentSpec &spec, store::ResultStore &st,
            const std::string &id)
{
    ExperimentResult result;
    if (spec.batch > 0) {
        // Batched one-lane run; the batch engine writes its own
        // RunReport, so the store's counters are published globally by
        // the caller instead of folded into the report.
        result = runBatchedExperiment(spec);
    } else {
        // Wire the store's counters into any RunReport this run writes
        // (they land after the report's global merge, so the sweep-level
        // publication in the runner stays the single global source).
        auto scenario =
            ScenarioBuilder(spec)
                .withReportStatsSource(
                    [&st](obs::StatsRegistry &reg) { st.addStats(reg); })
                .build();
        result = scenario->run();
    }
    // Store only after the run succeeded: a throwing job reports its
    // failure through the runner and never poisons the store.
    st.store(id, formatResult(result));
    return result;
}

void
writeCacheHitReport(const ExperimentSpec &spec, const ExperimentResult &result,
                    store::ResultStore &st, double wall_seconds)
{
    // The run was skipped, so the report carries the cached metrics,
    // the store's stats, and an explicit provenance annotation instead
    // of engine counters.
    obs::RunReport report =
        makeRunReport(spec, result, wall_seconds, /*sim_seconds=*/0.0);
    report.annotations.push_back({"result_source", "cache"});
    obs::StatsRegistry stats;
    st.addStats(stats);
    std::ofstream os(spec.reportJsonPath);
    if (!os)
        throw std::runtime_error(
            "result cache: cannot open report JSON path: " +
            spec.reportJsonPath);
    obs::writeRunReport(os, report, stats);
}

ExperimentResult
runExperimentCached(const ExperimentSpec &spec, store::ResultStore &st,
                    bool *from_cache)
{
    const std::string id = resultCacheId(spec);

    const auto t0 = std::chrono::steady_clock::now();
    ExperimentResult result;
    if (cacheLookup(st, id, result)) {
        if (from_cache)
            *from_cache = true;
        if (!spec.reportJsonPath.empty()) {
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            writeCacheHitReport(spec, result, st, wall);
        }
        return result;
    }

    if (from_cache)
        *from_cache = false;
    return runAndStore(spec, st, id);
}

} // namespace sim
} // namespace coolair
