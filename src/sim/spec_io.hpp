#ifndef COOLAIR_SIM_SPEC_IO_HPP
#define COOLAIR_SIM_SPEC_IO_HPP

/**
 * @file
 * Human-readable serialization of ExperimentSpec: a `key = value` text
 * form with a strict round-trip guarantee,
 *
 *     parseSpec(formatSpec(spec)) == spec
 *
 * so any experiment can be stored in a file, diffed, and replayed from
 * examples/experiment_cli.  Parsing is strict: unknown keys and
 * malformed values throw std::invalid_argument naming the offending
 * key (and, when parsing multi-line text, the 1-based line number), so
 * a typo'd spec file fails loudly instead of silently running the
 * default experiment.
 *
 * The same module serializes ExperimentResult (formatResult /
 * parseResult) with the identical exactness guarantee; the persistent
 * result store (src/store/, sim/result_cache.hpp) persists results in
 * this form, so cached sweeps are byte-identical to fresh ones.
 *
 * Lines are `key = value` (spaces optional); blank lines and full-line
 * `#` comments are ignored.  Locations serialize as the `site` shortcut
 * when they exactly match one of the five named sites, and as explicit
 * `location.*` / `climate.*` keys otherwise.
 */

#include <string>

#include "sim/experiment.hpp"

namespace coolair {
namespace sim {

/** Render a spec as spec-file text (ends with a newline). */
std::string formatSpec(const ExperimentSpec &spec);

/**
 * Parse spec-file text into a spec, starting from the defaults.
 * @throws std::invalid_argument on unknown keys or malformed values.
 */
ExperimentSpec parseSpec(const std::string &text);

/**
 * Apply spec-file text on top of an existing spec (later keys win).
 * @throws std::invalid_argument on unknown keys or malformed values.
 */
void applySpecText(ExperimentSpec &spec, const std::string &text);

/**
 * Apply one `key=value` assignment (the experiment_cli override form).
 * @throws std::invalid_argument on unknown keys or malformed values.
 */
void applySpecAssignment(ExperimentSpec &spec, const std::string &assignment);

/**
 * Version of the result text form below.  Bump whenever formatResult's
 * shape changes (a field added, removed, or renamed): the result store
 * keys entries on this version, so old entries turn stale instead of
 * failing to parse.
 */
inline constexpr int kResultFormatVersion = 1;

/**
 * Render an ExperimentResult as `key = value` text (ends with a
 * newline).  Values use %.17g, so parseResult(formatResult(r)) == r
 * bit for bit — the round-trip guarantee the result store relies on.
 */
std::string formatResult(const ExperimentResult &result);

/**
 * Parse formatResult() text.  Strict: the version header and every
 * field must be present, unknown keys throw.
 * @throws std::invalid_argument on any malformed or incomplete text.
 */
ExperimentResult parseResult(const std::string &text);

// Spec-file key for each enumerator (the inverse of parsing; exhaustive).
const char *systemKey(SystemId id);
const char *workloadKey(WorkloadKind kind);
const char *variantKey(PlantVariant variant);
const char *styleKey(cooling::ActuatorStyle style);
const char *runKindKey(RunKind kind);
const char *siteKey(environment::NamedSite site);

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_SPEC_IO_HPP
