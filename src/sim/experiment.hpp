#ifndef COOLAIR_SIM_EXPERIMENT_HPP
#define COOLAIR_SIM_EXPERIMENT_HPP

/**
 * @file
 * Canned experiment orchestration reproducing the paper's evaluation
 * protocol (§5.1): pick a location and a system (the extended-TKS
 * baseline or a CoolAir version), run the first day of each week for a
 * year on the chosen plant, and report the Figure 8/9/10 metrics.
 *
 * The learned model bundle is expensive to produce and identical across
 * experiments, so sharedBundle() memoizes one (learned on the abrupt
 * Parasol plant; smooth-plant runs *extrapolate* it, exactly as
 * Smooth-Sim does in §5.1).
 */

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cooling/actuators.hpp"
#include "environment/forecast.hpp"
#include "environment/location.hpp"
#include "model/learner.hpp"
#include "sim/metrics.hpp"
#include "workload/job.hpp"
#include "workload/profile.hpp"

namespace coolair {
namespace sim {

/** The systems compared in the evaluation. */
enum class SystemId
{
    Baseline,
    Temperature,
    Variation,
    Energy,
    AllNd,
    AllDef,
    VarLowRecirc,
    VarHighRecirc,
    EnergyDef
};

/** Number of SystemId enumerators (keep in sync with the enum). */
inline constexpr int kSystemIdCount = 9;

/** All systems, in Table 1 order (for CLIs and exhaustiveness tests). */
const std::array<SystemId, kSystemIdCount> &allSystemIds();

/** Display name matching the paper's figures. */
const char *systemName(SystemId id);

/** True for systems that defer jobs (need deferrable traces). */
bool systemIsDeferrable(SystemId id);

/** Which plant hardware variant an experiment runs on. */
enum class PlantVariant
{
    Standard,     ///< Per spec.style (abrupt Parasol or smooth units).
    Evaporative,  ///< Smooth units + adiabatic pre-cooler.
    Chiller       ///< Smooth units + chilled-water backup loop.
};

/** Number of PlantVariant enumerators (keep in sync with the enum). */
inline constexpr int kPlantVariantCount = 3;

/** Workload selection for an experiment. */
enum class WorkloadKind
{
    Facebook,         ///< SWIM-Facebook-like day trace (task-level sim).
    Nutch,            ///< Nutch-like day trace (task-level sim).
    FacebookProfile,  ///< Facebook as a fast utilization profile.
    SteadyHalf        ///< Constant 50 % load (tests, Figure 1).
};

/** Number of WorkloadKind enumerators (keep in sync with the enum). */
inline constexpr int kWorkloadKindCount = 4;

/** What span of simulated time an experiment covers. */
enum class RunKind
{
    YearWeekly,  ///< §5.1 protocol: `weeks` sampled days across a year.
    SingleDay,   ///< One measured calendar day (`day`).
    DayRange     ///< Continuous days [`startDay`, `endDay`).
};

/** Number of RunKind enumerators (keep in sync with the enum). */
inline constexpr int kRunKindCount = 3;

/**
 * Everything needed to run one experiment — the declarative description
 * the scenario layer (sim/scenario.hpp) assembles and runs.  A spec
 * round-trips through the text form in sim/spec_io.hpp, so any
 * experiment can be stored, diffed, and replayed from a config string.
 */
struct ExperimentSpec
{
    environment::Location location;
    SystemId system = SystemId::Baseline;
    cooling::ActuatorStyle style = cooling::ActuatorStyle::Smooth;
    PlantVariant variant = PlantVariant::Standard;
    WorkloadKind workload = WorkloadKind::Facebook;

    /** The operator's desired maximum temperature [°C]. */
    double maxTempC = 30.0;

    /** Forecast error injection (§5.2 forecast-accuracy study). */
    environment::ForecastErrorModel forecastError;

    /** What span of simulated time to run. */
    RunKind runKind = RunKind::YearWeekly;

    /** Weeks simulated for YearWeekly (52 = the full §5.1 protocol). */
    int weeks = 52;

    /** Day of year [0, 365) for SingleDay. */
    int day = 186;

    /** First day (inclusive) of a DayRange run. */
    int startDay = 0;

    /** One past the last day of a DayRange run. */
    int endDay = 7;

    /** Physics step [s] (the world sweep uses a coarser step). */
    double physicsStepS = 30.0;

    uint64_t seed = 7;

    /**
     * Memoize weather evaluation on the day-grid shared by the engine
     * and the forecaster (environment/weather_cache.hpp).  Exact — the
     * cached provider returns bit-identical samples — so this is on by
     * default; turn it off to A/B against direct climate evaluation.
     */
    bool weatherCache = true;

    /**
     * Consult (and fill) the persistent result store under cacheDirPath
     * before running.  Only effective when cacheDirPath is set; turn
     * off to force a fresh run into an existing cache directory.
     */
    bool resultCache = true;

    /**
     * When non-empty, the directory of the persistent content-addressed
     * result store (src/store/): identical specs are served from disk
     * instead of re-simulated.  Excluded from the cache identity, as
     * are the output paths below (see sim/result_cache.hpp).
     */
    std::string cacheDirPath;

    /** When non-empty, the scenario dumps its trace as CSV to this path. */
    std::string traceCsvPath;

    /** When non-empty, write a RunReport JSON manifest here (spec echo,
        seed, wall/sim time, all stats the run touched). */
    std::string reportJsonPath;

    /** When non-empty, export the Chrome trace-event JSON here (and
        enable the tracer for this run). */
    std::string traceJsonPath;

    /**
     * Lane width of the batched (SoA lockstep) execution path: 0 runs
     * the scalar engine (the exactness oracle), N > 0 opts into
     * sim/batch_engine.hpp with batches of up to N lanes.  Batched
     * results match the scalar oracle within the tolerance documented
     * in DESIGN.md §10, not bit-exactly, so batched and scalar specs
     * never share a result-cache identity (the key is emitted only
     * when non-zero).
     */
    int batch = 0;

    /**
     * Tuning overrides for CoolAir systems (the bench_ablation knobs).
     * Unset means "use the Table 1 version preset".
     */
    std::optional<double> bandWidthC;
    std::optional<double> bandOffsetC;
    std::optional<double> switchPenalty;
    std::optional<double> sleepDecayPerEpoch;
    std::optional<int> horizonSteps;

    friend bool operator==(const ExperimentSpec &,
                           const ExperimentSpec &) = default;
};

/** Year-experiment outputs. */
struct ExperimentResult
{
    Summary system;    ///< Inlet-temperature metrics of the run.
    Summary outside;   ///< Outside-temperature ranges for comparison.

    friend bool operator==(const ExperimentResult &,
                           const ExperimentResult &) = default;
};

/**
 * The memoized learned bundle (model + recirculation rank), produced
 * once per process from the abrupt Parasol plant.
 */
const model::LearnedBundle &sharedBundle();

/**
 * The memoized bundle for the evaporative-cooler plant (includes
 * FcEvap regime models).
 */
const model::LearnedBundle &sharedEvaporativeBundle();

/** The memoized Facebook utilization profile (for the world sweep). */
const workload::UtilizationProfile &sharedFacebookProfile();

/**
 * Force initialization of the lazy shared state the given specs will
 * touch (learned bundles, the utilization profile).  Call before
 * fanning specs out over worker threads so first-touch learning cannot
 * serialize the pool (magic-static initialization takes a lock).
 */
void prewarmSharedState(const std::vector<ExperimentSpec> &specs);

/**
 * Run one experiment, honoring spec.runKind (year, single day, or day
 * range).  Assembles the stack through the scenario layer
 * (sim/scenario.hpp).
 *
 * @throws std::invalid_argument for an unrunnable spec (nonpositive
 *         weeks or physics step, empty day range), so sweep drivers can
 *         report the failing spec instead of aborting the process.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec);

/**
 * Run one year-long experiment (the §5.1 protocol) regardless of
 * spec.runKind.  Equivalent to runExperiment with runKind forced to
 * YearWeekly; kept as the historical entry point of the figure benches.
 *
 * @throws std::invalid_argument for an unrunnable spec (nonpositive
 *         weeks or physics step).
 */
ExperimentResult runYearExperiment(const ExperimentSpec &spec);

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_EXPERIMENT_HPP
