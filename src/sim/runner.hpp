#ifndef COOLAIR_SIM_RUNNER_HPP
#define COOLAIR_SIM_RUNNER_HPP

/**
 * @file
 * Parallel experiment runner for sweep-shaped workloads (the Figures
 * 12/13 world sweep, the figure grids, the ablations): a fixed-size
 * worker pool pulls ExperimentSpecs off a shared queue and runs them
 * concurrently.
 *
 * Design rules that keep parallel runs bit-identical to serial ones:
 *
 *  - every experiment's randomness derives only from its spec (use
 *    deriveSeed() to give each spec an independent stream keyed on the
 *    spec's identity, never on scheduling order);
 *  - results come back indexed by spec order, so callers reduce them
 *    serially (via util::RunningStats::merge / add) in a deterministic
 *    order no matter which worker ran which spec;
 *  - the lazy shared state (learned bundles, the Facebook utilization
 *    profile) is pre-warmed before the pool starts, so first-touch
 *    learning cannot serialize the workers.
 *
 * A worker exception is captured with the failing spec and reported in
 * the outcome instead of terminating the process; the remaining jobs
 * keep running.
 *
 * Sweeps are incremental when specs carry a cache_dir: the runner looks
 * every cache-enabled spec up in the persistent result store *before*
 * dispatch (concurrently, on the pool), only runs the misses, and
 * stores each fresh result as its job completes.  Jobs are tagged
 * hit/miss in the outcome (SweepOutcome::fromCache), results are
 * byte-identical warm vs. cold (spec_io's exact result round trip), and
 * a failing job is reported without writing anything to the store.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace coolair {
namespace sim {

/** Runner knobs. */
struct RunnerConfig
{
    /**
     * Worker-thread count; 0 means auto: the COOLAIR_THREADS environment
     * variable if set to a positive integer, else hardware_concurrency().
     */
    int threads = 0;

    /**
     * Emit progress lines (completed count, jobs/s throughput, ETA)
     * while jobs complete.  Lines go through util::Logger at Info
     * level, so the process must run with the level at Info or lower
     * (setLevel or COOLAIR_LOG_LEVEL=info) to see them.
     */
    bool progress = false;

    /** Report every this-many completed jobs (and at the end). */
    size_t progressEvery = 100;

    /** Noun used in progress lines. */
    std::string progressLabel = "experiments";
};

/** One captured worker failure from the generic forEach() API. */
struct TaskFailure
{
    size_t index = 0;
    std::string message;
};

/** A failed experiment, carrying the spec that caused it. */
struct ExperimentFailure
{
    size_t index = 0;
    ExperimentSpec spec;
    std::string message;
};

/**
 * Results of one sweep.  results[i] corresponds to specs[i] regardless
 * of scheduling; entries whose spec failed are default-constructed and
 * listed in failures (sorted by index).
 */
struct SweepOutcome
{
    std::vector<ExperimentResult> results;
    std::vector<ExperimentFailure> failures;

    /**
     * Per-spec provenance: 1 when results[i] was served from the
     * persistent result store, 0 when the experiment ran (or failed).
     * Sized like results.
     */
    std::vector<uint8_t> fromCache;

    /** True when every spec completed. */
    bool allOk() const { return failures.empty(); }

    /** True when spec @p index completed. */
    bool ok(size_t index) const;

    /** Number of specs served from the result store. */
    size_t cacheHits() const;
};

/** The worker pool.  Stateless between calls; cheap to construct. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const RunnerConfig &config = {});

    /** The thread count run() will use (after env resolution). */
    int threads() const { return _threads; }

    /**
     * Resolve a requested thread count: a positive @p requested wins;
     * otherwise COOLAIR_THREADS (if a positive integer), otherwise
     * hardware_concurrency(), never less than 1.
     */
    static int resolveThreads(int requested);

    /**
     * Derive an independent per-experiment seed by hash-mixing the root
     * seed, the spec's index, and an optional name (Rng fork-style).
     * Depends only on the arguments — never on scheduling — so parallel
     * sweeps reproduce serial ones bit for bit.
     */
    static uint64_t deriveSeed(uint64_t root_seed, size_t index,
                               const std::string &name = std::string());

    /**
     * Run every spec on the pool.  Pre-warms the shared lazy state the
     * specs need, captures per-spec exceptions, and returns results in
     * spec order.
     */
    SweepOutcome run(const std::vector<ExperimentSpec> &specs) const;

    /**
     * Generic parallel-for over [0, count): the pool invokes @p fn for
     * each index exactly once.  Exceptions thrown by @p fn are captured
     * per index (sorted by index on return) and do not stop the other
     * jobs.  @p fn must synchronize any shared mutable state itself;
     * writing to distinct elements of a pre-sized vector is safe.
     */
    std::vector<TaskFailure>
    forEach(size_t count, const std::function<void(size_t)> &fn) const;

  private:
    RunnerConfig _config;
    int _threads;
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_RUNNER_HPP
