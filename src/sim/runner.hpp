#ifndef COOLAIR_SIM_RUNNER_HPP
#define COOLAIR_SIM_RUNNER_HPP

/**
 * @file
 * Parallel experiment runner for sweep-shaped workloads (the Figures
 * 12/13 world sweep, the figure grids, the ablations): a fixed-size
 * worker pool pulls ExperimentSpecs off a shared queue and runs them
 * concurrently.
 *
 * Design rules that keep parallel runs bit-identical to serial ones:
 *
 *  - every experiment's randomness derives only from its spec (use
 *    deriveSeed() to give each spec an independent stream keyed on the
 *    spec's identity, never on scheduling order);
 *  - results come back indexed by spec order, so callers reduce them
 *    serially (via util::RunningStats::merge / add) in a deterministic
 *    order no matter which worker ran which spec;
 *  - the lazy shared state (learned bundles, the Facebook utilization
 *    profile) is pre-warmed before the pool starts, so first-touch
 *    learning cannot serialize the workers.
 *
 * A worker exception is captured with the failing spec and reported in
 * the outcome instead of terminating the process; the remaining jobs
 * keep running.
 *
 * Sweeps are incremental when specs carry a cache_dir: the runner looks
 * every cache-enabled spec up in the persistent result store *before*
 * dispatch (concurrently, on the pool), only runs the misses, and
 * stores each fresh result as its job completes.  Jobs are tagged
 * hit/miss in the outcome (SweepOutcome::fromCache), results are
 * byte-identical warm vs. cold (spec_io's exact result round trip), and
 * a failing job is reported without writing anything to the store.
 *
 * Specs with batch > 0 opt into the lane-batched engine: pending specs
 * are grouped by batchShapeKey (deterministically, never by
 * scheduling), chunked into lane batches of up to spec.batch, and each
 * chunk runs as one pool job through runBatchedGroup.  Results and
 * failures still land at each spec's original index — a failing lane
 * neither reorders nor drops the others, which run to completion.
 */

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hpp"

namespace coolair {
namespace sim {

/** Runner knobs. */
struct RunnerConfig
{
    /**
     * Worker-thread count; 0 means auto: the COOLAIR_THREADS environment
     * variable if set to a positive integer, else hardware_concurrency().
     */
    int threads = 0;

    /**
     * Emit progress lines (completed count, jobs/s throughput, ETA)
     * while jobs complete.  Lines go through util::Logger at Info
     * level, so the process must run with the level at Info or lower
     * (setLevel or COOLAIR_LOG_LEVEL=info) to see them.
     */
    bool progress = false;

    /** Report every this-many completed jobs (and at the end). */
    size_t progressEvery = 100;

    /** Noun used in progress lines. */
    std::string progressLabel = "experiments";
};

/** One captured worker failure from the generic forEach() API. */
struct TaskFailure
{
    size_t index = 0;
    std::string message;
};

/** A failed experiment, carrying the spec that caused it. */
struct ExperimentFailure
{
    size_t index = 0;
    ExperimentSpec spec;
    std::string message;
};

/**
 * Results of one sweep.  results[i] corresponds to specs[i] regardless
 * of scheduling; entries whose spec failed are default-constructed and
 * listed in failures (sorted by index).
 */
struct SweepOutcome
{
    std::vector<ExperimentResult> results;
    std::vector<ExperimentFailure> failures;

    /**
     * Per-spec provenance: 1 when results[i] was served from the
     * persistent result store, 0 when the experiment ran (or failed).
     * Sized like results.
     */
    std::vector<uint8_t> fromCache;

    /** True when every spec completed. */
    bool allOk() const { return failures.empty(); }

    /** True when spec @p index completed. */
    bool ok(size_t index) const;

    /** Number of specs served from the result store. */
    size_t cacheHits() const;
};

/** The worker pool.  Stateless between calls; cheap to construct. */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(const RunnerConfig &config = {});

    /** The thread count run() will use (after env resolution). */
    int threads() const { return _threads; }

    /**
     * Resolve a requested thread count: a positive @p requested wins;
     * otherwise COOLAIR_THREADS (if a positive integer), otherwise
     * hardware_concurrency(), never less than 1.
     */
    static int resolveThreads(int requested);

    /**
     * Derive an independent per-experiment seed by hash-mixing the root
     * seed, the spec's index, and an optional name (Rng fork-style).
     * Depends only on the arguments — never on scheduling — so parallel
     * sweeps reproduce serial ones bit for bit.
     */
    static uint64_t deriveSeed(uint64_t root_seed, size_t index,
                               const std::string &name = std::string());

    /**
     * Run every spec on the pool.  Pre-warms the shared lazy state the
     * specs need, captures per-spec exceptions, and returns results in
     * spec order.
     */
    SweepOutcome run(const std::vector<ExperimentSpec> &specs) const;

    /**
     * Generic parallel-for over [0, count): the pool invokes @p fn for
     * each index exactly once.  Exceptions thrown by @p fn are captured
     * per index (sorted by index on return) and do not stop the other
     * jobs.  @p fn must synchronize any shared mutable state itself;
     * writing to distinct elements of a pre-sized vector is safe.
     */
    std::vector<TaskFailure>
    forEach(size_t count, const std::function<void(size_t)> &fn) const;

  private:
    RunnerConfig _config;
    int _threads;
};

/**
 * A persistent fixed-size worker pool for *asynchronous* single-job
 * submission — the long-lived counterpart of ExperimentRunner::run()'s
 * batch fan-out, built for daemon-shaped callers (the serve layer)
 * that receive work one spec at a time and must not pay thread
 * creation per request.
 *
 * Jobs are plain closures; the pool runs each exactly once, in
 * submission order per worker pickup (FIFO queue).  A job's exception
 * is swallowed after being reported through util::warn — a daemon's
 * pool must survive any single bad job; callers that care capture
 * errors inside the closure (the serve layer records them in its
 * in-flight table).
 *
 * Determinism note: the pool adds no randomness of its own.  Jobs that
 * follow the spec-derived-seed rule (ExperimentRunner::deriveSeed)
 * produce results independent of which worker ran them or in what
 * order — the property the serve layer's byte-identity contract
 * relies on.
 */
class JobPool
{
  public:
    /** Start @p threads workers (0 = ExperimentRunner::resolveThreads
        auto semantics: COOLAIR_THREADS, else hardware concurrency). */
    explicit JobPool(int threads = 0);

    /** Drains the queue (runs every submitted job), then joins. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /** Number of worker threads. */
    int threads() const { return int(_workers.size()); }

    /**
     * Enqueue @p job.  Thread-safe.  Must not be called after the
     * destructor has begun (the serve layer guarantees this by owning
     * the pool as its last member, destroyed first).
     *
     * Trace propagation: the submitter's current obs trace context
     * (obs::currentTraceId) is captured here and re-opened around the
     * job on whichever worker runs it, so spans recorded inside the
     * job correlate with the submitting request's trace.
     */
    void submit(std::function<void()> job);

    /** Block until every job submitted so far has finished running. */
    void drain();

    /**
     * Jobs queued or currently executing.  A snapshot — by the time
     * the caller acts on it more jobs may have arrived or finished —
     * so it is for backlog reporting (HEALTH) and admission control,
     * not for synchronization (use drain() for that).
     */
    size_t pending() const;

  private:
    void workerLoop(int slot);

    mutable std::mutex _mutex;       ///< mutable: pending() is const
    std::condition_variable _wake;   ///< workers wait for jobs/stop
    std::condition_variable _idle;   ///< drain() waits for quiescence
    std::deque<std::function<void()>> _queue;
    size_t _running = 0;             ///< jobs currently executing
    bool _stopping = false;
    std::vector<std::thread> _workers;
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_RUNNER_HPP
