#ifndef COOLAIR_SIM_METRICS_HPP
#define COOLAIR_SIM_METRICS_HPP

/**
 * @file
 * Run metrics matching the paper's evaluation measures:
 *
 *  - average temperature violation above the desired maximum (Fig. 8):
 *    readings at or below the max contribute 0, readings above
 *    contribute (reading - max), averaged over all sensor readings;
 *  - worst daily temperature range (Fig. 9): per day, per sensor
 *    max - min, the worst sensor per day, then the average / min / max
 *    of those worst ranges across days;
 *  - yearly PUE including Parasol's 0.08 power-delivery overhead
 *    (Fig. 10): (IT + cooling + 0.08 x IT) / IT over the whole run;
 *  - humidity-ceiling and change-rate violation fractions;
 *  - cooling energy [kWh] for the §5.2 cost analysis.
 */

#include <vector>

#include "plant/parasol.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace sim {

/** Metric configuration. */
struct MetricsConfig
{
    /** The desired maximum temperature for violations [°C]. */
    double maxTempC = 30.0;

    /** Relative-humidity ceiling [%]. */
    double maxRhPercent = 80.0;

    /** ASHRAE change-rate limit [°C/hour]. */
    double maxRateCPerHour = 20.0;

    /** PUE overhead for power delivery (Parasol: 0.08). */
    double deliveryOverhead = 0.08;
};

/** Aggregated results of one run. */
struct Summary
{
    double avgViolationC = 0.0;        ///< Fig. 8 metric.
    double avgWorstDailyRangeC = 0.0;  ///< Fig. 9 bar.
    double minWorstDailyRangeC = 0.0;  ///< Fig. 9 whisker bottom.
    double maxWorstDailyRangeC = 0.0;  ///< Fig. 9 whisker top.
    double pue = 1.0;                  ///< Fig. 10 metric.
    double itKwh = 0.0;
    double coolingKwh = 0.0;
    double humidityViolationFrac = 0.0;
    double rateViolationFrac = 0.0;
    double avgMaxInletC = 0.0;         ///< Mean of per-reading max inlet.
    size_t days = 0;

    friend bool operator==(const Summary &, const Summary &) = default;
};

/** Streaming collector fed by the engine. */
class MetricsCollector
{
  public:
    MetricsCollector(const MetricsConfig &config, int num_pods);

    /**
     * Record one observation interval.
     *
     * @param now      timestamp of the reading
     * @param sensors  sensor snapshot
     * @param dt_s     seconds this snapshot represents (for energy)
     */
    void record(util::SimTime now, const plant::SensorReadings &sensors,
                double dt_s)
    {
        recordSample(now, sensors, dt_s, nullptr);
    }

    /**
     * record() plus recordOutside() as one pass — the engines' per-
     * sample path, sharing a single day computation and call.
     */
    void record(util::SimTime now, const plant::SensorReadings &sensors,
                double dt_s, double outside_c)
    {
        recordSample(now, sensors, dt_s, &outside_c);
    }

    /** Also track outside temperature ranges (Fig. 9's Outside bars). */
    void recordOutside(util::SimTime now, double outside_c);

    /** Finalize open days and compute the summary. */
    Summary summary() const;

    /** Summary of the outside-temperature ranges. */
    Summary outsideSummary() const;

    /** The configuration in effect. */
    const MetricsConfig &config() const { return _config; }

    /** Samples whose max pod inlet exceeded the desired maximum (the
        numerator of the paper's violation-minutes figure). */
    int64_t violationSamples() const { return _violationSamples; }

  private:
    void recordSample(util::SimTime now,
                      const plant::SensorReadings &sensors, double dt_s,
                      const double *outside_c);

    MetricsConfig _config;
    int _numPods;

    util::DailyRangeTracker _ranges;
    util::DailyRangeTracker _outsideRanges;
    /** Plain sums (means are computed once in summary()): only the
        averages are ever read, and a running Welford accumulator would
        spend a divide per pod per sample on the engine's hot path. */
    double _violationSum = 0.0;
    double _maxInletSum = 0.0;
    double _itJoules = 0.0;
    double _coolingJoules = 0.0;
    size_t _humidityViolations = 0;
    size_t _rateViolations = 0;
    size_t _samples = 0;
    int64_t _violationSamples = 0;

    /** Ring of (time, per-pod temps) for windowed rate measurement. */
    struct RateSample
    {
        int64_t timeS;
        std::vector<double> temps;
    };
    std::vector<RateSample> _rateWindow;

    /** Index of the oldest live entry in _rateWindow.  Expiry advances
        the head instead of erasing (which would shift the whole vector
        every sample); the dead prefix is compacted away once it grows
        past a handful of entries. */
    size_t _rateHead = 0;

    /** Temp buffers recycled from expired rate samples, so the
        per-sample record() path stays allocation-free in steady state. */
    std::vector<std::vector<double>> _rateSpare;

    /** Rate is measured over this window [s] (noise-robust). */
    static constexpr int64_t kRateWindowS = 600;
};

} // namespace sim
} // namespace coolair

#endif // COOLAIR_SIM_METRICS_HPP
