#ifndef COOLAIR_SERVE_SERVER_HPP
#define COOLAIR_SERVE_SERVER_HPP

/**
 * @file
 * The socket transport of coolair_serve: a line-protocol listener
 * (serve/protocol.hpp) on a Unix-domain socket, a localhost TCP port,
 * or both, dispatching into an ExperimentService.
 *
 * Threading model: one accept thread per listener, one thread per
 * connection (connections are long-lived and mostly blocked in
 * service waits; a datacenter-sweep client population is tens of
 * connections, not tens of thousands).  WAIT blocks only its own
 * connection's thread — other clients keep submitting and draining
 * while one waits.
 *
 * Shutdown: a SHUTDOWN request (or stop()) closes the listeners,
 * shuts down every open connection socket to unblock reads, and joins
 * all threads.  waitForShutdown() lets a daemon main() park until a
 * client asks the process to exit.
 */

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace coolair {
namespace serve {

/** Listener configuration; enable at least one of the two sockets. */
struct ServerConfig
{
    /** When non-empty, listen on this Unix-domain socket path (an
        existing stale socket file is replaced). */
    std::string unixPath;

    /** When >= 0, listen on 127.0.0.1:tcpPort (0 = pick an ephemeral
        port, readable from tcpPort() after start()). */
    int tcpPort = -1;
};

/** The line-protocol socket front end of one ExperimentService. */
class LineServer
{
  public:
    /** @p service must outlive the server. */
    LineServer(ExperimentService &service, ServerConfig config);

    /** Calls stop(). */
    ~LineServer();

    LineServer(const LineServer &) = delete;
    LineServer &operator=(const LineServer &) = delete;

    /**
     * Bind the configured sockets and start accepting.
     * @throws std::runtime_error when no listener is configured or a
     *         bind fails.
     */
    void start();

    /** Close listeners and connections, join every thread.  Idempotent. */
    void stop();

    /** Resolved TCP port (after start(); -1 when TCP is off). */
    int tcpPort() const { return _tcpPort; }

    /** The Unix socket path ("" when off). */
    const std::string &unixPath() const { return _config.unixPath; }

    /** Block until a client sends SHUTDOWN (or stop() is called). */
    void waitForShutdown();

  private:
    void acceptLoop(int listen_fd);
    void handleConnection(int fd);
    void closeFd(int fd);

    ExperimentService &_service;
    ServerConfig _config;
    int _tcpPort = -1;

    obs::Counter &_connections;
    obs::Counter &_protocolErrors;

    std::mutex _mutex;
    std::condition_variable _shutdownCv;
    bool _shutdown = false;
    bool _started = false;
    std::vector<int> _listenFds;
    std::set<int> _connFds;
    std::vector<std::thread> _threads;
};

} // namespace serve
} // namespace coolair

#endif // COOLAIR_SERVE_SERVER_HPP
