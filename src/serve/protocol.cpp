#include "serve/protocol.hpp"

#include "util/parse.hpp"

namespace coolair {
namespace serve {

namespace {

std::string
stripCr(const std::string &line)
{
    if (!line.empty() && line.back() == '\r')
        return line.substr(0, line.size() - 1);
    return line;
}

std::string
flattenNewlines(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\n' || c == '\r')
            out += "; ";
        else
            out += c;
    }
    return out;
}

} // anonymous namespace

bool
parseRequest(const std::string &raw, Request &out, std::string &error)
{
    const std::string line = stripCr(raw);
    if (line.empty()) {
        error = "empty request";
        return false;
    }

    const size_t space = line.find(' ');
    const std::string verb = line.substr(0, space);
    std::string arg =
        space == std::string::npos ? std::string() : line.substr(space + 1);
    // Trim the argument; spec text and tickets never need edge spaces.
    const size_t b = arg.find_first_not_of(" \t");
    const size_t e = arg.find_last_not_of(" \t");
    arg = b == std::string::npos ? std::string()
                                 : arg.substr(b, e - b + 1);

    auto noArg = [&](Verb v) {
        if (!arg.empty()) {
            error = verb + " takes no argument";
            return false;
        }
        out = {v, ""};
        return true;
    };
    auto withArg = [&](Verb v, const char *what) {
        if (arg.empty()) {
            error = verb + " needs " + std::string(what);
            return false;
        }
        out = {v, arg};
        return true;
    };

    if (verb == "PING")
        return noArg(Verb::Ping);
    if (verb == "STATS")
        return noArg(Verb::Stats);
    if (verb == "METRICS")
        return noArg(Verb::Metrics);
    if (verb == "HEALTH")
        return noArg(Verb::Health);
    if (verb == "SHUTDOWN")
        return noArg(Verb::Shutdown);
    if (verb == "SUBMIT")
        return withArg(Verb::Submit, "a spec line");
    if (verb == "RUN")
        return withArg(Verb::Run, "a spec line");
    if (verb == "WAIT")
        return withArg(Verb::Wait, "a ticket");
    if (verb == "SERIES")
        return withArg(Verb::Series, "a stat name");
    if (verb == "TRACE")
        return withArg(Verb::Trace, "a ticket");

    error = "unknown verb '" + verb + "'";
    return false;
}

std::string
specTextFromArg(const std::string &arg)
{
    std::string text;
    text.reserve(arg.size() + 1);
    for (char c : arg)
        text += c == ';' ? '\n' : c;
    text += '\n';
    return text;
}

std::string
frameOk(uint64_t ticket)
{
    return "OK " + std::to_string(ticket) + "\n";
}

std::string
frameErr(const std::string &message)
{
    return "ERR " + flattenNewlines(message) + "\n";
}

std::string
framePayload(const std::string &tag, const std::string &payload)
{
    return tag + " " + std::to_string(payload.size()) + "\n" + payload;
}

bool
parsePayloadHeader(const std::string &raw, std::string &tag,
                   uint64_t &bytes, std::string &error)
{
    const std::string line = stripCr(raw);
    const size_t space = line.find(' ');
    if (space == std::string::npos || space == 0) {
        error = "malformed frame header '" + line + "'";
        return false;
    }
    tag = line.substr(0, space);
    if (!util::parseSize(line.substr(space + 1), bytes, kMaxFrameBytes)) {
        error = "bad frame size in '" + line + "'";
        return false;
    }
    return true;
}

} // namespace serve
} // namespace coolair
