#ifndef COOLAIR_SERVE_SERVICE_HPP
#define COOLAIR_SERVE_SERVICE_HPP

/**
 * @file
 * The experiment-serving core: a long-lived, socket-free service that
 * accepts spec text, answers warm requests straight from the
 * persistent ResultStore, and schedules misses onto a persistent
 * sim::JobPool with *dedup-in-flight* — concurrent submissions of the
 * same canonical spec (sim::resultCacheId identity) share one
 * simulation run.
 *
 * Determinism contract: a served RESULT payload is the
 * spec_io::formatResult text of the experiment, so it is byte-identical
 * to what the same spec produces through experiment_cli or an
 * ExperimentRunner sweep — warm (store hit), deduped, or fresh.  The
 * service adds caching and sharing, never a different answer.
 *
 * Request lifecycle:
 *
 *   submit(spec text)
 *     -> parse (strict spec_io; errors return to the caller, the
 *        daemon never dies on bad input)
 *     -> normalize away output paths and cache keys (serving is
 *        metrics-only), derive the canonical id
 *     -> in-flight table hit?   share that job   (serve.dedup_hits)
 *     -> store hit?             complete at once (serve.store_hits)
 *     -> else                   schedule a run   (serve.runs)
 *   wait(ticket) blocks until the shared job completes and consumes
 *   the ticket (each submission gets its own ticket; the job is
 *   shared, the ticket is not).
 *
 * Observability: the service owns an obs::StatsRegistry (always on —
 * no global enable needed) holding serve.requests, serve.parse_errors,
 * serve.store_hits, serve.dedup_hits, serve.runs, serve.run_failures
 * and a bucketed serve.latency_seconds histogram; statsText() merges in
 * the store's counters for the STATS endpoint, metricsText() renders
 * the same merged registry as Prometheus text for METRICS, and a
 * TimeSeriesSampler snapshots it on a fixed interval into bounded
 * per-stat rings for SERIES.
 *
 * Tracing: with ServiceConfig::traceDepth > 0, every submission gets a
 * process-unique trace id, carried by a thread-local TraceContextScope
 * from the connection thread through the JobPool onto the worker and
 * down into the engine — so all spans of one request correlate.  As a
 * request completes, its events are extracted from the global Tracer
 * and retained (as finished Chrome-trace JSON) in a ring of the last
 * traceDepth requests, retrievable by any of the request's tickets via
 * traceJson().  Requests slower than slowRequestSeconds additionally
 * emit one structured log line with per-stage span timings.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "sim/runner.hpp"
#include "store/result_store.hpp"

namespace coolair {
namespace serve {

/** Service knobs. */
struct ServiceConfig
{
    /**
     * Directory of the persistent result store; empty disables the
     * store (every distinct spec simulates, dedup-in-flight still
     * applies).  The same directory an experiment_cli --cache-dir or a
     * cached sweep uses — the daemon serves their entries and vice
     * versa.
     */
    std::string cacheDir;

    /** Worker threads (0 = COOLAIR_THREADS / hardware auto). */
    int threads = 0;

    /**
     * Test hook: when set, every scheduled run calls this on its
     * worker thread before simulating.  Lets tests hold jobs open to
     * pin down dedup-in-flight windows deterministically.
     */
    std::function<void()> onJobStart;

    /**
     * Retain the last this-many completed request traces for the
     * TRACE verb (and enable the global Tracer for the service's
     * lifetime).  0 disables request tracing entirely.
     */
    int traceDepth = 0;

    /**
     * Log one structured line (with per-stage span timings when
     * tracing is on) for any request slower than this many seconds of
     * submit-to-done wall time.  <= 0 disables the slow-request log.
     */
    double slowRequestSeconds = 0.0;

    /** Seconds between time-series samples (SERIES verb); <= 0
        disables the background sampler. */
    double sampleIntervalSeconds = 1.0;

    /** Points retained per sampled series. */
    size_t seriesCapacity = 600;
};

/** The serving core (transport-agnostic; see serve/server.hpp). */
class ExperimentService
{
  public:
    explicit ExperimentService(ServiceConfig config = {});

    /** Drains in-flight jobs (JobPool destructor) before returning. */
    ~ExperimentService();

    ExperimentService(const ExperimentService &) = delete;
    ExperimentService &operator=(const ExperimentService &) = delete;

    /** Outcome of a submit: a ticket to wait on, or a parse error. */
    struct Submitted
    {
        bool ok = false;
        uint64_t ticket = 0;
        std::string error;
    };

    /** A completed (or failed) experiment. */
    struct Reply
    {
        bool ok = false;
        std::string payload;  ///< formatResult text when ok.
        std::string error;    ///< failure message when !ok.
    };

    /**
     * Parse @p spec_text (full sim/spec_io semantics) and enqueue it.
     * Never throws on bad input: malformed specs come back as an error
     * Submitted.  Thread-safe.
     */
    Submitted submit(const std::string &spec_text);

    /**
     * Block until @p ticket's job completes and return its payload or
     * failure.  Consumes the ticket: a second wait on the same ticket
     * reports it unknown.  Thread-safe.
     */
    Reply wait(uint64_t ticket);

    /** submit() + wait() in one call. */
    Reply run(const std::string &spec_text);

    /** Deterministically-ordered text dump of serve.* and store.*. */
    std::string statsText() const;

    /**
     * The same merged serve.* / store.* registry as Prometheus text
     * exposition (obs/prometheus.hpp).  @p skipWallClock omits stats
     * whose value depends on wall time or scheduling, leaving output
     * that is byte-identical across thread counts for an identical
     * request sequence.  Snapshots briefly under per-stat locks and
     * renders on the caller's thread — never holds a lock across
     * formatting or socket writes.
     */
    std::string metricsText(bool skipWallClock = false) const;

    /**
     * One-frame liveness summary for the HEALTH verb: `status: OK` (or
     * `status: DEGRADED (<reason>)` when the in-flight backlog exceeds
     * 4x the worker count), uptime, worker/backlog occupancy, and
     * build info.
     */
    std::string healthText() const;

    /**
     * The last @p maxPoints points of sampled series @p name as
     * `<unix-ms> <value>` lines.  False (with @p error) when sampling
     * is off or the series does not exist.
     */
    bool seriesText(const std::string &name, uint64_t maxPoints,
                    std::string &out, std::string &error) const;

    /**
     * The retained Chrome-trace JSON of the completed request that
     * ticket @p ticket attached to.  False (with @p error) when
     * tracing is off, the request is still in flight, or the trace
     * was never retained / already evicted.
     */
    bool traceJson(uint64_t ticket, std::string &out,
                   std::string &error) const;

    /** The background sampler, or nullptr when sampling is disabled.
        Tests drive sampleNow() through this for deterministic rings. */
    obs::TimeSeriesSampler *sampler() { return _sampler.get(); }

    /** The service's live registry (server transports add their own
        serve.connections-style counters here). */
    obs::StatsRegistry &stats() { return _stats; }

    /** The persistent store, or nullptr when cacheDir was empty. */
    store::ResultStore *store() { return _store.get(); }

    /** Worker-pool width (for banners and load drivers). */
    int threads() const { return _pool.threads(); }

  private:
    /** One in-flight (or just-completed) canonical spec. */
    struct Job
    {
        std::string id;  ///< canonical spec text (resultCacheId).
        std::chrono::steady_clock::time_point submitted;
        bool done = false;
        bool ok = false;
        std::string payload;
        std::string error;
        uint64_t traceId = 0;  ///< first submitter's trace context.
        std::vector<uint64_t> tickets;  ///< every attached ticket.
    };
    using JobPtr = std::shared_ptr<Job>;

    /** One retained completed-request trace. */
    struct CompletedTrace
    {
        uint64_t traceId = 0;
        std::vector<uint64_t> tickets;
        std::string json;  ///< finished Chrome-trace document.
    };

    void complete(const JobPtr &job, bool ok, std::string text);
    void runJob(const sim::ExperimentSpec &spec, const JobPtr &job);
    std::vector<obs::StatsRegistry::Entry> mergedSnapshot() const;

    ServiceConfig _config;
    std::unique_ptr<store::ResultStore> _store;

    obs::StatsRegistry _stats;
    obs::Counter &_requests;
    obs::Counter &_parseErrors;
    obs::Counter &_storeHits;
    obs::Counter &_dedupHits;
    obs::Counter &_runs;
    obs::Counter &_runFailures;
    obs::Histogram &_latency;

    std::chrono::steady_clock::time_point _startTime;
    std::atomic<uint64_t> _nextTraceId{1};
    bool _enabledTracer = false;
    std::unique_ptr<obs::TimeSeriesSampler> _sampler;

    mutable std::mutex _mutex;
    std::condition_variable _done;
    std::map<std::string, JobPtr> _inflight;  ///< canonical id -> job
    std::map<uint64_t, JobPtr> _tickets;
    uint64_t _nextTicket = 1;
    std::deque<CompletedTrace> _traces;  ///< last traceDepth requests.

    /** Last member: destroyed (and drained) before the state above. */
    sim::JobPool _pool;
};

} // namespace serve
} // namespace coolair

#endif // COOLAIR_SERVE_SERVICE_HPP
