#ifndef COOLAIR_SERVE_SERVICE_HPP
#define COOLAIR_SERVE_SERVICE_HPP

/**
 * @file
 * The experiment-serving core: a long-lived, socket-free service that
 * accepts spec text, answers warm requests straight from the
 * persistent ResultStore, and schedules misses onto a persistent
 * sim::JobPool with *dedup-in-flight* — concurrent submissions of the
 * same canonical spec (sim::resultCacheId identity) share one
 * simulation run.
 *
 * Determinism contract: a served RESULT payload is the
 * spec_io::formatResult text of the experiment, so it is byte-identical
 * to what the same spec produces through experiment_cli or an
 * ExperimentRunner sweep — warm (store hit), deduped, or fresh.  The
 * service adds caching and sharing, never a different answer.
 *
 * Request lifecycle:
 *
 *   submit(spec text)
 *     -> parse (strict spec_io; errors return to the caller, the
 *        daemon never dies on bad input)
 *     -> normalize away output paths and cache keys (serving is
 *        metrics-only), derive the canonical id
 *     -> in-flight table hit?   share that job   (serve.dedup_hits)
 *     -> store hit?             complete at once (serve.store_hits)
 *     -> else                   schedule a run   (serve.runs)
 *   wait(ticket) blocks until the shared job completes and consumes
 *   the ticket (each submission gets its own ticket; the job is
 *   shared, the ticket is not).
 *
 * Observability: the service owns an obs::StatsRegistry (always on —
 * no global enable needed) holding serve.requests, serve.parse_errors,
 * serve.store_hits, serve.dedup_hits, serve.runs, serve.run_failures
 * and a serve.latency_seconds histogram; statsText() merges in the
 * store's counters for the STATS endpoint.
 */

#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/stats.hpp"
#include "sim/runner.hpp"
#include "store/result_store.hpp"

namespace coolair {
namespace serve {

/** Service knobs. */
struct ServiceConfig
{
    /**
     * Directory of the persistent result store; empty disables the
     * store (every distinct spec simulates, dedup-in-flight still
     * applies).  The same directory an experiment_cli --cache-dir or a
     * cached sweep uses — the daemon serves their entries and vice
     * versa.
     */
    std::string cacheDir;

    /** Worker threads (0 = COOLAIR_THREADS / hardware auto). */
    int threads = 0;

    /**
     * Test hook: when set, every scheduled run calls this on its
     * worker thread before simulating.  Lets tests hold jobs open to
     * pin down dedup-in-flight windows deterministically.
     */
    std::function<void()> onJobStart;
};

/** The serving core (transport-agnostic; see serve/server.hpp). */
class ExperimentService
{
  public:
    explicit ExperimentService(ServiceConfig config = {});

    /** Drains in-flight jobs (JobPool destructor) before returning. */
    ~ExperimentService();

    ExperimentService(const ExperimentService &) = delete;
    ExperimentService &operator=(const ExperimentService &) = delete;

    /** Outcome of a submit: a ticket to wait on, or a parse error. */
    struct Submitted
    {
        bool ok = false;
        uint64_t ticket = 0;
        std::string error;
    };

    /** A completed (or failed) experiment. */
    struct Reply
    {
        bool ok = false;
        std::string payload;  ///< formatResult text when ok.
        std::string error;    ///< failure message when !ok.
    };

    /**
     * Parse @p spec_text (full sim/spec_io semantics) and enqueue it.
     * Never throws on bad input: malformed specs come back as an error
     * Submitted.  Thread-safe.
     */
    Submitted submit(const std::string &spec_text);

    /**
     * Block until @p ticket's job completes and return its payload or
     * failure.  Consumes the ticket: a second wait on the same ticket
     * reports it unknown.  Thread-safe.
     */
    Reply wait(uint64_t ticket);

    /** submit() + wait() in one call. */
    Reply run(const std::string &spec_text);

    /** Deterministically-ordered text dump of serve.* and store.*. */
    std::string statsText() const;

    /** The service's live registry (server transports add their own
        serve.connections-style counters here). */
    obs::StatsRegistry &stats() { return _stats; }

    /** The persistent store, or nullptr when cacheDir was empty. */
    store::ResultStore *store() { return _store.get(); }

    /** Worker-pool width (for banners and load drivers). */
    int threads() const { return _pool.threads(); }

  private:
    /** One in-flight (or just-completed) canonical spec. */
    struct Job
    {
        std::string id;  ///< canonical spec text (resultCacheId).
        std::chrono::steady_clock::time_point submitted;
        bool done = false;
        bool ok = false;
        std::string payload;
        std::string error;
    };
    using JobPtr = std::shared_ptr<Job>;

    void complete(const JobPtr &job, bool ok, std::string text);
    void runJob(const sim::ExperimentSpec &spec, const JobPtr &job);

    ServiceConfig _config;
    std::unique_ptr<store::ResultStore> _store;

    obs::StatsRegistry _stats;
    obs::Counter &_requests;
    obs::Counter &_parseErrors;
    obs::Counter &_storeHits;
    obs::Counter &_dedupHits;
    obs::Counter &_runs;
    obs::Counter &_runFailures;
    obs::Histogram &_latency;

    mutable std::mutex _mutex;
    std::condition_variable _done;
    std::map<std::string, JobPtr> _inflight;  ///< canonical id -> job
    std::map<uint64_t, JobPtr> _tickets;
    uint64_t _nextTicket = 1;

    /** Last member: destroyed (and drained) before the state above. */
    sim::JobPool _pool;
};

} // namespace serve
} // namespace coolair

#endif // COOLAIR_SERVE_SERVICE_HPP
