#ifndef COOLAIR_SERVE_SERVICE_HPP
#define COOLAIR_SERVE_SERVICE_HPP

/**
 * @file
 * The experiment-serving core: a long-lived, socket-free service that
 * accepts spec text, answers warm requests straight from the
 * persistent ResultStore, and schedules misses onto a persistent
 * sim::JobPool with *dedup-in-flight* — concurrent submissions of the
 * same canonical spec (sim::resultCacheId identity) share one
 * simulation run.
 *
 * Determinism contract: a served RESULT payload is the
 * spec_io::formatResult text of the experiment, so it is byte-identical
 * to what the same spec produces through experiment_cli or an
 * ExperimentRunner sweep — warm (store hit), deduped, or fresh.  The
 * service adds caching and sharing, never a different answer.
 *
 * Request lifecycle:
 *
 *   submit(spec text)
 *     -> parse (strict spec_io; errors return to the caller, the
 *        daemon never dies on bad input)
 *     -> normalize away output paths and cache keys (serving is
 *        metrics-only), derive the canonical id
 *     -> in-flight table hit?   share that job   (serve.dedup_hits)
 *     -> backlog at cap?        reject `busy: ...` (serve.rejected_busy)
 *     -> hot-cache hit?         complete at once (serve.hot_hits)
 *     -> store hit?             complete at once (serve.store_hits)
 *     -> batch>0 + coalescing?  park for a lane  (serve.coalesced)
 *     -> else                   schedule a run   (serve.runs)
 *   wait(ticket) blocks until the shared job completes and consumes
 *   the ticket (each submission gets its own ticket; the job is
 *   shared, the ticket is not).
 *
 * Coalescing (ServiceConfig::coalesceLanes >= 2): cold submissions
 * whose spec opts in with batch > 0 are *parked* in a per-shape
 * collection queue (sim::batchShapeKey — every field but location,
 * seed, and output paths) instead of dispatching immediately.  A
 * queue dispatches to sim::runBatchedGroup as one SoA batch either
 * when it fills to coalesceLanes (full dispatch) or when its oldest
 * entry has waited coalesceWaitMs (partial dispatch by the collector
 * thread) — so lane fill rides offered load and latency never stalls
 * past the window.  Per-lane failures resolve only their own request;
 * dedup joiners attach to the parked entry like any in-flight job.
 * Lane results land under each spec's own result-cache id (batched
 * identity — batch=N is part of the id) and honor the DESIGN.md §10
 * tolerance contract; lane results are composition-independent, so a
 * coalesced answer is byte-identical to the same lane set submitted
 * directly as one batch (locked by tests).
 *
 * Hot cache (ServiceConfig::hotCacheBytes > 0): a sharded in-memory
 * byte-capped LRU (store::HotResultCache) in front of the on-disk
 * store.  Every successful completion caches its payload bytes; a
 * repeat submission is answered from RAM without touching disk or
 * re-verifying a CRC (serve.hot_hits / serve.hot_evictions).
 *
 * Admission (ServiceConfig::maxPending > 0): a fresh submission that
 * would push the in-flight table past the cap is rejected with a
 * structured `busy: ...` error (the wire layer renders `ERR busy:`)
 * instead of queueing unboundedly; HEALTH reports DEGRADED while at
 * the cap.  Dedup joins are always admitted — they add no work.
 *
 * Observability: the service owns an obs::StatsRegistry (always on —
 * no global enable needed) holding serve.requests, serve.parse_errors,
 * serve.store_hits, serve.dedup_hits, serve.runs, serve.run_failures
 * and a bucketed serve.latency_seconds histogram; statsText() merges in
 * the store's counters for the STATS endpoint, metricsText() renders
 * the same merged registry as Prometheus text for METRICS, and a
 * TimeSeriesSampler snapshots it on a fixed interval into bounded
 * per-stat rings for SERIES.
 *
 * Tracing: with ServiceConfig::traceDepth > 0, every submission gets a
 * process-unique trace id, carried by a thread-local TraceContextScope
 * from the connection thread through the JobPool onto the worker and
 * down into the engine — so all spans of one request correlate.  As a
 * request completes, its events are extracted from the global Tracer
 * and retained (as finished Chrome-trace JSON) in a ring of the last
 * traceDepth requests, retrievable by any of the request's tickets via
 * traceJson().  Requests slower than slowRequestSeconds additionally
 * emit one structured log line with per-stage span timings.
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "sim/runner.hpp"
#include "store/hot_cache.hpp"
#include "store/result_store.hpp"

namespace coolair {
namespace serve {

/** Service knobs. */
struct ServiceConfig
{
    /**
     * Directory of the persistent result store; empty disables the
     * store (every distinct spec simulates, dedup-in-flight still
     * applies).  The same directory an experiment_cli --cache-dir or a
     * cached sweep uses — the daemon serves their entries and vice
     * versa.
     */
    std::string cacheDir;

    /** Worker threads (0 = COOLAIR_THREADS / hardware auto). */
    int threads = 0;

    /**
     * Test hook: when set, every scheduled run calls this on its
     * worker thread before simulating (once per dispatched batch on
     * the coalesced path).  Lets tests hold jobs open to pin down
     * dedup-in-flight and coalesce windows deterministically.
     */
    std::function<void()> onJobStart;

    /**
     * Test/fault-injection hook: on the coalesced path, called once
     * per lane (with that lane's spec) before the batch runs.  A
     * throwing hook fails *only* that lane — its request resolves
     * with the exception text while the surviving lanes run as a
     * smaller batch.  This is the service-level counterpart of the
     * batch engine's trace-path fault lever (which submit()'s
     * normalization strips away).
     */
    std::function<void(const sim::ExperimentSpec &)> onLaneStart;

    /**
     * Coalescing lane target: >= 2 parks cold batch>0 submissions in
     * per-shape queues and dispatches them to the batched engine as
     * lanes fill (the --coalesce server flag).  0/1 disables
     * coalescing — every cold miss runs immediately.
     */
    int coalesceLanes = 0;

    /** Collection window: a parked queue older than this dispatches
        partially filled rather than waiting for coalesceLanes (the
        --coalesce-wait-ms flag).  <= 0 means dispatch-on-next-tick. */
    double coalesceWaitMs = 5.0;

    /** In-memory hot-result cache budget in bytes; 0 disables the hot
        tier (the --hot-cache-mb flag). */
    size_t hotCacheBytes = 0;

    /** Mutex stripes for the hot cache. */
    int hotCacheShards = 8;

    /**
     * Admission cap: a fresh submission arriving while this many
     * canonical specs are already in flight is rejected with a
     * structured `busy: ...` error (serve.rejected_busy, HEALTH
     * DEGRADED).  0 = unbounded (the --max-pending flag).
     */
    size_t maxPending = 0;

    /**
     * Retain the last this-many completed request traces for the
     * TRACE verb (and enable the global Tracer for the service's
     * lifetime).  0 disables request tracing entirely.
     */
    int traceDepth = 0;

    /**
     * Log one structured line (with per-stage span timings when
     * tracing is on) for any request slower than this many seconds of
     * submit-to-done wall time.  <= 0 disables the slow-request log.
     */
    double slowRequestSeconds = 0.0;

    /** Seconds between time-series samples (SERIES verb); <= 0
        disables the background sampler. */
    double sampleIntervalSeconds = 1.0;

    /** Points retained per sampled series. */
    size_t seriesCapacity = 600;
};

/** The serving core (transport-agnostic; see serve/server.hpp). */
class ExperimentService
{
  public:
    explicit ExperimentService(ServiceConfig config = {});

    /** Drains in-flight jobs (JobPool destructor) before returning. */
    ~ExperimentService();

    ExperimentService(const ExperimentService &) = delete;
    ExperimentService &operator=(const ExperimentService &) = delete;

    /** Outcome of a submit: a ticket to wait on, or a parse error. */
    struct Submitted
    {
        bool ok = false;
        uint64_t ticket = 0;
        std::string error;
    };

    /** A completed (or failed) experiment. */
    struct Reply
    {
        bool ok = false;
        std::string payload;  ///< formatResult text when ok.
        std::string error;    ///< failure message when !ok.
    };

    /**
     * Parse @p spec_text (full sim/spec_io semantics) and enqueue it.
     * Never throws on bad input: malformed specs come back as an error
     * Submitted.  Thread-safe.
     */
    Submitted submit(const std::string &spec_text);

    /**
     * Block until @p ticket's job completes and return its payload or
     * failure.  Consumes the ticket: a second wait on the same ticket
     * reports it unknown.  Thread-safe.
     */
    Reply wait(uint64_t ticket);

    /** submit() + wait() in one call. */
    Reply run(const std::string &spec_text);

    /** Deterministically-ordered text dump of serve.* and store.*. */
    std::string statsText() const;

    /**
     * The same merged serve.* / store.* registry as Prometheus text
     * exposition (obs/prometheus.hpp).  @p skipWallClock omits stats
     * whose value depends on wall time or scheduling, leaving output
     * that is byte-identical across thread counts for an identical
     * request sequence.  Snapshots briefly under per-stat locks and
     * renders on the caller's thread — never holds a lock across
     * formatting or socket writes.
     */
    std::string metricsText(bool skipWallClock = false) const;

    /**
     * One-frame liveness summary for the HEALTH verb: `status: OK` (or
     * `status: DEGRADED (<reason>)` when the in-flight backlog exceeds
     * 4x the worker count), uptime, worker/backlog occupancy, and
     * build info.
     */
    std::string healthText() const;

    /**
     * The last @p maxPoints points of sampled series @p name as
     * `<unix-ms> <value>` lines.  False (with @p error) when sampling
     * is off or the series does not exist.
     */
    bool seriesText(const std::string &name, uint64_t maxPoints,
                    std::string &out, std::string &error) const;

    /**
     * The retained Chrome-trace JSON of the completed request that
     * ticket @p ticket attached to.  False (with @p error) when
     * tracing is off, the request is still in flight, or the trace
     * was never retained / already evicted.
     */
    bool traceJson(uint64_t ticket, std::string &out,
                   std::string &error) const;

    /** The background sampler, or nullptr when sampling is disabled.
        Tests drive sampleNow() through this for deterministic rings. */
    obs::TimeSeriesSampler *sampler() { return _sampler.get(); }

    /** The service's live registry (server transports add their own
        serve.connections-style counters here). */
    obs::StatsRegistry &stats() { return _stats; }

    /** The persistent store, or nullptr when cacheDir was empty. */
    store::ResultStore *store() { return _store.get(); }

    /** Worker-pool width (for banners and load drivers). */
    int threads() const { return _pool.threads(); }

  private:
    /** One in-flight (or just-completed) canonical spec. */
    struct Job
    {
        std::string id;  ///< canonical spec text (resultCacheId).
        std::chrono::steady_clock::time_point submitted;
        bool done = false;
        bool ok = false;
        std::string payload;
        std::string error;
        uint64_t traceId = 0;  ///< first submitter's trace context.
        int64_t parkUs = 0;    ///< tracer timestamp when parked (0 =
                               ///< never coalesced).
        std::vector<uint64_t> tickets;  ///< every attached ticket.
    };
    using JobPtr = std::shared_ptr<Job>;

    /** One per-shape collection queue of parked cold submissions. */
    struct ParkedBatch
    {
        std::vector<sim::ExperimentSpec> specs;  ///< lane order.
        std::vector<JobPtr> jobs;                ///< parallel to specs.
        std::chrono::steady_clock::time_point oldest;  ///< first park.
        int64_t dispatchUs = 0;  ///< tracer timestamp at dispatch.
    };
    using ParkedBatchPtr = std::shared_ptr<ParkedBatch>;

    /** One retained completed-request trace. */
    struct CompletedTrace
    {
        uint64_t traceId = 0;
        std::vector<uint64_t> tickets;
        std::string json;  ///< finished Chrome-trace document.
    };

    void complete(const JobPtr &job, bool ok, std::string text,
                  bool cacheHot = true);
    void runJob(const sim::ExperimentSpec &spec, const JobPtr &job);
    void parkJob(const sim::ExperimentSpec &spec, const JobPtr &job);
    void dispatchBatch(const ParkedBatchPtr &batch, bool full);
    void runBatch(const ParkedBatchPtr &batch);
    void collectorLoop();
    std::vector<obs::StatsRegistry::Entry> mergedSnapshot() const;

    ServiceConfig _config;
    std::unique_ptr<store::ResultStore> _store;
    std::unique_ptr<store::HotResultCache> _hot;

    obs::StatsRegistry _stats;
    obs::Counter &_requests;
    obs::Counter &_parseErrors;
    obs::Counter &_storeHits;
    obs::Counter &_dedupHits;
    obs::Counter &_runs;
    obs::Counter &_runFailures;
    obs::Counter &_coalesced;
    obs::Counter &_fullDispatches;
    obs::Counter &_partialDispatches;
    obs::Counter &_rejectedBusy;
    obs::Gauge &_parkedGauge;
    obs::Histogram &_laneFill;
    obs::Histogram &_latency;

    std::chrono::steady_clock::time_point _startTime;
    std::atomic<uint64_t> _nextTraceId{1};
    bool _enabledTracer = false;
    std::unique_ptr<obs::TimeSeriesSampler> _sampler;

    mutable std::mutex _mutex;
    std::condition_variable _done;
    std::map<std::string, JobPtr> _inflight;  ///< canonical id -> job
    std::map<uint64_t, JobPtr> _tickets;
    uint64_t _nextTicket = 1;
    std::deque<CompletedTrace> _traces;  ///< last traceDepth requests.

    // Coalescing scheduler state (guarded by _mutex).  The collector
    // thread owns partial (window-expiry) dispatch; full queues
    // dispatch inline from the parking submit.
    std::map<std::string, ParkedBatchPtr> _parked;  ///< shape -> queue
    size_t _parkedCount = 0;  ///< total parked jobs across queues.
    bool _stopCollector = false;
    std::condition_variable _collectorWake;
    std::thread _collector;

    /** Last member: destroyed (and drained) before the state above. */
    sim::JobPool _pool;
};

} // namespace serve
} // namespace coolair

#endif // COOLAIR_SERVE_SERVICE_HPP
