#ifndef COOLAIR_SERVE_CLIENT_HPP
#define COOLAIR_SERVE_CLIENT_HPP

/**
 * @file
 * Blocking client for the coolair_serve line protocol
 * (serve/protocol.hpp), shared by the coolair_client example, the
 * bench_serve load driver, and the serve tests.
 *
 * One Client is one connection; request() sends one line and reads one
 * framed response (including a RESULT/STATS payload body, strictly
 * framed and size-capped).  A Client is not thread-safe — give each
 * client thread its own connection, as a real client process would.
 */

#include <cstdint>
#include <string>

namespace coolair {
namespace serve {

/** One connected protocol client. */
class Client
{
  public:
    /** Connect to a Unix-domain socket.  @throws std::runtime_error */
    static Client connectUnix(const std::string &path);

    /** Connect to a TCP port on 127.0.0.1.  @throws std::runtime_error */
    static Client connectTcp(int port);

    ~Client();
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** One parsed response. */
    struct Response
    {
        bool ok = false;      ///< false for ERR replies and IO failures.
        std::string status;   ///< the full first line ("OK 3", "PONG"...).
        std::string payload;  ///< sized-frame body (RESULT, STATS,
                              ///< METRICS, SERIES, HEALTH, TRACE).
        std::string error;    ///< ERR text or transport failure.
    };

    /** Send @p line (newline appended) and read one response. */
    Response request(const std::string &line);

    /** SUBMIT convenience: returns the ticket via @p ticket. */
    Response submit(const std::string &spec_line, uint64_t &ticket);

  private:
    explicit Client(int fd) : _fd(fd) {}

    bool readLine(std::string &line);
    bool readExactly(size_t n, std::string &out);

    int _fd = -1;
    std::string _buf;
};

} // namespace serve
} // namespace coolair

#endif // COOLAIR_SERVE_CLIENT_HPP
