#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

namespace coolair {
namespace serve {

namespace {

/** Cap on one buffered request line; a client that streams more
    without a newline is hostile or broken, not patient. */
constexpr size_t kMaxLineBytes = size_t(1) << 20;

/** write() the whole buffer; MSG_NOSIGNAL so a vanished client is an
    error return, not a SIGPIPE. */
bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

} // anonymous namespace

LineServer::LineServer(ExperimentService &service, ServerConfig config)
    : _service(service), _config(std::move(config)),
      _connections(_service.stats().counter("serve.connections",
                                            "client connections accepted")),
      _protocolErrors(_service.stats().counter(
          "serve.protocol_errors", "malformed request lines"))
{
}

LineServer::~LineServer()
{
    stop();
}

void
LineServer::start()
{
    if (_config.unixPath.empty() && _config.tcpPort < 0)
        throw std::runtime_error(
            "LineServer: configure a Unix socket path or a TCP port");

    std::lock_guard<std::mutex> lock(_mutex);
    if (_started)
        throw std::runtime_error("LineServer: already started");

    if (!_config.unixPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (_config.unixPath.size() >= sizeof(addr.sun_path))
            throw std::runtime_error("LineServer: Unix socket path too "
                                     "long: " +
                                     _config.unixPath);
        std::memcpy(addr.sun_path, _config.unixPath.c_str(),
                    _config.unixPath.size() + 1);

        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throw std::runtime_error("LineServer: socket(AF_UNIX): " +
                                     std::string(std::strerror(errno)));
        ::unlink(_config.unixPath.c_str());  // replace a stale socket
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            const std::string err = std::strerror(errno);
            ::close(fd);
            throw std::runtime_error("LineServer: cannot listen on " +
                                     _config.unixPath + ": " + err);
        }
        _listenFds.push_back(fd);
    }

    if (_config.tcpPort >= 0) {
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(uint16_t(_config.tcpPort));

        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throw std::runtime_error("LineServer: socket(AF_INET): " +
                                     std::string(std::strerror(errno)));
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(fd, 64) != 0) {
            const std::string err = std::strerror(errno);
            ::close(fd);
            throw std::runtime_error(
                "LineServer: cannot listen on 127.0.0.1:" +
                std::to_string(_config.tcpPort) + ": " + err);
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            _tcpPort = int(ntohs(bound.sin_port));
        _listenFds.push_back(fd);
    }

    _started = true;
    _shutdown = false;
    for (int fd : _listenFds)
        _threads.emplace_back(&LineServer::acceptLoop, this, fd);
}

void
LineServer::stop()
{
    std::vector<int> listeners;
    std::vector<int> conns;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (!_started)
            return;
        _shutdown = true;
        listeners = _listenFds;
        conns.assign(_connFds.begin(), _connFds.end());
    }
    _shutdownCv.notify_all();

    // Wake blocked accept()s and recv()s; each thread closes its own
    // connection fd on the way out.  A thread blocked in a service
    // wait finishes when its job drains (the service outlives us).
    for (int fd : listeners)
        ::shutdown(fd, SHUT_RDWR);
    for (int fd : conns)
        ::shutdown(fd, SHUT_RDWR);

    for (;;) {
        std::vector<std::thread> batch;
        {
            std::lock_guard<std::mutex> lock(_mutex);
            batch.swap(_threads);
        }
        if (batch.empty())
            break;
        for (auto &t : batch)
            t.join();
    }

    std::lock_guard<std::mutex> lock(_mutex);
    for (int fd : _listenFds)
        ::close(fd);
    _listenFds.clear();
    if (!_config.unixPath.empty())
        ::unlink(_config.unixPath.c_str());
    _started = false;
}

void
LineServer::waitForShutdown()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _shutdownCv.wait(lock, [this] { return _shutdown; });
}

void
LineServer::acceptLoop(int listen_fd)
{
    for (;;) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;  // listener shut down
        }
        std::lock_guard<std::mutex> lock(_mutex);
        if (_shutdown) {
            ::close(fd);
            return;
        }
        _connections.inc();
        _connFds.insert(fd);
        _threads.emplace_back(&LineServer::handleConnection, this, fd);
    }
}

void
LineServer::closeFd(int fd)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _connFds.erase(fd);
    }
    ::close(fd);
}

void
LineServer::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        // Drain complete lines before reading more.
        size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);

            Request req;
            std::string err;
            if (!parseRequest(line, req, err)) {
                _protocolErrors.inc();
                if (!sendAll(fd, frameErr(err)))
                    return closeFd(fd);
                continue;
            }

            std::string response;
            bool shutdown_requested = false;
            switch (req.verb) {
              case Verb::Ping:
                response = "PONG\n";
                break;
              case Verb::Submit: {
                auto sub = _service.submit(specTextFromArg(req.arg));
                response =
                    sub.ok ? frameOk(sub.ticket) : frameErr(sub.error);
                break;
              }
              case Verb::Wait: {
                uint64_t ticket = 0;
                if (!util::parseSize(req.arg, ticket)) {
                    _protocolErrors.inc();
                    response = frameErr("bad ticket '" + req.arg + "'");
                    break;
                }
                auto reply = _service.wait(ticket);
                response = reply.ok ? framePayload("RESULT", reply.payload)
                                    : frameErr(reply.error);
                break;
              }
              case Verb::Run: {
                auto reply = _service.run(specTextFromArg(req.arg));
                response = reply.ok ? framePayload("RESULT", reply.payload)
                                    : frameErr(reply.error);
                break;
              }
              case Verb::Stats:
                response = framePayload("STATS", _service.statsText());
                break;
              case Verb::Metrics:
                response =
                    framePayload("METRICS", _service.metricsText());
                break;
              case Verb::Health:
                response = framePayload("HEALTH", _service.healthText());
                break;
              case Verb::Series: {
                // `<stat> [count]`; the count parses strictly and is
                // capped — a hostile count is an ERR, never a large
                // allocation.
                std::string name = req.arg;
                uint64_t count = 120;
                const size_t space = req.arg.find(' ');
                if (space != std::string::npos) {
                    name = req.arg.substr(0, space);
                    const size_t at =
                        req.arg.find_first_not_of(" \t", space);
                    const std::string text =
                        at == std::string::npos ? ""
                                                : req.arg.substr(at);
                    if (!util::parseSize(text, count,
                                         kMaxSeriesPoints) ||
                        count == 0) {
                        _protocolErrors.inc();
                        response = frameErr(
                            "bad point count '" + text + "' (1.." +
                            std::to_string(kMaxSeriesPoints) + ")");
                        break;
                    }
                }
                std::string payload, serr;
                response = _service.seriesText(name, count, payload, serr)
                               ? framePayload("SERIES", payload)
                               : frameErr(serr);
                break;
              }
              case Verb::Trace: {
                uint64_t ticket = 0;
                if (!util::parseSize(req.arg, ticket)) {
                    _protocolErrors.inc();
                    response = frameErr("bad ticket '" + req.arg + "'");
                    break;
                }
                std::string payload, terr;
                response = _service.traceJson(ticket, payload, terr)
                               ? framePayload("TRACE", payload)
                               : frameErr(terr);
                break;
              }
              case Verb::Shutdown:
                response = "BYE\n";
                shutdown_requested = true;
                break;
            }

            if (!sendAll(fd, response))
                return closeFd(fd);
            if (shutdown_requested) {
                {
                    std::lock_guard<std::mutex> lock(_mutex);
                    _shutdown = true;
                }
                _shutdownCv.notify_all();
                return closeFd(fd);
            }
        }

        if (buf.size() > kMaxLineBytes) {
            _protocolErrors.inc();
            sendAll(fd, frameErr("request line too long"));
            return closeFd(fd);
        }

        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return closeFd(fd);  // client hung up (or stop() woke us)
        buf.append(chunk, size_t(n));
    }
}

} // namespace serve
} // namespace coolair
