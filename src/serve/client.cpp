#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"
#include "util/parse.hpp"

namespace coolair {
namespace serve {

namespace {

[[noreturn]] void
connectError(const std::string &what)
{
    throw std::runtime_error("serve::Client: " + what + ": " +
                             std::strerror(errno));
}

bool
sendAll(int fd, const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

} // anonymous namespace

Client
Client::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("serve::Client: socket path too long: " +
                                 path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        connectError("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        connectError("connect(" + path + ")");
    }
    return Client(fd);
}

Client
Client::connectTcp(int port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(port));

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        connectError("socket(AF_INET)");
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        connectError("connect(127.0.0.1:" + std::to_string(port) + ")");
    }
    return Client(fd);
}

Client::~Client()
{
    if (_fd >= 0)
        ::close(_fd);
}

Client::Client(Client &&other) noexcept
    : _fd(other._fd), _buf(std::move(other._buf))
{
    other._fd = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        if (_fd >= 0)
            ::close(_fd);
        _fd = other._fd;
        _buf = std::move(other._buf);
        other._fd = -1;
    }
    return *this;
}

bool
Client::readLine(std::string &line)
{
    for (;;) {
        size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            line = _buf.substr(0, nl);
            _buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return true;
        }
        char chunk[4096];
        ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        _buf.append(chunk, size_t(n));
    }
}

bool
Client::readExactly(size_t n, std::string &out)
{
    while (_buf.size() < n) {
        char chunk[4096];
        ssize_t got = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return false;
        _buf.append(chunk, size_t(got));
    }
    out = _buf.substr(0, n);
    _buf.erase(0, n);
    return true;
}

Client::Response
Client::request(const std::string &line)
{
    Response r;
    if (_fd < 0) {
        r.error = "not connected";
        return r;
    }
    if (!sendAll(_fd, line + "\n")) {
        r.error = "send failed";
        return r;
    }
    if (!readLine(r.status)) {
        r.error = "connection closed before a response arrived";
        return r;
    }

    if (r.status.rfind("ERR ", 0) == 0) {
        r.error = r.status.substr(4);
        return r;
    }
    if (r.status.rfind("RESULT ", 0) == 0 ||
        r.status.rfind("STATS ", 0) == 0 ||
        r.status.rfind("METRICS ", 0) == 0 ||
        r.status.rfind("SERIES ", 0) == 0 ||
        r.status.rfind("HEALTH ", 0) == 0 ||
        r.status.rfind("TRACE ", 0) == 0) {
        std::string tag, err;
        uint64_t bytes = 0;
        if (!parsePayloadHeader(r.status, tag, bytes, err)) {
            r.error = err;
            return r;
        }
        if (!readExactly(size_t(bytes), r.payload)) {
            r.error = "connection closed mid-payload";
            return r;
        }
    }
    r.ok = true;
    return r;
}

Client::Response
Client::submit(const std::string &spec_line, uint64_t &ticket)
{
    Response r = request("SUBMIT " + spec_line);
    if (!r.ok)
        return r;
    uint64_t t = 0;
    if (r.status.rfind("OK ", 0) != 0 ||
        !util::parseSize(r.status.substr(3), t)) {
        r.ok = false;
        r.error = "unexpected SUBMIT reply '" + r.status + "'";
        return r;
    }
    ticket = t;
    return r;
}

} // namespace serve
} // namespace coolair
