#include "serve/service.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"
#include "util/logging.hpp"

namespace coolair {
namespace serve {

namespace {

/** serve.latency_seconds bucket bounds: sub-millisecond warm hits
    through minute-long cold runs, roughly log-spaced. */
const std::vector<double> &
latencyBuckets()
{
    static const std::vector<double> bounds{
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
        0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0};
    return bounds;
}

} // anonymous namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : _config(std::move(config)),
      _store(_config.cacheDir.empty()
                 ? nullptr
                 : std::make_unique<store::ResultStore>(
                       _config.cacheDir, sim::kResultCacheSalt,
                       sim::kResultFormatVersion)),
      _requests(_stats.counter("serve.requests", "specs submitted")),
      _parseErrors(_stats.counter("serve.parse_errors",
                                  "submissions rejected as malformed")),
      _storeHits(_stats.counter("serve.store_hits",
                                "submissions served from the result store")),
      _dedupHits(_stats.counter(
          "serve.dedup_hits",
          "submissions that joined an in-flight identical run")),
      _runs(_stats.counter("serve.runs", "simulations actually run")),
      _runFailures(
          _stats.counter("serve.run_failures", "simulations that threw")),
      _latency(_stats.histogram("serve.latency_seconds",
                                "submit-to-done wall latency [s]",
                                obs::kWallClock, latencyBuckets())),
      _startTime(std::chrono::steady_clock::now()),
      _pool(_config.threads)
{
    if (_config.traceDepth > 0) {
        obs::Tracer &tracer = obs::Tracer::instance();
        if (!tracer.enabled()) {
            tracer.setEnabled(true);
            _enabledTracer = true;
        }
    }
    if (_config.sampleIntervalSeconds > 0.0) {
        obs::TimeSeriesConfig ts;
        ts.intervalSeconds = _config.sampleIntervalSeconds;
        ts.capacity = _config.seriesCapacity;
        _sampler = std::make_unique<obs::TimeSeriesSampler>(
            [this] { return mergedSnapshot(); }, ts);
        _sampler->start();
    }
}

ExperimentService::~ExperimentService()
{
    // Drain before the member destructors run so in-flight jobs still
    // record spans while the tracer is in the state they expect.
    _pool.drain();
    if (_sampler)
        _sampler->stop();
    if (_enabledTracer)
        obs::Tracer::instance().setEnabled(false);
}

ExperimentService::Submitted
ExperimentService::submit(const std::string &spec_text)
{
    // Every submission runs under its own trace context; all spans
    // recorded on its behalf — here, on the pool worker that picks the
    // job up (sim::JobPool re-opens this scope there), and inside the
    // engine — carry this id and reassemble into one request trace.
    const uint64_t traceId =
        _config.traceDepth > 0
            ? _nextTraceId.fetch_add(1, std::memory_order_relaxed)
            : 0;
    obs::TraceContextScope traceScope(traceId);

    _requests.inc();

    sim::ExperimentSpec spec;
    std::string id;
    JobPtr job;
    uint64_t ticket = 0;
    bool fresh = false;
    {
        obs::Span span("serve.submit", "serve");
        try {
            obs::Span parseSpan("serve.parse", "serve");
            spec = sim::parseSpec(spec_text);
        } catch (const std::exception &e) {
            _parseErrors.inc();
            return {false, 0, e.what()};
        }

        // Serving is metrics-only: side outputs would be written on the
        // server, and cache placement is the server's choice — strip
        // both so the spec the job runs *is* its canonical identity.
        spec.traceCsvPath.clear();
        spec.reportJsonPath.clear();
        spec.traceJsonPath.clear();
        spec.cacheDirPath.clear();
        spec.resultCache = true;
        id = sim::resultCacheId(spec);

        {
            std::lock_guard<std::mutex> lock(_mutex);
            auto it = _inflight.find(id);
            if (it != _inflight.end()) {
                job = it->second;
                _dedupHits.inc();
            } else {
                job = std::make_shared<Job>();
                job->id = id;
                job->submitted = std::chrono::steady_clock::now();
                job->traceId = traceId;
                _inflight.emplace(id, job);
                fresh = true;
            }
            ticket = _nextTicket++;
            _tickets.emplace(ticket, job);
            job->tickets.push_back(ticket);
        }
    }

    if (fresh) {
        // Warm path: the store answers without a simulation.  Lookup
        // runs outside the table lock (it is file IO); a concurrent
        // identical submit meanwhile joins the in-flight entry and
        // shares whatever this resolves to.
        sim::ExperimentResult cached;
        bool hit = false;
        {
            obs::Span lookupSpan("serve.store_lookup", "serve");
            hit = _store && sim::cacheLookup(*_store, id, cached);
        }
        if (hit) {
            _storeHits.inc();
            complete(job, true, sim::formatResult(cached));
        } else {
            _pool.submit([this, spec, job] { runJob(spec, job); });
        }
    }

    return {true, ticket, ""};
}

ExperimentService::Reply
ExperimentService::wait(uint64_t ticket)
{
    JobPtr job;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        auto it = _tickets.find(ticket);
        if (it == _tickets.end())
            return {false, "",
                    "unknown ticket " + std::to_string(ticket) +
                        " (tickets are consumed by WAIT)"};
        job = it->second;
        _tickets.erase(it);
        _done.wait(lock, [&] { return job->done; });
    }
    if (job->ok)
        return {true, job->payload, ""};
    return {false, "", job->error};
}

ExperimentService::Reply
ExperimentService::run(const std::string &spec_text)
{
    Submitted sub = submit(spec_text);
    if (!sub.ok)
        return {false, "", sub.error};
    return wait(sub.ticket);
}

void
ExperimentService::complete(const JobPtr &job, bool ok, std::string text)
{
    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job->submitted)
            .count();
    _latency.record(latency);

    // Extract this request's spans from the global tracer and render
    // them as one finished Chrome-trace document *before* the job is
    // marked done.  Extraction keeps per-request memory bounded by the
    // service's own traceDepth ring rather than the process-wide event
    // buffer; rendering first means a waiter that sees done == true is
    // guaranteed to find the trace retained (no TRACE-after-WAIT race).
    const uint64_t traceId = job->traceId;
    std::vector<obs::TraceEvent> events;
    std::string traceDoc;
    if (_config.traceDepth > 0 && traceId != 0) {
        obs::Tracer &tracer = obs::Tracer::instance();
        events = tracer.takeTrace(traceId);
        std::ostringstream os;
        obs::writeTraceEventsJson(os, events, tracer.trackNames());
        traceDoc = os.str();
    }

    std::vector<uint64_t> tickets;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        job->done = true;
        job->ok = ok;
        if (ok)
            job->payload = std::move(text);
        else
            job->error = std::move(text);
        tickets = job->tickets;
        // The dedup window spans the whole run: only now do identical
        // submissions stop attaching to this job.
        auto it = _inflight.find(job->id);
        if (it != _inflight.end() && it->second == job)
            _inflight.erase(it);
        if (!traceDoc.empty()) {
            _traces.push_back(
                CompletedTrace{traceId, tickets, std::move(traceDoc)});
            while (_traces.size() > size_t(_config.traceDepth))
                _traces.pop_front();
        }
    }

    if (_config.slowRequestSeconds > 0.0 &&
        latency > _config.slowRequestSeconds) {
        std::vector<util::LogField> fields;
        fields.push_back({"latency_s", obs::formatDouble(latency)});
        fields.push_back({"ok", ok ? "true" : "false"});
        std::string ticketList;
        for (uint64_t t : tickets) {
            if (!ticketList.empty())
                ticketList += ",";
            ticketList += std::to_string(t);
        }
        fields.push_back({"tickets", ticketList});
        if (traceId != 0)
            fields.push_back({"trace_id", std::to_string(traceId)});
        // Per-stage timings: total span seconds by name, so the line
        // says *where* the request spent its time.
        std::map<std::string, double> stageSeconds;
        for (const obs::TraceEvent &e : events)
            stageSeconds[e.name] += double(e.durUs) / 1e6;
        for (const auto &[name, seconds] : stageSeconds)
            fields.push_back(
                {"span." + name, obs::formatDouble(seconds)});
        util::Logger::instance().log(util::LogLevel::Warn,
                                     "slow request", fields);
    }

    _done.notify_all();
}

void
ExperimentService::runJob(const sim::ExperimentSpec &spec, const JobPtr &job)
{
    if (_config.onJobStart)
        _config.onJobStart();
    _runs.inc();
    bool ok = false;
    std::string text;
    {
        // Span closed before complete() so takeTrace sees it.
        obs::Span span("serve.run", "serve");
        try {
            sim::ExperimentResult result =
                _store ? sim::runAndStore(spec, *_store, job->id)
                       : sim::runExperiment(spec);
            ok = true;
            text = sim::formatResult(result);
        } catch (const std::exception &e) {
            _runFailures.inc();
            text = e.what();
        } catch (...) {
            _runFailures.inc();
            text = "unknown exception";
        }
    }
    complete(job, ok, std::move(text));
}

std::vector<obs::StatsRegistry::Entry>
ExperimentService::mergedSnapshot() const
{
    obs::StatsRegistry merged;
    merged.merge(_stats);
    if (_store)
        _store->addStats(merged);
    return merged.snapshot();
}

std::string
ExperimentService::statsText() const
{
    obs::StatsRegistry merged;
    merged.merge(_stats);
    if (_store)
        _store->addStats(merged);
    std::ostringstream os;
    merged.dumpText(os);
    return os.str();
}

std::string
ExperimentService::metricsText(bool skipWallClock) const
{
    obs::PrometheusOptions options;
    options.skipWallClock = skipWallClock;
    return obs::toPrometheusText(mergedSnapshot(), options);
}

std::string
ExperimentService::healthText() const
{
    size_t inflight = 0;
    size_t outstanding = 0;
    size_t traces = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        inflight = _inflight.size();
        outstanding = _tickets.size();
        traces = _traces.size();
    }
    const int workers = _pool.threads();
    const double uptime = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - _startTime)
                              .count();

    std::ostringstream os;
    // Backlog rule: more in-flight canonical specs than 4x the worker
    // pool means submissions are arriving faster than they drain.
    if (inflight > size_t(workers) * 4)
        os << "status: DEGRADED (backlog: " << inflight
           << " in-flight specs on " << workers << " workers)\n";
    else
        os << "status: OK\n";
    os << "uptime_seconds: " << obs::formatDouble(uptime) << "\n";
    os << "workers: " << workers << "\n";
    os << "inflight_specs: " << inflight << "\n";
    os << "tickets_outstanding: " << outstanding << "\n";
    os << "store: " << (_config.cacheDir.empty() ? "(none)"
                                                 : _config.cacheDir)
       << "\n";
    os << "trace_depth: " << _config.traceDepth << "\n";
    os << "traces_retained: " << traces << "\n";
    os << "sampling_interval_s: "
       << obs::formatDouble(_sampler ? _config.sampleIntervalSeconds : 0.0)
       << "\n";
    os << "build: "
#ifdef NDEBUG
          "release"
#else
          "debug"
#endif
          ", result format v"
       << sim::kResultFormatVersion << "\n";
    return os.str();
}

bool
ExperimentService::seriesText(const std::string &name, uint64_t maxPoints,
                              std::string &out, std::string &error) const
{
    if (!_sampler) {
        error = "time-series sampling is disabled on this server";
        return false;
    }
    const std::vector<obs::SeriesPoint> points =
        _sampler->series(name, size_t(maxPoints));
    if (points.empty()) {
        error = "unknown series '" + name +
                "' (stat names from METRICS; histograms expose "
                "::count and ::mean)";
        return false;
    }
    std::ostringstream os;
    for (const obs::SeriesPoint &p : points)
        os << p.unixMs << " " << obs::formatDouble(p.value) << "\n";
    out = os.str();
    return true;
}

bool
ExperimentService::traceJson(uint64_t ticket, std::string &out,
                             std::string &error) const
{
    if (_config.traceDepth <= 0) {
        error = "tracing is disabled on this server "
                "(start with --trace-depth)";
        return false;
    }
    std::lock_guard<std::mutex> lock(_mutex);
    // Newest-first: after a ticket-counter lifetime of requests the
    // recent ones are the ones asked about.
    for (auto it = _traces.rbegin(); it != _traces.rend(); ++it) {
        if (std::find(it->tickets.begin(), it->tickets.end(), ticket) !=
            it->tickets.end()) {
            out = it->json;
            return true;
        }
    }
    auto t = _tickets.find(ticket);
    if (t != _tickets.end() && !t->second->done) {
        error = "ticket " + std::to_string(ticket) +
                " is still in flight; WAIT for it first";
        return false;
    }
    error = "no retained trace for ticket " + std::to_string(ticket) +
            " (unknown, evicted, or submitted before tracing)";
    return false;
}

} // namespace serve
} // namespace coolair
