#include "serve/service.hpp"

#include <sstream>
#include <stdexcept>

#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"

namespace coolair {
namespace serve {

ExperimentService::ExperimentService(ServiceConfig config)
    : _config(std::move(config)),
      _store(_config.cacheDir.empty()
                 ? nullptr
                 : std::make_unique<store::ResultStore>(
                       _config.cacheDir, sim::kResultCacheSalt,
                       sim::kResultFormatVersion)),
      _requests(_stats.counter("serve.requests", "specs submitted")),
      _parseErrors(_stats.counter("serve.parse_errors",
                                  "submissions rejected as malformed")),
      _storeHits(_stats.counter("serve.store_hits",
                                "submissions served from the result store")),
      _dedupHits(_stats.counter(
          "serve.dedup_hits",
          "submissions that joined an in-flight identical run")),
      _runs(_stats.counter("serve.runs", "simulations actually run")),
      _runFailures(
          _stats.counter("serve.run_failures", "simulations that threw")),
      _latency(_stats.histogram("serve.latency_seconds",
                                "submit-to-done wall latency [s]",
                                obs::kWallClock)),
      _pool(_config.threads)
{
}

ExperimentService::~ExperimentService() = default;

ExperimentService::Submitted
ExperimentService::submit(const std::string &spec_text)
{
    _requests.inc();

    sim::ExperimentSpec spec;
    try {
        spec = sim::parseSpec(spec_text);
    } catch (const std::exception &e) {
        _parseErrors.inc();
        return {false, 0, e.what()};
    }

    // Serving is metrics-only: side outputs would be written on the
    // server, and cache placement is the server's choice — strip both
    // so the spec the job runs *is* its canonical identity.
    spec.traceCsvPath.clear();
    spec.reportJsonPath.clear();
    spec.traceJsonPath.clear();
    spec.cacheDirPath.clear();
    spec.resultCache = true;
    const std::string id = sim::resultCacheId(spec);

    JobPtr job;
    uint64_t ticket = 0;
    bool fresh = false;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _inflight.find(id);
        if (it != _inflight.end()) {
            job = it->second;
            _dedupHits.inc();
        } else {
            job = std::make_shared<Job>();
            job->id = id;
            job->submitted = std::chrono::steady_clock::now();
            _inflight.emplace(id, job);
            fresh = true;
        }
        ticket = _nextTicket++;
        _tickets.emplace(ticket, job);
    }

    if (fresh) {
        // Warm path: the store answers without a simulation.  Lookup
        // runs outside the table lock (it is file IO); a concurrent
        // identical submit meanwhile joins the in-flight entry and
        // shares whatever this resolves to.
        sim::ExperimentResult cached;
        if (_store && sim::cacheLookup(*_store, id, cached)) {
            _storeHits.inc();
            complete(job, true, sim::formatResult(cached));
        } else {
            _pool.submit([this, spec, job] { runJob(spec, job); });
        }
    }

    return {true, ticket, ""};
}

ExperimentService::Reply
ExperimentService::wait(uint64_t ticket)
{
    JobPtr job;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        auto it = _tickets.find(ticket);
        if (it == _tickets.end())
            return {false, "",
                    "unknown ticket " + std::to_string(ticket) +
                        " (tickets are consumed by WAIT)"};
        job = it->second;
        _tickets.erase(it);
        _done.wait(lock, [&] { return job->done; });
    }
    if (job->ok)
        return {true, job->payload, ""};
    return {false, "", job->error};
}

ExperimentService::Reply
ExperimentService::run(const std::string &spec_text)
{
    Submitted sub = submit(spec_text);
    if (!sub.ok)
        return {false, "", sub.error};
    return wait(sub.ticket);
}

void
ExperimentService::complete(const JobPtr &job, bool ok, std::string text)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        job->done = true;
        job->ok = ok;
        if (ok)
            job->payload = std::move(text);
        else
            job->error = std::move(text);
        // The dedup window spans the whole run: only now do identical
        // submissions stop attaching to this job.
        auto it = _inflight.find(job->id);
        if (it != _inflight.end() && it->second == job)
            _inflight.erase(it);
    }
    _latency.record(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - job->submitted)
                        .count());
    _done.notify_all();
}

void
ExperimentService::runJob(const sim::ExperimentSpec &spec, const JobPtr &job)
{
    if (_config.onJobStart)
        _config.onJobStart();
    _runs.inc();
    try {
        sim::ExperimentResult result =
            _store ? sim::runAndStore(spec, *_store, job->id)
                   : sim::runExperiment(spec);
        complete(job, true, sim::formatResult(result));
    } catch (const std::exception &e) {
        _runFailures.inc();
        complete(job, false, e.what());
    } catch (...) {
        _runFailures.inc();
        complete(job, false, "unknown exception");
    }
}

std::string
ExperimentService::statsText() const
{
    obs::StatsRegistry merged;
    merged.merge(_stats);
    if (_store)
        _store->addStats(merged);
    std::ostringstream os;
    merged.dumpText(os);
    return os.str();
}

} // namespace serve
} // namespace coolair
