#include "serve/service.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "serve/protocol.hpp"
#include "sim/batch_engine.hpp"
#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"
#include "util/logging.hpp"

namespace coolair {
namespace serve {

namespace {

/** serve.latency_seconds bucket bounds: sub-millisecond warm hits
    through minute-long cold runs, roughly log-spaced. */
const std::vector<double> &
latencyBuckets()
{
    static const std::vector<double> bounds{
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
        0.5,   1.0,    2.5,   5.0,  10.0,  30.0, 60.0};
    return bounds;
}

/** serve.lane_fill bucket bounds: how full dispatched batches were.
    Small counts exact, larger ones coarsening — lane targets past 32
    are off the efficiency curve anyway (DESIGN.md §10). */
const std::vector<double> &
laneFillBuckets()
{
    static const std::vector<double> bounds{1,  2,  3,  4,  6,
                                            8,  12, 16, 24, 32};
    return bounds;
}

} // anonymous namespace

ExperimentService::ExperimentService(ServiceConfig config)
    : _config(std::move(config)),
      _store(_config.cacheDir.empty()
                 ? nullptr
                 : std::make_unique<store::ResultStore>(
                       _config.cacheDir, sim::kResultCacheSalt,
                       sim::kResultFormatVersion)),
      _requests(_stats.counter("serve.requests", "specs submitted")),
      _parseErrors(_stats.counter("serve.parse_errors",
                                  "submissions rejected as malformed")),
      _storeHits(_stats.counter("serve.store_hits",
                                "submissions served from the result store")),
      _dedupHits(_stats.counter(
          "serve.dedup_hits",
          "submissions that joined an in-flight identical run")),
      _runs(_stats.counter("serve.runs", "simulations actually run")),
      _runFailures(
          _stats.counter("serve.run_failures", "simulations that threw")),
      _coalesced(_stats.counter(
          "serve.coalesced",
          "cold submissions parked for cross-request batching")),
      _fullDispatches(_stats.counter(
          "serve.coalesce_full_dispatches",
          "batches dispatched because the lane target filled",
          obs::kWallClock)),
      _partialDispatches(_stats.counter(
          "serve.coalesce_partial_dispatches",
          "batches dispatched on collection-window expiry",
          obs::kWallClock)),
      _rejectedBusy(_stats.counter(
          "serve.rejected_busy",
          "submissions refused at the max-pending backlog cap",
          obs::kWallClock)),
      _parkedGauge(_stats.gauge(
          "serve.parked", "submissions currently parked for coalescing",
          obs::kWallClock)),
      _laneFill(_stats.histogram("serve.lane_fill",
                                 "lanes per dispatched batch",
                                 obs::kWallClock, laneFillBuckets())),
      _latency(_stats.histogram("serve.latency_seconds",
                                "submit-to-done wall latency [s]",
                                obs::kWallClock, latencyBuckets())),
      _startTime(std::chrono::steady_clock::now()),
      _pool(_config.threads)
{
    if (_config.hotCacheBytes > 0)
        _hot = std::make_unique<store::HotResultCache>(
            _config.hotCacheBytes, _config.hotCacheShards);
    if (_config.traceDepth > 0) {
        obs::Tracer &tracer = obs::Tracer::instance();
        if (!tracer.enabled()) {
            tracer.setEnabled(true);
            _enabledTracer = true;
        }
    }
    if (_config.sampleIntervalSeconds > 0.0) {
        obs::TimeSeriesConfig ts;
        ts.intervalSeconds = _config.sampleIntervalSeconds;
        ts.capacity = _config.seriesCapacity;
        _sampler = std::make_unique<obs::TimeSeriesSampler>(
            [this] { return mergedSnapshot(); }, ts);
        _sampler->start();
    }
    if (_config.coalesceLanes >= 2)
        _collector = std::thread([this] { collectorLoop(); });
}

ExperimentService::~ExperimentService()
{
    // Stop the collector first, then flush whatever it left parked so
    // every outstanding ticket resolves before the pool drains.
    if (_collector.joinable()) {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _stopCollector = true;
        }
        _collectorWake.notify_all();
        _collector.join();
    }
    std::vector<ParkedBatchPtr> leftovers;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        for (auto &entry : _parked)
            leftovers.push_back(entry.second);
        _parked.clear();
        _parkedCount = 0;
        _parkedGauge.set(0.0);
    }
    for (const ParkedBatchPtr &batch : leftovers)
        dispatchBatch(batch, /*full=*/false);
    // Drain before the member destructors run so in-flight jobs still
    // record spans while the tracer is in the state they expect.
    _pool.drain();
    if (_sampler)
        _sampler->stop();
    if (_enabledTracer)
        obs::Tracer::instance().setEnabled(false);
}

ExperimentService::Submitted
ExperimentService::submit(const std::string &spec_text)
{
    // Every submission runs under its own trace context; all spans
    // recorded on its behalf — here, on the pool worker that picks the
    // job up (sim::JobPool re-opens this scope there), and inside the
    // engine — carry this id and reassemble into one request trace.
    const uint64_t traceId =
        _config.traceDepth > 0
            ? _nextTraceId.fetch_add(1, std::memory_order_relaxed)
            : 0;
    obs::TraceContextScope traceScope(traceId);

    _requests.inc();

    sim::ExperimentSpec spec;
    std::string id;
    JobPtr job;
    uint64_t ticket = 0;
    bool fresh = false;
    {
        obs::Span span("serve.submit", "serve");
        try {
            obs::Span parseSpan("serve.parse", "serve");
            spec = sim::parseSpec(spec_text);
        } catch (const std::exception &e) {
            _parseErrors.inc();
            return {false, 0, e.what()};
        }

        // Serving is metrics-only: side outputs would be written on the
        // server, and cache placement is the server's choice — strip
        // both so the spec the job runs *is* its canonical identity.
        spec.traceCsvPath.clear();
        spec.reportJsonPath.clear();
        spec.traceJsonPath.clear();
        spec.cacheDirPath.clear();
        spec.resultCache = true;
        id = sim::resultCacheId(spec);

        {
            std::lock_guard<std::mutex> lock(_mutex);
            auto it = _inflight.find(id);
            if (it != _inflight.end()) {
                job = it->second;
                _dedupHits.inc();
            } else if (_config.maxPending > 0 &&
                       _inflight.size() >= _config.maxPending) {
                // Admission control: a fresh spec would add work to an
                // already-saturated backlog.  Joins (above) are always
                // admitted — they ride an existing run.
                _rejectedBusy.inc();
                return {false, 0,
                        kBusyPrefix +
                            std::to_string(_inflight.size()) +
                            " specs in flight (cap " +
                            std::to_string(_config.maxPending) +
                            "); retry after the backlog drains"};
            } else {
                job = std::make_shared<Job>();
                job->id = id;
                job->submitted = std::chrono::steady_clock::now();
                job->traceId = traceId;
                _inflight.emplace(id, job);
                fresh = true;
            }
            ticket = _nextTicket++;
            _tickets.emplace(ticket, job);
            job->tickets.push_back(ticket);
        }
    }

    if (fresh) {
        // Hot tier first: a repeat of a recently-served spec answers
        // from RAM — no disk open, no CRC pass.  The bytes were cached
        // at a previous completion, so they are the served bytes.
        std::string hotPayload;
        if (_hot && _hot->lookup(id, hotPayload)) {
            complete(job, true, std::move(hotPayload),
                     /*cacheHot=*/false);
            return {true, ticket, ""};
        }

        // Warm path: the store answers without a simulation.  Lookup
        // runs outside the table lock (it is file IO); a concurrent
        // identical submit meanwhile joins the in-flight entry and
        // shares whatever this resolves to.
        sim::ExperimentResult cached;
        bool hit = false;
        {
            obs::Span lookupSpan("serve.store_lookup", "serve");
            hit = _store && sim::cacheLookup(*_store, id, cached);
        }
        if (hit) {
            _storeHits.inc();
            complete(job, true, sim::formatResult(cached));
        } else if (_config.coalesceLanes >= 2 && spec.batch > 0) {
            // Cold, and the spec opted into batching: park it for
            // cross-request lane coalescing instead of running solo.
            parkJob(spec, job);
        } else {
            _pool.submit([this, spec, job] { runJob(spec, job); });
        }
    }

    return {true, ticket, ""};
}

ExperimentService::Reply
ExperimentService::wait(uint64_t ticket)
{
    JobPtr job;
    {
        std::unique_lock<std::mutex> lock(_mutex);
        auto it = _tickets.find(ticket);
        if (it == _tickets.end())
            return {false, "",
                    "unknown ticket " + std::to_string(ticket) +
                        " (tickets are consumed by WAIT)"};
        job = it->second;
        _tickets.erase(it);
        _done.wait(lock, [&] { return job->done; });
    }
    if (job->ok)
        return {true, job->payload, ""};
    return {false, "", job->error};
}

ExperimentService::Reply
ExperimentService::run(const std::string &spec_text)
{
    Submitted sub = submit(spec_text);
    if (!sub.ok)
        return {false, "", sub.error};
    return wait(sub.ticket);
}

void
ExperimentService::complete(const JobPtr &job, bool ok, std::string text,
                            bool cacheHot)
{
    // Successful payloads enter the hot tier before waiters wake, so
    // an immediate repeat submission can already hit RAM.  Hot-served
    // completions skip re-insertion (lookup refreshed their recency).
    if (ok && cacheHot && _hot)
        _hot->insert(job->id, text);

    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job->submitted)
            .count();
    _latency.record(latency);

    // Extract this request's spans from the global tracer and render
    // them as one finished Chrome-trace document *before* the job is
    // marked done.  Extraction keeps per-request memory bounded by the
    // service's own traceDepth ring rather than the process-wide event
    // buffer; rendering first means a waiter that sees done == true is
    // guaranteed to find the trace retained (no TRACE-after-WAIT race).
    const uint64_t traceId = job->traceId;
    std::vector<obs::TraceEvent> events;
    std::string traceDoc;
    if (_config.traceDepth > 0 && traceId != 0) {
        obs::Tracer &tracer = obs::Tracer::instance();
        events = tracer.takeTrace(traceId);
        std::ostringstream os;
        obs::writeTraceEventsJson(os, events, tracer.trackNames());
        traceDoc = os.str();
    }

    std::vector<uint64_t> tickets;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        job->done = true;
        job->ok = ok;
        if (ok)
            job->payload = std::move(text);
        else
            job->error = std::move(text);
        tickets = job->tickets;
        // The dedup window spans the whole run: only now do identical
        // submissions stop attaching to this job.
        auto it = _inflight.find(job->id);
        if (it != _inflight.end() && it->second == job)
            _inflight.erase(it);
        if (!traceDoc.empty()) {
            _traces.push_back(
                CompletedTrace{traceId, tickets, std::move(traceDoc)});
            while (_traces.size() > size_t(_config.traceDepth))
                _traces.pop_front();
        }
    }

    if (_config.slowRequestSeconds > 0.0 &&
        latency > _config.slowRequestSeconds) {
        std::vector<util::LogField> fields;
        fields.push_back({"latency_s", obs::formatDouble(latency)});
        fields.push_back({"ok", ok ? "true" : "false"});
        std::string ticketList;
        for (uint64_t t : tickets) {
            if (!ticketList.empty())
                ticketList += ",";
            ticketList += std::to_string(t);
        }
        fields.push_back({"tickets", ticketList});
        if (traceId != 0)
            fields.push_back({"trace_id", std::to_string(traceId)});
        // Per-stage timings: total span seconds by name, so the line
        // says *where* the request spent its time.
        std::map<std::string, double> stageSeconds;
        for (const obs::TraceEvent &e : events)
            stageSeconds[e.name] += double(e.durUs) / 1e6;
        for (const auto &[name, seconds] : stageSeconds)
            fields.push_back(
                {"span." + name, obs::formatDouble(seconds)});
        util::Logger::instance().log(util::LogLevel::Warn,
                                     "slow request", fields);
    }

    _done.notify_all();
}

void
ExperimentService::runJob(const sim::ExperimentSpec &spec, const JobPtr &job)
{
    if (_config.onJobStart)
        _config.onJobStart();
    _runs.inc();
    bool ok = false;
    std::string text;
    {
        // Span closed before complete() so takeTrace sees it.
        obs::Span span("serve.run", "serve");
        try {
            sim::ExperimentResult result =
                _store ? sim::runAndStore(spec, *_store, job->id)
                       : sim::runExperiment(spec);
            ok = true;
            text = sim::formatResult(result);
        } catch (const std::exception &e) {
            _runFailures.inc();
            text = e.what();
        } catch (...) {
            _runFailures.inc();
            text = "unknown exception";
        }
    }
    complete(job, ok, std::move(text));
}

void
ExperimentService::parkJob(const sim::ExperimentSpec &spec,
                           const JobPtr &job)
{
    job->parkUs = obs::Tracer::instance().nowUs();
    _coalesced.inc();
    ParkedBatchPtr ready;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        ParkedBatchPtr &queue = _parked[sim::batchShapeKey(spec)];
        if (!queue) {
            queue = std::make_shared<ParkedBatch>();
            queue->oldest = std::chrono::steady_clock::now();
        }
        queue->specs.push_back(spec);
        queue->jobs.push_back(job);
        ++_parkedCount;
        if (int(queue->jobs.size()) >= _config.coalesceLanes) {
            // Lane target reached: extract under the lock, dispatch
            // outside it.  The map slot empties so a late same-shape
            // arrival starts a new collection round.
            ready = std::move(queue);
            _parked.erase(sim::batchShapeKey(spec));
            _parkedCount -= ready->jobs.size();
        }
        _parkedGauge.set(double(_parkedCount));
    }
    if (ready)
        dispatchBatch(ready, /*full=*/true);
    else
        _collectorWake.notify_one();
}

void
ExperimentService::dispatchBatch(const ParkedBatchPtr &batch, bool full)
{
    (full ? _fullDispatches : _partialDispatches).inc();
    _laneFill.record(double(batch->jobs.size()));

    obs::Tracer &tracer = obs::Tracer::instance();
    batch->dispatchUs = tracer.nowUs();
    // Each parked request's own trace gets its park interval — the
    // time it spent waiting for lane-mates — not just the shared run.
    if (_config.traceDepth > 0) {
        for (const JobPtr &job : batch->jobs)
            if (job->traceId != 0)
                tracer.recordComplete("serve.park", "serve",
                                      job->parkUs,
                                      batch->dispatchUs - job->parkUs,
                                      obs::threadTrack(), job->traceId);
    }

    _pool.submit([this, batch] { runBatch(batch); });
}

void
ExperimentService::runBatch(const ParkedBatchPtr &batch)
{
    if (_config.onJobStart)
        _config.onJobStart();

    const size_t n = batch->jobs.size();
    _runs.add(int64_t(n));
    obs::Tracer &tracer = obs::Tracer::instance();

    // Per-lane pre-start hook: a throw fails just that lane; the
    // survivors still run as a smaller batch (lane results are
    // composition-independent, so their answers are unchanged).
    std::vector<std::string> preError(n);
    std::vector<sim::ExperimentSpec> live;
    std::vector<size_t> liveIndex;
    live.reserve(n);
    liveIndex.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (_config.onLaneStart) {
            try {
                _config.onLaneStart(batch->specs[i]);
            } catch (const std::exception &e) {
                preError[i] = e.what();
                continue;
            } catch (...) {
                preError[i] = "unknown exception";
                continue;
            }
        }
        live.push_back(batch->specs[i]);
        liveIndex.push_back(i);
    }

    const int64_t runStartUs = tracer.nowUs();
    std::vector<sim::LaneResult> lanes;
    std::string batchError;
    if (!live.empty()) {
        // Engine-internal spans correlate with the first live lane's
        // request; every joined request still gets its own serve.lane
        // span below.
        obs::TraceContextScope scope(
            batch->jobs[liveIndex.front()]->traceId);
        obs::Span span("serve.batch_run", "serve");
        try {
            lanes = sim::runBatchedGroup(live, _config.coalesceLanes);
        } catch (const std::exception &e) {
            batchError = e.what();
        } catch (...) {
            batchError = "unknown exception";
        }
    }
    const int64_t runEndUs = tracer.nowUs();

    size_t liveSlot = 0;
    for (size_t i = 0; i < n; ++i) {
        const JobPtr &job = batch->jobs[i];
        // The request's trace shows the dispatch gap and its own lane
        // span; recorded before complete() extracts the trace.
        if (_config.traceDepth > 0 && job->traceId != 0) {
            tracer.recordComplete("serve.batch_dispatch", "serve",
                                  batch->dispatchUs,
                                  runStartUs - batch->dispatchUs,
                                  obs::threadTrack(), job->traceId);
            tracer.recordComplete("serve.lane", "serve", runStartUs,
                                  runEndUs - runStartUs,
                                  obs::threadTrack(), job->traceId);
        }
        if (!preError[i].empty()) {
            _runFailures.inc();
            complete(job, false, std::move(preError[i]));
            continue;
        }
        const size_t slot = liveSlot++;
        if (!batchError.empty() || slot >= lanes.size()) {
            // Whole-batch failure (shape rejected, engine threw):
            // every lane resolves with the same error, each to its own
            // waiters only.
            _runFailures.inc();
            complete(job, false,
                     batchError.empty() ? "batched run produced no lane"
                                        : batchError);
            continue;
        }
        sim::LaneResult &lane = lanes[slot];
        if (lane.ok) {
            std::string text = sim::formatResult(lane.result);
            if (_store)
                _store->store(job->id, text);
            complete(job, true, std::move(text));
        } else {
            _runFailures.inc();
            complete(job, false, std::move(lane.error));
        }
    }
}

void
ExperimentService::collectorLoop()
{
    // The window as a steady_clock duration (rounded up: the collector
    // may fire late, never early enough to halve a real window).
    const auto window =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(0.0, _config.coalesceWaitMs)));

    std::unique_lock<std::mutex> lock(_mutex);
    while (!_stopCollector) {
        if (_parked.empty()) {
            _collectorWake.wait(lock, [this] {
                return _stopCollector || !_parked.empty();
            });
            continue;
        }
        auto deadline = std::chrono::steady_clock::time_point::max();
        for (const auto &entry : _parked)
            deadline = std::min(deadline, entry.second->oldest + window);
        const auto now = std::chrono::steady_clock::now();
        if (now < deadline) {
            _collectorWake.wait_until(lock, deadline);
            continue;
        }
        // Window expired for at least one queue: extract every expired
        // queue under the lock, dispatch partial batches outside it.
        std::vector<ParkedBatchPtr> expired;
        for (auto it = _parked.begin(); it != _parked.end();) {
            if (it->second->oldest + window <= now) {
                expired.push_back(it->second);
                _parkedCount -= it->second->jobs.size();
                it = _parked.erase(it);
            } else {
                ++it;
            }
        }
        _parkedGauge.set(double(_parkedCount));
        lock.unlock();
        for (const ParkedBatchPtr &batch : expired)
            dispatchBatch(batch, /*full=*/false);
        lock.lock();
    }
}

std::vector<obs::StatsRegistry::Entry>
ExperimentService::mergedSnapshot() const
{
    obs::StatsRegistry merged;
    merged.merge(_stats);
    if (_store)
        _store->addStats(merged);
    if (_hot)
        _hot->addStats(merged);
    return merged.snapshot();
}

std::string
ExperimentService::statsText() const
{
    obs::StatsRegistry merged;
    merged.merge(_stats);
    if (_store)
        _store->addStats(merged);
    if (_hot)
        _hot->addStats(merged);
    std::ostringstream os;
    merged.dumpText(os);
    return os.str();
}

std::string
ExperimentService::metricsText(bool skipWallClock) const
{
    obs::PrometheusOptions options;
    options.skipWallClock = skipWallClock;
    return obs::toPrometheusText(mergedSnapshot(), options);
}

std::string
ExperimentService::healthText() const
{
    size_t inflight = 0;
    size_t outstanding = 0;
    size_t traces = 0;
    size_t parked = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        inflight = _inflight.size();
        outstanding = _tickets.size();
        traces = _traces.size();
        parked = _parkedCount;
    }
    const int workers = _pool.threads();
    const size_t poolPending = _pool.pending();
    const double uptime = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - _startTime)
                              .count();

    std::ostringstream os;
    // Admission cap first (it is what makes SUBMIT bounce), then the
    // softer backlog rule: more in-flight canonical specs than 4x the
    // worker pool means submissions arrive faster than they drain.
    if (_config.maxPending > 0 && inflight >= _config.maxPending)
        os << "status: DEGRADED (at max_pending cap: " << inflight
           << " of " << _config.maxPending
           << " in-flight specs; SUBMIT answers ERR busy)\n";
    else if (inflight > size_t(workers) * 4)
        os << "status: DEGRADED (backlog: " << inflight
           << " in-flight specs on " << workers << " workers)\n";
    else
        os << "status: OK\n";
    os << "uptime_seconds: " << obs::formatDouble(uptime) << "\n";
    os << "workers: " << workers << "\n";
    os << "inflight_specs: " << inflight << "\n";
    os << "pool_pending_jobs: " << poolPending << "\n";
    os << "max_pending: " << _config.maxPending << "\n";
    os << "tickets_outstanding: " << outstanding << "\n";
    os << "coalesce_lanes: " << _config.coalesceLanes << "\n";
    if (_config.coalesceLanes >= 2) {
        os << "coalesce_wait_ms: "
           << obs::formatDouble(_config.coalesceWaitMs) << "\n";
        os << "parked_specs: " << parked << "\n";
    }
    os << "store: " << (_config.cacheDir.empty() ? "(none)"
                                                 : _config.cacheDir)
       << "\n";
    if (_hot) {
        const store::HotResultCache::Stats hs = _hot->stats();
        os << "hot_cache_bytes: " << hs.bytes << " of "
           << _hot->capacityBytes() << " (" << hs.entries
           << " entries, " << _hot->shards() << " shards)\n";
    } else {
        os << "hot_cache_bytes: (disabled)\n";
    }
    os << "trace_depth: " << _config.traceDepth << "\n";
    os << "traces_retained: " << traces << "\n";
    os << "sampling_interval_s: "
       << obs::formatDouble(_sampler ? _config.sampleIntervalSeconds : 0.0)
       << "\n";
    os << "build: "
#ifdef NDEBUG
          "release"
#else
          "debug"
#endif
          ", result format v"
       << sim::kResultFormatVersion << "\n";
    return os.str();
}

bool
ExperimentService::seriesText(const std::string &name, uint64_t maxPoints,
                              std::string &out, std::string &error) const
{
    if (!_sampler) {
        error = "time-series sampling is disabled on this server";
        return false;
    }
    const std::vector<obs::SeriesPoint> points =
        _sampler->series(name, size_t(maxPoints));
    if (points.empty()) {
        error = "unknown series '" + name +
                "' (stat names from METRICS; histograms expose "
                "::count and ::mean)";
        return false;
    }
    std::ostringstream os;
    for (const obs::SeriesPoint &p : points)
        os << p.unixMs << " " << obs::formatDouble(p.value) << "\n";
    out = os.str();
    return true;
}

bool
ExperimentService::traceJson(uint64_t ticket, std::string &out,
                             std::string &error) const
{
    if (_config.traceDepth <= 0) {
        error = "tracing is disabled on this server "
                "(start with --trace-depth)";
        return false;
    }
    std::lock_guard<std::mutex> lock(_mutex);
    // Newest-first: after a ticket-counter lifetime of requests the
    // recent ones are the ones asked about.
    for (auto it = _traces.rbegin(); it != _traces.rend(); ++it) {
        if (std::find(it->tickets.begin(), it->tickets.end(), ticket) !=
            it->tickets.end()) {
            out = it->json;
            return true;
        }
    }
    auto t = _tickets.find(ticket);
    if (t != _tickets.end() && !t->second->done) {
        error = "ticket " + std::to_string(ticket) +
                " is still in flight; WAIT for it first";
        return false;
    }
    error = "no retained trace for ticket " + std::to_string(ticket) +
            " (unknown, evicted, or submitted before tracing)";
    return false;
}

} // namespace serve
} // namespace coolair
