#ifndef COOLAIR_SERVE_PROTOCOL_HPP
#define COOLAIR_SERVE_PROTOCOL_HPP

/**
 * @file
 * The coolair_serve wire protocol: a line-oriented request/response
 * exchange simple enough to drive from netcat, strict enough to face
 * untrusted bytes (every number parses via util/parse — no silent
 * atoi acceptance, no size-header overflow).
 *
 * Requests are single lines (LF-terminated, a trailing CR is
 * tolerated):
 *
 *     PING                    liveness probe
 *     SUBMIT <spec-line>      enqueue an experiment; replies `OK <ticket>`
 *     WAIT <ticket>           block until done; replies a RESULT frame
 *     RUN <spec-line>         SUBMIT + WAIT in one round trip
 *     STATS                   server counters; replies a STATS frame
 *     METRICS                 Prometheus text exposition; METRICS frame
 *     SERIES <stat> [n]       last n points of one sampled time series
 *                             (default 120, capped at kMaxSeriesPoints);
 *                             replies a SERIES frame of
 *                             `<unix-ms> <value>` lines
 *     HEALTH                  liveness detail (status, uptime, workers,
 *                             backlog); replies a HEALTH frame
 *     TRACE <ticket>          Chrome-trace JSON of one completed
 *                             request; replies a TRACE frame
 *     SHUTDOWN                stop the daemon; replies `BYE`
 *
 * `<spec-line>` is ordinary sim/spec_io spec text with semicolons in
 * place of newlines (`site=newark; system=allnd; weeks=1`), so a whole
 * experiment fits in one request line.
 *
 * Responses are either one line —
 *
 *     PONG | OK <ticket> | ERR <message> | BYE
 *
 * (an overloaded server rejects SUBMIT/RUN with the structured
 * `ERR busy: ...` form — see kBusyPrefix — and HEALTH reports
 * DEGRADED until the backlog drains)
 *
 * — or a sized frame: a header line `RESULT <nbytes>` / `STATS
 * <nbytes>` followed by exactly nbytes of payload.  A RESULT payload
 * is the spec_io::formatResult text of the experiment, byte-identical
 * to what the same spec produces through experiment_cli or a sweep
 * (the determinism contract the serve layer inherits).  Frame sizes
 * are capped at kMaxFrameBytes: a corrupt or hostile header claiming
 * more is a protocol error, never a huge allocation.
 */

#include <cstdint>
#include <string>

namespace coolair {
namespace serve {

/** Hard cap on one response frame's payload (16 MiB). */
inline constexpr uint64_t kMaxFrameBytes = uint64_t(16) << 20;

/** Hard cap on one SERIES request's point count; a hostile count above
    this is a protocol error, never a large allocation. */
inline constexpr uint64_t kMaxSeriesPoints = 10000;

/**
 * Structured-rejection prefix: when the service refuses a SUBMIT/RUN
 * because its pending-job backlog is at the configured cap
 * (--max-pending), the ERR message starts with exactly this text
 * (`ERR busy: ...`).  Clients key retry/backoff on the prefix rather
 * than on the human-readable remainder; every other ERR (parse
 * failure, unknown ticket, ...) never uses it.
 */
inline constexpr const char kBusyPrefix[] = "busy: ";

/** Request kinds. */
enum class Verb
{
    Ping,
    Submit,
    Wait,
    Run,
    Stats,
    Metrics,
    Series,
    Health,
    Trace,
    Shutdown
};

/** One parsed request line. */
struct Request
{
    Verb verb = Verb::Ping;
    std::string arg;  ///< spec line (Submit/Run), ticket (Wait/Trace),
                      ///< or `<stat> [n]` (Series).
};

/**
 * Parse one request line.  Returns false (with @p error set) for an
 * unknown verb, a missing/forbidden argument, or an empty line.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/** Spec text from a request's `;`-separated spec line. */
std::string specTextFromArg(const std::string &arg);

/** `OK <ticket>` line. */
std::string frameOk(uint64_t ticket);

/** `ERR <message>` line (newlines in @p message flattened). */
std::string frameErr(const std::string &message);

/** Sized frame: `<tag> <nbytes>` header line plus the payload bytes. */
std::string framePayload(const std::string &tag,
                         const std::string &payload);

/**
 * Parse a sized-frame header line (`RESULT 123`, `STATS 456`).
 * Strict: the byte count must be pure digits, fit in 64 bits, and not
 * exceed kMaxFrameBytes — a wrapped or absurd count is a framing
 * error, not a mis-sized read.
 */
bool parsePayloadHeader(const std::string &line, std::string &tag,
                        uint64_t &bytes, std::string &error);

} // namespace serve
} // namespace coolair

#endif // COOLAIR_SERVE_PROTOCOL_HPP
