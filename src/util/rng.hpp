#ifndef COOLAIR_UTIL_RNG_HPP
#define COOLAIR_UTIL_RNG_HPP

/**
 * @file
 * Deterministic, named random-number streams.
 *
 * Every stochastic element of the simulator (weather noise, trace
 * generation, sensor noise) draws from its own named stream so that
 * experiments are exactly reproducible and adding a consumer of randomness
 * in one module never perturbs another module's draws.
 */

#include <cstdint>
#include <string>

namespace coolair {
namespace util {

/**
 * A small, fast, seedable PRNG (xoshiro256**).  We implement it directly
 * rather than using std::mt19937_64 so stream state is tiny and splitting
 * is cheap and well defined across platforms.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /**
     * Construct a named sub-stream: the stream name is hashed (FNV-1a)
     * and mixed into the seed, decorrelating streams that share a root
     * seed.
     */
    Rng(uint64_t root_seed, const std::string &stream_name);

    /** Next raw 64-bit value.  Inline: the draw loops that gather
        uniforms for batched Box-Muller kernels call this per draw. */
    uint64_t next()
    {
        const uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const uint64_t t = _state[1] << 17;

        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 high-quality bits -> double in [0, 1).
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive (unbiased, via rejection). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal deviate (Box–Muller, cached spare). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Exponential deviate with the given mean (inverse rate). */
    double exponential(double mean);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /**
     * Log-normal deviate parameterized by the mean and standard deviation
     * of the *underlying normal* distribution.
     */
    double logNormal(double mu, double sigma);

    /** Fork an independent child stream identified by @p name. */
    Rng fork(const std::string &name);

  private:
    uint64_t _state[4];
    bool _haveSpare = false;
    double _spare = 0.0;

    static uint64_t rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t splitMix64(uint64_t &x);
    static uint64_t fnv1a(const std::string &s);
};

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_RNG_HPP
