#ifndef COOLAIR_UTIL_JSON_HPP
#define COOLAIR_UTIL_JSON_HPP

/**
 * @file
 * Minimal JSON string escaping shared by every writer in the tree (obs
 * dumps, run reports, the structured logger).  Lives in util so the
 * logger can emit JSON without depending on obs; obs::jsonQuote
 * delegates here.
 *
 * jsonUnquote is the strict inverse: it exists so tests can prove the
 * escaping round-trips exactly (jsonUnquote(jsonQuote(s)) == s for any
 * byte string), and so lightweight clients can pull string fields out
 * of our own output without a JSON library.
 */

#include <string>

namespace coolair {
namespace util {

/** Escape and quote @p s as one JSON string token. */
std::string jsonQuote(const std::string &s);

/**
 * Parse one quoted JSON string token (the whole of @p token, leading
 * and trailing quote included) back into raw bytes.  Strict: returns
 * false on a missing quote, a truncated or unknown escape, or trailing
 * characters after the closing quote.  \uXXXX escapes are accepted for
 * the Basic Latin range our writers emit (00-7f); anything above that
 * range is refused rather than mis-decoded.
 */
bool jsonUnquote(const std::string &token, std::string &out);

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_JSON_HPP
