#ifndef COOLAIR_UTIL_SIM_TIME_HPP
#define COOLAIR_UTIL_SIM_TIME_HPP

/**
 * @file
 * Simulation time representation.
 *
 * CoolAir simulations run over (portions of) a calendar year.  SimTime
 * counts whole seconds since 00:00 on January 1st of a non-leap "typical
 * meteorological year" (365 days), mirroring how TMY weather datasets are
 * indexed.  All calendar arithmetic (day of year, hour of day, month) is
 * derived from that single integer, so time never drifts.
 */

#include <cstdint>
#include <string>

namespace coolair {
namespace util {

/** Number of seconds in a minute. */
constexpr int64_t kSecondsPerMinute = 60;
/** Number of seconds in an hour. */
constexpr int64_t kSecondsPerHour = 3600;
/** Number of seconds in a day. */
constexpr int64_t kSecondsPerDay = 86400;
/** Number of days in the typical meteorological year (non-leap). */
constexpr int kDaysPerYear = 365;
/** Number of seconds in the typical meteorological year. */
constexpr int64_t kSecondsPerYear = kSecondsPerDay * kDaysPerYear;

/**
 * A point in simulated time: whole seconds since 00:00 Jan 1 of a
 * non-leap year.  Negative values are permitted for relative arithmetic
 * but most APIs expect times within [0, kSecondsPerYear).
 */
class SimTime
{
  public:
    /** Construct time zero (midnight, January 1st). */
    constexpr SimTime() : _seconds(0) {}

    /** Construct from an absolute second count. */
    explicit constexpr SimTime(int64_t seconds) : _seconds(seconds) {}

    /** Build a SimTime from calendar components within the year. */
    static constexpr SimTime
    fromCalendar(int day_of_year, int hour, int minute = 0, int second = 0)
    {
        return SimTime(int64_t(day_of_year) * kSecondsPerDay +
                       int64_t(hour) * kSecondsPerHour +
                       int64_t(minute) * kSecondsPerMinute + second);
    }

    /** Absolute seconds since the year origin. */
    constexpr int64_t seconds() const { return _seconds; }

    /** Fractional hours since the year origin. */
    constexpr double hours() const
    {
        return double(_seconds) / double(kSecondsPerHour);
    }

    /** Fractional days since the year origin. */
    constexpr double days() const
    {
        return double(_seconds) / double(kSecondsPerDay);
    }

    /** Day of year in [0, 364] (wraps for times beyond one year). */
    constexpr int dayOfYear() const
    {
        // Floor division so negative times land on the preceding day.
        int64_t day = _seconds / kSecondsPerDay;
        if (_seconds % kSecondsPerDay < 0)
            --day;
        int64_t wrapped = ((day % kDaysPerYear) + kDaysPerYear) % kDaysPerYear;
        return int(wrapped);
    }

    /** Second within the current day, in [0, 86399]. */
    constexpr int secondOfDay() const
    {
        int64_t s = ((_seconds % kSecondsPerDay) + kSecondsPerDay) %
                    kSecondsPerDay;
        return int(s);
    }

    /** Hour within the current day, in [0, 23]. */
    constexpr int hourOfDay() const
    {
        return secondOfDay() / int(kSecondsPerHour);
    }

    /** Fractional hour within the current day, in [0, 24). */
    constexpr double fractionalHourOfDay() const
    {
        return double(secondOfDay()) / double(kSecondsPerHour);
    }

    /** Minute within the current hour, in [0, 59]. */
    constexpr int minuteOfHour() const
    {
        return (secondOfDay() / int(kSecondsPerMinute)) % 60;
    }

    /** Month index in [0, 11], derived from day of year. */
    int month() const;

    /** SimTime at the start (midnight) of the current day. */
    constexpr SimTime startOfDay() const
    {
        return SimTime(_seconds - secondOfDay());
    }

    /** Render as "dDDD hh:mm:ss" for logs and traces. */
    std::string str() const;

    constexpr SimTime operator+(int64_t s) const
    {
        return SimTime(_seconds + s);
    }
    constexpr SimTime operator-(int64_t s) const
    {
        return SimTime(_seconds - s);
    }
    constexpr int64_t operator-(SimTime other) const
    {
        return _seconds - other._seconds;
    }
    SimTime &operator+=(int64_t s) { _seconds += s; return *this; }

    constexpr auto operator<=>(const SimTime &) const = default;

  private:
    int64_t _seconds;
};

/** Cumulative day-of-year at the start of each month (non-leap). */
extern const int kMonthStartDay[13];

/** Three-letter month name for a month index in [0, 11]. */
const char *monthName(int month);

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_SIM_TIME_HPP
