#ifndef COOLAIR_UTIL_TABLE_HPP
#define COOLAIR_UTIL_TABLE_HPP

/**
 * @file
 * Plain-text table and CSV emitters used by the bench harnesses to print
 * the paper's tables/figure series, and to dump traces for plotting.
 */

#include <ostream>
#include <string>
#include <vector>

namespace coolair {
namespace util {

/**
 * A simple column-aligned text table.  Rows are collected as strings and
 * rendered with per-column padding, markdown-style.
 */
class TextTable
{
  public:
    /** Construct with a header row. */
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with @p precision decimals. */
    static std::string fmt(double value, int precision = 2);

    /** Render the table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::vector<std::string>> _rows;
};

/**
 * Streaming CSV writer.  Used by examples to dump time series that can be
 * plotted externally.
 */
class CsvWriter
{
  public:
    /** Bind to an output stream and write the header line. */
    CsvWriter(std::ostream &os, const std::vector<std::string> &header);

    /** Write one data row (doubles rendered with 6 significant digits). */
    void writeRow(const std::vector<double> &values);

    /** Write one data row of preformatted cells. */
    void writeRow(const std::vector<std::string> &cells);

  private:
    std::ostream &_os;
    size_t _arity;
};

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_TABLE_HPP
