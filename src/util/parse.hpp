#ifndef COOLAIR_UTIL_PARSE_HPP
#define COOLAIR_UTIL_PARSE_HPP

/**
 * @file
 * Strict text-to-number parsing for untrusted input.
 *
 * The C `atoi`/`atof` family silently accepts garbage ("8x" parses as
 * 8, "oops" as 0), which turns typo'd environment variables, malformed
 * CSV cells, and corrupt protocol headers into plausible-looking
 * numbers.  Every parser here consumes the *entire* string or fails:
 * no value is ever fabricated from a partial match, and overflow is an
 * error rather than a wrap.
 *
 * These are the building blocks behind spec parsing (sim/spec_io),
 * weather CSV ingestion, the result store's entry framing, and the
 * serve daemon's wire protocol — everywhere bytes cross a trust
 * boundary.
 */

#include <cstdint>
#include <limits>
#include <string>

namespace coolair {
namespace util {

/**
 * Parse @p s as a base-10 integer (optional leading '-'/'+').  Returns
 * true and sets @p out only when the whole string is a valid in-range
 * number; leading/trailing junk, empty input, and overflow all fail.
 */
bool parseInt(const std::string &s, long long &out);

/**
 * Parse @p s as a double.  Returns true and sets @p out only when the
 * whole string parses (strtod-to-end, the sim/spec_io style); "12abc",
 * "", and lone "-" all fail.  Infinities and NaN spellings are
 * rejected too — recorded data and protocol fields never legitimately
 * contain them.
 */
bool parseDouble(const std::string &s, double &out);

/**
 * Parse @p s as an unsigned byte/element count: digits only, no sign,
 * no whitespace.  Returns true only when the value fits and is at most
 * @p max; a value that would overflow 64 bits (or exceed the cap) is
 * an error, never a wrap.  This is the parser for size headers read
 * from disk or the network, where a wrapped count mis-frames the
 * payload that follows.
 */
bool parseSize(const std::string &s, uint64_t &out,
               uint64_t max = std::numeric_limits<uint64_t>::max());

/**
 * Read integer environment variable @p name.  Unset (or empty) yields
 * @p fallback silently; a set-but-malformed or out-of-[@p min, @p max]
 * value yields @p fallback with a warn() naming the variable and the
 * offending text — a typo'd COOLAIR_THREADS=8x must not silently run
 * 8 threads, and COOLAIR_WORLD_SITES=-1 must not wrap to a huge count.
 */
int envInt(const char *name, int fallback,
           int min = std::numeric_limits<int>::min(),
           int max = std::numeric_limits<int>::max());

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_PARSE_HPP
