#include "util/parse.hpp"

#include <cerrno>
#include <cstdlib>

#include "util/logging.hpp"

namespace coolair {
namespace util {

bool
parseInt(const std::string &s, long long &out)
{
    if (s.empty())
        return false;
    // strtoll skips leading whitespace; " 1" is not a complete number.
    const char c0 = s[0];
    if (!(c0 == '-' || c0 == '+' || (c0 >= '0' && c0 <= '9')))
        return false;
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseDouble(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    // strtod accepts "inf"/"nan" spellings and hex floats; none of
    // those belong in recorded data, so require a leading digit, sign,
    // or decimal point and check the result is finite.
    const char c = s[0];
    if (!(c == '-' || c == '+' || c == '.' || (c >= '0' && c <= '9')))
        return false;
    if (s.find_first_of("xX") != std::string::npos)  // hex floats
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    if (!(v == v) || v > std::numeric_limits<double>::max() ||
        v < -std::numeric_limits<double>::max())
        return false;
    out = v;
    return true;
}

bool
parseSize(const std::string &s, uint64_t &out, uint64_t max)
{
    if (s.empty())
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        const uint64_t d = uint64_t(c - '0');
        // Would v * 10 + d exceed max (or wrap 64 bits)?  Checked
        // before the multiply, so the accumulator itself never wraps.
        if (v > max / 10 || (v == max / 10 && d > max % 10))
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

int
envInt(const char *name, int fallback, int min, int max)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return fallback;
    long long v = 0;
    if (!parseInt(env, v) || v < min || v > max) {
        warn(std::string(name) + "='" + env +
             "' is not an integer in [" + std::to_string(min) + ", " +
             std::to_string(max) + "]; using " + std::to_string(fallback));
        return fallback;
    }
    return int(v);
}

} // namespace util
} // namespace coolair
