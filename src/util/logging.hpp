#ifndef COOLAIR_UTIL_LOGGING_HPP
#define COOLAIR_UTIL_LOGGING_HPP

/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user errors (bad configuration), warn() and
 * inform() for status reporting.
 */

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace coolair {
namespace util {

/** Severity levels for runtime log output. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error
};

/** Output shape of one log line. */
enum class LogFormat
{
    /** `[coolair:level] msg key=value ...` — the human default. */
    Text,

    /**
     * One JSON object per line: {"ts": "...", "level": "...",
     * "msg": "...", "fields": {...}} — machine-parseable, strictly
     * escaped (util::jsonQuote), selected by COOLAIR_LOG_FORMAT=json.
     */
    Json
};

/** One structured key/value attached to a log line. */
struct LogField
{
    std::string key;
    std::string value;
};

/**
 * Global log configuration.  The level defaults to Warn so that library
 * consumers are not spammed; tests and benches raise it as needed, and
 * the COOLAIR_LOG_LEVEL environment variable (debug/info/warn/error)
 * overrides the default at first use.  COOLAIR_LOG_FORMAT=json switches
 * every line to one strictly-escaped JSON object (LogFormat::Json).
 *
 * Thread-safe: messages are formatted locally and emitted whole under a
 * mutex, so concurrent workers never interleave partial lines.
 */
class Logger
{
  public:
    /** Return the process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum level that gets emitted. */
    void setLevel(LogLevel level)
    {
        _level.store(level, std::memory_order_relaxed);
    }

    /** Current minimum level. */
    LogLevel level() const { return _level.load(std::memory_order_relaxed); }

    /** Set the output format (overrides COOLAIR_LOG_FORMAT). */
    void setFormat(LogFormat format)
    {
        _format.store(format, std::memory_order_relaxed);
    }

    /** Current output format. */
    LogFormat format() const
    {
        return _format.load(std::memory_order_relaxed);
    }

    /** Emit a message if @p level is at or above the configured level. */
    void log(LogLevel level, const std::string &msg);

    /**
     * Emit a message with structured fields.  Text format appends
     * `key=value` pairs; JSON format nests them under "fields" with
     * both keys and values escaped, so any byte string round-trips.
     */
    void log(LogLevel level, const std::string &msg,
             const std::vector<LogField> &fields);

    /**
     * Render one log line exactly as log() would emit it (minus the
     * trailing newline), regardless of the configured level.  Exposed
     * so tests can lock the JSON shape without capturing stderr.
     */
    std::string formatLine(LogLevel level, const std::string &msg,
                           const std::vector<LogField> &fields) const;

  private:
    Logger(LogLevel level, LogFormat format)
        : _level(level), _format(format)
    {
    }

    std::atomic<LogLevel> _level;
    std::atomic<LogFormat> _format;
};

/** Emit an informational message (normal operation). */
void inform(const std::string &msg);

/** Emit a warning (questionable but survivable condition). */
void warn(const std::string &msg);

/** Emit a debug message (verbose tracing). */
void debug(const std::string &msg);

/**
 * Abort due to an internal invariant violation — a bug in this library,
 * never the user's fault.  Calls std::abort().
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit due to a user error (bad configuration, invalid arguments).
 * Calls std::exit(1).
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_LOGGING_HPP
