#ifndef COOLAIR_UTIL_LOGGING_HPP
#define COOLAIR_UTIL_LOGGING_HPP

/**
 * @file
 * Logging and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs), fatal() for user errors (bad configuration), warn() and
 * inform() for status reporting.
 */

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace coolair {
namespace util {

/** Severity levels for runtime log output. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error
};

/**
 * Global log configuration.  The level defaults to Warn so that library
 * consumers are not spammed; tests and benches raise it as needed, and
 * the COOLAIR_LOG_LEVEL environment variable (debug/info/warn/error)
 * overrides the default at first use.
 *
 * Thread-safe: messages are formatted locally and emitted whole under a
 * mutex, so concurrent workers never interleave partial lines.
 */
class Logger
{
  public:
    /** Return the process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum level that gets emitted. */
    void setLevel(LogLevel level)
    {
        _level.store(level, std::memory_order_relaxed);
    }

    /** Current minimum level. */
    LogLevel level() const { return _level.load(std::memory_order_relaxed); }

    /** Emit a message if @p level is at or above the configured level. */
    void log(LogLevel level, const std::string &msg);

  private:
    explicit Logger(LogLevel level) : _level(level) {}

    std::atomic<LogLevel> _level;
};

/** Emit an informational message (normal operation). */
void inform(const std::string &msg);

/** Emit a warning (questionable but survivable condition). */
void warn(const std::string &msg);

/** Emit a debug message (verbose tracing). */
void debug(const std::string &msg);

/**
 * Abort due to an internal invariant violation — a bug in this library,
 * never the user's fault.  Calls std::abort().
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Exit due to a user error (bad configuration, invalid arguments).
 * Calls std::exit(1).
 */
[[noreturn]] void fatal(const std::string &msg);

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_LOGGING_HPP
