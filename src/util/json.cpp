#include "util/json.hpp"

#include <cstdio>

namespace coolair {
namespace util {

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

/** One hex digit's value, or -1. */
int
hexVal(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // anonymous namespace

bool
jsonUnquote(const std::string &token, std::string &out)
{
    out.clear();
    if (token.size() < 2 || token.front() != '"' || token.back() != '"')
        return false;
    const size_t end = token.size() - 1;
    size_t i = 1;
    while (i < end) {
        char c = token[i];
        if (c == '"')
            return false;  // an unescaped quote before the end
        if (c != '\\') {
            out.push_back(c);
            ++i;
            continue;
        }
        if (i + 1 >= end)
            return false;  // dangling backslash
        char esc = token[i + 1];
        switch (esc) {
          case '"':  out.push_back('"');  i += 2; break;
          case '\\': out.push_back('\\'); i += 2; break;
          case '/':  out.push_back('/');  i += 2; break;
          case 'n':  out.push_back('\n'); i += 2; break;
          case 'r':  out.push_back('\r'); i += 2; break;
          case 't':  out.push_back('\t'); i += 2; break;
          case 'b':  out.push_back('\b'); i += 2; break;
          case 'f':  out.push_back('\f'); i += 2; break;
          case 'u': {
            if (i + 6 > end)
                return false;
            int v = 0;
            for (int d = 0; d < 4; ++d) {
                int h = hexVal(token[i + 2 + size_t(d)]);
                if (h < 0)
                    return false;
                v = v * 16 + h;
            }
            if (v > 0x7f)
                return false;  // our writers only emit Basic Latin
            out.push_back(char(v));
            i += 6;
            break;
          }
          default:
            return false;
        }
    }
    return true;
}

} // namespace util
} // namespace coolair
