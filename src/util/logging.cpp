#include "util/logging.hpp"

namespace coolair {
namespace util {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(_level))
        return;

    const char *tag = "";
    switch (level) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Error: tag = "error"; break;
    }
    std::cerr << "[coolair:" << tag << "] " << msg << "\n";
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
debug(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

void
panic(const std::string &msg)
{
    std::cerr << "[coolair:panic] " << msg << std::endl;
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::cerr << "[coolair:fatal] " << msg << std::endl;
    std::exit(1);
}

} // namespace util
} // namespace coolair
