#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include "util/json.hpp"

namespace coolair {
namespace util {

namespace {

/** Serializes stderr emission so worker threads never interleave
    partial lines. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/** COOLAIR_LOG_LEVEL=debug|info|warn|error (unset/invalid: Warn). */
LogLevel
levelFromEnv()
{
    const char *env = std::getenv("COOLAIR_LOG_LEVEL");
    if (!env)
        return LogLevel::Warn;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    return LogLevel::Warn;
}

/** COOLAIR_LOG_FORMAT=json|text (unset/invalid: Text). */
LogFormat
formatFromEnv()
{
    const char *env = std::getenv("COOLAIR_LOG_FORMAT");
    if (env && std::strcmp(env, "json") == 0)
        return LogFormat::Json;
    return LogFormat::Text;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "unknown";
}

/** Wall-clock UTC timestamp with millisecond precision (ISO 8601). */
std::string
isoTimestamp()
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const int ms = int(std::chrono::duration_cast<std::chrono::milliseconds>(
                           now.time_since_epoch())
                           .count() %
                       1000);
    std::tm tm{};
    gmtime_r(&secs, &tm);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                  tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                  tm.tm_min, tm.tm_sec, ms);
    return buf;
}

} // anonymous namespace

Logger &
Logger::instance()
{
    static Logger logger(levelFromEnv(), formatFromEnv());
    return logger;
}

std::string
Logger::formatLine(LogLevel level, const std::string &msg,
                   const std::vector<LogField> &fields) const
{
    std::ostringstream line;
    if (format() == LogFormat::Json) {
        line << "{\"ts\": " << jsonQuote(isoTimestamp())
             << ", \"level\": " << jsonQuote(levelTag(level))
             << ", \"msg\": " << jsonQuote(msg);
        if (!fields.empty()) {
            line << ", \"fields\": {";
            bool first = true;
            for (const LogField &f : fields) {
                if (!first)
                    line << ", ";
                first = false;
                line << jsonQuote(f.key) << ": " << jsonQuote(f.value);
            }
            line << "}";
        }
        line << "}";
    } else {
        line << "[coolair:" << levelTag(level) << "] " << msg;
        for (const LogField &f : fields)
            line << " " << f.key << "=" << f.value;
    }
    return line.str();
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    log(level, msg, {});
}

void
Logger::log(LogLevel level, const std::string &msg,
            const std::vector<LogField> &fields)
{
    if (static_cast<int>(level) < static_cast<int>(this->level()))
        return;

    // Format the whole line locally, then emit it in one shot under the
    // mutex: concurrent workers get whole lines, never interleaved
    // fragments.
    const std::string text = formatLine(level, msg, fields) + "\n";
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << text;
    }
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
debug(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

void
panic(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "[coolair:panic] " << msg << std::endl;
    }
    std::abort();
}

void
fatal(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "[coolair:fatal] " << msg << std::endl;
    }
    std::exit(1);
}

} // namespace util
} // namespace coolair
