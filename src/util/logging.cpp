#include "util/logging.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace coolair {
namespace util {

namespace {

/** Serializes stderr emission so worker threads never interleave
    partial lines. */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/** COOLAIR_LOG_LEVEL=debug|info|warn|error (unset/invalid: Warn). */
LogLevel
levelFromEnv()
{
    const char *env = std::getenv("COOLAIR_LOG_LEVEL");
    if (!env)
        return LogLevel::Warn;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "error") == 0)
        return LogLevel::Error;
    return LogLevel::Warn;
}

} // anonymous namespace

Logger &
Logger::instance()
{
    static Logger logger(levelFromEnv());
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(this->level()))
        return;

    const char *tag = "";
    switch (level) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Error: tag = "error"; break;
    }

    // Format the whole line locally, then emit it in one shot under the
    // mutex: concurrent workers get whole lines, never interleaved
    // fragments.
    std::ostringstream line;
    line << "[coolair:" << tag << "] " << msg << "\n";
    const std::string text = line.str();
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << text;
    }
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
debug(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

void
panic(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "[coolair:panic] " << msg << std::endl;
    }
    std::abort();
}

void
fatal(const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::cerr << "[coolair:fatal] " << msg << std::endl;
    }
    std::exit(1);
}

} // namespace util
} // namespace coolair
