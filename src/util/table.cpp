#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "util/logging.hpp"

namespace coolair {
namespace util {

TextTable::TextTable(std::vector<std::string> header)
{
    if (header.empty())
        panic("TextTable: header must be non-empty");
    _rows.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != _rows.front().size())
        panic("TextTable::addRow: arity mismatch");
    _rows.push_back(std::move(row));
}

std::string
TextTable::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(_rows.front().size(), 0);
    for (const auto &row : _rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c)
            os << " " << std::left << std::setw(int(widths[c])) << row[c]
               << " |";
        os << "\n";
    };

    print_row(_rows.front());
    os << "|";
    for (size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (size_t r = 1; r < _rows.size(); ++r)
        print_row(_rows[r]);
}

CsvWriter::CsvWriter(std::ostream &os, const std::vector<std::string> &header)
    : _os(os), _arity(header.size())
{
    if (header.empty())
        panic("CsvWriter: header must be non-empty");
    for (size_t i = 0; i < header.size(); ++i) {
        if (i)
            _os << ",";
        _os << header[i];
    }
    _os << "\n";
}

void
CsvWriter::writeRow(const std::vector<double> &values)
{
    if (values.size() != _arity)
        panic("CsvWriter::writeRow: arity mismatch");
    char buf[64];
    for (size_t i = 0; i < values.size(); ++i) {
        if (i)
            _os << ",";
        std::snprintf(buf, sizeof(buf), "%.6g", values[i]);
        _os << buf;
    }
    _os << "\n";
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (cells.size() != _arity)
        panic("CsvWriter::writeRow: arity mismatch");
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i)
            _os << ",";
        _os << cells[i];
    }
    _os << "\n";
}

} // namespace util
} // namespace coolair
