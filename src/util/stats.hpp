#ifndef COOLAIR_UTIL_STATS_HPP
#define COOLAIR_UTIL_STATS_HPP

/**
 * @file
 * Statistics accumulators used across metrics, validation, and benches:
 * streaming mean/variance/min/max, empirical CDFs, and daily-range
 * trackers (the paper's central temperature-variation metric).
 */

#include <algorithm>
#include <cstddef>
#include <mutex>
#include <vector>

namespace coolair {
namespace util {

/**
 * Streaming scalar statistics: count, mean, variance (Welford), min, max.
 */
class RunningStats
{
  public:
    /** Add one sample.  Inline: the metrics collector calls this for
        every pod sensor of every sample. */
    void add(double x)
    {
        if (_count == 0) {
            _min = x;
            _max = x;
        } else {
            _min = std::min(_min, x);
            _max = std::max(_max, x);
        }
        ++_count;
        double delta = x - _mean;
        _mean += delta / double(_count);
        _m2 += delta * (x - _mean);
    }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of samples added. */
    size_t count() const { return _count; }

    /** Sample mean; 0 when empty. */
    double mean() const { return _mean; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Minimum sample; +inf when empty. */
    double min() const { return _min; }

    /** Maximum sample; -inf when empty. */
    double max() const { return _max; }

    /** max() - min(); 0 when empty. */
    double range() const;

    /** Sum of all samples. */
    double sum() const { return _mean * double(_count); }

  private:
    size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Empirical cumulative distribution over stored samples.  Used for the
 * Figure 5 model-error CDFs.
 *
 * Thread safety: concurrent const accesses are safe (the lazy sort is
 * guarded by an internal mutex, so two readers never race).  add() and
 * merge() mutate and must not run concurrently with other accesses,
 * like any standard container.
 */
class EmpiricalCdf
{
  public:
    EmpiricalCdf() = default;
    EmpiricalCdf(const EmpiricalCdf &other);
    EmpiricalCdf &operator=(const EmpiricalCdf &other);

    /** Add one sample. */
    void add(double x);

    /** Append all of @p other's samples (cross-thread aggregation). */
    void merge(const EmpiricalCdf &other);

    /** Number of samples. */
    size_t count() const { return _samples.size(); }

    /** Fraction of samples <= x, in [0, 1]. */
    double fractionAtOrBelow(double x) const;

    /**
     * Value at quantile @p q in [0, 1] (nearest-rank).  Returns 0 when
     * empty.
     */
    double quantile(double q) const;

    /** All samples, sorted ascending. */
    const std::vector<double> &sorted() const;

  private:
    void ensureSorted() const;

    mutable std::mutex _sortMutex;
    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
};

/**
 * Tracks the paper's "worst daily range" metric: per day, the max-minus-min
 * of each sensor; across sensors, the worst; across days, the average and
 * the min/max of those worst ranges (Figure 9's bars and whiskers).
 */
class DailyRangeTracker
{
  public:
    /** Construct for @p num_sensors temperature sensors. */
    explicit DailyRangeTracker(size_t num_sensors);

    /**
     * Record one reading for @p sensor on day @p day_index.  Days must be
     * fed in non-decreasing order; moving to a new day finalizes the
     * previous one.
     */
    void record(int day_index, size_t sensor, double value)
    {
        if (sensor >= _numSensors)
            recordPanic(true);
        if (_dayOpen && day_index < _currentDay)
            recordPanic(false);

        if (!_dayOpen) {
            _currentDay = day_index;
            _dayOpen = true;
        } else if (day_index != _currentDay) {
            closeDay();
            _currentDay = day_index;
            _dayOpen = true;
        }
        if (_daySeen[sensor]) {
            _dayMin[sensor] = std::min(_dayMin[sensor], value);
            _dayMax[sensor] = std::max(_dayMax[sensor], value);
        } else {
            _dayMin[sensor] = value;
            _dayMax[sensor] = value;
            _daySeen[sensor] = 1;
        }
    }

    /** Finalize the currently open day (call once at end of run). */
    void finish();

    /** Average over days of the worst per-day sensor range. */
    double averageWorstDailyRange() const;

    /** Smallest worst-daily-range across days. */
    double minWorstDailyRange() const;

    /** Largest worst-daily-range across days. */
    double maxWorstDailyRange() const;

    /** Number of completed days. */
    size_t dayCount() const { return _worstRanges.size(); }

    /** Worst per-day ranges for each completed day. */
    const std::vector<double> &worstRanges() const { return _worstRanges; }

  private:
    void closeDay();
    [[noreturn]] static void recordPanic(bool out_of_range);

    size_t _numSensors;
    int _currentDay = -1;
    bool _dayOpen = false;
    // Per-sensor min/max of the open day.  record() sits on the
    // engine's per-sample path for every pod, so the day state is two
    // flat arrays (plus a seen flag) rather than full RunningStats —
    // only the range survives closeDay().
    std::vector<double> _dayMin;
    std::vector<double> _dayMax;
    std::vector<unsigned char> _daySeen;
    std::vector<double> _worstRanges;
};

/** Linear interpolation between (x0, y0) and (x1, y1) at x. */
inline double
lerp(double x0, double y0, double x1, double y1, double x)
{
    if (x1 == x0)
        return y0;
    double t = (x - x0) / (x1 - x0);
    return y0 + t * (y1 - y0);
}

/** Clamp @p x to [lo, hi]. */
inline double
clamp(double x, double lo, double hi)
{
    return std::max(lo, std::min(hi, x));
}

} // namespace util
} // namespace coolair

#endif // COOLAIR_UTIL_STATS_HPP
