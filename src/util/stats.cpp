#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace coolair {
namespace util {

void
RunningStats::merge(const RunningStats &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    size_t n = _count + other._count;
    double delta = other._mean - _mean;
    double mean = _mean + delta * double(other._count) / double(n);
    _m2 = _m2 + other._m2 +
          delta * delta * double(_count) * double(other._count) / double(n);
    _mean = mean;
    _count = n;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / double(_count - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::range() const
{
    if (_count == 0)
        return 0.0;
    return _max - _min;
}

EmpiricalCdf::EmpiricalCdf(const EmpiricalCdf &other)
{
    std::lock_guard<std::mutex> lock(other._sortMutex);
    _samples = other._samples;
    _sorted = other._sorted;
}

EmpiricalCdf &
EmpiricalCdf::operator=(const EmpiricalCdf &other)
{
    if (this == &other)
        return *this;
    std::scoped_lock lock(_sortMutex, other._sortMutex);
    _samples = other._samples;
    _sorted = other._sorted;
    return *this;
}

void
EmpiricalCdf::add(double x)
{
    _samples.push_back(x);
    _sorted = false;
}

void
EmpiricalCdf::merge(const EmpiricalCdf &other)
{
    if (this == &other) {
        // Self-merge doubles every sample.
        std::vector<double> copy = _samples;
        _samples.insert(_samples.end(), copy.begin(), copy.end());
    } else {
        std::lock_guard<std::mutex> lock(other._sortMutex);
        _samples.insert(_samples.end(), other._samples.begin(),
                        other._samples.end());
    }
    _sorted = _samples.size() <= 1;
}

void
EmpiricalCdf::ensureSorted() const
{
    // Serializes the lazy sort so concurrent const readers never race on
    // the mutable state; once sorted, reads need no further locking
    // (absent a concurrent add/merge, which the contract forbids).
    std::lock_guard<std::mutex> lock(_sortMutex);
    if (!_sorted) {
        std::sort(_samples.begin(), _samples.end());
        _sorted = true;
    }
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    if (_samples.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(_samples.begin(), _samples.end(), x);
    return double(it - _samples.begin()) / double(_samples.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    if (_samples.empty())
        return 0.0;
    ensureSorted();
    q = clamp(q, 0.0, 1.0);
    size_t idx = size_t(q * double(_samples.size() - 1) + 0.5);
    return _samples[idx];
}

const std::vector<double> &
EmpiricalCdf::sorted() const
{
    ensureSorted();
    return _samples;
}

DailyRangeTracker::DailyRangeTracker(size_t num_sensors)
    : _numSensors(num_sensors),
      _dayMin(num_sensors, 0.0),
      _dayMax(num_sensors, 0.0),
      _daySeen(num_sensors, 0)
{
    if (num_sensors == 0)
        panic("DailyRangeTracker: need at least one sensor");
}

void
DailyRangeTracker::recordPanic(bool out_of_range)
{
    panic(out_of_range
              ? "DailyRangeTracker::record: sensor index out of range"
              : "DailyRangeTracker::record: days must be non-decreasing");
}

void
DailyRangeTracker::finish()
{
    if (_dayOpen)
        closeDay();
}

void
DailyRangeTracker::closeDay()
{
    double worst = 0.0;
    for (size_t s = 0; s < _numSensors; ++s) {
        if (_daySeen[s])
            worst = std::max(worst, _dayMax[s] - _dayMin[s]);
        _daySeen[s] = 0;
    }
    _worstRanges.push_back(worst);
    _dayOpen = false;
}

double
DailyRangeTracker::averageWorstDailyRange() const
{
    if (_worstRanges.empty())
        return 0.0;
    double sum = 0.0;
    for (double r : _worstRanges)
        sum += r;
    return sum / double(_worstRanges.size());
}

double
DailyRangeTracker::minWorstDailyRange() const
{
    if (_worstRanges.empty())
        return 0.0;
    return *std::min_element(_worstRanges.begin(), _worstRanges.end());
}

double
DailyRangeTracker::maxWorstDailyRange() const
{
    if (_worstRanges.empty())
        return 0.0;
    return *std::max_element(_worstRanges.begin(), _worstRanges.end());
}

} // namespace util
} // namespace coolair
