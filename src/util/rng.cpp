#include "util/rng.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace util {

uint64_t
Rng::splitMix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
Rng::fnv1a(const std::string &s)
{
    uint64_t h = 0xCBF29CE484222325ULL;
    for (char c : s) {
        h ^= uint64_t(uint8_t(c));
        h *= 0x100000001B3ULL;
    }
    return h;
}

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &word : _state)
        word = splitMix64(x);
}

Rng::Rng(uint64_t root_seed, const std::string &stream_name)
    : Rng(root_seed ^ fnv1a(stream_name))
{
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: lo > hi");
    uint64_t span = uint64_t(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return int64_t(next());
    // Rejection sampling: a bare next() % span over-weights the low
    // residues whenever span does not divide 2^64.  Discard draws from
    // the incomplete final bucket (2^64 mod span of them) so every
    // value in [lo, hi] is exactly equally likely.
    uint64_t threshold = (0 - span) % span;
    uint64_t r = next();
    while (r < threshold)
        r = next();
    return lo + int64_t(r % span);
}

double
Rng::normal()
{
    if (_haveSpare) {
        _haveSpare = false;
        return _spare;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    _spare = mag * std::sin(2.0 * M_PI * u2);
    _haveSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("Rng::exponential: mean must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

Rng
Rng::fork(const std::string &name)
{
    uint64_t seed = next() ^ fnv1a(name);
    return Rng(seed);
}

} // namespace util
} // namespace coolair
