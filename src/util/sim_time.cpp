#include "util/sim_time.hpp"

#include <cstdio>

#include "util/logging.hpp"

namespace coolair {
namespace util {

const int kMonthStartDay[13] = {
    0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334, 365
};

static const char *kMonthNames[12] = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"
};

int
SimTime::month() const
{
    int day = dayOfYear();
    for (int m = 0; m < 12; ++m) {
        if (day < kMonthStartDay[m + 1])
            return m;
    }
    panic("SimTime::month: day of year out of range");
}

std::string
SimTime::str() const
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "d%03d %02d:%02d:%02d", dayOfYear(),
                  hourOfDay(), minuteOfHour(), secondOfDay() % 60);
    return buf;
}

const char *
monthName(int month)
{
    if (month < 0 || month > 11)
        panic("monthName: month index out of range");
    return kMonthNames[month];
}

} // namespace util
} // namespace coolair
