#include "multizone/multizone.hpp"

#include <algorithm>
#include <utility>

#include "sim/scenario.hpp"
#include "util/logging.hpp"

namespace coolair {
namespace multizone {

const char *
policyName(BalancePolicy policy)
{
    switch (policy) {
      case BalancePolicy::RoundRobin:   return "round-robin";
      case BalancePolicy::CoolestFirst: return "coolest-first";
      case BalancePolicy::LeastLoaded:  return "least-loaded";
    }
    util::panic("policyName: unknown policy");
}

MultiZoneEngine::MultiZoneEngine(
    const MultiZoneConfig &config,
    const environment::WeatherProvider &climate,
    const std::function<std::unique_ptr<sim::Controller>(int zone)>
        &make_controller)
    : _config(config), _climate(climate)
{
    if (config.zones <= 0)
        util::fatal("MultiZoneConfig: need at least one zone");
    if (!make_controller)
        util::fatal("MultiZoneEngine: controller factory required");

    _zones.resize(size_t(config.zones));
    for (int z = 0; z < config.zones; ++z) {
        Zone &zone = _zones[size_t(z)];
        zone.plant = std::make_unique<plant::Plant>(
            config.plantConfig, config.seed + uint64_t(z) * 101);
        zone.cluster = std::make_unique<workload::ClusterSim>(
            config.clusterConfig, workload::Trace{});
        zone.controller = make_controller(z);
        if (!zone.controller)
            util::fatal("MultiZoneEngine: factory returned null");
        zone.metrics = std::make_unique<sim::MetricsCollector>(
            sim::MetricsConfig{}, config.plantConfig.numPods);
    }
}

int
MultiZoneEngine::pickZone(const workload::Job &job)
{
    (void)job;
    switch (_config.policy) {
      case BalancePolicy::RoundRobin: {
        int z = _rrNext;
        _rrNext = (_rrNext + 1) % int(_zones.size());
        return z;
      }
      case BalancePolicy::CoolestFirst: {
        int best = 0;
        double best_temp = 1e18;
        for (int z = 0; z < int(_zones.size()); ++z) {
            // The warmest sensor governs a zone's violation exposure.
            double warm = 0.0;
            for (int p = 0;
                 p < _zones[size_t(z)].plant->config().numPods; ++p) {
                warm = std::max(
                    warm, _zones[size_t(z)].plant->truePodInletC(p));
            }
            if (warm < best_temp) {
                best_temp = warm;
                best = z;
            }
        }
        return best;
      }
      case BalancePolicy::LeastLoaded: {
        int best = 0;
        int best_busy = 1 << 30;
        for (int z = 0; z < int(_zones.size()); ++z) {
            int busy = _zones[size_t(z)].cluster->busySlots();
            if (busy < best_busy) {
                best_busy = busy;
                best = z;
            }
        }
        return best;
      }
    }
    util::panic("MultiZoneEngine::pickZone: unknown policy");
}

void
MultiZoneEngine::runDay(int day_of_year, const workload::Trace &trace)
{
    util::SimTime day_start(int64_t(day_of_year) * util::kSecondsPerDay);
    util::SimTime warm_start = day_start - 2 * util::kSecondsPerHour;
    util::SimTime end = day_start + util::kSecondsPerDay;

    // Jobs sorted by submission time.
    std::vector<workload::Job> jobs = trace.jobs;
    std::sort(jobs.begin(), jobs.end(),
              [](const workload::Job &a, const workload::Job &b) {
                  return a.submitS < b.submitS;
              });
    size_t next_job = 0;

    for (Zone &zone : _zones) {
        zone.plant->initializeSteadyState(_climate.sample(warm_start));
        zone.nextControlS = warm_start.seconds();
    }

    const int64_t step = int64_t(_config.physicsStepS);
    for (int64_t t = warm_start.seconds(); t < end.seconds(); t += step) {
        util::SimTime now(t);
        bool collect = t >= day_start.seconds();

        // Dispatch arriving jobs (day-relative submit times).
        while (next_job < jobs.size() &&
               day_start.seconds() + jobs[next_job].submitS <=
                   now.seconds()) {
            workload::Job job = jobs[next_job++];
            job.submitS += day_start.seconds();  // absolute
            int z = pickZone(job);
            _zones[size_t(z)].cluster->submitJob(job, now);
            _zones[size_t(z)].jobsAssigned++;
        }

        for (Zone &zone : _zones) {
            bool sample_tick =
                (t - warm_start.seconds()) % _config.sampleIntervalS == 0;
            if (sample_tick) {
                plant::SensorReadings sensors =
                    zone.plant->readSensors();
                sensors.time = now;
                if (t >= zone.nextControlS) {
                    auto decision = zone.controller->control(
                        sensors, zone.cluster->status(),
                        zone.cluster->podLoad(), now);
                    zone.command = decision.regime;
                    if (decision.hasPlan)
                        zone.cluster->applyPlan(decision.plan);
                    zone.nextControlS =
                        t + zone.controller->epochS();
                }
                if (collect) {
                    zone.metrics->record(
                        now, sensors, double(_config.sampleIntervalS));
                    zone.metrics->recordOutside(
                        now, _climate.temperature(now));
                }
            }

            environment::WeatherSample outside = _climate.sample(now);
            zone.cluster->step(now, double(step));
            zone.plant->step(double(step), outside,
                             zone.cluster->podLoad(), zone.command);
        }
    }
}

sim::Summary
MultiZoneEngine::zoneSummary(int zone) const
{
    if (zone < 0 || zone >= int(_zones.size()))
        util::panic("MultiZoneEngine::zoneSummary: zone out of range");
    return _zones[size_t(zone)].metrics->summary();
}

int64_t
MultiZoneEngine::zoneJobsAssigned(int zone) const
{
    if (zone < 0 || zone >= int(_zones.size()))
        util::panic("MultiZoneEngine::zoneJobsAssigned: out of range");
    return _zones[size_t(zone)].jobsAssigned;
}

int64_t
MultiZoneEngine::zoneJobsCompleted(int zone) const
{
    if (zone < 0 || zone >= int(_zones.size()))
        util::panic("MultiZoneEngine::zoneJobsCompleted: out of range");
    return _zones[size_t(zone)].cluster->stats().jobsCompleted;
}

sim::Summary
MultiZoneEngine::aggregateSummary() const
{
    sim::Summary total;
    double delivery = 0.08;
    for (const Zone &zone : _zones) {
        sim::Summary s = zone.metrics->summary();
        total.itKwh += s.itKwh;
        total.coolingKwh += s.coolingKwh;
        total.avgViolationC += s.avgViolationC;
        total.avgWorstDailyRangeC += s.avgWorstDailyRangeC;
        total.maxWorstDailyRangeC =
            std::max(total.maxWorstDailyRangeC, s.maxWorstDailyRangeC);
        total.days = std::max(total.days, s.days);
        delivery = zone.metrics->config().deliveryOverhead;
    }
    double n = double(_zones.size());
    total.avgViolationC /= n;
    total.avgWorstDailyRangeC /= n;
    if (total.itKwh > 0.0) {
        total.pue = (total.itKwh + total.coolingKwh +
                     delivery * total.itKwh) /
                    total.itKwh;
    }
    return total;
}

MultiZoneScenario
buildMultiZoneScenario(const sim::ExperimentSpec &spec, MultiZoneConfig config)
{
    MultiZoneScenario mz;
    mz.spec = spec;

    config.plantConfig = sim::plantConfigFor(spec);
    config.physicsStepS = spec.physicsStepS;
    config.seed = spec.seed;
    mz.config = config;

    mz.climate = std::make_unique<environment::Climate>(
        spec.location.makeClimate(spec.seed));
    mz.forecaster = std::make_unique<environment::Forecaster>(
        *mz.climate, spec.forecastError, spec.seed);

    environment::Forecaster *forecaster = mz.forecaster.get();
    mz.engine = std::make_unique<MultiZoneEngine>(
        mz.config, *mz.climate,
        [&spec, forecaster](int) {
            return sim::makeController(spec, forecaster);
        });
    return mz;
}

} // namespace multizone
} // namespace coolair
