#ifndef COOLAIR_MULTIZONE_MULTIZONE_HPP
#define COOLAIR_MULTIZONE_MULTIZONE_HPP

/**
 * @file
 * Multi-zone datacenters.
 *
 * Paper §6: "For a large datacenter with multiple independent 'cooling
 * zones' (e.g., containers), each of them would have its own
 * CoolAir-like manager."  This module scales the single-container stack
 * to N independent zones sharing one site climate and one incoming job
 * stream: each zone owns a plant, a cluster, and a controller; a
 * ZoneBalancer assigns arriving jobs to zones.
 *
 * Balancing policies:
 *  - RoundRobin: spread jobs evenly (the neutral default);
 *  - CoolestFirst: send each job to the zone with the coolest warmest
 *    sensor — the within-building analogue of temperature-driven
 *    geographic load balancing [23]; like the paper's other
 *    energy-driven techniques, it trades temperature variation for
 *    energy;
 *  - LeastLoaded: send each job to the zone with the fewest busy slots.
 */

#include <functional>
#include <memory>
#include <vector>

#include "environment/climate.hpp"
#include "environment/forecast.hpp"
#include "environment/weather.hpp"
#include "sim/controller.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "workload/cluster.hpp"
#include "workload/job.hpp"

namespace coolair {
namespace multizone {

/** Job-to-zone assignment policy. */
enum class BalancePolicy
{
    RoundRobin,
    CoolestFirst,
    LeastLoaded
};

/** Name of a balance policy. */
const char *policyName(BalancePolicy policy);

/** Configuration of a multi-zone run. */
struct MultiZoneConfig
{
    int zones = 4;
    BalancePolicy policy = BalancePolicy::RoundRobin;

    /** Per-zone plant configuration. */
    plant::PlantConfig plantConfig = plant::PlantConfig::smoothParasol();

    /** Per-zone cluster configuration. */
    workload::ClusterConfig clusterConfig;

    /** Physics step [s]. */
    double physicsStepS = 30.0;

    /** Sensor sampling / metrics interval [s]. */
    int64_t sampleIntervalS = 60;

    uint64_t seed = 11;
};

/**
 * One cooling zone: an independent container with its own manager, as
 * §6 prescribes.
 */
struct Zone
{
    std::unique_ptr<plant::Plant> plant;
    std::unique_ptr<workload::ClusterSim> cluster;
    std::unique_ptr<sim::Controller> controller;
    std::unique_ptr<sim::MetricsCollector> metrics;

    cooling::Regime command = cooling::Regime::closed();
    int64_t nextControlS = 0;
    int64_t jobsAssigned = 0;
};

/**
 * Runs N zones in lockstep against one climate, splitting a shared job
 * stream across them.
 */
class MultiZoneEngine
{
  public:
    /**
     * @param config   zone count, policy, per-zone configurations
     * @param climate  the shared site weather
     * @param make_controller factory invoked once per zone (zones may
     *        have distinct controllers, e.g. for A/B comparisons)
     */
    MultiZoneEngine(
        const MultiZoneConfig &config,
        const environment::WeatherProvider &climate,
        const std::function<std::unique_ptr<sim::Controller>(int zone)>
            &make_controller);

    /**
     * Run one measured day of @p trace (day-relative submit times),
     * assigning each arriving job to a zone per the policy.
     */
    void runDay(int day_of_year, const workload::Trace &trace);

    /** Number of zones. */
    int zoneCount() const { return int(_zones.size()); }

    /** Metrics summary for one zone. */
    sim::Summary zoneSummary(int zone) const;

    /** Jobs assigned to one zone so far. */
    int64_t zoneJobsAssigned(int zone) const;

    /** Jobs completed by one zone so far. */
    int64_t zoneJobsCompleted(int zone) const;

    /**
     * Aggregate summary: energy sums across zones, temperature metrics
     * averaged over zones (PUE recomputed from the summed energies).
     */
    sim::Summary aggregateSummary() const;

  private:
    int pickZone(const workload::Job &job);

    MultiZoneConfig _config;
    const environment::WeatherProvider &_climate;
    std::vector<Zone> _zones;
    int _rrNext = 0;
};

/**
 * A multi-zone experiment assembled from a single-zone ExperimentSpec:
 * the spec decides site, system, plant style, seed, and physics step
 * (via the sim/scenario.hpp factories); @p MultiZoneConfig adds the
 * zone count and balancing policy.  Owns the shared climate and
 * forecaster so the engine's references stay valid.
 */
struct MultiZoneScenario
{
    sim::ExperimentSpec spec;
    MultiZoneConfig config;
    std::unique_ptr<environment::Climate> climate;
    std::unique_ptr<environment::Forecaster> forecaster;
    std::unique_ptr<MultiZoneEngine> engine;
};

/**
 * Build a multi-zone scenario: every zone gets the spec's plant and an
 * independent controller for the spec's system (all zones share the
 * site climate and forecaster).  config.plantConfig, physicsStepS, and
 * seed are overwritten from the spec; zones, policy, clusterConfig, and
 * sampleIntervalS are taken from @p config.
 */
MultiZoneScenario buildMultiZoneScenario(const sim::ExperimentSpec &spec,
                                         MultiZoneConfig config);

} // namespace multizone
} // namespace coolair

#endif // COOLAIR_MULTIZONE_MULTIZONE_HPP
