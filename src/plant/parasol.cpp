#include "plant/parasol.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace plant {

using physics::kAirDensity;
using physics::kAirSpecificHeat;

namespace {

/** Volumetric heat-capacity flow [W/K] for a volume flow [m^3/s]. */
double
flowConductance(double m3_per_s)
{
    return m3_per_s;  // conductances are kept in m^3/s-equivalent units
}

/** Convert a W/K conductance into the same m^3/s-equivalent units. */
double
uaToFlow(double w_per_k)
{
    return w_per_k / (kAirDensity * kAirSpecificHeat);
}

/**
 * Relax @p value toward @p target with total conductance @p g [m^3/s]
 * acting on an effective volume @p volume [m^3] over @p dt_s seconds.
 * Exact for the frozen-coefficient linear node, stable for any step.
 */
} // anonymous namespace

PodLoad
PodLoad::uniform(int pods, int servers_per_pod, double util)
{
    PodLoad load;
    load.serversPerPod = servers_per_pod;
    load.activeServers.assign(pods, servers_per_pod);
    load.utilization.assign(pods, util::clamp(util, 0.0, 1.0));
    return load;
}

double
PodLoad::podPowerFraction(int pod) const
{
    if (pod < 0 || pod >= int(activeServers.size()))
        util::panic("PodLoad::podPowerFraction: pod out of range");
    int act = std::clamp(activeServers[size_t(pod)], 0, serversPerPod);
    double u = util::clamp(utilization[size_t(pod)], 0.0, 1.0);
    double watts = double(act) * (22.0 + 8.0 * u) +
                   double(serversPerPod - act) * 2.0;
    return watts / (double(serversPerPod) * 30.0);
}

PlantConfig
PlantConfig::parasol()
{
    PlantConfig c;
    // Recirculation exposure grades across the container: pods near the
    // free-cooling unit see the least recirculation; pods at the far end
    // near the AC duct and partition gaps see the most (Figure 4).
    c.podRecirc = {0.15, 0.24, 0.36, 0.50, 0.60, 0.74, 0.88, 1.00};
    c.controlPod = 7;
    c.actuators.style = cooling::ActuatorStyle::Abrupt;
    return c;
}

PlantConfig
PlantConfig::smoothParasol()
{
    PlantConfig c = parasol();
    c.actuators.style = cooling::ActuatorStyle::Smooth;
    return c;
}

PlantConfig
PlantConfig::smoothParasolEvaporative()
{
    PlantConfig c = smoothParasol();
    c.hasEvaporativeCooler = true;
    return c;
}

PlantConfig
PlantConfig::smoothParasolChiller()
{
    PlantConfig c = smoothParasol();
    // Chilled-water loop: more capacity at a far better COP than the DX
    // unit (COP ~3.5 vs ~1.5), with an air handler instead of the DX fan.
    c.acCapacityW = 5000.0;
    c.actuators.power.acFullW = 1400.0;
    c.actuators.power.acFanOnlyW = 200.0;
    return c;
}

Plant::Plant(const PlantConfig &config, uint64_t seed)
    : _config(config),
      _actuators(config.actuators),
      _sensorRng(seed, "plant.sensors"),
      _podTempC(config.numPods, 22.0),
      _podTempScratchC(config.numPods, 0.0),
      _diskTempC(config.numPods, 30.0),
      _hotAisleC(30.0),
      _massTempC(23.0),
      _coldAbsHumidity(8.0),
      _podRelaxExp(size_t(std::max(config.numPods, 0))),
      _acCoilAbsHumidity(physics::absoluteHumidity(config.acCoilC, 100.0))
{
    if (config.numPods <= 0 || config.serversPerPod <= 0)
        util::fatal("PlantConfig: pods and servers must be positive");
    if (int(config.podRecirc.size()) != config.numPods)
        util::fatal("PlantConfig: podRecirc must have one entry per pod");
    if (config.controlPod < 0 || config.controlPod >= config.numPods)
        util::fatal("PlantConfig: controlPod out of range");
}

void
Plant::initializeSteadyState(const environment::WeatherSample &outside,
                             double inside_offset_c)
{
    for (int i = 0; i < _config.numPods; ++i) {
        double grade = _config.podRecirc[i] * 2.0;
        _podTempC[i] = outside.tempC + inside_offset_c + grade;
    }
    _hotAisleC = outside.tempC + inside_offset_c + 9.0;
    _massTempC = outside.tempC + inside_offset_c + 2.0;
    _coldAbsHumidity = outside.absHumidity;
    for (int i = 0; i < _config.numPods; ++i)
        _diskTempC[i] = _podTempC[i] + _config.diskOffsetIdleC + 5.0;
    _lastOutside = outside;
}

void
Plant::updateItPower(const PodLoad &load)
{
    if (int(load.activeServers.size()) != _config.numPods ||
        int(load.utilization.size()) != _config.numPods) {
        util::panic("Plant::step: PodLoad arity != numPods");
    }
    // resize, not assign: every element is overwritten below, so the
    // zero-fill was pure waste once the buffers reached size.
    _podPowerW.resize(size_t(_config.numPods));
    _podAwake.resize(size_t(_config.numPods));
    double power = 0.0;
    int awake = 0;
    for (int i = 0; i < _config.numPods; ++i) {
        int act = std::clamp(load.activeServers[i], 0,
                             _config.serversPerPod);
        double util_i = util::clamp(load.utilization[i], 0.0, 1.0);
        double pod_power =
            double(act) *
                (_config.serverIdleW + _config.serverBusySpanW * util_i) +
            double(_config.serversPerPod - act) * _config.serverSleepW;
        _podPowerW[size_t(i)] = pod_power;
        _podAwake[size_t(i)] = act;
        power += pod_power;
        awake += act;
    }
    _itPowerW = power;
    _dcUtilization = double(awake) / double(_config.totalServers());
}

void
Plant::step(double dt_s, const environment::WeatherSample &outside,
            const PodLoad &load, const cooling::Regime &command)
{
    if (dt_s <= 0.0)
        util::panic("Plant::step: dt must be positive");

    _actuators.setCommand(command);
    _actuators.step(dt_s);
    updateItPower(load);

    stepThermal(dt_s, outside, load);
    stepHumidity(dt_s, outside);
    stepDisks(dt_s, load);

    _lastOutside = outside;
    _now += int64_t(dt_s);
}

void
Plant::stepThermal(double dt_s, const environment::WeatherSample &outside,
                   const PodLoad &load)
{
    const auto &unit = _actuators.state();
    const int pods = _config.numPods;

    double q_fc = unit.damperOpen ? unit.fcFanSpeed * _config.maxFcAirflow
                                  : 0.0;
    double q_ac = unit.acFanSpeed * _config.acAirflow;

    // Intake air conditions: the adiabatic pre-cooler (when installed
    // and engaged) closes a fraction of the dry-bulb-to-wet-bulb gap.
    double intake_c = outside.tempC;
    if (_config.hasEvaporativeCooler && unit.evapOn && q_fc > 0.0) {
        double wb = physics::wetBulb(outside.tempC, outside.rhPercent);
        intake_c =
            outside.tempC - _config.evapEffectiveness *
                                (outside.tempC - wb);
    }

    // Recirculation collapses under the wind-tunnel effect of forced
    // airflow and is strongest when the container is sealed.
    double forced = (q_fc + q_ac) / std::max(_config.maxFcAirflow, 1e-9);
    double suppress = _suppressExp(-6.0 * forced);
    double recirc_total =
        _config.recircFlowOpen +
        (_config.recircFlowClosed - _config.recircFlowOpen) * suppress;

    double recirc_weight_sum = std::accumulate(
        _config.podRecirc.begin(), _config.podRecirc.end(), 0.0);

    // AC supply conditions: intake from the hot aisle, cooled by the
    // compressor; fan-only operation just circulates hot-aisle air.
    double ac_supply_c = _hotAisleC;
    if (unit.compressorSpeed > 0.0 && q_ac > 0.0) {
        double q_thermal = _config.acCapacityW * unit.compressorSpeed;
        double dT = q_thermal / (kAirDensity * kAirSpecificHeat * q_ac);
        ac_supply_c = std::max(_hotAisleC - dT, _config.acSupplyFloorC);
    }

    double wall_flow = uaToFlow(_config.wallUaWPerK);
    double mass_flow = uaToFlow(_config.massCouplingWPerK);

    // Local (own-exhaust) recirculation survives forced airflow better
    // than the global hot-aisle path: the leak is right over the rack.
    double local_suppress =
        _config.localRecircFloor +
        (1.0 - _config.localRecircFloor) * suppress;

    // --- Pod inlet nodes -------------------------------------------------
    double pod_temp_sum = 0.0;
    std::vector<double> &new_pod = _podTempScratchC;  // reused, no alloc
    for (int i = 0; i < pods; ++i) {
        double q_fc_i = q_fc / pods;
        double q_ac_i = q_ac / pods;
        double q_rec_i =
            recirc_total * _config.podRecirc[i] / recirc_weight_sum;
        double q_wall_i = wall_flow * 0.5 / pods;  // half the envelope
        double k_mass_i = mass_flow * 0.5 / pods;

        // Pod-local recirculation: part of this pod's own exhaust
        // returns to its inlet.  The exhaust temperature rides a
        // load-dependent delta above the inlet.
        double q_srv_i = _config.serverAirflow *
                         (double(_podAwake[size_t(i)]) +
                          0.2 * double(_config.serversPerPod -
                                       _podAwake[size_t(i)]));
        q_srv_i = std::max(q_srv_i, 0.002);
        double exhaust_dT = _podPowerW[size_t(i)] /
                            (kAirDensity * kAirSpecificHeat * q_srv_i);
        exhaust_dT = std::min(exhaust_dT, 30.0);
        double q_loc_i = _config.localRecircFraction * q_srv_i *
                         _config.podRecirc[i] * local_suppress;
        double exhaust_c = _podTempC[i] + exhaust_dT;

        double g = flowConductance(q_fc_i) + flowConductance(q_ac_i) +
                   flowConductance(q_rec_i) + flowConductance(q_loc_i) +
                   q_wall_i + k_mass_i;
        double target =
            (q_fc_i * intake_c + q_ac_i * ac_supply_c +
             q_rec_i * _hotAisleC + q_loc_i * exhaust_c +
             q_wall_i * outside.tempC + k_mass_i * _massTempC) /
            std::max(g, 1e-12);

        new_pod[i] = relax(_podTempC[i], target, g,
                           _config.podEffectiveVolume, dt_s,
                           _podRelaxExp[size_t(i)]);
        pod_temp_sum += _podTempC[i];
    }
    double cold_avg = pod_temp_sum / pods;

    // --- Hot aisle node ---------------------------------------------------
    int awake_total = 0;
    for (int i = 0; i < pods; ++i)
        awake_total += std::clamp(load.activeServers[i], 0,
                                  _config.serversPerPod);
    // Sleeping servers still pass some leakage airflow.
    double q_srv = _config.serverAirflow *
                   (double(awake_total) +
                    0.2 * double(_config.totalServers() - awake_total));
    q_srv = std::max(q_srv, 0.01);

    double q_wall_hot = wall_flow * 0.5;
    double k_mass_hot = mass_flow * 0.5;
    // When the damper is open, FC airflow flushes the hot aisle outside;
    // model as extra conductance to the *cold* side feeding through.
    double g_hot = q_srv + q_wall_hot + k_mass_hot;
    double heat_rise =
        _itPowerW / (kAirDensity * kAirSpecificHeat * g_hot);
    heat_rise = std::min(heat_rise, 45.0);  // physical cap (choked flow)
    double hot_target = (q_srv * cold_avg + q_wall_hot * outside.tempC +
                         k_mass_hot * _massTempC) /
                            g_hot +
                        heat_rise;
    _hotAisleC = relax(_hotAisleC, hot_target, g_hot,
                       _config.hotAisleEffectiveVolume, dt_s,
                       _hotRelaxExp);

    // --- Structural mass ----------------------------------------------------
    double air_avg = 0.5 * (cold_avg + _hotAisleC);
    double mass_g_wk = _config.massCouplingWPerK;
    double alpha = _massExp(-mass_g_wk * dt_s / _config.structuralMassJPerK);
    _massTempC = air_avg + (_massTempC - air_avg) * alpha;

    std::swap(_podTempC, _podTempScratchC);
}

void
Plant::stepHumidity(double dt_s, const environment::WeatherSample &outside)
{
    const auto &unit = _actuators.state();

    double q_fc = unit.damperOpen ? unit.fcFanSpeed * _config.maxFcAirflow
                                  : 0.0;
    double q_ac = unit.acFanSpeed * _config.acAirflow;
    double leak = _config.leakageFlow;

    // Evaporative pre-cooling adds moisture: intake air moves along the
    // (approximately constant) wet-bulb line toward saturation.
    double intake_abs = outside.absHumidity;
    if (_config.hasEvaporativeCooler && unit.evapOn && q_fc > 0.0) {
        double wb = physics::wetBulb(outside.tempC, outside.rhPercent);
        double intake_c =
            outside.tempC - _config.evapEffectiveness *
                                (outside.tempC - wb);
        double sat_at_wb = physics::absoluteHumidity(wb, 100.0);
        intake_abs = outside.absHumidity +
                     _config.evapEffectiveness *
                         (sat_at_wb - outside.absHumidity);
        intake_abs = std::min(
            intake_abs, physics::absoluteHumidity(intake_c, 100.0));
    }

    // AC dehumidifies when the coil runs below the air dew point: supply
    // air leaves saturated at the coil temperature (fixed by config, so
    // precomputed at construction).
    double coil_abs = _acCoilAbsHumidity;
    bool dehumidify = unit.compressorSpeed > 0.0 &&
                      _coldAbsHumidity > coil_abs;

    double g = q_fc + leak + (dehumidify ? q_ac * unit.compressorSpeed : 0.0);
    double target = 0.0;
    if (g > 0.0) {
        target = (q_fc * intake_abs + leak * outside.absHumidity +
                  (dehumidify ? q_ac * unit.compressorSpeed * coil_abs
                              : 0.0)) /
                 g;
    } else {
        target = _coldAbsHumidity;
    }
    _coldAbsHumidity = relax(_coldAbsHumidity, target, g,
                             _config.humidityVolume, dt_s,
                             _humidityRelaxExp);
}

void
Plant::stepDisks(double dt_s, const PodLoad &load)
{
    // The decay factor is pod-independent, so one memo covers the loop.
    double alpha = _diskExp(-dt_s / _config.diskTauS);
    for (int i = 0; i < _config.numPods; ++i) {
        double util_i = util::clamp(load.utilization[i], 0.0, 1.0);
        bool any_awake = load.activeServers[i] > 0;
        double offset = _config.diskOffsetIdleC +
                        _config.diskOffsetBusySpanC * util_i;
        if (!any_awake)
            offset = 1.0;  // spun-down disks idle just above air temp
        double target = _podTempC[i] + offset;
        _diskTempC[i] = target + (_diskTempC[i] - target) * alpha;
    }
}

SensorReadings
Plant::readSensors()
{
    SensorReadings out;
    readSensors(out);
    return out;
}

void
Plant::readSensors(SensorReadings &out)
{
    out.time = _now;
    out.podInletC.resize(_config.numPods);
    for (int i = 0; i < _config.numPods; ++i) {
        out.podInletC[i] =
            _podTempC[i] + _sensorRng.normal(0.0, _config.sensorNoiseC);
    }
    if (_stuckSensorPod >= 0 && _stuckSensorPod < _config.numPods)
        out.podInletC[size_t(_stuckSensorPod)] = _stuckSensorValueC;

    double cold_avg = 0.0;
    for (double t : _podTempC)
        cold_avg += t;
    cold_avg /= double(_config.numPods);

    double rh = physics::relativeHumidity(cold_avg, _coldAbsHumidity);
    rh += _sensorRng.normal(0.0, _config.humiditySensorNoisePercent);
    out.coldAisleRhPercent = util::clamp(rh, 0.0, 100.0);
    out.coldAisleAbsHumidity =
        physics::absoluteHumidity(cold_avg, out.coldAisleRhPercent);

    out.hotAisleC = _hotAisleC + _sensorRng.normal(0.0, _config.sensorNoiseC);

    out.outsideC =
        _lastOutside.tempC + _sensorRng.normal(0.0, _config.sensorNoiseC);
    out.outsideRhPercent = util::clamp(
        _lastOutside.rhPercent +
            _sensorRng.normal(0.0, _config.humiditySensorNoisePercent),
        0.0, 100.0);
    out.outsideAbsHumidity =
        physics::absoluteHumidity(out.outsideC, out.outsideRhPercent);

    const auto &unit = _actuators.state();
    out.cooling.mode = unit.mode;
    out.cooling.fcFanSpeed = unit.fcFanSpeed;
    out.cooling.acFanSpeed = unit.acFanSpeed;
    out.cooling.compressorSpeed = unit.compressorSpeed;
    out.cooling.damperOpen = unit.damperOpen;
    out.cooling.evapOn = unit.evapOn;

    out.coolingPowerW = coolingPowerW();
    out.itPowerW = _itPowerW;
    out.dcUtilization = _dcUtilization;

    // Disk temperatures are digital readings: copied verbatim, no noise
    // draws, so the observable noise stream is unchanged by this field.
    out.podDiskC.assign(_diskTempC.begin(), _diskTempC.end());
}

double
Plant::truePodInletC(int pod) const
{
    if (pod < 0 || pod >= _config.numPods)
        util::panic("Plant::truePodInletC: pod out of range");
    return _podTempC[pod];
}

double
Plant::trueColdAisleRh() const
{
    double cold_avg = 0.0;
    for (double t : _podTempC)
        cold_avg += t;
    cold_avg /= double(_config.numPods);
    return physics::relativeHumidity(cold_avg, _coldAbsHumidity);
}

double
Plant::diskTempC(int pod) const
{
    if (pod < 0 || pod >= _config.numPods)
        util::panic("Plant::diskTempC: pod out of range");
    return _diskTempC[pod];
}

void
Plant::injectStuckSensor(int pod, double value_c)
{
    if (pod < 0 || pod >= _config.numPods)
        util::panic("Plant::injectStuckSensor: pod out of range");
    _stuckSensorPod = pod;
    _stuckSensorValueC = value_c;
}

void
Plant::clearSensorFaults()
{
    _stuckSensorPod = -1;
}

} // namespace plant
} // namespace coolair
