#ifndef COOLAIR_PLANT_PARASOL_BATCH_HPP
#define COOLAIR_PLANT_PARASOL_BATCH_HPP

/**
 * @file
 * Lane-batched (structure-of-arrays) variant of the Parasol plant model.
 *
 * A BatchedPlant steps L independent plant instances — "lanes", one per
 * experiment — in lockstep through one instruction stream.  All lanes
 * share one PlantConfig (same shape); per-lane state lives in flat
 * arrays indexed pod-major, lane-minor (`[pod * lanes + lane]`) so the
 * hot pods x lanes loops are contiguous over lanes and vectorize.
 *
 * The physics transliterates plant/parasol.cpp equation-for-equation,
 * with two structural differences that the batched path's tolerance
 * contract (DESIGN.md §10) covers:
 *
 *  - the per-node ExpMemo of the scalar plant is replaced by gathered
 *    exp() passes over whole argument arrays (plant/parasol_kernels.cpp,
 *    built with fast-math), so decay factors can differ from std::exp
 *    in the last ulps;
 *  - sensor-noise transcendentals (Box-Muller) are likewise evaluated
 *    by a batched kernel, with the *draw order per lane* identical to
 *    util::Rng::normal so every lane consumes the same uniforms as its
 *    scalar twin.
 *
 * Branches on actuator/evaporative state are confined to the O(lanes)
 * per-lane prologue; the O(pods x lanes) loops are branch-free.
 */

#include <cstdint>
#include <vector>

#include "cooling/actuators.hpp"
#include "cooling/regime.hpp"
#include "environment/weather.hpp"
#include "plant/parasol.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace coolair {
namespace plant {

/** L Parasol plants stepped in lockstep (see file comment). */
class BatchedPlant
{
  public:
    /**
     * One lane per entry of @p seeds, all sharing @p config.  Same
     * validation (util::fatal) as the scalar Plant.
     */
    BatchedPlant(const PlantConfig &config,
                 const std::vector<uint64_t> &seeds);

    int lanes() const { return _lanes; }
    const PlantConfig &config() const { return _config; }

    /** Scalar Plant::initializeSteadyState for one lane. */
    void initializeSteadyState(int lane,
                               const environment::WeatherSample &outside,
                               double inside_offset_c = 6.0);

    /**
     * Advance every lane by @p dt_s.  @p outside, @p loads and
     * @p commands are per-lane arrays of length lanes().
     *
     * @p loads_dirty and @p commands_dirty are optional per-lane masks
     * (length lanes(); null = all dirty).  A zero entry promises the
     * lane's load/command is unchanged since the previous step, letting
     * the plant skip the IT-power recompute or actuator re-command for
     * that lane; the resulting state is identical either way.  Loads
     * and commands are piecewise-constant between control epochs, so
     * callers that track changes (the batched engine) skip nearly every
     * per-step recompute.
     */
    void step(double dt_s, const environment::WeatherSample *outside,
              const PodLoad *loads, const cooling::Regime *commands,
              const unsigned char *loads_dirty = nullptr,
              const unsigned char *commands_dirty = nullptr);

    /**
     * Noisy sensor observations for every lane into @p out (array of
     * length lanes()).  Per-lane noise streams consume draws in exactly
     * the scalar readSensors() order.
     */
    void readSensors(SensorReadings *out);

    /** Noise-free pod inlet temperature (oracle tests). */
    double truePodInletC(int lane, int pod) const
    {
        return _podTempC[size_t(pod) * size_t(_lanes) + size_t(lane)];
    }

    /** The actuator model of one lane. */
    const cooling::Actuators &actuators(int lane) const
    {
        return _act[size_t(lane)];
    }

  private:
    /** Heavy lockstep physics; defined in parasol_kernels.cpp. */
    void stepPhysics(double dt_s,
                     const environment::WeatherSample *outside,
                     const PodLoad *loads);

    /** Per-lane IT power/awake bookkeeping (scalar updateItPower).
        Lanes with a zero @p loads_dirty entry keep their cached power
        state (null = recompute every lane). */
    void updateItPower(const PodLoad *loads,
                       const unsigned char *loads_dirty);

    PlantConfig _config;
    int _lanes;
    int _pods;

    // Per-lane scalar components.
    std::vector<cooling::Actuators> _act;
    std::vector<util::Rng> _rng;

    // Box-Muller spare bookkeeping: lanes run in lockstep, so whether a
    // spare exists is shared; its value is per-lane.
    bool _haveSpare = false;
    std::vector<double> _spare;

    util::SimTime _now;

    // SoA state, [pod * lanes + lane].
    std::vector<double> _podTempC;
    std::vector<double> _podTempScratchC;
    std::vector<double> _podPowerW;
    std::vector<int> _podAwake;
    std::vector<double> _podUtil;
    std::vector<double> _diskTempC;

    // Per-lane state, [lane].
    std::vector<double> _hotAisleC;
    std::vector<double> _massTempC;
    std::vector<double> _coldAbsHumidity;
    std::vector<double> _itPowerW;
    std::vector<double> _dcUtilization;
    std::vector<environment::WeatherSample> _lastOutside;

    double _acCoilAbsHumidity = 0.0;

    // dt-constant decay factors (scalar ExpMemo equivalents), refreshed
    // with strict std::exp when dt changes.
    double _cachedDtS = -1.0;
    double _diskAlpha = 1.0;
    double _massAlpha = 1.0;

    // Per-lane prologue scratch (gathered actuator state and derived
    // flows), filled by step() before stepPhysics().
    std::vector<double> _uFcFan, _uAcFan, _uComp;
    std::vector<double> _uDamper;          // 0/1
    std::vector<unsigned char> _evapOn;    // 0/1, cached with the gather
    std::vector<double> _qFc, _qAc;
    std::vector<double> _intakeC, _intakeAbs;

    // Kernel scratch.
    std::vector<double> _expArg, _expVal;
    std::vector<double> _target;
    std::vector<double> _suppress;
    std::vector<double> _recircTotal, _localSup, _acSupply;
    std::vector<double> _hotTarget, _humTarget;
    std::vector<double> _podTempSum, _coldAvg, _awakeSum;
    std::vector<double> _outTempC, _outAbsHumidity;
    std::vector<double> _u1, _u2, _zCos, _zSin, _draws, _newSpare;
    std::vector<double> _svpA, _svpB, _tmpA, _tmpB;
};

} // namespace plant
} // namespace coolair

#endif // COOLAIR_PLANT_PARASOL_BATCH_HPP
