/**
 * @file
 * Fast-math TU of the batched plant: flat-array math kernels plus the
 * lockstep physics step of BatchedPlant.
 *
 * Built with COOLAIR_KERNEL_OPTIONS (-O3 -ffast-math, optionally
 * -march=native) so the lane-inner loops vectorize and exp/log/sin/cos
 * go through libmvec.  Only pure array arithmetic lives here — no
 * util::Rng, no scalar-plant code — so the fast-math flags cannot leak
 * into functions the strict scalar path also instantiates.
 *
 * Three idioms keep the vectorizer engaged (verify with
 * -DCOOLAIR_VEC_REPORT=ON):
 *
 *  - the hot loops live in standalone noinline functions whose
 *    parameters are raw __restrict pointers — GCC 12 reliably
 *    vectorizes that shape, but not the same loop inlined into a
 *    member function that also stores through this-reachable state;
 *  - every std::vector is lowered to .data() before the call, so no
 *    control-block access appears inside a loop;
 *  - sin and cos of the same angle run in *separate* loops, because a
 *    fused sincos() call has no libmvec vector variant.
 *
 * Every equation transliterates plant/parasol.cpp; keep the two in sync
 * (the oracle tests in tests/test_batch_engine.cpp bound the drift).
 */

#include "plant/parasol_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "plant/parasol_batch.hpp"

namespace coolair {
namespace plant {

namespace kernels {

void
expN(const double *x, double *out, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = std::exp(x[i]);
}

void
boxMullerN(double *u1, double *u2, double *zc, double *zs, int npairs)
{
    constexpr double kTwoPi = 2.0 * M_PI;
    // Pass 1: magnitude and angle in place (log vectorizes).
    for (int k = 0; k < npairs; ++k) {
        u1[k] = std::sqrt(-2.0 * std::log(u1[k]));
        u2[k] = kTwoPi * u2[k];
    }
    // Passes 2/3: separate loops so cos and sin each hit libmvec.
    for (int k = 0; k < npairs; ++k)
        zc[k] = u1[k] * std::cos(u2[k]);
    for (int k = 0; k < npairs; ++k)
        zs[k] = u1[k] * std::sin(u2[k]);
}

} // namespace kernels

namespace {

// noinline: keeps the __restrict parameter contracts (and with them the
// vectorizer) intact instead of dissolving into the caller.
#define COOLAIR_KERNEL __attribute__((noinline)) static void

/** The pods x lanes inlet-node balance: per-node mixed-flow target and
    relaxation exponent, plus lane sums of old pod temps and awake
    counts. */
COOLAIR_KERNEL
podNodesKernel(int pods, int L, const double *__restrict qfc,
               const double *__restrict qac,
               const double *__restrict recirc_total,
               const double *__restrict local_sup,
               const double *__restrict ac_supply,
               const double *__restrict hot_aisle,
               const double *__restrict out_temp,
               const double *__restrict mass_t,
               const double *__restrict intake_c,
               const int *__restrict pod_awake,
               const double *__restrict pod_power,
               const double *__restrict pod_t,
               const double *__restrict pod_recirc_w, double rwsum,
               double srv_airflow, double spp, double local_frac,
               double inv_pods, double q_wall_i, double k_mass_i,
               double pod_vol, double rho_cp, double dt_s,
               double *__restrict target, double *__restrict exp_arg,
               double *__restrict pod_t_sum,
               double *__restrict awake_sum)
{
    for (int i = 0; i < pods; ++i) {
        const double recirc_frac = pod_recirc_w[i] / rwsum;
        const double pod_recirc = pod_recirc_w[i];
        const size_t row = size_t(i) * size_t(L);
        for (int l = 0; l < L; ++l) {
            const size_t idx = row + size_t(l);
            double q_fc_i = qfc[l] * inv_pods;
            double q_ac_i = qac[l] * inv_pods;
            double q_rec_i = recirc_total[l] * recirc_frac;

            double awake = double(pod_awake[idx]);
            double q_srv_i = srv_airflow * (awake + 0.2 * (spp - awake));
            q_srv_i = std::max(q_srv_i, 0.002);
            double exhaust_dT = pod_power[idx] / (rho_cp * q_srv_i);
            exhaust_dT = std::min(exhaust_dT, 30.0);
            double q_loc_i =
                local_frac * q_srv_i * pod_recirc * local_sup[l];
            double exhaust_c = pod_t[idx] + exhaust_dT;

            double g = q_fc_i + q_ac_i + q_rec_i + q_loc_i + q_wall_i +
                       k_mass_i;
            double tgt = (q_fc_i * intake_c[l] + q_ac_i * ac_supply[l] +
                          q_rec_i * hot_aisle[l] + q_loc_i * exhaust_c +
                          q_wall_i * out_temp[l] + k_mass_i * mass_t[l]) /
                         std::max(g, 1e-12);

            target[idx] = tgt;
            exp_arg[idx] = -g * dt_s / pod_vol;
            pod_t_sum[l] += pod_t[idx];
            awake_sum[l] += awake;
        }
    }
}

/** Per-lane hot-aisle and humidity targets with relaxation exponents
    (scalar stepHotAisle + stepHumidity), branch-free. */
COOLAIR_KERNEL
hotHumidityKernel(int L, const double *__restrict awake_sum,
                  const double *__restrict cold_avg,
                  const double *__restrict out_temp,
                  const double *__restrict out_abs,
                  const double *__restrict mass_t,
                  const double *__restrict it_power,
                  const double *__restrict qfc,
                  const double *__restrict qac,
                  const double *__restrict ucomp,
                  const double *__restrict intake_abs,
                  const double *__restrict cold_abs, double srv_airflow,
                  double total_servers, double q_wall_hot,
                  double k_mass_hot, double rho_cp, double hot_vol,
                  double hum_vol, double leak, double coil_abs,
                  double dt_s, double *__restrict hot_target,
                  double *__restrict hot_exp_arg,
                  double *__restrict hum_target,
                  double *__restrict hum_exp_arg)
{
    for (int l = 0; l < L; ++l) {
        double awake_total = awake_sum[l];
        double q_srv = srv_airflow *
                       (awake_total + 0.2 * (total_servers - awake_total));
        q_srv = std::max(q_srv, 0.01);
        double g_hot = q_srv + q_wall_hot + k_mass_hot;
        double heat_rise = it_power[l] / (rho_cp * g_hot);
        heat_rise = std::min(heat_rise, 45.0);
        hot_target[l] = (q_srv * cold_avg[l] + q_wall_hot * out_temp[l] +
                         k_mass_hot * mass_t[l]) /
                            g_hot +
                        heat_rise;
        hot_exp_arg[l] = -g_hot * dt_s / hot_vol;

        double q_fc = qfc[l];
        double comp = ucomp[l];
        bool dehum = comp > 0.0 && cold_abs[l] > coil_abs;
        double dehum_g = dehum ? qac[l] * comp : 0.0;
        double g = q_fc + leak + dehum_g;
        double tgt = g > 0.0 ? (q_fc * intake_abs[l] + leak * out_abs[l] +
                                dehum_g * coil_abs) /
                                   std::max(g, 1e-30)
                             : cold_abs[l];
        hum_target[l] = tgt;
        hum_exp_arg[l] = g > 0.0 ? -g * dt_s / hum_vol : 0.0;
    }
}

/** Relax x toward target with per-element decay factors. */
COOLAIR_KERNEL
relaxKernel(size_t n, const double *__restrict target,
            const double *__restrict decay, const double *__restrict x,
            double *__restrict out)
{
    for (size_t i = 0; i < n; ++i) {
        double t = target[i];
        out[i] = t + (x[i] - t) * decay[i];
    }
}

/** Per-lane hot/mass/humidity state update after the exp pass. */
COOLAIR_KERNEL
applyLanesKernel(int L, const double *__restrict hot_target,
                 const double *__restrict hot_decay,
                 const double *__restrict hum_target,
                 const double *__restrict hum_decay,
                 const double *__restrict cold_avg, double mass_alpha,
                 double *__restrict hot_aisle, double *__restrict mass_t,
                 double *__restrict cold_abs)
{
    for (int l = 0; l < L; ++l) {
        double ht = hot_target[l];
        double hot = ht + (hot_aisle[l] - ht) * hot_decay[l];
        hot_aisle[l] = hot;

        double air_avg = 0.5 * (cold_avg[l] + hot);
        mass_t[l] = air_avg + (mass_t[l] - air_avg) * mass_alpha;

        double hu = hum_target[l];
        cold_abs[l] = hu + (cold_abs[l] - hu) * hum_decay[l];
    }
}

/** Disk temperatures against the NEW pod temperatures. */
COOLAIR_KERNEL
diskKernel(size_t n, const double *__restrict pod_t,
           const int *__restrict pod_awake,
           const double *__restrict pod_util, double off_idle,
           double off_span, double disk_alpha,
           double *__restrict disk_t)
{
    for (size_t idx = 0; idx < n; ++idx) {
        double offset = pod_awake[idx] > 0
                            ? off_idle + off_span * pod_util[idx]
                            : 1.0;
        double tgt = pod_t[idx] + offset;
        disk_t[idx] = tgt + (disk_t[idx] - tgt) * disk_alpha;
    }
}

#undef COOLAIR_KERNEL

} // namespace

void
BatchedPlant::stepPhysics(double dt_s,
                          const environment::WeatherSample *outside,
                          const PodLoad *loads)
{
    (void)loads;  // disk inputs pre-gathered into _podUtil/_podAwake
    const int L = _lanes;
    const int pods = _pods;
    const double rho_cp =
        physics::kAirDensity * physics::kAirSpecificHeat;
    const double wall_flow = _config.wallUaWPerK / rho_cp;
    const double mass_flow = _config.massCouplingWPerK / rho_cp;

    double *exp_arg = _expArg.data();
    double *suppress = _suppress.data();

    // De-interleave the per-lane weather the lane loops consume.
    for (int l = 0; l < L; ++l) {
        _outTempC[size_t(l)] = outside[l].tempC;
        _outAbsHumidity[size_t(l)] = outside[l].absHumidity;
    }

    // --- Recirculation suppression: one exp pass over the lanes -------
    const double max_fc = std::max(_config.maxFcAirflow, 1e-9);
    for (int l = 0; l < L; ++l)
        exp_arg[l] =
            -6.0 * (_qFc[size_t(l)] + _qAc[size_t(l)]) / max_fc;
    kernels::expN(exp_arg, suppress, L);

    const double ac_cap = _config.acCapacityW;
    const double ac_floor = _config.acSupplyFloorC;
    for (int l = 0; l < L; ++l) {
        double sup = suppress[l];
        _recircTotal[size_t(l)] =
            _config.recircFlowOpen +
            (_config.recircFlowClosed - _config.recircFlowOpen) * sup;
        _localSup[size_t(l)] = _config.localRecircFloor +
                               (1.0 - _config.localRecircFloor) * sup;
        // AC supply: hot-aisle intake cooled by the compressor;
        // fan-only operation circulates hot-aisle air unchanged.
        double hot = _hotAisleC[size_t(l)];
        double q_ac = _qAc[size_t(l)];
        double comp = _uComp[size_t(l)];
        double dT = ac_cap * comp / (rho_cp * std::max(q_ac, 1e-30));
        double cooled = std::max(hot - dT, ac_floor);
        _acSupply[size_t(l)] = (comp > 0.0 && q_ac > 0.0) ? cooled : hot;
        _podTempSum[size_t(l)] = 0.0;
        _awakeSum[size_t(l)] = 0.0;
    }

    double recirc_weight_sum = 0.0;
    for (int i = 0; i < pods; ++i)
        recirc_weight_sum += _config.podRecirc[size_t(i)];

    // --- Pod inlet nodes --------------------------------------------
    const double inv_pods = 1.0 / double(pods);
    podNodesKernel(pods, L, _qFc.data(), _qAc.data(),
                   _recircTotal.data(), _localSup.data(),
                   _acSupply.data(), _hotAisleC.data(), _outTempC.data(),
                   _massTempC.data(), _intakeC.data(), _podAwake.data(),
                   _podPowerW.data(), _podTempC.data(),
                   _config.podRecirc.data(), recirc_weight_sum,
                   _config.serverAirflow, double(_config.serversPerPod),
                   _config.localRecircFraction, inv_pods,
                   wall_flow * 0.5 * inv_pods, mass_flow * 0.5 * inv_pods,
                   _config.podEffectiveVolume, rho_cp, dt_s,
                   _target.data(), exp_arg, _podTempSum.data(),
                   _awakeSum.data());
    for (int l = 0; l < L; ++l)
        _coldAvg[size_t(l)] = _podTempSum[size_t(l)] * inv_pods;

    // --- Hot aisle + humidity per-lane targets ------------------------
    const size_t hot_base = size_t(pods) * size_t(L);
    const size_t hum_base = hot_base + size_t(L);
    hotHumidityKernel(
        L, _awakeSum.data(), _coldAvg.data(), _outTempC.data(),
        _outAbsHumidity.data(), _massTempC.data(), _itPowerW.data(),
        _qFc.data(), _qAc.data(), _uComp.data(), _intakeAbs.data(),
        _coldAbsHumidity.data(), _config.serverAirflow,
        double(_config.totalServers()), wall_flow * 0.5, mass_flow * 0.5,
        rho_cp, _config.hotAisleEffectiveVolume, _config.humidityVolume,
        _config.leakageFlow, _acCoilAbsHumidity, dt_s,
        _hotTarget.data(), exp_arg + hot_base, _humTarget.data(),
        exp_arg + hum_base);

    // --- One exp pass for every relaxation of this step ---------------
    const int n_exp = pods * L + 2 * L;
    kernels::expN(exp_arg, _expVal.data(), n_exp);
    const double *exp_val = _expVal.data();

    // Apply pod relaxations into the scratch buffer, then swap.
    const size_t n_pod = size_t(pods) * size_t(L);
    relaxKernel(n_pod, _target.data(), exp_val, _podTempC.data(),
                _podTempScratchC.data());
    std::swap(_podTempC, _podTempScratchC);

    applyLanesKernel(L, _hotTarget.data(), exp_val + hot_base,
                     _humTarget.data(), exp_val + hum_base,
                     _coldAvg.data(), _massAlpha, _hotAisleC.data(),
                     _massTempC.data(), _coldAbsHumidity.data());

    // --- Disks: pods x lanes against the NEW pod temperatures ---------
    diskKernel(n_pod, _podTempC.data(), _podAwake.data(),
               _podUtil.data(), _config.diskOffsetIdleC,
               _config.diskOffsetBusySpanC, _diskAlpha,
               _diskTempC.data());
}

} // namespace plant
} // namespace coolair
