#ifndef COOLAIR_PLANT_PARASOL_HPP
#define COOLAIR_PLANT_PARASOL_HPP

/**
 * @file
 * Ground-truth physical model of the Parasol free-cooled container.
 *
 * The paper evaluates CoolAir on a real prototype: a 7'x12' container
 * with 64 half-U Atom servers in two racks, a Dantherm Flexibox 450
 * free-cooling unit, a Dantherm iA/C 19000 DX air conditioner, a sealed
 * cold aisle, and an exhaust damper (§4.1, Figure 4).  We cannot ship the
 * hardware, so this module provides a lumped-parameter thermal/humidity
 * model of the container with the same *observable* dynamics:
 *
 *  - pod inlet temperatures responding to free-cooling airflow, AC
 *    supply, hot-aisle recirculation, envelope conduction, and the
 *    thermal inertia of racks/servers;
 *  - per-pod recirculation exposure (some pods recirculate more — the
 *    lever behind CoolAir's spatial placement);
 *  - cold-aisle absolute humidity driven by outside air exchange and AC
 *    dehumidification, reported as relative humidity;
 *  - disk temperatures tracking inlet temperature plus a utilization-
 *    dependent offset with a slow first-order lag (Figure 1);
 *  - sensor noise matching Parasol's ±0.5 °C sensor accuracy.
 *
 * Integration uses per-node exponential relaxation toward a conductance-
 * weighted target, which is exact for the frozen-coefficient linear
 * system and unconditionally stable at any step size.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cooling/actuators.hpp"
#include "cooling/regime.hpp"
#include "environment/climate.hpp"
#include "physics/psychrometrics.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace coolair {
namespace plant {

/** Per-pod offered load, as the cluster simulator reports it. */
struct PodLoad
{
    /** Number of servers in each pod that are awake (active or idle). */
    std::vector<int> activeServers;

    /** Mean busy fraction of the awake servers in each pod [0..1]. */
    std::vector<double> utilization;

    /** Servers per pod (capacity behind activeServers). */
    int serversPerPod = 8;

    /** Uniform load across @p pods pods: all servers awake at @p util. */
    static PodLoad uniform(int pods, int servers_per_pod, double util);

    /**
     * This pod's power draw as a fraction of its maximum [0..1], using
     * the Parasol server power model (22 W idle + 8 W busy span, 2 W
     * sleeping, 30 W peak).
     */
    double podPowerFraction(int pod) const;
};

/** Physical snapshot of the cooling units, as sensors report it. */
struct CoolingStatus
{
    cooling::Mode mode = cooling::Mode::Closed;
    double fcFanSpeed = 0.0;
    double acFanSpeed = 0.0;
    double compressorSpeed = 0.0;
    bool damperOpen = false;
    bool evapOn = false;
};

/** Everything CoolAir (or the TKS) can observe at one instant. */
struct SensorReadings
{
    util::SimTime time;

    /** Inlet air temperature per pod [°C] (one sensor per pod, §4.2). */
    std::vector<double> podInletC;

    /**
     * Disk temperature per pod [°C].  Noise-free (disk SMART readings
     * are digital), so including them here consumes no sensor-noise
     * draws and lets the trace path batch-read all pods at once.
     */
    std::vector<double> podDiskC;

    /** Cold-aisle relative humidity [%]. */
    double coldAisleRhPercent = 50.0;

    /** Cold-aisle absolute humidity [g/m^3] (derived). */
    double coldAisleAbsHumidity = 8.0;

    /** Hot-aisle temperature [°C]. */
    double hotAisleC = 30.0;

    /** Outside dry-bulb temperature [°C]. */
    double outsideC = 20.0;

    /** Outside relative humidity [%]. */
    double outsideRhPercent = 50.0;

    /** Outside absolute humidity [g/m^3]. */
    double outsideAbsHumidity = 8.0;

    CoolingStatus cooling;

    /** Cooling power draw [W]. */
    double coolingPowerW = 0.0;

    /** IT power draw [W]. */
    double itPowerW = 0.0;

    /** Fraction of all servers awake [0..1]. */
    double dcUtilization = 1.0;

    /** Warmest pod inlet reading.  Inline: the controller and the
        metrics collector each call this every sample. */
    double maxPodInletC() const
    {
        double hi = -1e9;
        for (double t : podInletC)
            hi = std::max(hi, t);
        return hi;
    }

    /** Mean pod inlet reading. */
    double avgPodInletC() const
    {
        if (podInletC.empty())
            return 0.0;
        double sum = 0.0;
        for (double t : podInletC)
            sum += t;
        return sum / double(podInletC.size());
    }
};

/** Static description of the container and its units. */
struct PlantConfig
{
    int numPods = 8;
    int serversPerPod = 8;

    /**
     * Relative recirculation exposure per pod, 0..1.  Higher values mean
     * more hot-aisle air reaches that pod's inlet.  The parasol()
     * defaults grade from 0.15 at the pod nearest the FC unit to 1.0 at
     * the pod behind the AC duct (Figure 4's layout).
     */
    std::vector<double> podRecirc;

    /** Index of the TKS control sensor's pod (a typically warm spot). */
    int controlPod = 7;

    /** Free-cooling airflow at full fan speed [m^3/s]. */
    double maxFcAirflow = 0.30;

    /** AC circulation airflow at full AC fan speed [m^3/s]. */
    double acAirflow = 0.30;

    /** AC thermal capacity at full compressor speed [W]. */
    double acCapacityW = 3300.0;

    /** Lowest achievable AC supply temperature [°C]. */
    double acSupplyFloorC = 8.0;

    /** AC coil dew temperature for dehumidification [°C]. */
    double acCoilC = 8.0;

    /**
     * Effective thermal volume of each pod inlet node [m^3 of air
     * equivalent], including nearby solid mass.  Sets the fast time
     * constant: ~13 min at Parasol's 15 % minimum fan speed.
     */
    double podEffectiveVolume = 5.5;

    /** Effective thermal volume of the hot-aisle node [m^3 equiv]. */
    double hotAisleEffectiveVolume = 12.0;

    /** Air volume used for humidity balance [m^3]. */
    double humidityVolume = 19.0;

    /** Heat capacity of the slow structural mass [J/K]. */
    double structuralMassJPerK = 6.0e5;

    /** Air <-> structural mass coupling [W/K]. */
    double massCouplingWPerK = 180.0;

    /** Envelope (walls/door) conduction to outside [W/K]. */
    double wallUaWPerK = 25.0;

    /** Envelope air leakage for humidity exchange [m^3/s]. */
    double leakageFlow = 0.004;

    /** Max hot->cold recirculation flow when sealed [m^3/s]. */
    double recircFlowClosed = 0.08;

    /** Residual recirculation flow under full FC wind-tunnel [m^3/s]. */
    double recircFlowOpen = 0.006;

    /**
     * Fraction of a pod's own server exhaust that leaks back over the
     * rack top into its own inlet (scaled by the pod's recirculation
     * exposure).  This is the *local* heat-recirculation path that makes
     * spatial placement matter: a loaded high-recirculation pod stays
     * consistently warm from its own exhaust and is proportionally less
     * exposed to cooling-infrastructure swings.
     */
    double localRecircFraction = 0.12;

    /** Residual fraction of local recirculation under forced airflow. */
    double localRecircFloor = 0.50;

    /** Whether the adiabatic (evaporative) pre-cooler is installed. */
    bool hasEvaporativeCooler = false;

    /**
     * Evaporative effectiveness: fraction of the dry-bulb-to-wet-bulb
     * gap the pre-cooler closes (typical media: 0.6-0.85).
     */
    double evapEffectiveness = 0.75;

    /** Per awake, idle server power [W]. */
    double serverIdleW = 22.0;

    /** Additional per-server power at 100 % busy [W]. */
    double serverBusySpanW = 8.0;

    /** Per sleeping (ACPI S3) server power [W]. */
    double serverSleepW = 2.0;

    /** Airflow through servers per awake server [m^3/s]. */
    double serverAirflow = 0.008;

    /** Disk temperature offset above inlet at idle [°C]. */
    double diskOffsetIdleC = 5.0;

    /** Additional disk offset at 100 % disk utilization [°C]. */
    double diskOffsetBusySpanC = 12.0;

    /** Disk thermal time constant [s]. */
    double diskTauS = 900.0;

    /** Std-dev of temperature sensor noise [°C] (±0.5 °C accuracy). */
    double sensorNoiseC = 0.2;

    /** Std-dev of humidity sensor noise [% RH]. */
    double humiditySensorNoisePercent = 1.0;

    /** Actuator personality and power model. */
    cooling::ActuatorConfig actuators;

    /** Parasol as built: abrupt actuators, default geometry. */
    static PlantConfig parasol();

    /** Parasol with the smooth cooling units of §5.1. */
    static PlantConfig smoothParasol();

    /** Smooth Parasol with the adiabatic pre-cooler installed. */
    static PlantConfig smoothParasolEvaporative();

    /**
     * Smooth Parasol with a chilled-water backup loop instead of the DX
     * AC (§6: strike the proper power ratio per [23]): higher thermal
     * capacity, much better COP, and an air-handler fan in place of the
     * DX unit's fan.
     */
    static PlantConfig smoothParasolChiller();

    /** Total number of servers. */
    int totalServers() const { return numPods * serversPerPod; }
};

/**
 * The ground-truth plant.  Deterministic given its seed; step() advances
 * physics, readSensors() samples noisy observations.
 */
class Plant
{
  public:
    Plant(const PlantConfig &config, uint64_t seed = 1);

    /** The configuration in effect. */
    const PlantConfig &config() const { return _config; }

    /**
     * Advance physics by @p dt_s seconds under the given outside weather
     * and IT load, with the cooling units commanded to @p command.
     */
    void step(double dt_s, const environment::WeatherSample &outside,
              const PodLoad &load, const cooling::Regime &command);

    /** Noisy sensor observations of the current state. */
    SensorReadings readSensors();

    /**
     * Read sensors into a caller-owned buffer (the engine reuses one
     * across the whole run, so steady-state sampling allocates nothing).
     * Identical observations and noise-stream consumption to
     * readSensors().
     */
    void readSensors(SensorReadings &out);

    /** Noise-free pod inlet temperature (for validation metrics). */
    double truePodInletC(int pod) const;

    /** Noise-free cold-aisle relative humidity. */
    double trueColdAisleRh() const;

    /** Noise-free disk temperature for a pod. */
    double diskTempC(int pod) const;

    /** Noise-free disk temperatures for all pods at once. */
    const std::vector<double> &diskTemps() const { return _diskTempC; }

    /**
     * Fault injection: freeze pod @p pod's temperature sensor at
     * @p value_c (it keeps reporting that reading until cleared).
     * Models the stuck-sensor failure mode management must survive.
     */
    void injectStuckSensor(int pod, double value_c);

    /** Clear all injected sensor faults. */
    void clearSensorFaults();

    /** Hot-aisle temperature. */
    double hotAisleC() const { return _hotAisleC; }

    /** Structural mass temperature. */
    double massTempC() const { return _massTempC; }

    /** Current IT power [W]. */
    double itPowerW() const { return _itPowerW; }

    /** Current cooling power [W]. */
    double coolingPowerW() const { return _actuators.coolingPowerW(); }

    /** The actuator model (for inspecting actual fan speeds). */
    const cooling::Actuators &actuators() const { return _actuators; }

    /**
     * Jump the air/mass state to equilibrium-ish values for @p outside
     * conditions.  Used to start runs without a long warm-up transient.
     */
    void initializeSteadyState(const environment::WeatherSample &outside,
                               double inside_offset_c = 6.0);

  private:
    /**
     * One-entry exp() memo.  Each thermal node's decay exponent is
     * piecewise-constant in time (it moves only when fan speeds or
     * awake-server counts change), so remembering the last argument
     * skips the libm call on almost every steady-state step.  The same
     * argument yields the exact same std::exp result, so cached and
     * uncached stepping are bit-identical.
     */
    class ExpMemo
    {
      public:
        double operator()(double x)
        {
            if (x != _arg) {
                _arg = x;
                _val = std::exp(x);
            }
            return _val;
        }

      private:
        // NaN compares unequal to everything, so the first call always
        // computes.
        double _arg = std::numeric_limits<double>::quiet_NaN();
        double _val = 1.0;
    };

    /**
     * Relax @p value toward @p target with total conductance @p g
     * [m^3/s] acting on an effective volume @p volume [m^3] over
     * @p dt_s seconds.  Exact for the frozen-coefficient linear node,
     * stable for any step.  @p memo caches the node's decay factor.
     */
    static double relax(double value, double target, double g,
                        double volume, double dt_s, ExpMemo &memo)
    {
        if (g <= 0.0 || volume <= 0.0)
            return value;
        double alpha = memo(-g * dt_s / volume);
        return target + (value - target) * alpha;
    }

    double podFlowShare() const;
    void stepThermal(double dt_s, const environment::WeatherSample &outside,
                     const PodLoad &load);
    void stepHumidity(double dt_s,
                      const environment::WeatherSample &outside);
    void stepDisks(double dt_s, const PodLoad &load);
    void updateItPower(const PodLoad &load);

    PlantConfig _config;
    cooling::Actuators _actuators;
    util::Rng _sensorRng;

    util::SimTime _now;
    std::vector<double> _podTempC;
    std::vector<double> _podTempScratchC;  ///< stepThermal double buffer.
    std::vector<double> _podPowerW;   ///< IT power dissipated per pod.
    std::vector<int> _podAwake;       ///< Awake servers per pod.
    std::vector<double> _diskTempC;
    double _hotAisleC;
    double _massTempC;
    double _coldAbsHumidity;
    double _itPowerW = 0.0;
    double _dcUtilization = 1.0;
    environment::WeatherSample _lastOutside;

    // Decay-factor memos, one per exp() call site in the step path (the
    // pod relaxations each get their own since their conductances
    // differ).  See ExpMemo.
    std::vector<ExpMemo> _podRelaxExp;
    ExpMemo _suppressExp;
    ExpMemo _hotRelaxExp;
    ExpMemo _massExp;
    ExpMemo _humidityRelaxExp;
    ExpMemo _diskExp;

    /** absoluteHumidity(acCoilC, 100 %): fixed by config, hot in
        stepHumidity. */
    double _acCoilAbsHumidity = 0.0;

    int _stuckSensorPod = -1;
    double _stuckSensorValueC = 0.0;
};

} // namespace plant
} // namespace coolair

#endif // COOLAIR_PLANT_PARASOL_HPP
