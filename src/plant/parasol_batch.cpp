/**
 * @file
 * Strict-IEEE TU of the batched plant: construction, per-lane prologue
 * (actuators, IT power, evaporative intake), and batched sensor reads.
 *
 * Anything touching util::Rng, cooling::Actuators or the scalar
 * psychrometric functions lives here, compiled with the project's
 * default flags; only the flat-array loops in parasol_kernels.cpp get
 * fast-math.
 */

#include "plant/parasol_batch.hpp"

#include <algorithm>
#include <cmath>

#include "physics/psychrometrics.hpp"
#include "plant/parasol_kernels.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace plant {

BatchedPlant::BatchedPlant(const PlantConfig &config,
                           const std::vector<uint64_t> &seeds)
    : _config(config),
      _lanes(int(seeds.size())),
      _pods(config.numPods),
      _acCoilAbsHumidity(physics::absoluteHumidity(config.acCoilC, 100.0))
{
    if (config.numPods <= 0 || config.serversPerPod <= 0)
        util::fatal("PlantConfig: pods and servers must be positive");
    if (int(config.podRecirc.size()) != config.numPods)
        util::fatal("PlantConfig: podRecirc must have one entry per pod");
    if (config.controlPod < 0 || config.controlPod >= config.numPods)
        util::fatal("PlantConfig: controlPod out of range");
    if (_lanes <= 0)
        util::fatal("BatchedPlant: need at least one lane");

    const size_t L = size_t(_lanes);
    const size_t PL = size_t(_pods) * L;

    _act.reserve(L);
    _rng.reserve(L);
    for (uint64_t seed : seeds) {
        _act.emplace_back(config.actuators);
        _rng.emplace_back(seed, "plant.sensors");
    }
    _spare.assign(L, 0.0);
    _newSpare.assign(L, 0.0);

    // Same initial state as the scalar Plant constructor.
    _podTempC.assign(PL, 22.0);
    _podTempScratchC.assign(PL, 0.0);
    _podPowerW.assign(PL, 0.0);
    _podAwake.assign(PL, 0);
    _podUtil.assign(PL, 0.0);
    _diskTempC.assign(PL, 30.0);
    _hotAisleC.assign(L, 30.0);
    _massTempC.assign(L, 23.0);
    _coldAbsHumidity.assign(L, 8.0);
    _itPowerW.assign(L, 0.0);
    _dcUtilization.assign(L, 1.0);
    _lastOutside.assign(L, environment::WeatherSample{});

    _uFcFan.assign(L, 0.0);
    _uAcFan.assign(L, 0.0);
    _uComp.assign(L, 0.0);
    _uDamper.assign(L, 0.0);
    _evapOn.assign(L, 0);
    _qFc.assign(L, 0.0);
    _qAc.assign(L, 0.0);
    _intakeC.assign(L, 0.0);
    _intakeAbs.assign(L, 0.0);

    _expArg.assign(PL + 2 * L, 0.0);
    _expVal.assign(PL + 2 * L, 0.0);
    _target.assign(PL, 0.0);
    _suppress.assign(L, 0.0);
    _recircTotal.assign(L, 0.0);
    _localSup.assign(L, 0.0);
    _acSupply.assign(L, 0.0);
    _hotTarget.assign(L, 0.0);
    _humTarget.assign(L, 0.0);
    _podTempSum.assign(L, 0.0);
    _coldAvg.assign(L, 0.0);
    _awakeSum.assign(L, 0.0);
    _outTempC.assign(L, 0.0);
    _outAbsHumidity.assign(L, 0.0);
    _svpA.assign(L, 0.0);
    _svpB.assign(L, 0.0);
    _tmpA.assign(L, 0.0);
    _tmpB.assign(L, 0.0);
}

void
BatchedPlant::initializeSteadyState(
    int lane, const environment::WeatherSample &outside,
    double inside_offset_c)
{
    const size_t L = size_t(_lanes);
    const size_t l = size_t(lane);
    for (int i = 0; i < _pods; ++i) {
        double grade = _config.podRecirc[size_t(i)] * 2.0;
        _podTempC[size_t(i) * L + l] =
            outside.tempC + inside_offset_c + grade;
    }
    _hotAisleC[l] = outside.tempC + inside_offset_c + 9.0;
    _massTempC[l] = outside.tempC + inside_offset_c + 2.0;
    _coldAbsHumidity[l] = outside.absHumidity;
    for (int i = 0; i < _pods; ++i)
        _diskTempC[size_t(i) * L + l] =
            _podTempC[size_t(i) * L + l] + _config.diskOffsetIdleC + 5.0;
    _lastOutside[l] = outside;
}

void
BatchedPlant::updateItPower(const PodLoad *loads,
                            const unsigned char *loads_dirty)
{
    const size_t L = size_t(_lanes);
    for (int l = 0; l < _lanes; ++l) {
        if (loads_dirty && !loads_dirty[l])
            continue;  // Unchanged load: cached power state still holds.
        const PodLoad &load = loads[l];
        if (int(load.activeServers.size()) != _pods ||
            int(load.utilization.size()) != _pods) {
            util::panic("BatchedPlant::step: PodLoad arity != numPods");
        }
        double power = 0.0;
        int awake = 0;
        for (int i = 0; i < _pods; ++i) {
            int act = std::clamp(load.activeServers[size_t(i)], 0,
                                 _config.serversPerPod);
            double util_i =
                util::clamp(load.utilization[size_t(i)], 0.0, 1.0);
            double pod_power =
                double(act) * (_config.serverIdleW +
                               _config.serverBusySpanW * util_i) +
                double(_config.serversPerPod - act) * _config.serverSleepW;
            const size_t idx = size_t(i) * L + size_t(l);
            _podPowerW[idx] = pod_power;
            _podAwake[idx] = act;
            _podUtil[idx] = util_i;
            power += pod_power;
            awake += act;
        }
        _itPowerW[size_t(l)] = power;
        _dcUtilization[size_t(l)] =
            double(awake) / double(_config.totalServers());
    }
}

void
BatchedPlant::step(double dt_s, const environment::WeatherSample *outside,
                   const PodLoad *loads, const cooling::Regime *commands,
                   const unsigned char *loads_dirty,
                   const unsigned char *commands_dirty)
{
    if (dt_s <= 0.0)
        util::panic("BatchedPlant::step: dt must be positive");

    // dt-constant decay factors, strict exp (scalar ExpMemo twins).
    if (dt_s != _cachedDtS) {
        _cachedDtS = dt_s;
        _diskAlpha = std::exp(-dt_s / _config.diskTauS);
        _massAlpha = std::exp(-_config.massCouplingWPerK * dt_s /
                              _config.structuralMassJPerK);
    }

    // Abrupt actuators snap to the command and then hold: with a clean
    // command mask the gathered state (fans, damper, flows) is exactly
    // last step's, so the whole gather is skipped.  Smooth actuators
    // ramp every step and always re-gather.
    const bool settles =
        _config.actuators.style == cooling::ActuatorStyle::Abrupt;
    for (int l = 0; l < _lanes; ++l) {
        const bool cmd_dirty = !commands_dirty || commands_dirty[l];
        if (cmd_dirty)
            _act[size_t(l)].setCommand(commands[l]);
        if (cmd_dirty || !settles) {
            _act[size_t(l)].step(dt_s);
            const auto &unit = _act[size_t(l)].state();
            _uFcFan[size_t(l)] = unit.fcFanSpeed;
            _uAcFan[size_t(l)] = unit.acFanSpeed;
            _uComp[size_t(l)] = unit.compressorSpeed;
            _uDamper[size_t(l)] = unit.damperOpen ? 1.0 : 0.0;
            _evapOn[size_t(l)] = unit.evapOn ? 1 : 0;

            double q_fc = unit.damperOpen
                              ? unit.fcFanSpeed * _config.maxFcAirflow
                              : 0.0;
            _qFc[size_t(l)] = q_fc;
            _qAc[size_t(l)] = unit.acFanSpeed * _config.acAirflow;
        }

        // Intake conditions, incl. the adiabatic pre-cooler; the wetBulb
        // transcendental stays on the strict scalar implementation
        // (evaporative lanes only — off the common path).
        const double q_fc = _qFc[size_t(l)];
        double intake_c = outside[l].tempC;
        double intake_abs = outside[l].absHumidity;
        if (_config.hasEvaporativeCooler && _evapOn[size_t(l)] != 0 &&
            q_fc > 0.0) {
            double wb =
                physics::wetBulb(outside[l].tempC, outside[l].rhPercent);
            intake_c = outside[l].tempC -
                       _config.evapEffectiveness * (outside[l].tempC - wb);
            double sat_at_wb = physics::absoluteHumidity(wb, 100.0);
            intake_abs = outside[l].absHumidity +
                         _config.evapEffectiveness *
                             (sat_at_wb - outside[l].absHumidity);
            intake_abs = std::min(
                intake_abs, physics::absoluteHumidity(intake_c, 100.0));
        }
        _intakeC[size_t(l)] = intake_c;
        _intakeAbs[size_t(l)] = intake_abs;
    }

    updateItPower(loads, loads_dirty);
    stepPhysics(dt_s, outside, loads);

    for (int l = 0; l < _lanes; ++l)
        _lastOutside[size_t(l)] = outside[l];
    _now += int64_t(dt_s);
}

void
BatchedPlant::readSensors(SensorReadings *out)
{
    const int L = _lanes;
    const int pods = _pods;
    const int n_draws = pods + 4;

    // Gather uniforms for the fresh Box-Muller pairs each lane needs,
    // in exactly util::Rng::normal's draw order (rejection loop on u1).
    const int have = _haveSpare ? 1 : 0;
    const int fresh = n_draws - have;
    const int npairs = (fresh + 1) / 2;
    const bool carry = (fresh % 2) == 1;

    _u1.resize(size_t(npairs) * size_t(L));
    _u2.resize(size_t(npairs) * size_t(L));
    _zCos.resize(size_t(npairs) * size_t(L));
    _zSin.resize(size_t(npairs) * size_t(L));
    _draws.resize(size_t(n_draws) * size_t(L));

    for (int l = 0; l < L; ++l) {
        util::Rng &rng = _rng[size_t(l)];
        for (int p = 0; p < npairs; ++p) {
            double u1;
            do {
                u1 = rng.uniform();
            } while (u1 <= 0.0);
            const size_t k = size_t(l) * size_t(npairs) + size_t(p);
            _u1[k] = u1;
            _u2[k] = rng.uniform();
        }
    }
    kernels::boxMullerN(_u1.data(), _u2.data(), _zCos.data(),
                        _zSin.data(), npairs * L);

    // Distribute: optional spare first, then cos/sin per pair; an odd
    // fresh count leaves the final sin as the next call's spare.
    for (int l = 0; l < L; ++l) {
        double *dr = _draws.data() + size_t(l) * size_t(n_draws);
        int idx = 0;
        if (_haveSpare)
            dr[idx++] = _spare[size_t(l)];
        const double *zc = _zCos.data() + size_t(l) * size_t(npairs);
        const double *zs = _zSin.data() + size_t(l) * size_t(npairs);
        for (int p = 0; p < npairs; ++p) {
            dr[idx++] = zc[p];
            if (idx < n_draws)
                dr[idx++] = zs[p];
            else
                _newSpare[size_t(l)] = zs[p];
        }
    }
    if (carry)
        std::swap(_spare, _newSpare);
    _haveSpare = carry;

    // Phase 1: everything except the psychrometric conversions.
    const double t_sd = _config.sensorNoiseC;
    const double h_sd = _config.humiditySensorNoisePercent;
    for (int l = 0; l < L; ++l) {
        const double *dr = _draws.data() + size_t(l) * size_t(n_draws);
        SensorReadings &o = out[l];
        o.time = _now;
        o.podInletC.resize(size_t(pods));
        double cold_sum = 0.0;
        for (int i = 0; i < pods; ++i) {
            const size_t idx = size_t(i) * size_t(L) + size_t(l);
            o.podInletC[size_t(i)] = _podTempC[idx] + t_sd * dr[i];
            cold_sum += _podTempC[idx];
        }
        _coldAvg[size_t(l)] = cold_sum / double(pods);

        o.hotAisleC = _hotAisleC[size_t(l)] + t_sd * dr[pods + 1];
        o.outsideC = _lastOutside[size_t(l)].tempC + t_sd * dr[pods + 2];
        o.outsideRhPercent = util::clamp(
            _lastOutside[size_t(l)].rhPercent + h_sd * dr[pods + 3], 0.0,
            100.0);
        _tmpA[size_t(l)] = o.outsideC;

        const auto &unit = _act[size_t(l)].state();
        o.cooling.mode = unit.mode;
        o.cooling.fcFanSpeed = unit.fcFanSpeed;
        o.cooling.acFanSpeed = unit.acFanSpeed;
        o.cooling.compressorSpeed = unit.compressorSpeed;
        o.cooling.damperOpen = unit.damperOpen;
        o.cooling.evapOn = unit.evapOn;

        o.coolingPowerW = _act[size_t(l)].coolingPowerW();
        o.itPowerW = _itPowerW[size_t(l)];
        o.dcUtilization = _dcUtilization[size_t(l)];

        o.podDiskC.resize(size_t(pods));
        for (int i = 0; i < pods; ++i)
            o.podDiskC[size_t(i)] =
                _diskTempC[size_t(i) * size_t(L) + size_t(l)];
    }

    // Phase 2: humidity conversions with batched saturation pressures.
    physics::saturationVaporPressureN(_coldAvg.data(), _svpA.data(), L);
    physics::saturationVaporPressureN(_tmpA.data(), _svpB.data(), L);
    for (int l = 0; l < L; ++l) {
        const double *dr = _draws.data() + size_t(l) * size_t(n_draws);
        SensorReadings &o = out[l];
        double cold_avg = _coldAvg[size_t(l)];
        double kelvin = cold_avg + 273.15;
        double rh = 100.0 *
                    (_coldAbsHumidity[size_t(l)] / 1000.0 *
                     physics::kVaporGasConstant * kelvin) /
                    _svpA[size_t(l)];
        rh = util::clamp(rh + h_sd * dr[pods], 0.0, 100.0);
        o.coldAisleRhPercent = rh;
        o.coldAisleAbsHumidity = 1000.0 * (_svpA[size_t(l)] * rh / 100.0) /
                                 (physics::kVaporGasConstant * kelvin);
        double out_kelvin = o.outsideC + 273.15;
        o.outsideAbsHumidity =
            1000.0 * (_svpB[size_t(l)] * o.outsideRhPercent / 100.0) /
            (physics::kVaporGasConstant * out_kelvin);
    }
}

} // namespace plant
} // namespace coolair
