#ifndef COOLAIR_PLANT_PARASOL_KERNELS_HPP
#define COOLAIR_PLANT_PARASOL_KERNELS_HPP

/**
 * @file
 * Flat-array math kernels backing the batched plant (parasol_batch.hpp).
 *
 * Implemented in parasol_kernels.cpp, which is built with the
 * COOLAIR_KERNEL_OPTIONS fast-math flags so these loops vectorize
 * through libmvec; see DESIGN.md §10 for the resulting tolerance
 * contract versus the strict scalar path.
 */

namespace coolair {
namespace plant {
namespace kernels {

/** out[i] = exp(x[i]). */
void expN(const double *x, double *out, int n);

/**
 * Box-Muller: for each pair k, with uniforms u1[k] in (0,1] and u2[k]
 * in [0,1), zc[k] = mag*cos(2*pi*u2[k]) and zs[k] = mag*sin(...) with
 * mag = sqrt(-2*log(u1[k])) — the exact transform util::Rng::normal
 * applies, in the same (cos first, sin spare) order.  @p u1 and @p u2
 * are clobbered (reused as magnitude/angle scratch); cos and sin run
 * as separate output arrays because fused sincos has no libmvec
 * vector variant.
 */
void boxMullerN(double *u1, double *u2, double *zc, double *zs, int npairs);

} // namespace kernels
} // namespace plant
} // namespace coolair

#endif // COOLAIR_PLANT_PARASOL_KERNELS_HPP
