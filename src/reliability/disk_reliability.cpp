#include "reliability/disk_reliability.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace coolair {
namespace reliability {

namespace {

/** Boltzmann constant [eV/K]. */
constexpr double kBoltzmannEvPerK = 8.617333e-5;

/** Figure 1's disk-above-inlet offset at typical utilization [°C]. */
constexpr double kDiskOffsetC = 11.0;

} // anonymous namespace

DiskReliabilityModel::DiskReliabilityModel(
    const DiskReliabilityConfig &config)
    : _config(config)
{
    if (config.variationWeight < 0.0 || config.variationWeight > 1.0)
        util::fatal("DiskReliabilityConfig: variationWeight must be in "
                    "[0, 1]");
}

double
DiskReliabilityModel::temperatureFactor(double disk_temp_c) const
{
    double t = disk_temp_c + 273.15;
    double t_ref = _config.referenceDiskTempC + 273.15;
    return std::exp(_config.activationEnergyEv / kBoltzmannEvPerK *
                    (1.0 / t_ref - 1.0 / t));
}

double
DiskReliabilityModel::variationFactor(double daily_range_c) const
{
    double excess =
        std::max(0.0, daily_range_c - _config.referenceDailyRangeC);
    return 1.0 + _config.variationSlopePerC * excess;
}

ReliabilityReport
DiskReliabilityModel::assess(double mean_disk_temp_c,
                             double avg_daily_range_c,
                             double power_cycles_per_hour) const
{
    ReliabilityReport report;
    report.temperatureFactor = temperatureFactor(mean_disk_temp_c);
    report.variationFactor = variationFactor(avg_daily_range_c);

    double w = _config.variationWeight;
    report.afrMultiplier = (1.0 - w) * report.temperatureFactor +
                           w * report.variationFactor;

    double cycles_per_year = power_cycles_per_hour * 24.0 * 365.0;
    report.cycleBudgetFractionPerYear =
        cycles_per_year / _config.powerCycleBudget;
    report.cyclesWithinBudget =
        report.cycleBudgetFractionPerYear * _config.serviceLifeYears <=
        1.0;
    return report;
}

ReliabilityReport
DiskReliabilityModel::assess(const sim::Summary &summary,
                             double power_cycles_per_hour) const
{
    return assess(summary.avgMaxInletC + kDiskOffsetC,
                  summary.avgWorstDailyRangeC, power_cycles_per_hour);
}

} // namespace reliability
} // namespace coolair
