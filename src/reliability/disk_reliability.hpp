#ifndef COOLAIR_RELIABILITY_DISK_RELIABILITY_HPP
#define COOLAIR_RELIABILITY_DISK_RELIABILITY_HPP

/**
 * @file
 * Disk-reliability impact model.
 *
 * CoolAir's entire motivation (paper §1) is that free cooling exposes
 * disks — the most temperature-sensitive components — to high absolute
 * temperatures and wide temporal variation, and that the literature
 * disagrees about which matters:
 *
 *  - Pinheiro et al. [34] and El-Sayed et al. [10]: absolute temperature
 *    matters little up to ~50 °C, but El-Sayed finds wide *temporal
 *    variation* increases sector errors significantly and consistently;
 *  - Sankar et al. [36]: absolute temperature has a significant impact
 *    (Arrhenius-like), variation does not.
 *
 * This module quantifies both effects so the management systems can be
 * compared on reliability terms under either hypothesis (or a blend):
 * an Arrhenius acceleration factor for absolute disk temperature and a
 * linear-in-range factor for daily variation, plus the §4.2 load/unload
 * power-cycle budget check.  Coefficients are configurable; defaults are
 * chosen so each factor is 1.0 at a benign reference operating point.
 */

#include "sim/metrics.hpp"

namespace coolair {
namespace reliability {

/** Coefficients of the reliability impact model. */
struct DiskReliabilityConfig
{
    /**
     * Arrhenius activation energy [eV] for the temperature term
     * (0.4-0.5 eV is typical for drive electronics/media wear).
     */
    double activationEnergyEv = 0.46;

    /** Reference disk temperature with factor 1.0 [°C]. */
    double referenceDiskTempC = 35.0;

    /**
     * Fractional failure-rate increase per 1 °C of *daily disk
     * temperature range* beyond the reference range (El-Sayed-style
     * variation sensitivity).
     */
    double variationSlopePerC = 0.08;

    /** Reference daily range with variation factor 1.0 [°C]. */
    double referenceDailyRangeC = 4.0;

    /** Load/unload cycle budget over the disk's service life. */
    double powerCycleBudget = 300000.0;

    /** Service life used for the cycle budget [years]. */
    double serviceLifeYears = 4.0;

    /**
     * Blend between the two hypotheses in the combined index:
     * 0 = pure Sankar (temperature only), 1 = pure El-Sayed
     * (variation only).  0.5 weighs them equally.
     */
    double variationWeight = 0.5;
};

/** Reliability assessment of one run. */
struct ReliabilityReport
{
    /** Arrhenius acceleration factor from mean disk temperature. */
    double temperatureFactor = 1.0;

    /** Variation factor from the average worst daily range. */
    double variationFactor = 1.0;

    /** Blended annual-failure-rate multiplier. */
    double afrMultiplier = 1.0;

    /** Fraction of the load/unload budget a year of operation uses. */
    double cycleBudgetFractionPerYear = 0.0;

    /** True if cycling stays within budget over the service life. */
    bool cyclesWithinBudget = true;
};

/** The reliability impact model. */
class DiskReliabilityModel
{
  public:
    explicit DiskReliabilityModel(const DiskReliabilityConfig &config = {});

    /**
     * Arrhenius acceleration factor at @p disk_temp_c relative to the
     * reference temperature.
     */
    double temperatureFactor(double disk_temp_c) const;

    /**
     * Variation factor for an average daily disk-temperature range of
     * @p daily_range_c (floored at 1.0 below the reference range).
     */
    double variationFactor(double daily_range_c) const;

    /**
     * Assess a run.
     *
     * @param mean_disk_temp_c   mean disk temperature over the run
     * @param avg_daily_range_c  average worst daily disk range
     * @param power_cycles_per_hour  worst per-disk cycling rate
     */
    ReliabilityReport assess(double mean_disk_temp_c,
                             double avg_daily_range_c,
                             double power_cycles_per_hour = 0.0) const;

    /**
     * Assess from a run summary: disk temperature is approximated as
     * the mean max inlet plus the 50 %-utilization disk offset (~11 °C,
     * Figure 1), and the air range transfers to the disks.
     */
    ReliabilityReport assess(const sim::Summary &summary,
                             double power_cycles_per_hour = 0.0) const;

    const DiskReliabilityConfig &config() const { return _config; }

  private:
    DiskReliabilityConfig _config;
};

} // namespace reliability
} // namespace coolair

#endif // COOLAIR_RELIABILITY_DISK_RELIABILITY_HPP
