#ifndef COOLAIR_STORE_RESULT_STORE_HPP
#define COOLAIR_STORE_RESULT_STORE_HPP

/**
 * @file
 * Persistent content-addressed result store: a directory of small
 * CRC-protected entry files, each mapping one canonical identity text
 * (for experiments: the normalized spec text, see sim/result_cache.hpp)
 * to one payload (the serialized run result).
 *
 * The store is deliberately generic — it knows nothing about
 * ExperimentSpec or metrics.  Callers hand it an *id* (any canonical
 * text) and a payload; the store derives the entry file name from a
 * 128-bit hash of (salt, schema version, id), and every entry embeds
 * the full id text so a hash collision is detected on lookup and
 * served as a miss instead of a wrong result.
 *
 * Safety rules (the "never serve a wrong or torn result" contract):
 *
 *  - entries are written to a unique temp file and atomically renamed
 *    into place, so concurrent readers see either the old complete
 *    entry or the new complete entry, never a torn one;
 *  - every entry carries a CRC-32 over id + payload; corruption,
 *    truncation, or a malformed header makes lookup() miss (and the
 *    bad file is removed so the slot heals on the next store);
 *  - entries record the salt and schema version they were written
 *    under; a mismatch (the code or the result format changed) is a
 *    *stale* entry: also a miss, also removed;
 *  - lookup() and store() are thread-safe and may run concurrently
 *    from a worker pool (stats are atomics, file ops are atomic).
 */

#include <atomic>
#include <cstdint>
#include <string>

namespace coolair {

namespace obs {
class StatsRegistry;
}

namespace store {

/** Snapshot of one store's lifetime activity. */
struct StoreStats
{
    int64_t lookups = 0;         ///< lookup() calls.
    int64_t hits = 0;            ///< lookups served with a valid payload.
    int64_t misses = 0;          ///< lookups that found nothing usable.
    int64_t stores = 0;          ///< entries written successfully.
    int64_t storeFailures = 0;   ///< writes that failed (IO error).
    int64_t staleEntries = 0;    ///< entries dropped: salt/schema mismatch.
    int64_t corruptEntries = 0;  ///< entries dropped: CRC/format/truncation.
    int64_t collisions = 0;      ///< entries whose id text did not match.
    int64_t verifyFailures = 0;  ///< --cache-verify re-runs that diverged.
    int64_t bytesRead = 0;       ///< entry bytes read on hits.
    int64_t bytesWritten = 0;    ///< entry bytes written by stores.
};

/** A persistent on-disk id -> payload store (one directory). */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store at @p dir.  Entries written
     * under a different @p salt or @p schema_version are invisible —
     * they read as stale and are re-run by the caller.
     *
     * @throws std::runtime_error when the directory cannot be created.
     */
    ResultStore(std::string dir, std::string salt, int schema_version);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Look up the payload stored for @p id.  Returns true and fills
     * @p payload only for a complete, CRC-valid, same-salt, same-schema
     * entry whose embedded id text equals @p id byte for byte; every
     * other outcome (missing, stale, corrupt, collided) is a miss.
     * Never throws; IO problems read as misses.
     */
    bool lookup(const std::string &id, std::string &payload);

    /**
     * Write (or atomically replace) the entry for @p id.  Returns false
     * on IO failure instead of throwing, so a read-only or full cache
     * directory degrades to "nothing gets cached" rather than failing
     * sweep jobs whose simulation already succeeded.
     */
    bool store(const std::string &id, const std::string &payload);

    /** Remove the entry for @p id (used when a payload fails to parse). */
    void discard(const std::string &id);

    /** Hex entry key (128-bit hash of salt, schema version, and @p id). */
    std::string keyFor(const std::string &id) const;

    /** Full path of the entry file for @p id. */
    std::string entryPath(const std::string &id) const;

    const std::string &dir() const { return _dir; }
    const std::string &salt() const { return _salt; }
    int schemaVersion() const { return _schemaVersion; }

    /**
     * Reclassify the latest hit as corrupt: the entry passed the CRC
     * but its payload failed to parse (a schema drift that forgot to
     * bump the version).  Call after discard()ing the entry.
     */
    void noteInvalidPayload();

    /** Count one verification failure (a re-run hit that diverged). */
    void noteVerifyFailure();

    /** Snapshot of the lifetime counters. */
    StoreStats stats() const;

    /**
     * Add this store's counters to @p reg under store.* (hits, misses,
     * stores, stale/corrupt entries, verify failures, bytes).  Counters
     * are lifetime totals: add to a given registry at most once per
     * store, or the merge double-counts.
     */
    void addStats(obs::StatsRegistry &reg) const;

    /** On-disk footprint (counts every entry file in the directory). */
    struct DiskUsage
    {
        uint64_t entries = 0;
        uint64_t bytes = 0;
    };
    DiskUsage diskUsage() const;

  private:
    std::string _dir;
    std::string _salt;
    int _schemaVersion;

    std::atomic<int64_t> _lookups{0};
    std::atomic<int64_t> _hits{0};
    std::atomic<int64_t> _misses{0};
    std::atomic<int64_t> _stores{0};
    std::atomic<int64_t> _storeFailures{0};
    std::atomic<int64_t> _staleEntries{0};
    std::atomic<int64_t> _corruptEntries{0};
    std::atomic<int64_t> _collisions{0};
    std::atomic<int64_t> _verifyFailures{0};
    std::atomic<int64_t> _bytesRead{0};
    std::atomic<int64_t> _bytesWritten{0};
    std::atomic<uint64_t> _tempCounter{0};
};

/** CRC-32 (IEEE 802.3) of a byte string, the checksum entries carry. */
uint32_t crc32(const std::string &data);

} // namespace store
} // namespace coolair

#endif // COOLAIR_STORE_RESULT_STORE_HPP
