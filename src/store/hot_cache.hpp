#ifndef COOLAIR_STORE_HOT_CACHE_HPP
#define COOLAIR_STORE_HOT_CACHE_HPP

/**
 * @file
 * A sharded in-memory hot-result cache: the RAM tier in front of the
 * persistent ResultStore.  The serve layer consults it before touching
 * disk, so a repeat request for a recently-served spec skips the file
 * open, the CRC pass, and the stale/corrupt classification entirely —
 * the stored payload bytes come straight back.
 *
 * Shape:
 *
 *  - Keys are the same canonical result-cache ids the ResultStore
 *    uses (sim::resultCacheId text); values are the exact payload
 *    bytes that would be served (spec_io::formatResult text).  The
 *    hot tier never re-derives or re-formats — it can only return
 *    bytes an earlier store/lookup produced, so hot answers are
 *    byte-identical to cold ones by construction.
 *
 *  - N mutex-striped shards, chosen by std::hash of the id.  A
 *    lookup or insert locks exactly one shard, so concurrent
 *    connection threads serving different specs never contend.
 *
 *  - Each shard is an LRU list (front = most recent) capped in
 *    *bytes*, not entries: results vary from a few hundred bytes
 *    (single-day summaries) to tens of KiB (year sweeps with many
 *    pods), so an entry-count cap would make memory use depend on the
 *    workload mix.  The per-shard cap is capacityBytes / shards;
 *    inserting over the cap evicts from the LRU tail.  An entry
 *    larger than a whole shard is not cached (it would evict
 *    everything and then itself rotate out).
 *
 * Lifetime counters (hits/misses/insertions/evictions plus live
 * entries/bytes) are lock-free atomics published to an
 * obs::StatsRegistry via addStats(), following the ResultStore idiom:
 * add to a given registry at most once per cache or the merge
 * double-counts.
 */

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/stats.hpp"

namespace coolair {
namespace store {

/** Byte-capped, sharded, LRU map of result-cache id -> payload text. */
class HotResultCache
{
  public:
    /**
     * @param capacityBytes  Total byte budget across all shards
     *                       (id + payload bytes are both charged).
     * @param shards         Mutex stripes; clamped to >= 1.  More
     *                       shards means less cross-connection
     *                       contention but coarser LRU (eviction is
     *                       per-shard, not global).
     */
    explicit HotResultCache(size_t capacityBytes, int shards = 8);

    HotResultCache(const HotResultCache &) = delete;
    HotResultCache &operator=(const HotResultCache &) = delete;

    /**
     * Copy the payload cached under @p id into @p out and refresh its
     * LRU position.  False (and counts a miss) when absent.
     * Thread-safe.
     */
    bool lookup(const std::string &id, std::string &out);

    /**
     * Cache @p payload under @p id, replacing any previous entry and
     * evicting least-recently-used entries of the same shard until the
     * shard fits its byte cap again.  A payload larger than one whole
     * shard is ignored (counted as neither insertion nor eviction).
     * Thread-safe.
     */
    void insert(const std::string &id, const std::string &payload);

    /** Lifetime counters plus current occupancy. */
    struct Stats
    {
        int64_t hits = 0;
        int64_t misses = 0;
        int64_t insertions = 0;
        int64_t evictions = 0;
        int64_t entries = 0;  ///< live entries right now
        int64_t bytes = 0;    ///< live id+payload bytes right now
    };
    Stats stats() const;

    /**
     * Publish the counters as serve.hot_* into @p reg (hits, misses,
     * insertions, evictions as counters; entries and bytes as
     * gauges).  Lifetime totals — add to a registry at most once per
     * cache, like ResultStore::addStats.
     */
    void addStats(obs::StatsRegistry &reg) const;

    /** Total configured byte budget. */
    size_t capacityBytes() const { return _capacityBytes; }

    /** Shard count after clamping. */
    int shards() const { return int(_shards.size()); }

  private:
    /** One mutex stripe: an LRU list plus an index into it. */
    struct Shard
    {
        std::mutex mutex;
        /** front = most recently used; entries own their bytes. */
        std::list<std::pair<std::string, std::string>> lru;
        std::unordered_map<std::string,
                           std::list<std::pair<std::string,
                                               std::string>>::iterator>
            index;
        size_t bytes = 0;
    };

    Shard &shardFor(const std::string &id);

    size_t _capacityBytes;
    size_t _shardCapacity;
    /** unique_ptr: Shard holds a mutex and cannot move. */
    std::vector<std::unique_ptr<Shard>> _shards;

    std::atomic<int64_t> _hits{0};
    std::atomic<int64_t> _misses{0};
    std::atomic<int64_t> _insertions{0};
    std::atomic<int64_t> _evictions{0};
    std::atomic<int64_t> _entries{0};
    std::atomic<int64_t> _bytes{0};
};

} // namespace store
} // namespace coolair

#endif // COOLAIR_STORE_HOT_CACHE_HPP
