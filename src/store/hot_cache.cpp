#include "store/hot_cache.hpp"

#include <functional>

namespace coolair {
namespace store {

namespace {

/** Bytes an entry charges against its shard's budget. */
size_t
entryCost(const std::string &id, const std::string &payload)
{
    return id.size() + payload.size();
}

} // anonymous namespace

HotResultCache::HotResultCache(size_t capacityBytes, int shards)
    : _capacityBytes(capacityBytes)
{
    if (shards < 1)
        shards = 1;
    _shards.reserve(size_t(shards));
    for (int i = 0; i < shards; ++i)
        _shards.push_back(std::make_unique<Shard>());
    // Budget splits evenly; a zero per-shard slice would reject every
    // insert, so tiny-but-nonzero budgets round up to one byte.
    _shardCapacity = _capacityBytes / size_t(shards);
    if (_capacityBytes > 0 && _shardCapacity == 0)
        _shardCapacity = 1;
}

HotResultCache::Shard &
HotResultCache::shardFor(const std::string &id)
{
    return *_shards[std::hash<std::string>{}(id) % _shards.size()];
}

bool
HotResultCache::lookup(const std::string &id, std::string &out)
{
    Shard &shard = shardFor(id);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.index.find(id);
        if (it != shard.index.end()) {
            // Refresh recency: splice the node to the front in place —
            // no reallocation, iterators in the index stay valid.
            shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
            out = it->second->second;
            _hits.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
    }
    _misses.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
HotResultCache::insert(const std::string &id, const std::string &payload)
{
    const size_t cost = entryCost(id, payload);
    if (cost > _shardCapacity)
        return;  // would evict the whole shard and still thrash

    Shard &shard = shardFor(id);
    std::lock_guard<std::mutex> lock(shard.mutex);

    auto it = shard.index.find(id);
    if (it != shard.index.end()) {
        // Replace in place (same id, possibly different bytes — e.g. a
        // store re-run after corruption) and refresh recency.
        const size_t old = entryCost(id, it->second->second);
        shard.bytes -= old;
        _bytes.fetch_sub(int64_t(old), std::memory_order_relaxed);
        it->second->second = payload;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    } else {
        shard.lru.emplace_front(id, payload);
        shard.index.emplace(id, shard.lru.begin());
        _entries.fetch_add(1, std::memory_order_relaxed);
    }
    shard.bytes += cost;
    _bytes.fetch_add(int64_t(cost), std::memory_order_relaxed);
    _insertions.fetch_add(1, std::memory_order_relaxed);

    while (shard.bytes > _shardCapacity) {
        // The just-inserted entry sits at the front and costs at most
        // one shard, so the tail here is always an older entry.
        auto victim = std::prev(shard.lru.end());
        const size_t freed = entryCost(victim->first, victim->second);
        shard.index.erase(victim->first);
        shard.lru.erase(victim);
        shard.bytes -= freed;
        _bytes.fetch_sub(int64_t(freed), std::memory_order_relaxed);
        _entries.fetch_sub(1, std::memory_order_relaxed);
        _evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

HotResultCache::Stats
HotResultCache::stats() const
{
    Stats s;
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.insertions = _insertions.load(std::memory_order_relaxed);
    s.evictions = _evictions.load(std::memory_order_relaxed);
    s.entries = _entries.load(std::memory_order_relaxed);
    s.bytes = _bytes.load(std::memory_order_relaxed);
    return s;
}

void
HotResultCache::addStats(obs::StatsRegistry &reg) const
{
    Stats s = stats();
    reg.counter("serve.hot_hits",
                "submissions served from the in-memory hot cache")
        .add(s.hits);
    reg.counter("serve.hot_misses", "hot-cache lookups that fell "
                                    "through to the result store")
        .add(s.misses);
    reg.counter("serve.hot_insertions", "payloads cached in memory")
        .add(s.insertions);
    reg.counter("serve.hot_evictions",
                "payloads evicted by the byte-capped LRU")
        .add(s.evictions);
    reg.gauge("serve.hot_entries", "live hot-cache entries")
        .set(double(s.entries));
    reg.gauge("serve.hot_bytes", "live hot-cache id+payload bytes")
        .set(double(s.bytes));
}

} // namespace store
} // namespace coolair
