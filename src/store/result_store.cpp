#include "store/result_store.hpp"

#include <unistd.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/stats.hpp"
#include "util/parse.hpp"

namespace coolair {
namespace store {

namespace {

namespace fs = std::filesystem;

constexpr const char kMagic[] = "coolair-store 1";
constexpr const char kEntrySuffix[] = ".res";

/**
 * Sanity cap on one entry's id/payload size headers (1 GiB).  Real
 * entries are a few hundred bytes; a corrupt header claiming more than
 * this — or one whose digits would overflow the accumulator and wrap
 * to a small value, mis-framing the payload read — marks the entry
 * corrupt so it is dropped and re-run.
 */
constexpr uint64_t kMaxEntryBytes = uint64_t(1) << 30;

/** SplitMix64 finalizer: avalanches a 64-bit state. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/** FNV-1a 64 from a caller-chosen basis (two bases -> a 128-bit key). */
uint64_t
fnv1a64(const std::string &s, uint64_t basis)
{
    uint64_t h = basis;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
    return buf;
}

/** crc32 lookup table, built once. */
const std::array<uint32_t, 256> &
crcTable()
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/**
 * One parsed entry header line: "name value\n" where value runs to the
 * end of the line (salts may contain spaces).  Returns false when the
 * line is missing or does not start with @p name.
 */
bool
headerLine(std::istringstream &is, const std::string &name,
           std::string &value)
{
    std::string line;
    if (!std::getline(is, line))
        return false;
    if (line.rfind(name + " ", 0) != 0)
        return false;
    value = line.substr(name.size() + 1);
    return true;
}

bool
parseSize(const std::string &s, size_t &out)
{
    uint64_t v = 0;
    if (!util::parseSize(s, v, kMaxEntryBytes))
        return false;
    out = size_t(v);
    return true;
}

} // anonymous namespace

uint32_t
crc32(const std::string &data)
{
    const auto &table = crcTable();
    uint32_t c = 0xFFFFFFFFu;
    for (unsigned char b : data)
        c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

ResultStore::ResultStore(std::string dir, std::string salt,
                         int schema_version)
    : _dir(std::move(dir)), _salt(std::move(salt)),
      _schemaVersion(schema_version)
{
    std::error_code ec;
    fs::create_directories(_dir, ec);
    if (ec || !fs::is_directory(_dir))
        throw std::runtime_error("ResultStore: cannot create directory: " +
                                 _dir + ": " + ec.message());
}

std::string
ResultStore::keyFor(const std::string &id) const
{
    // Salt and schema participate in the key so a salt bump leaves old
    // entries unreachable (they also fail the embedded-header check if
    // a collision lands on one).
    std::string seed =
        _salt + '\n' + std::to_string(_schemaVersion) + '\n' + id;
    uint64_t h1 = mix64(fnv1a64(seed, 0xCBF29CE484222325ULL));
    uint64_t h2 = mix64(fnv1a64(seed, 0x84222325CBF29CE4ULL));
    return hex64(h1) + hex64(h2);
}

std::string
ResultStore::entryPath(const std::string &id) const
{
    return _dir + "/" + keyFor(id) + kEntrySuffix;
}

bool
ResultStore::lookup(const std::string &id, std::string &payload)
{
    _lookups.fetch_add(1, std::memory_order_relaxed);
    const std::string path = entryPath(id);

    std::string blob;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            _misses.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        blob = buf.str();
    }

    // Parse the header; classify failures so the caller's stats say
    // *why* entries were re-run.
    enum class Bad
    {
        Corrupt,
        Stale,
        Collision
    };
    auto reject = [&](Bad why) {
        switch (why) {
          case Bad::Corrupt:
            _corruptEntries.fetch_add(1, std::memory_order_relaxed);
            break;
          case Bad::Stale:
            _staleEntries.fetch_add(1, std::memory_order_relaxed);
            break;
          case Bad::Collision:
            _collisions.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        // Corrupt and stale entries can never become valid again;
        // remove them so the slot heals on the next store.  A collided
        // entry is someone else's valid data: leave it.
        if (why != Bad::Collision) {
            std::error_code ec;
            fs::remove(path, ec);
        }
        _misses.fetch_add(1, std::memory_order_relaxed);
        return false;
    };

    std::istringstream is(blob);
    std::string magic, salt, schema, id_bytes_s, payload_bytes_s, crc_s;
    if (!std::getline(is, magic) || magic != kMagic)
        return reject(Bad::Corrupt);
    if (!headerLine(is, "salt", salt) || !headerLine(is, "schema", schema) ||
        !headerLine(is, "id_bytes", id_bytes_s) ||
        !headerLine(is, "payload_bytes", payload_bytes_s) ||
        !headerLine(is, "crc32", crc_s))
        return reject(Bad::Corrupt);

    size_t id_bytes = 0, payload_bytes = 0;
    if (!parseSize(id_bytes_s, id_bytes) ||
        !parseSize(payload_bytes_s, payload_bytes))
        return reject(Bad::Corrupt);

    const size_t body_off = size_t(is.tellg());
    if (blob.size() != body_off + id_bytes + payload_bytes)
        return reject(Bad::Corrupt);  // truncated (or padded) body

    const std::string body = blob.substr(body_off);
    char crc_buf[16];
    std::snprintf(crc_buf, sizeof(crc_buf), "%08x", crc32(body));
    if (crc_s != crc_buf)
        return reject(Bad::Corrupt);

    // The entry is internally consistent; now check it is *ours*.
    if (salt != _salt || schema != std::to_string(_schemaVersion))
        return reject(Bad::Stale);
    if (body.compare(0, id_bytes, id) != 0)
        return reject(Bad::Collision);

    payload = body.substr(id_bytes);
    _hits.fetch_add(1, std::memory_order_relaxed);
    _bytesRead.fetch_add(int64_t(blob.size()), std::memory_order_relaxed);
    return true;
}

bool
ResultStore::store(const std::string &id, const std::string &payload)
{
    const std::string body = id + payload;
    char crc_buf[16];
    std::snprintf(crc_buf, sizeof(crc_buf), "%08x", crc32(body));

    std::ostringstream os;
    os << kMagic << "\n";
    os << "salt " << _salt << "\n";
    os << "schema " << _schemaVersion << "\n";
    os << "id_bytes " << id.size() << "\n";
    os << "payload_bytes " << payload.size() << "\n";
    os << "crc32 " << crc_buf << "\n";
    os << body;
    const std::string blob = os.str();

    // Unique temp name per write (pid + a process-wide counter), then
    // an atomic rename: concurrent writers race benignly — last rename
    // wins and readers never see a torn entry.
    const std::string path = entryPath(id);
    const std::string tmp =
        path + ".tmp." + std::to_string(uint64_t(::getpid())) + "." +
        std::to_string(_tempCounter.fetch_add(1, std::memory_order_relaxed));

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out || !(out << blob) || !out.flush()) {
            _storeFailures.fetch_add(1, std::memory_order_relaxed);
            std::error_code ec;
            fs::remove(tmp, ec);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        _storeFailures.fetch_add(1, std::memory_order_relaxed);
        fs::remove(tmp, ec);
        return false;
    }
    _stores.fetch_add(1, std::memory_order_relaxed);
    _bytesWritten.fetch_add(int64_t(blob.size()), std::memory_order_relaxed);
    return true;
}

void
ResultStore::discard(const std::string &id)
{
    std::error_code ec;
    fs::remove(entryPath(id), ec);
}

void
ResultStore::noteInvalidPayload()
{
    // The lookup counted a hit before the payload failed to parse;
    // reclassify it so hits only ever count served results.
    _hits.fetch_sub(1, std::memory_order_relaxed);
    _misses.fetch_add(1, std::memory_order_relaxed);
    _corruptEntries.fetch_add(1, std::memory_order_relaxed);
}

void
ResultStore::noteVerifyFailure()
{
    _verifyFailures.fetch_add(1, std::memory_order_relaxed);
}

StoreStats
ResultStore::stats() const
{
    StoreStats s;
    s.lookups = _lookups.load(std::memory_order_relaxed);
    s.hits = _hits.load(std::memory_order_relaxed);
    s.misses = _misses.load(std::memory_order_relaxed);
    s.stores = _stores.load(std::memory_order_relaxed);
    s.storeFailures = _storeFailures.load(std::memory_order_relaxed);
    s.staleEntries = _staleEntries.load(std::memory_order_relaxed);
    s.corruptEntries = _corruptEntries.load(std::memory_order_relaxed);
    s.collisions = _collisions.load(std::memory_order_relaxed);
    s.verifyFailures = _verifyFailures.load(std::memory_order_relaxed);
    s.bytesRead = _bytesRead.load(std::memory_order_relaxed);
    s.bytesWritten = _bytesWritten.load(std::memory_order_relaxed);
    return s;
}

void
ResultStore::addStats(obs::StatsRegistry &reg) const
{
    StoreStats s = stats();
    reg.counter("store.lookups", "result-store lookups").add(s.lookups);
    reg.counter("store.hits", "lookups served from the result store")
        .add(s.hits);
    reg.counter("store.misses", "lookups that had to run").add(s.misses);
    reg.counter("store.stores", "results written to the store")
        .add(s.stores);
    reg.counter("store.store_failures", "result writes that failed (IO)")
        .add(s.storeFailures);
    reg.counter("store.stale_entries",
                "entries dropped on salt/schema mismatch")
        .add(s.staleEntries);
    reg.counter("store.corrupt_entries",
                "entries dropped on CRC/format failure")
        .add(s.corruptEntries);
    reg.counter("store.collisions", "entries whose id text did not match")
        .add(s.collisions);
    reg.counter("store.verify_failures",
                "verified hits that did not reproduce")
        .add(s.verifyFailures);
    reg.counter("store.bytes_read", "entry bytes read on hits")
        .add(s.bytesRead);
    reg.counter("store.bytes_written", "entry bytes written")
        .add(s.bytesWritten);
}

ResultStore::DiskUsage
ResultStore::diskUsage() const
{
    DiskUsage usage;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(_dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        if (entry.path().extension() != kEntrySuffix)
            continue;
        ++usage.entries;
        usage.bytes += uint64_t(entry.file_size(ec));
    }
    return usage;
}

} // namespace store
} // namespace coolair
