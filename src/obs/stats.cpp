#include "obs/stats.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/json.hpp"

namespace coolair {
namespace obs {

namespace {

std::atomic<bool> g_enabled{false};

const char *
kindName(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:   return "counter";
      case StatKind::Gauge:     return "gauge";
      case StatKind::Histogram: return "histogram";
    }
    return "unknown";
}

} // anonymous namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

StatsRegistry &
registry()
{
    static StatsRegistry global;
    return global;
}

std::string
formatDouble(double v)
{
    // %.17g preserves the exact value, mirroring spec_io's convention;
    // integral values print without a fraction for readability.
    char buf[64];
    if (v == int64_t(v) && v > -1e15 && v < 1e15)
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonQuote(const std::string &s)
{
    return util::jsonQuote(s);
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

void
Histogram::record(double value, double weight)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _s.count += 1;
    _s.weightSum += weight;
    _s.weightedSum += value * weight;
    if (!_any || value < _s.min)
        _s.min = value;
    if (!_any || value > _s.max)
        _s.max = value;
    if (!_s.bucketBounds.empty()) {
        // First bound >= value (Prometheus `le` semantics); a sample
        // above every bound counts only in the total.
        auto it = std::lower_bound(_s.bucketBounds.begin(),
                                   _s.bucketBounds.end(), value);
        if (it != _s.bucketBounds.end())
            ++_s.bucketCounts[size_t(it - _s.bucketBounds.begin())];
    }
    _any = true;
}

void
Histogram::setBuckets(const std::vector<double> &upperBounds)
{
    for (size_t i = 1; i < upperBounds.size(); ++i)
        if (!(upperBounds[i - 1] < upperBounds[i]))
            throw std::invalid_argument(
                "Histogram::setBuckets: bounds must be strictly "
                "increasing");
    std::lock_guard<std::mutex> lock(_mutex);
    _s.bucketBounds = upperBounds;
    _s.bucketCounts.assign(upperBounds.size(), 0);
}

double
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0 || bucketBounds.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double target = q * double(count);
    int64_t cumulative = 0;
    double lower = 0.0;
    for (size_t i = 0; i < bucketBounds.size(); ++i) {
        const int64_t in_bucket = bucketCounts[i];
        if (double(cumulative) + double(in_bucket) >= target &&
            in_bucket > 0) {
            const double frac =
                (target - double(cumulative)) / double(in_bucket);
            return lower + frac * (bucketBounds[i] - lower);
        }
        cumulative += in_bucket;
        lower = bucketBounds[i];
    }
    // Target falls above every bound: cap at the last bound, exactly
    // like Prometheus histogram_quantile.
    return bucketBounds.back();
}

Histogram::Snapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _s;
}

void
Histogram::combine(const Snapshot &other)
{
    if (other.count == 0)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    if (!_any && _s.bucketBounds.empty()) {
        _s = other;
    } else {
        _s.count += other.count;
        _s.weightSum += other.weightSum;
        _s.weightedSum += other.weightedSum;
        if (_any) {
            _s.min = std::min(_s.min, other.min);
            _s.max = std::max(_s.max, other.max);
        } else {
            _s.min = other.min;
            _s.max = other.max;
        }
        if (_s.bucketBounds == other.bucketBounds) {
            for (size_t i = 0; i < _s.bucketCounts.size(); ++i)
                _s.bucketCounts[i] += other.bucketCounts[i];
        } else {
            // Mismatched bounds cannot be aligned; keep the moments,
            // drop the buckets rather than invent counts.
            _s.bucketBounds.clear();
            _s.bucketCounts.clear();
        }
    }
    _any = true;
}

// ---------------------------------------------------------------------------
// StatsRegistry.
// ---------------------------------------------------------------------------

StatsRegistry::Stat &
StatsRegistry::lookup(const std::string &name, StatKind kind,
                      const std::string &desc, uint32_t flags,
                      bool *created)
{
    if (name.empty())
        throw std::invalid_argument("StatsRegistry: empty stat name");

    if (created)
        *created = false;
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _stats.find(name);
    if (it != _stats.end()) {
        if (it->second.kind != kind)
            throw std::invalid_argument(
                "StatsRegistry: stat '" + name + "' already registered as " +
                kindName(it->second.kind) + ", requested as " +
                kindName(kind));
        return it->second;
    }

    Stat stat;
    stat.desc = desc;
    stat.kind = kind;
    stat.flags = flags;
    switch (kind) {
      case StatKind::Counter:
        stat.counter = std::make_unique<Counter>();
        break;
      case StatKind::Gauge:
        stat.gauge = std::make_unique<Gauge>();
        break;
      case StatKind::Histogram:
        stat.hist = std::make_unique<Histogram>();
        break;
    }
    if (created)
        *created = true;
    return _stats.emplace(name, std::move(stat)).first->second;
}

Counter &
StatsRegistry::counter(const std::string &name, const std::string &desc,
                       uint32_t flags)
{
    return *lookup(name, StatKind::Counter, desc, flags).counter;
}

Gauge &
StatsRegistry::gauge(const std::string &name, const std::string &desc,
                     uint32_t flags)
{
    return *lookup(name, StatKind::Gauge, desc, flags).gauge;
}

Histogram &
StatsRegistry::histogram(const std::string &name, const std::string &desc,
                         uint32_t flags,
                         const std::vector<double> &buckets)
{
    bool created = false;
    Histogram &h =
        *lookup(name, StatKind::Histogram, desc, flags, &created).hist;
    // Bounds stick from the first registration only, like desc; later
    // callers (merges, scrapes) must not reset accumulated counts.
    if (created && !buckets.empty())
        h.setBuckets(buckets);
    return h;
}

std::vector<StatsRegistry::Entry>
StatsRegistry::snapshot(const DumpOptions &options) const
{
    std::vector<Entry> out;
    std::lock_guard<std::mutex> lock(_mutex);
    out.reserve(_stats.size());
    for (const auto &[name, stat] : _stats) {  // std::map: sorted by name
        if (options.skipWallClock && (stat.flags & kWallClock))
            continue;
        Entry e;
        e.name = name;
        e.desc = stat.desc;
        e.kind = stat.kind;
        e.flags = stat.flags;
        switch (stat.kind) {
          case StatKind::Counter:
            e.counterValue = stat.counter->value();
            break;
          case StatKind::Gauge:
            e.gaugeValue = stat.gauge->value();
            e.gaugeSet = stat.gauge->isSet();
            break;
          case StatKind::Histogram:
            e.histogram = stat.hist->snapshot();
            break;
        }
        out.push_back(std::move(e));
    }
    return out;
}

void
StatsRegistry::merge(const StatsRegistry &other)
{
    for (const Entry &e : other.snapshot()) {
        switch (e.kind) {
          case StatKind::Counter:
            counter(e.name, e.desc, e.flags).add(e.counterValue);
            break;
          case StatKind::Gauge:
            if (e.gaugeSet)
                gauge(e.name, e.desc, e.flags).set(e.gaugeValue);
            break;
          case StatKind::Histogram:
            // Pass the source's bounds through so a fresh merge target
            // (statsText, sampler snapshots) reproduces the buckets.
            histogram(e.name, e.desc, e.flags, e.histogram.bucketBounds)
                .combine(e.histogram);
            break;
        }
    }
}

void
StatsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _stats.clear();
}

void
StatsRegistry::dumpText(std::ostream &os, const DumpOptions &options) const
{
    auto line = [&os](const std::string &name, const std::string &value,
                      const std::string &desc) {
        os << name;
        for (size_t pad = name.size(); pad < 44; ++pad)
            os << ' ';
        os << ' ' << value;
        if (!desc.empty()) {
            for (size_t pad = value.size(); pad < 16; ++pad)
                os << ' ';
            os << "  # " << desc;
        }
        os << '\n';
    };

    os << "---------- Begin Simulation Statistics ----------\n";
    for (const Entry &e : snapshot(options)) {
        switch (e.kind) {
          case StatKind::Counter:
            line(e.name, std::to_string(e.counterValue), e.desc);
            break;
          case StatKind::Gauge:
            line(e.name, formatDouble(e.gaugeValue), e.desc);
            break;
          case StatKind::Histogram: {
            const Histogram::Snapshot &h = e.histogram;
            line(e.name + "::count", std::to_string(h.count), e.desc);
            line(e.name + "::mean", formatDouble(h.mean()), "");
            line(e.name + "::min", formatDouble(h.min), "");
            line(e.name + "::max", formatDouble(h.max), "");
            line(e.name + "::weight", formatDouble(h.weightSum), "");
            break;
          }
        }
    }
    os << "---------- End Simulation Statistics ----------\n";
}

void
StatsRegistry::dumpJson(std::ostream &os, const DumpOptions &options,
                        int indent) const
{
    const std::string pad(size_t(indent), ' ');
    const std::string inner = pad + "  ";
    os << "{";
    bool first = true;
    for (const Entry &e : snapshot(options)) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << inner << jsonQuote(e.name) << ": ";
        switch (e.kind) {
          case StatKind::Counter:
            os << e.counterValue;
            break;
          case StatKind::Gauge:
            os << formatDouble(e.gaugeValue);
            break;
          case StatKind::Histogram: {
            const Histogram::Snapshot &h = e.histogram;
            os << "{\"count\": " << h.count
               << ", \"mean\": " << formatDouble(h.mean())
               << ", \"min\": " << formatDouble(h.min)
               << ", \"max\": " << formatDouble(h.max)
               << ", \"weight\": " << formatDouble(h.weightSum) << "}";
            break;
          }
        }
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
}

} // namespace obs
} // namespace coolair
