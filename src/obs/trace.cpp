#include "obs/trace.hpp"

#include "obs/stats.hpp"

#include <algorithm>
#include <chrono>

namespace coolair {
namespace obs {

namespace {

std::atomic<int> g_nextAutoTrack{1000};

int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// -1 = unassigned; lazily replaced with a process-unique id on first
// read so untracked threads still get distinct tracks.
thread_local int t_track = -1;

// The thread's active trace context (0 = no request attribution).
thread_local uint64_t t_traceId = 0;

} // anonymous namespace

void
setThreadTrack(int tid)
{
    t_track = tid;
}

int
threadTrack()
{
    if (t_track < 0)
        t_track = g_nextAutoTrack.fetch_add(1, std::memory_order_relaxed);
    return t_track;
}

uint64_t
currentTraceId()
{
    return t_traceId;
}

void
setCurrentTraceId(uint64_t id)
{
    t_traceId = id;
}

Tracer::Tracer() : _epochNs(steadyNowNs())
{
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

int64_t
Tracer::nowUs() const
{
    return (steadyNowNs() - _epochNs) / 1000;
}

void
Tracer::recordComplete(const std::string &name, const std::string &cat,
                       int64_t tsUs, int64_t durUs, int tid,
                       uint64_t traceId)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    if (_maxEvents > 0 && _events.size() >= _maxEvents) {
        // Shed the oldest quarter in one move, so a saturated daemon
        // pays the erase rarely instead of per event.
        const size_t drop = std::max<size_t>(1, _maxEvents / 4);
        _events.erase(_events.begin(),
                      _events.begin() + std::min(drop, _events.size()));
        _dropped += drop;
    }
    _events.push_back(TraceEvent{name, cat, tsUs, durUs, tid, traceId});
}

void
Tracer::setMaxEvents(size_t cap)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _maxEvents = cap;
}

size_t
Tracer::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _dropped;
}

std::vector<TraceEvent>
Tracer::takeTrace(uint64_t traceId)
{
    std::vector<TraceEvent> out;
    if (traceId == 0)
        return out;
    std::lock_guard<std::mutex> lock(_mutex);
    auto keep = _events.begin();
    for (auto it = _events.begin(); it != _events.end(); ++it) {
        if (it->traceId == traceId) {
            out.push_back(std::move(*it));
        } else {
            if (keep != it)
                *keep = std::move(*it);
            ++keep;
        }
    }
    _events.erase(keep, _events.end());
    return out;
}

std::vector<std::pair<int, std::string>>
Tracer::trackNames() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _trackNames;
}

void
Tracer::nameTrack(int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &entry : _trackNames) {
        if (entry.first == tid) {
            entry.second = name;
            return;
        }
    }
    _trackNames.emplace_back(tid, name);
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _events.size();
}

void
writeTraceEventsJson(std::ostream &os, std::vector<TraceEvent> events,
                     std::vector<std::pair<int, std::string>> tracks)
{
    // Stable order: by start time, then track; makes the export
    // reproducible for a given set of events.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.tid < b.tid;
                     });
    std::sort(tracks.begin(), tracks.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    os << "{\n  \"traceEvents\": [";
    bool first = true;
    for (const auto &[tid, name] : tracks) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1"
           << ", \"tid\": " << tid
           << ", \"args\": {\"name\": " << jsonQuote(name) << "}}";
    }
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\"name\": " << jsonQuote(e.name)
           << ", \"cat\": " << jsonQuote(e.cat)
           << ", \"ph\": \"X\", \"pid\": 1"
           << ", \"tid\": " << e.tid
           << ", \"ts\": " << e.tsUs
           << ", \"dur\": " << e.durUs;
        if (e.traceId != 0)
            os << ", \"args\": {\"trace_id\": " << e.traceId << "}";
        os << "}";
    }
    if (!first)
        os << "\n  ";
    os << "],\n  \"displayTimeUnit\": \"ms\"\n}\n";
}

void
Tracer::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> events;
    std::vector<std::pair<int, std::string>> tracks;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        events = _events;
        tracks = _trackNames;
    }
    writeTraceEventsJson(os, std::move(events), std::move(tracks));
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _events.clear();
    _trackNames.clear();
    _dropped = 0;
}

} // namespace obs
} // namespace coolair
