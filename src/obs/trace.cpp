#include "obs/trace.hpp"

#include "obs/stats.hpp"

#include <algorithm>
#include <chrono>

namespace coolair {
namespace obs {

namespace {

std::atomic<int> g_nextAutoTrack{1000};

int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

// -1 = unassigned; lazily replaced with a process-unique id on first
// read so untracked threads still get distinct tracks.
thread_local int t_track = -1;

} // anonymous namespace

void
setThreadTrack(int tid)
{
    t_track = tid;
}

int
threadTrack()
{
    if (t_track < 0)
        t_track = g_nextAutoTrack.fetch_add(1, std::memory_order_relaxed);
    return t_track;
}

Tracer::Tracer() : _epochNs(steadyNowNs())
{
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

int64_t
Tracer::nowUs() const
{
    return (steadyNowNs() - _epochNs) / 1000;
}

void
Tracer::recordComplete(const std::string &name, const std::string &cat,
                       int64_t tsUs, int64_t durUs, int tid)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    _events.push_back(TraceEvent{name, cat, tsUs, durUs, tid});
}

void
Tracer::nameTrack(int tid, const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (auto &entry : _trackNames) {
        if (entry.first == tid) {
            entry.second = name;
            return;
        }
    }
    _trackNames.emplace_back(tid, name);
}

size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _events.size();
}

void
Tracer::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> events;
    std::vector<std::pair<int, std::string>> tracks;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        events = _events;
        tracks = _trackNames;
    }
    // Stable order: by start time, then track; makes the export
    // reproducible for a given set of events.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsUs != b.tsUs)
                             return a.tsUs < b.tsUs;
                         return a.tid < b.tid;
                     });
    std::sort(tracks.begin(), tracks.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });

    os << "{\n  \"traceEvents\": [";
    bool first = true;
    for (const auto &[tid, name] : tracks) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1"
           << ", \"tid\": " << tid
           << ", \"args\": {\"name\": " << jsonQuote(name) << "}}";
    }
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    {\"name\": " << jsonQuote(e.name)
           << ", \"cat\": " << jsonQuote(e.cat)
           << ", \"ph\": \"X\", \"pid\": 1"
           << ", \"tid\": " << e.tid
           << ", \"ts\": " << e.tsUs
           << ", \"dur\": " << e.durUs << "}";
    }
    if (!first)
        os << "\n  ";
    os << "],\n  \"displayTimeUnit\": \"ms\"\n}\n";
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _events.clear();
    _trackNames.clear();
}

} // namespace obs
} // namespace coolair
