#ifndef COOLAIR_OBS_TIMESERIES_HPP
#define COOLAIR_OBS_TIMESERIES_HPP

/**
 * @file
 * Bounded-memory time-series sampling over a StatsRegistry.
 *
 * A TimeSeriesSampler periodically evaluates a snapshot function (the
 * serve daemon passes one that merges its per-service registry) and
 * appends one point per stat to a fixed-capacity ring buffer:
 *
 *  - Counter            -> one series of the raw cumulative value
 *  - Gauge              -> one series of the last-set value
 *  - Histogram          -> two series, `<name>::count` and
 *                          `<name>::mean`
 *
 * Memory is bounded by `capacity * series-count` points, no matter how
 * long the daemon runs; when a ring fills, the oldest point is
 * overwritten.  Counters stay cumulative in the ring (so the data
 * composes with Prometheus-style rate()); ratePerSecond() derives the
 * per-interval delta/dt series on demand for dashboards that want
 * specs/s directly.
 *
 * Locking: the sampler calls the snapshot function *outside* its own
 * mutex (the function takes the registry lock only while copying), then
 * appends under its mutex.  Readers copy points out under the same
 * mutex; no lock is held while formatting or writing to a socket.
 */

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/stats.hpp"

namespace coolair {
namespace obs {

/** One sampled value. */
struct SeriesPoint
{
    int64_t unixMs = 0;  ///< wall-clock sample time, ms since epoch
    double value = 0.0;
};

/** Sampler knobs. */
struct TimeSeriesConfig
{
    /** Seconds between samples when running the background thread. */
    double intervalSeconds = 1.0;

    /** Points retained per series (ring capacity).  At the default
        1 s interval, 600 points = 10 minutes of history. */
    size_t capacity = 600;
};

class TimeSeriesSampler
{
  public:
    using SnapshotFn = std::function<std::vector<StatsRegistry::Entry>()>;

    TimeSeriesSampler(SnapshotFn source, TimeSeriesConfig config = {});
    ~TimeSeriesSampler();

    TimeSeriesSampler(const TimeSeriesSampler &) = delete;
    TimeSeriesSampler &operator=(const TimeSeriesSampler &) = delete;

    /** Start the background sampling thread (idempotent). */
    void start();

    /** Stop and join the background thread (idempotent; also run by
        the destructor). */
    void stop();

    /**
     * Take one sample synchronously.  @p unixMs stamps the points
     * (pass a fixed value in tests for deterministic output); -1 means
     * "now" per the system clock.
     */
    void sampleNow(int64_t unixMs = -1);

    /** Names of every series sampled so far, sorted. */
    std::vector<std::string> seriesNames() const;

    /**
     * Oldest-to-newest copy of one series' ring, trimmed to the last
     * @p maxPoints when nonzero.  Empty if the name was never sampled.
     */
    std::vector<SeriesPoint> series(const std::string &name,
                                    size_t maxPoints = 0) const;

    /**
     * The per-second rate series derived from consecutive samples of
     * @p name: point i holds (v[i] - v[i-1]) / dt stamped at sample
     * i's time.  One fewer point than series(); negative deltas (a
     * counter reset) clamp to 0.
     */
    std::vector<SeriesPoint> ratePerSecond(const std::string &name,
                                           size_t maxPoints = 0) const;

    size_t sampleCount() const;

    const TimeSeriesConfig &config() const { return _config; }

  private:
    struct Ring
    {
        std::vector<SeriesPoint> points;  ///< sized up to capacity
        size_t head = 0;                  ///< next write slot once full
    };

    void append(Ring &ring, SeriesPoint point);
    std::vector<SeriesPoint> unroll(const Ring &ring) const;
    void runLoop();

    SnapshotFn _source;
    TimeSeriesConfig _config;

    mutable std::mutex _mutex;
    std::map<std::string, Ring> _rings;
    size_t _samples = 0;

    std::mutex _threadMutex;
    std::condition_variable _cv;
    std::thread _thread;
    bool _running = false;
    bool _stopRequested = false;
};

} // namespace obs
} // namespace coolair

#endif // COOLAIR_OBS_TIMESERIES_HPP
