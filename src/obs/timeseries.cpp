#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace coolair {
namespace obs {

namespace {

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // anonymous namespace

TimeSeriesSampler::TimeSeriesSampler(SnapshotFn source,
                                     TimeSeriesConfig config)
    : _source(std::move(source)), _config(config)
{
    if (_config.capacity == 0)
        _config.capacity = 1;
}

TimeSeriesSampler::~TimeSeriesSampler()
{
    stop();
}

void
TimeSeriesSampler::start()
{
    std::lock_guard<std::mutex> lock(_threadMutex);
    if (_running)
        return;
    _running = true;
    _stopRequested = false;
    _thread = std::thread([this] { runLoop(); });
}

void
TimeSeriesSampler::stop()
{
    {
        std::lock_guard<std::mutex> lock(_threadMutex);
        if (!_running)
            return;
        _stopRequested = true;
    }
    _cv.notify_all();
    _thread.join();
    std::lock_guard<std::mutex> lock(_threadMutex);
    _running = false;
}

void
TimeSeriesSampler::runLoop()
{
    const auto interval = std::chrono::duration<double>(
        std::max(0.01, _config.intervalSeconds));
    std::unique_lock<std::mutex> lock(_threadMutex);
    while (!_stopRequested) {
        // Sample outside the thread mutex so stop() never waits on a
        // slow snapshot function.
        lock.unlock();
        sampleNow();
        lock.lock();
        _cv.wait_for(lock, interval, [this] { return _stopRequested; });
    }
}

void
TimeSeriesSampler::append(Ring &ring, SeriesPoint point)
{
    if (ring.points.size() < _config.capacity) {
        ring.points.push_back(point);
    } else {
        ring.points[ring.head] = point;
        ring.head = (ring.head + 1) % ring.points.size();
    }
}

std::vector<SeriesPoint>
TimeSeriesSampler::unroll(const Ring &ring) const
{
    std::vector<SeriesPoint> out;
    out.reserve(ring.points.size());
    for (size_t i = 0; i < ring.points.size(); ++i)
        out.push_back(ring.points[(ring.head + i) % ring.points.size()]);
    return out;
}

void
TimeSeriesSampler::sampleNow(int64_t unixMs)
{
    if (unixMs < 0)
        unixMs = wallClockMs();
    // The source takes the registry lock only while copying; the
    // sampler's own lock is taken only for the appends below.
    std::vector<StatsRegistry::Entry> entries = _source();

    std::lock_guard<std::mutex> lock(_mutex);
    for (const StatsRegistry::Entry &e : entries) {
        switch (e.kind) {
          case StatKind::Counter:
            append(_rings[e.name],
                   SeriesPoint{unixMs, double(e.counterValue)});
            break;
          case StatKind::Gauge:
            append(_rings[e.name], SeriesPoint{unixMs, e.gaugeValue});
            break;
          case StatKind::Histogram:
            append(_rings[e.name + "::count"],
                   SeriesPoint{unixMs, double(e.histogram.count)});
            append(_rings[e.name + "::mean"],
                   SeriesPoint{unixMs, e.histogram.mean()});
            break;
        }
    }
    ++_samples;
}

std::vector<std::string>
TimeSeriesSampler::seriesNames() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::string> out;
    out.reserve(_rings.size());
    for (const auto &[name, ring] : _rings)  // std::map: sorted
        out.push_back(name);
    return out;
}

std::vector<SeriesPoint>
TimeSeriesSampler::series(const std::string &name, size_t maxPoints) const
{
    std::vector<SeriesPoint> out;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _rings.find(name);
        if (it == _rings.end())
            return out;
        out = unroll(it->second);
    }
    if (maxPoints > 0 && out.size() > maxPoints)
        out.erase(out.begin(), out.end() - ptrdiff_t(maxPoints));
    return out;
}

std::vector<SeriesPoint>
TimeSeriesSampler::ratePerSecond(const std::string &name,
                                 size_t maxPoints) const
{
    // Ask for one extra raw point: n rate points need n+1 samples.
    std::vector<SeriesPoint> raw =
        series(name, maxPoints > 0 ? maxPoints + 1 : 0);
    std::vector<SeriesPoint> out;
    if (raw.size() < 2)
        return out;
    out.reserve(raw.size() - 1);
    for (size_t i = 1; i < raw.size(); ++i) {
        const double dtSec =
            double(raw[i].unixMs - raw[i - 1].unixMs) / 1000.0;
        double rate = 0.0;
        if (dtSec > 0.0)
            rate = std::max(0.0, raw[i].value - raw[i - 1].value) / dtSec;
        out.push_back(SeriesPoint{raw[i].unixMs, rate});
    }
    return out;
}

size_t
TimeSeriesSampler::sampleCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _samples;
}

} // namespace obs
} // namespace coolair
