#include "obs/report.hpp"

namespace coolair {
namespace obs {

void
writeRunReport(std::ostream &os, const RunReport &report,
               const StatsRegistry &stats, const DumpOptions &options)
{
    os << "{\n";
    os << "  \"spec\": " << jsonQuote(report.specText) << ",\n";
    os << "  \"seed\": " << report.seed << ",\n";
    os << "  \"wall_seconds\": " << formatDouble(report.wallSeconds) << ",\n";
    os << "  \"sim_seconds\": " << formatDouble(report.simSeconds) << ",\n";
    for (const auto &[name, value] : report.annotations)
        os << "  " << jsonQuote(name) << ": " << jsonQuote(value) << ",\n";
    os << "  \"metrics\": {";
    bool first = true;
    for (const auto &[name, value] : report.metrics) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    " << jsonQuote(name) << ": " << formatDouble(value);
    }
    if (!first)
        os << "\n  ";
    os << "},\n";
    os << "  \"stats\": ";
    stats.dumpJson(os, options, 2);
    os << "\n}\n";
}

} // namespace obs
} // namespace coolair
