#ifndef COOLAIR_OBS_STATS_HPP
#define COOLAIR_OBS_STATS_HPP

/**
 * @file
 * The process-wide statistics registry: hierarchical dotted-name
 * counters, gauges, and weighted histograms, dumped gem5-style to text
 * or JSON.
 *
 * Design rules (the overhead/determinism contract, DESIGN.md
 * §"Observability"):
 *
 *  - Collection is *disabled by default*.  Hot-path components keep
 *    plain local counters (an int64 increment, no atomics, no names)
 *    and the scenario layer harvests them into a registry once per run,
 *    so a run with observability off pays essentially nothing.
 *  - obs::enabled() is one relaxed atomic load — the only check
 *    instrumentation sites that *do* touch a shared registry make.
 *  - Registry mutation is thread-safe: counters are relaxed atomics
 *    (integer addition commutes, so concurrent accumulation is
 *    deterministic), histograms and registration take a mutex.
 *  - dump() emits stats sorted by name, so output is byte-identical
 *    regardless of registration or scheduling order.  Stats whose value
 *    depends on wall-clock time or scheduling (job timings) carry
 *    StatFlags::kWallClock and can be skipped for deterministic output
 *    (the COOLAIR_THREADS=1 vs 8 byte-parity tests do exactly that).
 */

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace coolair {
namespace obs {

/** Qualifiers attached to a stat at registration. */
enum StatFlags : uint32_t
{
    kNoFlags = 0,

    /**
     * The value reflects wall-clock time or thread scheduling (job
     * durations, queue waits) rather than the simulation, so it is not
     * reproducible across runs or thread counts.  Deterministic dumps
     * (DumpOptions::skipWallClock) omit these.
     */
    kWallClock = 1u << 0,
};

/** A monotonically accumulating integer stat. */
class Counter
{
  public:
    void add(int64_t n) { _value.fetch_add(n, std::memory_order_relaxed); }
    void inc() { add(1); }
    int64_t value() const { return _value.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> _value{0};
};

/** A last-value-wins double stat (e.g. a rate computed at end of run). */
class Gauge
{
  public:
    void set(double v)
    {
        _value.store(v, std::memory_order_relaxed);
        _set.store(true, std::memory_order_relaxed);
    }
    double value() const { return _value.load(std::memory_order_relaxed); }
    bool isSet() const { return _set.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{0.0};
    std::atomic<bool> _set{false};
};

/**
 * A weighted sample distribution: count, weighted mean, min, max, and
 * (optionally) fixed value buckets for quantile estimation.
 * Record with weight = seconds covered for a time-weighted histogram
 * (the mean is then a time average), or weight 1 for plain samples.
 * Empty histograms report mean/min/max of 0.
 *
 * Buckets: setBuckets() installs strictly-increasing upper bounds (the
 * Prometheus `le` boundaries).  record() then also increments the first
 * bucket whose bound >= value; samples above every bound count only in
 * the total.  Bucket counts are stored per-bucket (non-cumulative);
 * the Prometheus renderer prefix-sums them into cumulative `le` series.
 * Moment-only histograms (no buckets) cost exactly what they did
 * before — buckets are opt-in per stat, never a hot-path default.
 */
class Histogram
{
  public:
    void record(double value, double weight = 1.0);

    /**
     * Install bucket upper bounds (must be strictly increasing; throws
     * std::invalid_argument otherwise).  Resets any previously
     * accumulated bucket counts; moments are preserved.
     */
    void setBuckets(const std::vector<double> &upperBounds);

    /** Immutable copy of the accumulated moments. */
    struct Snapshot
    {
        int64_t count = 0;
        double weightSum = 0.0;
        double weightedSum = 0.0;
        double min = 0.0;
        double max = 0.0;

        /** Bucket upper bounds; empty for moment-only histograms. */
        std::vector<double> bucketBounds;

        /** Per-bucket (non-cumulative) sample counts, sized like
            bucketBounds. */
        std::vector<int64_t> bucketCounts;

        double mean() const
        {
            return weightSum > 0.0 ? weightedSum / weightSum : 0.0;
        }

        /**
         * Value below which @p q (in [0,1]) of the samples fall,
         * linearly interpolated within the owning bucket; 0 with no
         * buckets or no samples.  The last bound caps the estimate
         * (Prometheus histogram_quantile semantics).
         */
        double quantile(double q) const;
    };

    Snapshot snapshot() const;

    /**
     * Fold another histogram's moments (and, when both sides carry the
     * same bucket bounds, bucket counts) into this one.  Mismatched
     * bounds drop the buckets and keep the moments — a merge never
     * invents counts it cannot align.
     */
    void combine(const Snapshot &other);

  private:
    mutable std::mutex _mutex;
    Snapshot _s;
    bool _any = false;
};

/** What kind of stat a registry entry is. */
enum class StatKind
{
    Counter,
    Gauge,
    Histogram
};

/** Dump/snapshot filtering and formatting options. */
struct DumpOptions
{
    /**
     * Omit stats flagged kWallClock, leaving only values that are
     * byte-reproducible across runs and thread counts.
     */
    bool skipWallClock = false;
};

/**
 * A named collection of stats.  Registration returns stable references
 * (entries are never removed by registration or dumping), so components
 * may cache the returned Counter&/Histogram& and skip the name lookup.
 *
 * Registering the same name twice returns the same stat; registering it
 * with a different kind throws std::invalid_argument.
 */
class StatsRegistry
{
  public:
    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

    Counter &counter(const std::string &name, const std::string &desc = "",
                     uint32_t flags = kNoFlags);
    Gauge &gauge(const std::string &name, const std::string &desc = "",
                 uint32_t flags = kNoFlags);

    /**
     * Register (or look up) a histogram.  @p buckets, when non-empty on
     * first registration, installs Prometheus-style upper bounds (see
     * Histogram::setBuckets); later registrations of the same name keep
     * the first registration's bounds, mirroring how desc behaves.
     */
    Histogram &histogram(const std::string &name,
                         const std::string &desc = "",
                         uint32_t flags = kNoFlags,
                         const std::vector<double> &buckets = {});

    /** One registry entry, for snapshot()-based consumers. */
    struct Entry
    {
        std::string name;
        std::string desc;
        StatKind kind = StatKind::Counter;
        uint32_t flags = kNoFlags;
        int64_t counterValue = 0;       ///< kind == Counter
        double gaugeValue = 0.0;        ///< kind == Gauge
        bool gaugeSet = false;          ///< kind == Gauge
        Histogram::Snapshot histogram;  ///< kind == Histogram
    };

    /** Entries sorted by name, filtered per @p options. */
    std::vector<Entry> snapshot(const DumpOptions &options = {}) const;

    /**
     * Fold @p other into this registry: counters add, gauges take the
     * other's value when set, histograms combine moments.  Merging the
     * same sequence of registries in the same order always produces the
     * same result, so sweep drivers merging per-job registries in spec
     * order get scheduling-independent totals.
     */
    void merge(const StatsRegistry &other);

    /** Drop every stat (references from earlier registration dangle). */
    void clear();

    /**
     * gem5-style text dump: `name  value  # desc` lines sorted by name,
     * bracketed by Begin/End markers.  Histograms expand to ::count,
     * ::mean, ::min, ::max (and ::weight when weighted).
     */
    void dumpText(std::ostream &os, const DumpOptions &options = {}) const;

    /** The same content as one JSON object keyed by stat name. */
    void dumpJson(std::ostream &os, const DumpOptions &options = {},
                  int indent = 0) const;

  private:
    struct Stat
    {
        std::string desc;
        StatKind kind = StatKind::Counter;
        uint32_t flags = kNoFlags;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> hist;
    };

    Stat &lookup(const std::string &name, StatKind kind,
                 const std::string &desc, uint32_t flags,
                 bool *created = nullptr);

    mutable std::mutex _mutex;
    std::map<std::string, Stat> _stats;
};

/** The process-wide registry sweep drivers and the runner publish to. */
StatsRegistry &registry();

/**
 * Whether global stats collection / publication is on.  One relaxed
 * atomic load; defaults to false.
 */
bool enabled();

/** Turn global stats collection on or off. */
void setEnabled(bool on);

/**
 * Format a double exactly as every obs JSON/text writer does (%.17g,
 * value-preserving), so dumps are byte-stable for equal values.
 */
std::string formatDouble(double v);

/** Escape and quote a string for JSON output. */
std::string jsonQuote(const std::string &s);

} // namespace obs
} // namespace coolair

#endif // COOLAIR_OBS_STATS_HPP
