#ifndef COOLAIR_OBS_REPORT_HPP
#define COOLAIR_OBS_REPORT_HPP

/**
 * @file
 * Per-experiment run report: a JSON manifest capturing what was run
 * (the spec, canonically formatted), how (seed, threads), how long
 * (wall and simulated seconds), what came out (headline metrics), and
 * every stat the run touched.  One report per experiment, written by
 * the scenario layer when ExperimentSpec::reportJsonPath is set.
 */

#include "obs/stats.hpp"

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace coolair {
namespace obs {

/** Everything a run report records besides the stats registry. */
struct RunReport
{
    /** Canonical spec text (spec_io::formatSpec) — parseSpec round-trips. */
    std::string specText;
    uint64_t seed = 0;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;
    /** Headline metrics in insertion order (name, value). */
    std::vector<std::pair<std::string, double>> metrics;

    /**
     * Extra string fields written verbatim at the JSON top level, in
     * insertion order (e.g. result_source = cache for a report served
     * by the persistent result store).  Empty by default, so documents
     * without annotations are byte-identical to pre-annotation ones.
     */
    std::vector<std::pair<std::string, std::string>> annotations;
};

/**
 * Write @p report plus @p stats as one JSON object.  Wall-clock fields
 * (wall_seconds and kWallClock-flagged stats) are naturally
 * nondeterministic; everything else is byte-reproducible, and passing
 * options.skipWallClock + zeroing wallSeconds yields a fully
 * deterministic document (what the byte-parity tests compare).
 */
void writeRunReport(std::ostream &os, const RunReport &report,
                    const StatsRegistry &stats,
                    const DumpOptions &options = {});

} // namespace obs
} // namespace coolair

#endif // COOLAIR_OBS_REPORT_HPP
