#include "obs/prometheus.hpp"

#include <sstream>

namespace coolair {
namespace obs {

namespace {

bool
legalNameChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/** HELP text escaping per the exposition format: backslash and
    newline. */
std::string
escapeHelp(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

/** Label-value escaping: backslash, double quote, newline. */
std::string
escapeLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

void
typeAndHelp(std::ostringstream &os, const std::string &metric,
            const std::string &desc, const char *type)
{
    if (!desc.empty())
        os << "# HELP " << metric << " " << escapeHelp(desc) << "\n";
    os << "# TYPE " << metric << " " << type << "\n";
}

} // anonymous namespace

std::string
promSanitizeName(const std::string &statName)
{
    std::string out;
    out.reserve(statName.size() + 1);
    for (char c : statName)
        out += legalNameChar(c) ? c : '_';
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
toPrometheusText(const std::vector<StatsRegistry::Entry> &entries,
                 const PrometheusOptions &options)
{
    std::ostringstream os;
    for (const StatsRegistry::Entry &e : entries) {
        if (options.skipWallClock && (e.flags & kWallClock))
            continue;
        const std::string metric =
            options.prefix + promSanitizeName(e.name);
        switch (e.kind) {
          case StatKind::Counter:
            typeAndHelp(os, metric + "_total", e.desc, "counter");
            os << metric << "_total " << e.counterValue << "\n";
            break;
          case StatKind::Gauge:
            typeAndHelp(os, metric, e.desc, "gauge");
            os << metric << " " << formatDouble(e.gaugeValue) << "\n";
            break;
          case StatKind::Histogram: {
            const Histogram::Snapshot &h = e.histogram;
            if (!h.bucketBounds.empty()) {
                typeAndHelp(os, metric, e.desc, "histogram");
                int64_t cumulative = 0;
                for (size_t i = 0; i < h.bucketBounds.size(); ++i) {
                    cumulative += h.bucketCounts[i];
                    os << metric << "_bucket{le=\""
                       << escapeLabel(formatDouble(h.bucketBounds[i]))
                       << "\"} " << cumulative << "\n";
                }
                os << metric << "_bucket{le=\"+Inf\"} " << h.count << "\n";
                os << metric << "_sum " << formatDouble(h.weightedSum)
                   << "\n";
                os << metric << "_count " << h.count << "\n";
            } else {
                // Moment-only histogram: expose the moments as their
                // own series (no le buckets to build a histogram from).
                typeAndHelp(os, metric + "_count", e.desc, "counter");
                os << metric << "_count " << h.count << "\n";
                os << "# TYPE " << metric << "_sum gauge\n";
                os << metric << "_sum " << formatDouble(h.weightedSum)
                   << "\n";
                os << "# TYPE " << metric << "_min gauge\n";
                os << metric << "_min " << formatDouble(h.min) << "\n";
                os << "# TYPE " << metric << "_max gauge\n";
                os << metric << "_max " << formatDouble(h.max) << "\n";
            }
            break;
          }
        }
    }
    return os.str();
}

std::string
toPrometheusText(const StatsRegistry &registry,
                 const PrometheusOptions &options)
{
    DumpOptions dump;
    dump.skipWallClock = options.skipWallClock;
    // snapshot() holds the registry lock only while copying entries;
    // all formatting happens on this thread's private copy.
    return toPrometheusText(registry.snapshot(dump), options);
}

} // namespace obs
} // namespace coolair
