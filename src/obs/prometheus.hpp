#ifndef COOLAIR_OBS_PROMETHEUS_HPP
#define COOLAIR_OBS_PROMETHEUS_HPP

/**
 * @file
 * Prometheus text-format exposition (version 0.0.4) for a
 * StatsRegistry snapshot — the canonical renderer behind the serve
 * daemon's METRICS verb and anything else that wants to be scraped.
 *
 * Mapping:
 *  - Counter   -> `<prefix><name>_total` with `# TYPE ... counter`
 *  - Gauge     -> `<prefix><name>` with `# TYPE ... gauge`
 *  - Histogram with buckets -> a full Prometheus histogram:
 *    cumulative `_bucket{le="..."}` series (closed by `le="+Inf"`),
 *    `_sum` (the weighted sum) and `_count`
 *  - Histogram without buckets (the hot-path moment-only kind) ->
 *    `_count`/`_sum` plus `_min`/`_max` gauges, typed untyped/gauge
 *
 * Dotted stat names sanitize to legal metric names (`serve.store_hits`
 * -> `coolair_serve_store_hits_total`).  `# HELP` lines carry the
 * registered description (escaped per the format).  Output order is the
 * snapshot's (sorted by stat name) and every value renders through
 * obs::formatDouble, so the exposition is byte-deterministic for equal
 * registry contents — the property the serve METRICS thread-count
 * parity test locks.
 */

#include <string>
#include <vector>

#include "obs/stats.hpp"

namespace coolair {
namespace obs {

/** Exposition knobs. */
struct PrometheusOptions
{
    /** Prepended to every sanitized metric name. */
    std::string prefix = "coolair_";

    /** Omit kWallClock-flagged stats (deterministic scrapes). */
    bool skipWallClock = false;
};

/** `serve.store_hits` -> `serve_store_hits`: every character outside
    [a-zA-Z0-9_:] becomes '_'; a leading digit gains a '_' prefix. */
std::string promSanitizeName(const std::string &statName);

/** Render @p entries (a StatsRegistry::snapshot) as Prometheus text. */
std::string toPrometheusText(const std::vector<StatsRegistry::Entry> &entries,
                             const PrometheusOptions &options = {});

/** Snapshot @p registry (briefly, under its lock) and render outside. */
std::string toPrometheusText(const StatsRegistry &registry,
                             const PrometheusOptions &options = {});

} // namespace obs
} // namespace coolair

#endif // COOLAIR_OBS_PROMETHEUS_HPP
