#ifndef COOLAIR_OBS_TRACE_HPP
#define COOLAIR_OBS_TRACE_HPP

/**
 * @file
 * Scoped-span tracing with Chrome trace-event JSON export.
 *
 * Spans are RAII: constructing an obs::Span records the start time,
 * destruction records a complete ("ph":"X") event into the process-wide
 * Tracer.  When tracing is disabled (the default) a Span costs one
 * relaxed atomic load and nothing else.
 *
 * Tracks: each event carries a tid.  By default that is a process-unique
 * id assigned per OS thread on first use; the runner instead calls
 * setThreadTrack(worker) on each worker so the exported trace shows one
 * named track per worker ("worker 0", "worker 1", ...), matching how the
 * sweep actually parallelises.  The resulting file loads directly in
 * Perfetto / chrome://tracing.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <ostream>
#include <string>
#include <vector>

namespace coolair {
namespace obs {

/** One complete trace event (Chrome trace-event "ph":"X"). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    int64_t tsUs = 0;   ///< start, microseconds since tracer epoch
    int64_t durUs = 0;  ///< duration, microseconds
    int tid = 0;        ///< track id (see setThreadTrack)
};

/**
 * The process-wide trace-event buffer.  Thread-safe; disabled by
 * default.  Events accumulate in memory until writeJson()/clear().
 */
class Tracer
{
  public:
    static Tracer &instance();

    bool enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on)
    {
        _enabled.store(on, std::memory_order_relaxed);
    }

    /** Microseconds since the tracer's epoch (first use), steady clock. */
    int64_t nowUs() const;

    /** Append one complete event (no-op unless enabled). */
    void recordComplete(const std::string &name, const std::string &cat,
                        int64_t tsUs, int64_t durUs, int tid);

    /** Label a track in the exported trace ("worker 0", "main", ...). */
    void nameTrack(int tid, const std::string &name);

    size_t eventCount() const;

    /**
     * Write the buffered events as a Chrome trace-event JSON object
     * (`{"traceEvents": [...]}`), including thread_name metadata events
     * for named tracks.  Loadable in Perfetto / chrome://tracing.
     */
    void writeJson(std::ostream &os) const;

    /** Drop all buffered events and track names. */
    void clear();

  private:
    Tracer();

    std::atomic<bool> _enabled{false};
    int64_t _epochNs = 0;
    mutable std::mutex _mutex;
    std::vector<TraceEvent> _events;
    std::vector<std::pair<int, std::string>> _trackNames;
};

/**
 * Bind the calling thread to trace track @p tid.  The runner calls this
 * with the worker index so every event a worker emits lands on its own
 * track.  Threads that never call it get a process-unique track id.
 */
void setThreadTrack(int tid);

/** The calling thread's current trace track id. */
int threadTrack();

/**
 * RAII scoped span: records a complete event covering the scope's
 * lifetime.  Near-free when tracing is disabled.
 */
class Span
{
  public:
    Span(const char *name, const char *cat = "sim")
    {
        Tracer &t = Tracer::instance();
        if (t.enabled()) {
            _name = name;
            _cat = cat;
            _startUs = t.nowUs();
            _active = true;
        }
    }

    ~Span()
    {
        if (_active) {
            Tracer &t = Tracer::instance();
            int64_t end = t.nowUs();
            t.recordComplete(_name, _cat, _startUs, end - _startUs,
                             threadTrack());
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *_name = nullptr;
    const char *_cat = nullptr;
    int64_t _startUs = 0;
    bool _active = false;
};

} // namespace obs
} // namespace coolair

#endif // COOLAIR_OBS_TRACE_HPP
