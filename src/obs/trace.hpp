#ifndef COOLAIR_OBS_TRACE_HPP
#define COOLAIR_OBS_TRACE_HPP

/**
 * @file
 * Scoped-span tracing with Chrome trace-event JSON export.
 *
 * Spans are RAII: constructing an obs::Span records the start time,
 * destruction records a complete ("ph":"X") event into the process-wide
 * Tracer.  When tracing is disabled (the default) a Span costs one
 * relaxed atomic load and nothing else.
 *
 * Tracks: each event carries a tid.  By default that is a process-unique
 * id assigned per OS thread on first use; the runner instead calls
 * setThreadTrack(worker) on each worker so the exported trace shows one
 * named track per worker ("worker 0", "worker 1", ...), matching how the
 * sweep actually parallelises.  The resulting file loads directly in
 * Perfetto / chrome://tracing.
 */

#include <atomic>
#include <cstdint>
#include <mutex>
#include <utility>
#include <ostream>
#include <string>
#include <vector>

namespace coolair {
namespace obs {

/** One complete trace event (Chrome trace-event "ph":"X"). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    int64_t tsUs = 0;   ///< start, microseconds since tracer epoch
    int64_t durUs = 0;  ///< duration, microseconds
    int tid = 0;        ///< track id (see setThreadTrack)

    /**
     * Request correlation id (0 = none).  Spans inherit the calling
     * thread's current trace context (see TraceContextScope), so every
     * span recorded on behalf of one serve request — across the
     * connection thread, the JobPool worker, and the engine — carries
     * the same id and can be extracted as one correlated trace.
     */
    uint64_t traceId = 0;
};

/**
 * The process-wide trace-event buffer.  Thread-safe; disabled by
 * default.  Events accumulate in memory until writeJson()/clear().
 */
class Tracer
{
  public:
    static Tracer &instance();

    bool enabled() const
    {
        return _enabled.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on)
    {
        _enabled.store(on, std::memory_order_relaxed);
    }

    /** Microseconds since the tracer's epoch (first use), steady clock. */
    int64_t nowUs() const;

    /** Append one complete event (no-op unless enabled). */
    void recordComplete(const std::string &name, const std::string &cat,
                        int64_t tsUs, int64_t durUs, int tid,
                        uint64_t traceId = 0);

    /** Label a track in the exported trace ("worker 0", "main", ...). */
    void nameTrack(int tid, const std::string &name);

    size_t eventCount() const;

    /**
     * Cap on buffered events (default kDefaultMaxEvents).  When the
     * buffer is full the oldest quarter is dropped (droppedEvents()
     * counts them), so a long-lived daemon with tracing on holds
     * bounded memory no matter how many requests it serves.  0 =
     * unbounded (one-shot CLI exports that want every event).
     */
    void setMaxEvents(size_t cap);
    size_t droppedEvents() const;

    static constexpr size_t kDefaultMaxEvents = size_t(1) << 20;

    /**
     * Remove and return every buffered event carrying @p traceId, in
     * recording order.  The serve layer calls this as each request
     * completes, so per-request retention is the service's bounded
     * ring, not this process-wide buffer.
     */
    std::vector<TraceEvent> takeTrace(uint64_t traceId);

    /** Copy of the registered track names (tid, name), unsorted. */
    std::vector<std::pair<int, std::string>> trackNames() const;

    /**
     * Write the buffered events as a Chrome trace-event JSON object
     * (`{"traceEvents": [...]}`), including thread_name metadata events
     * for named tracks.  Loadable in Perfetto / chrome://tracing.
     */
    void writeJson(std::ostream &os) const;

    /** Drop all buffered events and track names. */
    void clear();

  private:
    Tracer();

    std::atomic<bool> _enabled{false};
    int64_t _epochNs = 0;
    mutable std::mutex _mutex;
    std::vector<TraceEvent> _events;
    std::vector<std::pair<int, std::string>> _trackNames;
    size_t _maxEvents = kDefaultMaxEvents;
    size_t _dropped = 0;
};

/**
 * Serialize @p events (plus thread_name metadata for @p tracks) as a
 * Chrome trace-event JSON object.  The writer behind Tracer::writeJson,
 * exposed so the serve layer can export one request's extracted span
 * set as a standalone trace.  Events are stably sorted by start time
 * then track; output is deterministic for a given event set.
 */
void writeTraceEventsJson(std::ostream &os, std::vector<TraceEvent> events,
                          std::vector<std::pair<int, std::string>> tracks);

/**
 * Bind the calling thread to trace track @p tid.  The runner calls this
 * with the worker index so every event a worker emits lands on its own
 * track.  Threads that never call it get a process-unique track id.
 */
void setThreadTrack(int tid);

/** The calling thread's current trace track id. */
int threadTrack();

/**
 * The calling thread's current trace context id (0 = none).  Spans
 * stamp this onto every event they record.
 */
uint64_t currentTraceId();

/** Set the calling thread's trace context id directly (prefer the
    RAII TraceContextScope). */
void setCurrentTraceId(uint64_t id);

/**
 * RAII trace context: while alive, every Span the calling thread
 * records carries @p id.  Restores the previous id on destruction, so
 * scopes nest.  The serve layer opens one per request on the
 * connection thread, and sim::JobPool re-opens the submitter's scope
 * on the worker thread that picks the job up — that is the whole
 * serve -> pool -> runner -> engine propagation.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(uint64_t id) : _prev(currentTraceId())
    {
        setCurrentTraceId(id);
    }
    ~TraceContextScope() { setCurrentTraceId(_prev); }

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    uint64_t _prev;
};

/**
 * RAII scoped span: records a complete event covering the scope's
 * lifetime.  Near-free when tracing is disabled.
 */
class Span
{
  public:
    Span(const char *name, const char *cat = "sim")
    {
        Tracer &t = Tracer::instance();
        if (t.enabled()) {
            _name = name;
            _cat = cat;
            _startUs = t.nowUs();
            _active = true;
        }
    }

    ~Span()
    {
        if (_active) {
            Tracer &t = Tracer::instance();
            int64_t end = t.nowUs();
            t.recordComplete(_name, _cat, _startUs, end - _startUs,
                             threadTrack(), currentTraceId());
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *_name = nullptr;
    const char *_cat = nullptr;
    int64_t _startUs = 0;
    bool _active = false;
};

} // namespace obs
} // namespace coolair

#endif // COOLAIR_OBS_TRACE_HPP
