/**
 * @file
 * Flat-array (lane-wise) psychrometric kernels for the batched engine.
 *
 * This translation unit is compiled with COOLAIR_KERNEL_OPTIONS
 * (-O3 -ffast-math, optionally -march=native), which lets the compiler
 * auto-vectorize the transcendental calls through libmvec.  Fast-math is
 * scoped to this TU's COMPILE_OPTIONS — never to link flags — so the
 * scalar path keeps strict IEEE semantics and its bit-identity contract.
 *
 * Every loop body is a straight transliteration of the scalar function
 * in psychrometrics.cpp; any change there must be mirrored here (the
 * batched-vs-scalar oracle tests in tests/test_batch_engine.cpp catch
 * drift beyond the documented tolerance).
 */

#include "physics/psychrometrics.hpp"

#include <algorithm>
#include <cmath>

namespace coolair {
namespace physics {

void
saturationVaporPressureN(const double *temp_c, double *out, int n)
{
    for (int i = 0; i < n; ++i)
        out[i] = kMagnusC *
                 std::exp(kMagnusA * temp_c[i] / (kMagnusB + temp_c[i]));
}

void
absoluteHumidityN(const double *temp_c, const double *rh_percent,
                  double *out, int n)
{
    for (int i = 0; i < n; ++i) {
        double svp = kMagnusC *
                     std::exp(kMagnusA * temp_c[i] / (kMagnusB + temp_c[i]));
        double vp = svp * rh_percent[i] / 100.0;
        double kelvin = temp_c[i] + 273.15;
        out[i] = 1000.0 * vp / (kVaporGasConstant * kelvin);
    }
}

void
relativeHumidityN(const double *temp_c, const double *abs_gm3, double *out,
                  int n)
{
    for (int i = 0; i < n; ++i) {
        double svp = kMagnusC *
                     std::exp(kMagnusA * temp_c[i] / (kMagnusB + temp_c[i]));
        double kelvin = temp_c[i] + 273.15;
        double vp = abs_gm3[i] / 1000.0 * kVaporGasConstant * kelvin;
        out[i] = 100.0 * vp / svp;
    }
}

void
wetBulbN(const double *temp_c, const double *rh_percent, double *out, int n)
{
    for (int i = 0; i < n; ++i) {
        double t = temp_c[i];
        double rh = std::min(std::max(rh_percent[i], 5.0), 99.0);
        // Stull (2011); pow(rh, 1.5) spelled rh*sqrt(rh) so the loop
        // vectorizes without a pow() call.
        double tw = t * std::atan(0.151977 * std::sqrt(rh + 8.313659)) +
                    std::atan(t + rh) - std::atan(rh - 1.676331) +
                    0.00391838 * rh * std::sqrt(rh) *
                        std::atan(0.023101 * rh) -
                    4.686035;
        out[i] = std::min(tw, t);
    }
}

} // namespace physics
} // namespace coolair
