#ifndef COOLAIR_PHYSICS_PSYCHROMETRICS_HPP
#define COOLAIR_PHYSICS_PSYCHROMETRICS_HPP

/**
 * @file
 * Moist-air (psychrometric) property functions.
 *
 * CoolAir's Cooling Modeler predicts *absolute* humidity and converts it to
 * *relative* humidity using the predicted air temperature (paper §3.1).
 * These helpers provide that conversion, plus dew point and air-stream
 * mixing, using the Magnus–Tetens approximation — accurate to ~0.1 °C over
 * the datacenter operating envelope (-40..60 °C).
 */

namespace coolair {
namespace physics {

/** Density of air at datacenter conditions [kg/m^3]. */
constexpr double kAirDensity = 1.2;

/** Specific heat capacity of air [J/(kg*K)]. */
constexpr double kAirSpecificHeat = 1005.0;

// Magnus-Tetens coefficients (Alduchov & Eskridge 1996).  Shared by the
// scalar implementations below and the flat-array kernel TU
// (psychrometrics_kernels.cpp), which must agree on the formulas.
inline constexpr double kMagnusA = 17.625;
inline constexpr double kMagnusB = 243.04;   // [°C]
inline constexpr double kMagnusC = 610.94;   // [Pa]

/** Specific gas constant for water vapor [J/(kg*K)]. */
inline constexpr double kVaporGasConstant = 461.5;

/**
 * Saturation vapor pressure of water over liquid [Pa] at temperature
 * @p temp_c [°C] (Magnus–Tetens).
 */
double saturationVaporPressure(double temp_c);

/**
 * Absolute humidity [g water / m^3 air] given dry-bulb temperature
 * @p temp_c [°C] and relative humidity @p rh_percent [0..100].
 */
double absoluteHumidity(double temp_c, double rh_percent);

/**
 * Relative humidity [0..100+] given dry-bulb temperature @p temp_c [°C]
 * and absolute humidity @p abs_gm3 [g/m^3].  Values above 100 indicate
 * super-saturation (condensation would occur).
 */
double relativeHumidity(double temp_c, double abs_gm3);

/**
 * Dew point [°C] given dry-bulb temperature and relative humidity
 * (inverse Magnus).
 */
double dewPoint(double temp_c, double rh_percent);

/**
 * Wet-bulb temperature [°C] given dry-bulb temperature and relative
 * humidity (Stull 2011 empirical fit, valid for -20..50 °C and RH
 * 5..99 %).  The theoretical floor for adiabatic (evaporative) cooling.
 */
double wetBulb(double temp_c, double rh_percent);

/**
 * Outlet dry-bulb temperature [°C] of an evaporative cooler with the
 * given @p effectiveness (fraction of the dry-bulb-to-wet-bulb gap it
 * closes) operating on air at @p temp_c / @p rh_percent.
 */
double evaporativeOutletTemp(double temp_c, double rh_percent,
                             double effectiveness);

/**
 * State of an air volume/stream: temperature and absolute humidity.
 * Mixing operations act on this pair (both quantities mix conservatively
 * by mass, which for near-constant density is by volume fraction).
 */
struct AirState
{
    double tempC = 20.0;        ///< Dry-bulb temperature [°C].
    double absHumidity = 8.0;   ///< Absolute humidity [g/m^3].

    /** Relative humidity [0..100+] of this state. */
    double relHumidity() const;

    /** Build an AirState from temperature and relative humidity. */
    static AirState fromRelative(double temp_c, double rh_percent);
};

/**
 * Mix two air streams with volume fractions @p frac_a for @p a and
 * (1 - frac_a) for @p b.  @p frac_a is clamped to [0, 1].
 */
AirState mix(const AirState &a, const AirState &b, double frac_a);

/**
 * New temperature of an air mass of volume @p volume_m3 after absorbing
 * @p heat_joules of heat (negative to cool).
 */
double heatAirMass(double temp_c, double volume_m3, double heat_joules);

/**
 * Flat-array overloads of the hot transforms, for the batched (SoA)
 * execution path.  Each applies the scalar formula element-wise over
 * @p n lanes with no per-lane branching, from a translation unit built
 * with the vectorizer-friendly COOLAIR_KERNEL_OPTIONS flags
 * (-ffast-math on the kernel TU only), so results may differ from the
 * scalar functions in the last few ulps — see DESIGN.md §10 for the
 * tolerance contract.  Input and output arrays may not alias unless
 * they are identical (in-place use is allowed).
 */

/** Lane-wise saturationVaporPressure: out[i] = svp(temp_c[i]). */
void saturationVaporPressureN(const double *temp_c, double *out, int n);

/** Lane-wise absoluteHumidity: out[i] = absHum(temp_c[i], rh[i]). */
void absoluteHumidityN(const double *temp_c, const double *rh_percent,
                       double *out, int n);

/** Lane-wise relativeHumidity: out[i] = relHum(temp_c[i], abs[i]). */
void relativeHumidityN(const double *temp_c, const double *abs_gm3,
                       double *out, int n);

/** Lane-wise wetBulb (Stull fit, RH clamped to [5, 99] as in scalar). */
void wetBulbN(const double *temp_c, const double *rh_percent, double *out,
              int n);

} // namespace physics
} // namespace coolair

#endif // COOLAIR_PHYSICS_PSYCHROMETRICS_HPP
